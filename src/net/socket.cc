#include "src/net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/frame.h"
#include "src/common/str_util.h"

namespace txmod::net {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

namespace {

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("not an IPv4 address literal: '", host, "'"));
  }
  return addr;
}

}  // namespace

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  TXMOD_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Internal(StrCat("socket(): ", std::strerror(errno)));
  }
  // The protocol is strictly request/response per connection; disabling
  // Nagle keeps small frames from waiting on delayed ACKs.
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::Unavailable(StrCat("connect to ", host, ":", port,
                                      " failed: ", std::strerror(errno)));
  }
  return sock;
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port, int backlog,
                         uint16_t* bound_port) {
  TXMOD_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Internal(StrCat("socket(): ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable(StrCat("bind to ", host, ":", port,
                                      " failed: ", std::strerror(errno)));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return Status::Internal(StrCat("listen(): ", std::strerror(errno)));
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual),
                      &len) != 0) {
      return Status::Internal(StrCat("getsockname(): ",
                                     std::strerror(errno)));
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Status SendFrame(int fd, const std::string& payload) {
  std::string framed;
  framed.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(payload, &framed);
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(StrCat("send failed: ",
                                        std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

namespace {

/// Reads exactly n bytes; `mid_message` picks the error for a premature
/// close (clean close before the first byte of a frame is a protocol
/// event, mid-frame it is corruption).
Status RecvExact(int fd, char* buf, std::size_t n, bool* clean_close) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(StrCat("recv failed: ",
                                        std::strerror(errno)));
    }
    if (r == 0) {
      if (got == 0 && clean_close != nullptr) {
        *clean_close = true;
        return Status::Unavailable("connection closed by peer");
      }
      return Status::InvalidArgument("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status RecvFrame(int fd, std::size_t max_payload, std::string* payload) {
  char header[kFrameHeaderBytes];
  bool clean_close = false;
  TXMOD_RETURN_IF_ERROR(
      RecvExact(fd, header, kFrameHeaderBytes, &clean_close));
  const auto byte = [&](std::size_t i) {
    return static_cast<uint32_t>(static_cast<unsigned char>(header[i]));
  };
  const uint32_t n = byte(0) | (byte(1) << 8) | (byte(2) << 16) |
                     (byte(3) << 24);
  if (n > max_payload) {
    return Status::InvalidArgument(
        StrCat("frame payload of ", n, " bytes exceeds the ", max_payload,
               "-byte limit"));
  }
  payload->resize(n);
  if (n > 0) {
    TXMOD_RETURN_IF_ERROR(RecvExact(fd, payload->data(), n, nullptr));
  }
  return Status::OK();
}

}  // namespace txmod::net
