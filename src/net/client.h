#ifndef TXMOD_NET_CLIENT_H_
#define TXMOD_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/frame.h"
#include "src/common/result.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"

namespace txmod::net {

/// Blocking wire-protocol client over one connection. Each method sends
/// one request frame and waits for the matching response frame (the
/// protocol is strictly request/response). Not thread-safe; use one
/// Client per thread.
///
/// Error surface: methods return the server's err-response Status
/// verbatim (kUnavailable = backpressure or degraded mode — back off and
/// retry; kDeadlineExceeded = the run policy's budget expired;
/// kFailedPrecondition = session-state misuse) or a transport-level
/// kUnavailable/kInvalidArgument when the connection itself failed.
class Client {
 public:
  Client() = default;

  static Result<Client> Connect(const std::string& host, uint16_t port);

  bool connected() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  Status Ping();
  /// Opens this connection's session; returns the pinned snapshot version.
  Result<uint64_t> Begin();
  Result<Outcome> Execute(const std::string& txn_text);
  Result<Outcome> Commit();
  Status Abort();
  /// One-shot Begin+Execute+Commit with server-side conflict retry under
  /// this connection's policy.
  Result<Outcome> Run(const std::string& txn_text);
  /// Sorted tuples of a relation, one line per tuple of space-separated
  /// EncodeValueText encodings.
  Result<std::string> Show(const std::string& relation_name);
  /// Overrides this connection's run policy (see protocol.h `policy`).
  Status SetPolicy(const std::map<std::string, std::string>& fields);
  Result<std::map<std::string, std::string>> Stats();

  /// Escape hatch for tests: one raw request/response round trip.
  Result<Response> Call(const Request& request);

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  Result<Outcome> CallForOutcome(Verb verb, const std::string& body);

  Socket sock_;
  std::size_t max_frame_payload_ = kDefaultMaxFramePayload;
};

}  // namespace txmod::net

#endif  // TXMOD_NET_CLIENT_H_
