#include "src/net/client.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

namespace txmod::net {

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  TXMOD_ASSIGN_OR_RETURN(Socket sock, ConnectTcp(host, port));
  return Client(std::move(sock));
}

Result<Response> Client::Call(const Request& request) {
  if (!sock_.valid()) {
    return Status::FailedPrecondition("client not connected");
  }
  TXMOD_RETURN_IF_ERROR(SendFrame(sock_.fd(), EncodeRequest(request)));
  std::string payload;
  Status recv = RecvFrame(sock_.fd(), max_frame_payload_, &payload);
  if (!recv.ok()) {
    // A failed round trip leaves request/response framing unsynchronized.
    sock_.Close();
    return recv;
  }
  return DecodeResponse(payload);
}

namespace {

/// Collapses a response into its body (err responses become their Status).
Result<std::string> BodyOf(Result<Response> response) {
  TXMOD_RETURN_IF_ERROR(response.status());
  if (!response->ok()) return ResponseStatus(*response);
  return std::move(response->body);
}

}  // namespace

Result<Outcome> Client::CallForOutcome(Verb verb, const std::string& body) {
  TXMOD_ASSIGN_OR_RETURN(const std::string response_body,
                         BodyOf(Call({verb, body})));
  return DecodeOutcome(response_body);
}

Status Client::Ping() { return BodyOf(Call({Verb::kPing, ""})).status(); }

Result<uint64_t> Client::Begin() {
  TXMOD_ASSIGN_OR_RETURN(const std::string body,
                         BodyOf(Call({Verb::kBegin, ""})));
  TXMOD_ASSIGN_OR_RETURN(const auto kv, DecodeKeyValues(body));
  const auto it = kv.find("version");
  if (it == kv.end()) {
    return Status::InvalidArgument("begin response missing version");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("begin response version not a number");
  }
  return static_cast<uint64_t>(v);
}

Result<Outcome> Client::Execute(const std::string& txn_text) {
  return CallForOutcome(Verb::kExecute, txn_text);
}

Result<Outcome> Client::Commit() {
  return CallForOutcome(Verb::kCommit, "");
}

Status Client::Abort() { return BodyOf(Call({Verb::kAbort, ""})).status(); }

Result<Outcome> Client::Run(const std::string& txn_text) {
  return CallForOutcome(Verb::kRun, txn_text);
}

Result<std::string> Client::Show(const std::string& relation_name) {
  return BodyOf(Call({Verb::kShow, relation_name}));
}

Status Client::SetPolicy(const std::map<std::string, std::string>& fields) {
  return BodyOf(Call({Verb::kPolicy, EncodeKeyValues(fields)})).status();
}

Result<std::map<std::string, std::string>> Client::Stats() {
  TXMOD_ASSIGN_OR_RETURN(const std::string body,
                         BodyOf(Call({Verb::kStats, ""})));
  return DecodeKeyValues(body);
}

}  // namespace txmod::net
