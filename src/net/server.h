#ifndef TXMOD_NET_SERVER_H_
#define TXMOD_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/frame.h"
#include "src/common/result.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/txn/txn_manager.h"

namespace txmod::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; Server::port() reports the actual one.
  uint16_t port = 0;
  /// Event-loop worker threads. Connections are assigned round-robin in
  /// accept order and stay pinned to their worker for life (a TxnSession
  /// is single-threaded; pinning makes the contract structural).
  int num_workers = 2;
  /// Per-frame payload ceiling; an over-limit frame is a protocol error
  /// that closes the connection (the stream cannot be resynchronized).
  std::size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Admission control: commit-carrying requests (commit/run) admitted
  /// concurrently. A request over budget is refused immediately with
  /// kUnavailable — explicit backpressure, never a queue or a hang.
  /// <= 0 disables the budget.
  int max_inflight_commits = 64;
  /// Default per-connection run policy; each connection may override its
  /// own with the `policy` verb.
  txn::RunPolicy run_policy;
};

/// Monotonic counters (plus one gauge) since Start().
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t requests = 0;
  /// Commit/run requests whose response acknowledged a durable commit.
  uint64_t commits_acked = 0;
  /// Commit/run requests refused by the admission budget.
  uint64_t backpressure_rejections = 0;
  /// Frames that failed to decode (bad verb, over-limit, truncated).
  uint64_t protocol_errors = 0;
  /// Gauge: commit-carrying requests in flight right now.
  int inflight_commits = 0;
};

/// The network face of one TxnManager: accepts framed-protocol
/// connections (src/net/protocol.h) and multiplexes them onto
/// txn::TxnSessions across a small pool of poll()-based event-loop
/// workers.
///
/// Threading: one acceptor thread plus num_workers event loops. Each
/// connection lives entirely on one worker — its reads, its session,
/// and its response writes — so no per-connection locking exists.
/// Responses are written synchronously from the worker; a commit's
/// group-commit fsync therefore blocks that worker's loop, which is the
/// intended admission unit (budget + workers bound total commit
/// concurrency).
///
/// Shutdown: Stop() closes the listener, wakes every worker, closes all
/// live connections (open sessions abort), and joins the threads. Every
/// response written before Stop() is an honored acknowledgment: acked
/// commits are durable per the manager's group-commit contract and
/// survive recovery.
class Server {
 public:
  /// `manager` must outlive the server.
  Server(txn::TxnManager* manager, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();
  /// Idempotent; safe to call without a successful Start().
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  ServerStats stats() const;

 private:
  struct Connection {
    Socket sock;
    std::string inbuf;
    std::unique_ptr<txn::TxnSession> session;
    txn::RunPolicy policy;
  };

  struct Worker {
    std::thread thread;
    int wake_read = -1;
    int wake_write = -1;
    std::mutex mu;
    std::vector<int> incoming;  // accepted fds awaiting adoption
    // Owned and touched only by the worker thread after adoption.
    std::map<int, Connection> conns;
  };

  void AcceptLoop();
  void WorkerLoop(Worker* worker);
  void Wake(Worker* worker);
  /// Drains readable bytes + completed frames; false => close connection.
  bool HandleReadable(Connection* conn);
  Response HandleRequest(Connection* conn, const Request& request);
  Response HandleCommitCarrying(Connection* conn, const Request& request);
  Response HandleShow(const std::string& relation_name);
  Response HandlePolicy(Connection* conn, const std::string& body);
  Response HandleStats();

  bool TryAcquireCommitSlot();
  void ReleaseCommitSlot();

  txn::TxnManager* const manager_;
  const ServerOptions options_;

  Socket listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::atomic<int> inflight_commits_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> commits_acked_{0};
  std::atomic<uint64_t> backpressure_rejections_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace txmod::net

#endif  // TXMOD_NET_SERVER_H_
