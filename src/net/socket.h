#ifndef TXMOD_NET_SOCKET_H_
#define TXMOD_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"

namespace txmod::net {

/// Minimal RAII wrapper over a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// Releases ownership without closing.
  int Release();

 private:
  int fd_ = -1;
};

/// Connects to host:port (host is a dotted-quad IPv4 literal; the
/// loopback service layer needs no resolver).
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// Binds and listens on host:port. port 0 binds an ephemeral port;
/// *bound_port always receives the actual port.
Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         int backlog, uint16_t* bound_port);

/// Blocking framed I/O (src/common/frame.h framing) over a socket.
/// SendFrame loops over short writes with SIGPIPE suppressed; RecvFrame
/// reads exactly one frame, enforcing `max_payload` before buffering.
/// A clean peer close at a frame boundary returns kUnavailable
/// ("connection closed by peer"); a close mid-frame returns
/// kInvalidArgument (truncated frame).
Status SendFrame(int fd, const std::string& payload);
Status RecvFrame(int fd, std::size_t max_payload, std::string* payload);

}  // namespace txmod::net

#endif  // TXMOD_NET_SOCKET_H_
