#ifndef TXMOD_NET_PROTOCOL_H_
#define TXMOD_NET_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/result.h"

namespace txmod::net {

/// The request/response message codec of the txmod wire protocol.
///
/// Transport: every message travels as one frame (src/common/frame.h —
/// u32 little-endian length + payload). The payload is line-oriented
/// text, chosen over a binary layout for the same reason as the WAL and
/// checkpoint formats: inspectable with cat, diffable in tests, and the
/// value codec (EncodeValueText) already escapes everything that needs
/// escaping.
///
/// Request payload:   "<verb>\n<body>"     (body may be empty / multiline)
/// Response payload:  "ok\n<body>"         success
///                    "err <code>\n<msg>"  failure; <code> is the numeric
///                                         txmod StatusCode, <msg> the
///                                         full message (may be multiline)
///
/// Verbs:
///   ping                 liveness probe; body empty -> ok
///   begin                open this connection's session (one at a time)
///   execute <txn text>   run a transaction in the open session
///   commit               first-committer-wins commit of the session
///   abort                discard the session
///   run <txn text>       one-shot Begin+Execute+Commit with server-side
///                        conflict retry under this connection's policy
///   show <relation>      sorted tuples of a relation, one line per tuple
///                        of space-separated EncodeValueText encodings,
///                        read from a fresh committed snapshot
///   policy <body>        set this connection's run policy (key=value
///                        lines: deadline_micros, max_attempts,
///                        backoff_initial_micros, backoff_max_micros)
///   stats                server + transaction-manager counters as
///                        key=value lines
///
/// execute/commit/run answer with an encoded Outcome (below). A
/// transaction that aborts cleanly (integrity alarm, validated conflict
/// after all retries) is an OK response whose Outcome says so; err
/// responses mean the request itself failed (parse error, session state,
/// Unavailable backpressure/degraded mode, DeadlineExceeded).
enum class Verb {
  kPing,
  kBegin,
  kExecute,
  kCommit,
  kAbort,
  kRun,
  kShow,
  kPolicy,
  kStats,
};

const char* VerbName(Verb verb);

struct Request {
  Verb verb = Verb::kPing;
  std::string body;
};

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(const std::string& payload);

struct Response {
  /// Numeric txmod StatusCode; 0 (kOk) for success.
  int code = 0;
  /// Error message (err responses only).
  std::string message;
  /// Result payload (ok responses only).
  std::string body;

  bool ok() const { return code == 0; }
};

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(const std::string& payload);

/// Converts an error Status into an err response (status must not be OK).
Response ErrorResponse(const Status& status);
/// Reconstructs the Status an err response carries.
Status ResponseStatus(const Response& response);

/// The transaction outcome carried by execute/commit/run ok responses —
/// the wire image of txn::TxnResult's client-relevant fields.
struct Outcome {
  bool committed = false;
  bool conflict = false;
  bool installed = false;
  uint64_t commit_version = 0;
  uint32_t attempts = 1;
  /// Abort reason; ALWAYS the last field on the wire, consuming the
  /// remainder of the body, so it may contain anything (newlines
  /// included).
  std::string reason;
};

std::string EncodeOutcome(const Outcome& outcome);
Result<Outcome> DecodeOutcome(const std::string& body);

/// key=value per line; values must not contain '\n' (stats counters and
/// policy fields never do).
std::string EncodeKeyValues(const std::map<std::string, std::string>& kv);
Result<std::map<std::string, std::string>> DecodeKeyValues(
    const std::string& body);

}  // namespace txmod::net

#endif  // TXMOD_NET_PROTOCOL_H_
