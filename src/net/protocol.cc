#include "src/net/protocol.h"

#include <cerrno>
#include <cstdlib>

#include "src/common/status.h"
#include "src/common/str_util.h"

namespace txmod::net {

namespace {

/// Splits "first line" / "remainder after the first '\n'".
void SplitFirstLine(const std::string& payload, std::string* line,
                    std::string* rest) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string::npos) {
    *line = payload;
    rest->clear();
  } else {
    *line = payload.substr(0, nl);
    *rest = payload.substr(nl + 1);
  }
}

/// Strict non-negative integer parse (the codec-hygiene discipline: no
/// trailing garbage, no silent saturation).
Result<uint64_t> ParseU64(const std::string& text) {
  if (text.empty() || text[0] == '-' || text[0] == '+') {
    return Status::InvalidArgument(StrCat("bad number: '", text, "'"));
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(StrCat("bad number: '", text, "'"));
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kPing: return "ping";
    case Verb::kBegin: return "begin";
    case Verb::kExecute: return "execute";
    case Verb::kCommit: return "commit";
    case Verb::kAbort: return "abort";
    case Verb::kRun: return "run";
    case Verb::kShow: return "show";
    case Verb::kPolicy: return "policy";
    case Verb::kStats: return "stats";
  }
  return "unknown";
}

std::string EncodeRequest(const Request& request) {
  std::string out = VerbName(request.verb);
  out += '\n';
  out += request.body;
  return out;
}

Result<Request> DecodeRequest(const std::string& payload) {
  Request request;
  std::string verb;
  SplitFirstLine(payload, &verb, &request.body);
  static const struct { const char* name; Verb verb; } kVerbs[] = {
      {"ping", Verb::kPing},       {"begin", Verb::kBegin},
      {"execute", Verb::kExecute}, {"commit", Verb::kCommit},
      {"abort", Verb::kAbort},     {"run", Verb::kRun},
      {"show", Verb::kShow},       {"policy", Verb::kPolicy},
      {"stats", Verb::kStats},
  };
  for (const auto& entry : kVerbs) {
    if (verb == entry.name) {
      request.verb = entry.verb;
      return request;
    }
  }
  return Status::InvalidArgument(StrCat("unknown request verb '", verb, "'"));
}

std::string EncodeResponse(const Response& response) {
  if (response.ok()) {
    std::string out = "ok\n";
    out += response.body;
    return out;
  }
  std::string out = StrCat("err ", response.code, "\n");
  out += response.message;
  return out;
}

Result<Response> DecodeResponse(const std::string& payload) {
  Response response;
  std::string head, rest;
  SplitFirstLine(payload, &head, &rest);
  if (head == "ok") {
    response.body = std::move(rest);
    return response;
  }
  if (head.rfind("err ", 0) == 0) {
    TXMOD_ASSIGN_OR_RETURN(const uint64_t code, ParseU64(head.substr(4)));
    if (code == 0 || code > static_cast<uint64_t>(
                                StatusCode::kDeadlineExceeded)) {
      return Status::InvalidArgument(
          StrCat("bad response status code ", code));
    }
    response.code = static_cast<int>(code);
    response.message = std::move(rest);
    return response;
  }
  return Status::InvalidArgument(
      StrCat("malformed response header '", head, "'"));
}

Response ErrorResponse(const Status& status) {
  Response response;
  response.code = static_cast<int>(status.code());
  response.message = status.message();
  if (response.code == 0) {
    // Defensive: an OK status has no error encoding.
    response.code = static_cast<int>(StatusCode::kInternal);
    response.message = "error response built from OK status";
  }
  return response;
}

Status ResponseStatus(const Response& response) {
  if (response.ok()) return Status::OK();
  return Status(static_cast<StatusCode>(response.code), response.message);
}

std::string EncodeOutcome(const Outcome& outcome) {
  // reason is last and unterminated: it consumes the remainder on
  // decode, so arbitrary text (multiline conflict chains) survives.
  return StrCat("committed=", outcome.committed ? 1 : 0,
                "\nconflict=", outcome.conflict ? 1 : 0,
                "\ninstalled=", outcome.installed ? 1 : 0,
                "\nversion=", outcome.commit_version,
                "\nattempts=", outcome.attempts, "\nreason=", outcome.reason);
}

Result<Outcome> DecodeOutcome(const std::string& body) {
  Outcome outcome;
  std::size_t pos = 0;
  const auto next_field = [&](const char* key) -> Result<std::string> {
    const std::string prefix = StrCat(key, "=");
    if (body.compare(pos, prefix.size(), prefix) != 0) {
      return Status::InvalidArgument(
          StrCat("outcome field '", key, "' missing at offset ", pos));
    }
    pos += prefix.size();
    const std::size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("outcome field '", key, "' unterminated"));
    }
    std::string value = body.substr(pos, nl - pos);
    pos = nl + 1;
    return value;
  };
  const auto bool_field = [&](const char* key) -> Result<bool> {
    TXMOD_ASSIGN_OR_RETURN(const std::string v, next_field(key));
    if (v == "0") return false;
    if (v == "1") return true;
    return Status::InvalidArgument(
        StrCat("outcome field '", key, "' not a flag: '", v, "'"));
  };
  TXMOD_ASSIGN_OR_RETURN(outcome.committed, bool_field("committed"));
  TXMOD_ASSIGN_OR_RETURN(outcome.conflict, bool_field("conflict"));
  TXMOD_ASSIGN_OR_RETURN(outcome.installed, bool_field("installed"));
  TXMOD_ASSIGN_OR_RETURN(const std::string version, next_field("version"));
  TXMOD_ASSIGN_OR_RETURN(outcome.commit_version, ParseU64(version));
  TXMOD_ASSIGN_OR_RETURN(const std::string attempts, next_field("attempts"));
  TXMOD_ASSIGN_OR_RETURN(const uint64_t attempts_v, ParseU64(attempts));
  outcome.attempts = static_cast<uint32_t>(attempts_v);
  const std::string reason_prefix = "reason=";
  if (body.compare(pos, reason_prefix.size(), reason_prefix) != 0) {
    return Status::InvalidArgument("outcome field 'reason' missing");
  }
  outcome.reason = body.substr(pos + reason_prefix.size());
  return outcome;
}

std::string EncodeKeyValues(const std::map<std::string, std::string>& kv) {
  std::string out;
  for (const auto& [key, value] : kv) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

Result<std::map<std::string, std::string>> DecodeKeyValues(
    const std::string& body) {
  std::map<std::string, std::string> kv;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) nl = body.size();
    const std::string line = body.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          StrCat("malformed key=value line '", line, "'"));
    }
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return kv;
}

}  // namespace txmod::net
