#include "src/net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/str_util.h"
#include "src/relational/persist.h"

namespace txmod::net {

namespace {

/// Trims ASCII whitespace from both ends (verb bodies arrive as raw
/// frame text; `show fk_rel\n` must name the same relation as `show
/// fk_rel`).
std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<int64_t> ParseI64(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty number");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return Status::InvalidArgument(StrCat("bad number: '", text, "'"));
  }
  return static_cast<int64_t>(v);
}

Outcome OutcomeFromResult(const txn::TxnResult& result) {
  Outcome outcome;
  outcome.committed = result.committed;
  outcome.conflict = result.conflict;
  outcome.installed = result.installed;
  outcome.commit_version = result.commit_version;
  outcome.attempts = result.attempts;
  outcome.reason = result.abort_reason;
  return outcome;
}

Response OkResponse(std::string body) {
  Response response;
  response.body = std::move(body);
  return response;
}

/// RAII commit-budget slot (see ServerOptions::max_inflight_commits).
class CommitSlot {
 public:
  CommitSlot(std::atomic<int>* inflight, int budget)
      : inflight_(inflight) {
    if (budget <= 0) {
      acquired_ = true;
      counted_ = false;
      return;
    }
    int cur = inflight_->load(std::memory_order_relaxed);
    while (cur < budget) {
      if (inflight_->compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_acq_rel)) {
        acquired_ = true;
        counted_ = true;
        return;
      }
    }
  }
  ~CommitSlot() {
    if (counted_) inflight_->fetch_sub(1, std::memory_order_acq_rel);
  }
  CommitSlot(const CommitSlot&) = delete;
  CommitSlot& operator=(const CommitSlot&) = delete;

  bool acquired() const { return acquired_; }

 private:
  std::atomic<int>* inflight_;
  bool acquired_ = false;
  bool counted_ = false;
};

}  // namespace

Server::Server(txn::TxnManager* manager, ServerOptions options)
    : manager_(manager), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  TXMOD_ASSIGN_OR_RETURN(
      listener_,
      ListenTcp(options_.host, options_.port, /*backlog=*/128, &port_));
  const int num_workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      Stop();
      return Status::Internal(StrCat("pipe(): ", std::strerror(errno)));
    }
    worker->wake_read = pipe_fds[0];
    worker->wake_write = pipe_fds[1];
    workers_.push_back(std::move(worker));
  }
  started_ = true;
  stopping_.store(false, std::memory_order_release);
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { WorkerLoop(w); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_) {
    // A failed Start() may still have allocated worker pipes.
    for (auto& worker : workers_) {
      if (worker->wake_read >= 0) ::close(worker->wake_read);
      if (worker->wake_write >= 0) ::close(worker->wake_write);
    }
    workers_.clear();
    listener_.Close();
    return;
  }
  stopping_.store(true, std::memory_order_release);
  // shutdown() pops the acceptor out of accept() (EINVAL); the fd itself
  // is closed only after the join, because AcceptLoop reads listener_.fd()
  // every iteration and Close() mutates it.
  ::shutdown(listener_.fd(), SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  for (auto& worker : workers_) {
    Wake(worker.get());
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    // The worker closed its connections (aborting open sessions) on the
    // way out; only the pipe remains.
    ::close(worker->wake_read);
    ::close(worker->wake_write);
  }
  workers_.clear();
  started_ = false;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_closed = connections_closed_.load();
  s.requests = requests_.load();
  s.commits_acked = commits_acked_.load();
  s.backpressure_rejections = backpressure_rejections_.load();
  s.protocol_errors = protocol_errors_.load();
  s.inflight_commits = inflight_commits_.load();
  return s;
}

void Server::AcceptLoop() {
  std::size_t next = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed (Stop) or a transient accept failure on a
      // connection that died in the backlog; only the former ends us.
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == ECONNABORTED) continue;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // Deterministic round-robin pinning by accept order.
    Worker* worker = workers_[next % workers_.size()].get();
    ++next;
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->incoming.push_back(fd);
    }
    Wake(worker);
  }
}

void Server::Wake(Worker* worker) {
  const char byte = 0;
  // A full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(worker->wake_write, &byte, 1);
}

void Server::WorkerLoop(Worker* worker) {
  std::vector<pollfd> pfds;
  std::vector<int> fds;  // pfds[i+1] is connection fds[i]
  for (;;) {
    pfds.clear();
    fds.clear();
    pfds.push_back({worker->wake_read, POLLIN, 0});
    for (const auto& [fd, conn] : worker->conns) {
      pfds.push_back({fd, POLLIN, 0});
      fds.push_back(fd);
    }
    const int rc = ::poll(pfds.data(), pfds.size(), /*timeout=*/-1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[0].revents != 0) {
      char drain[64];
      while (::read(worker->wake_read, drain, sizeof(drain)) ==
             static_cast<ssize_t>(sizeof(drain))) {
      }
      std::vector<int> adopted;
      {
        std::lock_guard<std::mutex> lock(worker->mu);
        adopted.swap(worker->incoming);
      }
      for (const int fd : adopted) {
        Connection conn;
        conn.sock = Socket(fd);
        conn.policy = options_.run_policy;
        worker->conns.emplace(fd, std::move(conn));
      }
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (pfds[i + 1].revents == 0) continue;
      auto it = worker->conns.find(fds[i]);
      if (it == worker->conns.end()) continue;
      if (!HandleReadable(&it->second)) {
        worker->conns.erase(it);  // closes the socket, aborts the session
        connections_closed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Shutdown: drop every connection; Connection destructors close the
  // sockets and TxnSession destructors abort open sessions.
  connections_closed_.fetch_add(worker->conns.size(),
                                std::memory_order_relaxed);
  worker->conns.clear();
}

bool Server::HandleReadable(Connection* conn) {
  char buf[65536];
  const ssize_t n = ::recv(conn->sock.fd(), buf, sizeof(buf), 0);
  if (n < 0) {
    return errno == EINTR;  // anything else: drop the connection
  }
  if (n == 0) {
    return false;  // peer closed
  }
  conn->inbuf.append(buf, static_cast<std::size_t>(n));
  std::size_t offset = 0;
  bool keep = true;
  std::string payload;
  std::size_t consumed = 0;
  while (keep) {
    const FrameDecode decoded = TryDecodeFrame(
        conn->inbuf, offset, options_.max_frame_payload, &payload, &consumed);
    if (decoded == FrameDecode::kNeedMore) break;
    if (decoded == FrameDecode::kTooLarge) {
      // The stream cannot be resynchronized past an over-limit frame;
      // answer with the error, then drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      // Best effort: the connection is being dropped either way.
      (void)SendFrame(conn->sock.fd(),
                      EncodeResponse(ErrorResponse(Status::InvalidArgument(
                          StrCat("frame exceeds the ",
                                 options_.max_frame_payload,
                                 "-byte payload limit")))));
      keep = false;
      break;
    }
    offset += consumed;
    requests_.fetch_add(1, std::memory_order_relaxed);
    Response response;
    Result<Request> request = DecodeRequest(payload);
    if (!request.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      response = ErrorResponse(request.status());
    } else {
      response = HandleRequest(conn, *request);
    }
    if (!SendFrame(conn->sock.fd(), EncodeResponse(response)).ok()) {
      keep = false;
    }
  }
  conn->inbuf.erase(0, offset);
  return keep;
}

Response Server::HandleRequest(Connection* conn, const Request& request) {
  switch (request.verb) {
    case Verb::kPing:
      return OkResponse("");
    case Verb::kBegin: {
      if (conn->session != nullptr) {
        return ErrorResponse(Status::FailedPrecondition(
            "a session is already open on this connection"));
      }
      conn->session = manager_->Begin();
      return OkResponse(StrCat("version=", conn->session->snapshot_version(),
                               "\n"));
    }
    case Verb::kExecute: {
      if (conn->session == nullptr) {
        return ErrorResponse(
            Status::FailedPrecondition("no open session; send `begin` first"));
      }
      Result<txn::TxnResult> executed =
          conn->session->ExecuteText(request.body);
      if (!executed.ok()) {
        // Malformed program or dead session: the session is finished.
        conn->session.reset();
        return ErrorResponse(executed.status());
      }
      return OkResponse(EncodeOutcome(OutcomeFromResult(*executed)));
    }
    case Verb::kCommit:
    case Verb::kRun:
      return HandleCommitCarrying(conn, request);
    case Verb::kAbort: {
      if (conn->session == nullptr) {
        return ErrorResponse(
            Status::FailedPrecondition("no open session; send `begin` first"));
      }
      conn->session->Abort();
      conn->session.reset();
      return OkResponse("");
    }
    case Verb::kShow:
      return HandleShow(Trim(request.body));
    case Verb::kPolicy:
      return HandlePolicy(conn, request.body);
    case Verb::kStats:
      return HandleStats();
  }
  return ErrorResponse(Status::Internal("unhandled verb"));
}

Response Server::HandleCommitCarrying(Connection* conn,
                                      const Request& request) {
  if (request.verb == Verb::kCommit && conn->session == nullptr) {
    return ErrorResponse(
        Status::FailedPrecondition("no open session; send `begin` first"));
  }
  CommitSlot slot(&inflight_commits_, options_.max_inflight_commits);
  if (!slot.acquired()) {
    backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(Status::Unavailable(StrCat(
        "commit budget saturated (", options_.max_inflight_commits,
        " in flight); retry after backoff")));
  }
  Result<txn::TxnResult> result = Status::Internal("unreachable");
  if (request.verb == Verb::kCommit) {
    result = conn->session->Commit();
    conn->session.reset();  // Commit always finishes the session
  } else {
    result = manager_->RunText(request.body, conn->policy);
  }
  if (!result.ok()) {
    return ErrorResponse(result.status());
  }
  if (result->committed) {
    commits_acked_.fetch_add(1, std::memory_order_relaxed);
  }
  return OkResponse(EncodeOutcome(OutcomeFromResult(*result)));
}

Response Server::HandleShow(const std::string& relation_name) {
  // A fresh session pins a committed snapshot; reading through it keeps
  // `show` consistent without touching the commit path.
  std::unique_ptr<txn::TxnSession> session = manager_->Begin();
  Result<const Relation*> relation =
      session->snapshot().Find(relation_name);
  if (!relation.ok()) {
    session->Abort();
    return ErrorResponse(relation.status());
  }
  std::string body;
  for (const Tuple& tuple : (*relation)->SortedTuples()) {
    for (std::size_t i = 0; i < tuple.arity(); ++i) {
      if (i > 0) body += ' ';
      body += EncodeValueText(tuple.at(i));
    }
    body += '\n';
  }
  session->Abort();
  return OkResponse(std::move(body));
}

Response Server::HandlePolicy(Connection* conn, const std::string& body) {
  Result<std::map<std::string, std::string>> kv = DecodeKeyValues(body);
  if (!kv.ok()) return ErrorResponse(kv.status());
  txn::RunPolicy policy = conn->policy;
  for (const auto& [key, value] : *kv) {
    Result<int64_t> parsed = ParseI64(value);
    if (!parsed.ok()) {
      return ErrorResponse(Status::InvalidArgument(
          StrCat("policy field ", key, ": ", parsed.status().message())));
    }
    if (key == "deadline_micros") {
      if (*parsed < 0) {
        return ErrorResponse(
            Status::InvalidArgument("deadline_micros must be >= 0"));
      }
      policy.run_timeout_micros = *parsed;
    } else if (key == "max_attempts") {
      if (*parsed < 1) {
        return ErrorResponse(
            Status::InvalidArgument("max_attempts must be >= 1"));
      }
      policy.max_attempts = static_cast<int>(*parsed);
    } else if (key == "backoff_initial_micros") {
      if (*parsed < 0) {
        return ErrorResponse(
            Status::InvalidArgument("backoff_initial_micros must be >= 0"));
      }
      policy.retry_backoff_initial_micros = *parsed;
    } else if (key == "backoff_max_micros") {
      if (*parsed < 0) {
        return ErrorResponse(
            Status::InvalidArgument("backoff_max_micros must be >= 0"));
      }
      policy.retry_backoff_max_micros = *parsed;
    } else {
      return ErrorResponse(
          Status::InvalidArgument(StrCat("unknown policy field '", key, "'")));
    }
  }
  conn->policy = policy;
  return OkResponse("");
}

Response Server::HandleStats() {
  const txn::TxnManagerStats txn_stats = manager_->stats();
  const ServerStats server_stats = stats();
  std::map<std::string, std::string> kv;
  kv["txn.commits"] = StrCat(txn_stats.commits);
  kv["txn.readonly_commits"] = StrCat(txn_stats.readonly_commits);
  kv["txn.conflicts"] = StrCat(txn_stats.conflicts);
  kv["txn.integrity_aborts"] = StrCat(txn_stats.integrity_aborts);
  kv["txn.retries"] = StrCat(txn_stats.retries);
  kv["txn.backoff_sleeps"] = StrCat(txn_stats.backoff_sleeps);
  kv["txn.deadlines_exceeded"] = StrCat(txn_stats.deadlines_exceeded);
  kv["txn.wal_appends"] = StrCat(txn_stats.wal_appends);
  kv["txn.wal_fsyncs"] = StrCat(txn_stats.wal_fsyncs);
  kv["txn.wal_failures"] = StrCat(txn_stats.wal_failures);
  kv["txn.unavailable_rejections"] = StrCat(txn_stats.unavailable_rejections);
  kv["txn.degraded"] = txn_stats.degraded ? "1" : "0";
  kv["server.connections_accepted"] = StrCat(server_stats.connections_accepted);
  kv["server.connections_closed"] = StrCat(server_stats.connections_closed);
  kv["server.requests"] = StrCat(server_stats.requests);
  kv["server.commits_acked"] = StrCat(server_stats.commits_acked);
  kv["server.backpressure_rejections"] =
      StrCat(server_stats.backpressure_rejections);
  kv["server.protocol_errors"] = StrCat(server_stats.protocol_errors);
  kv["server.inflight_commits"] = StrCat(server_stats.inflight_commits);
  return OkResponse(EncodeKeyValues(kv));
}

}  // namespace txmod::net
