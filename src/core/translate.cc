#include "src/core/translate.h"

#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "src/calculus/transform.h"
#include "src/common/str_util.h"

namespace txmod::core {

using algebra::AggFunc;
using algebra::ProjectionItem;
using algebra::RelExpr;
using algebra::RelExprPtr;
using algebra::RelRefKind;
using algebra::ScalarExpr;
using algebra::ScalarOp;
using calculus::CalcAgg;
using calculus::CalcRelKind;
using calculus::CalcRelRef;
using calculus::CompareOp;
using calculus::Formula;
using calculus::Term;

namespace {

// ---------------------------------------------------------------------------
// Enum mappings between the calculus and algebra layers.
// ---------------------------------------------------------------------------

RelRefKind ToRelRefKind(CalcRelKind kind) {
  switch (kind) {
    case CalcRelKind::kBase:
      return RelRefKind::kBase;
    case CalcRelKind::kOld:
      return RelRefKind::kOld;
    case CalcRelKind::kDeltaPlus:
      return RelRefKind::kDeltaPlus;
    case CalcRelKind::kDeltaMinus:
      return RelRefKind::kDeltaMinus;
  }
  return RelRefKind::kBase;
}

RelExprPtr RefFor(const CalcRelRef& ref) {
  return RelExpr::Ref(ToRelRefKind(ref.kind), ref.name);
}

ScalarOp ToScalarOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return ScalarOp::kEq;
    case CompareOp::kNe:
      return ScalarOp::kNe;
    case CompareOp::kLt:
      return ScalarOp::kLt;
    case CompareOp::kLe:
      return ScalarOp::kLe;
    case CompareOp::kGt:
      return ScalarOp::kGt;
    case CompareOp::kGe:
      return ScalarOp::kGe;
  }
  return ScalarOp::kEq;
}

ScalarOp ToScalarOp(calculus::ArithOp op) {
  switch (op) {
    case calculus::ArithOp::kAdd:
      return ScalarOp::kAdd;
    case calculus::ArithOp::kSub:
      return ScalarOp::kSub;
    case calculus::ArithOp::kMul:
      return ScalarOp::kMul;
    case calculus::ArithOp::kDiv:
      return ScalarOp::kDiv;
  }
  return ScalarOp::kAdd;
}

Result<AggFunc> ToAggFunc(CalcAgg agg) {
  switch (agg) {
    case CalcAgg::kSum:
      return AggFunc::kSum;
    case CalcAgg::kAvg:
      return AggFunc::kAvg;
    case CalcAgg::kMin:
      return AggFunc::kMin;
    case CalcAgg::kMax:
      return AggFunc::kMax;
    case CalcAgg::kCnt:
      return AggFunc::kCnt;
    case CalcAgg::kMlt:
      return Status::Unimplemented("MLT requires the multi-set extension");
  }
  return Status::Internal("unknown aggregate");
}

// ---------------------------------------------------------------------------
// Free variables and formula classification.
// ---------------------------------------------------------------------------

void CollectTermVars(const Term& t, std::set<std::string>* vars) {
  switch (t.kind) {
    case Term::Kind::kAttrSel:
      vars->insert(t.var);
      break;
    case Term::Kind::kArith:
      for (const Term& c : t.children) CollectTermVars(c, vars);
      break;
    default:
      break;
  }
}

void CollectFreeVars(const Formula& f, std::set<std::string>* vars) {
  switch (f.kind) {
    case Formula::Kind::kCompare:
      for (const Term& t : f.terms) CollectTermVars(t, vars);
      return;
    case Formula::Kind::kMembership:
      vars->insert(f.var);
      return;
    case Formula::Kind::kTupleEq:
      vars->insert(f.var);
      vars->insert(f.var2);
      return;
    case Formula::Kind::kForall:
    case Formula::Kind::kExists: {
      std::set<std::string> inner;
      CollectFreeVars(f.children[0], &inner);
      inner.erase(f.var);
      vars->insert(inner.begin(), inner.end());
      return;
    }
    default:
      for (const Formula& c : f.children) CollectFreeVars(c, vars);
      return;
  }
}

bool ContainsQuantifier(const Formula& f) {
  if (f.IsQuantifier()) return true;
  for (const Formula& c : f.children) {
    if (ContainsQuantifier(c)) return true;
  }
  return false;
}

bool ContainsMembership(const Formula& f) {
  if (f.kind == Formula::Kind::kMembership) return true;
  for (const Formula& c : f.children) {
    if (ContainsMembership(c)) return true;
  }
  return false;
}

// Scalar-translatable: no quantifiers, no membership atoms.
bool IsScalarFormula(const Formula& f) {
  return !ContainsQuantifier(f) && !ContainsMembership(f);
}

void CollectAggTerms(const Term& t, std::vector<Term>* out) {
  switch (t.kind) {
    case Term::Kind::kAggregate:
      out->push_back(t);
      break;
    case Term::Kind::kArith:
      for (const Term& c : t.children) CollectAggTerms(c, out);
      break;
    default:
      break;
  }
}

void CollectAggTermsShallow(const Formula& f, std::vector<Term>* out) {
  // Collects aggregate terms in comparisons *outside* nested quantifier
  // bodies (aggregates inside inner quantifications are out of fragment).
  if (f.IsQuantifier()) return;
  if (f.kind == Formula::Kind::kCompare) {
    for (const Term& t : f.terms) CollectAggTerms(t, out);
    return;
  }
  for (const Formula& c : f.children) CollectAggTermsShallow(c, out);
}

bool FormulaHasAggInsideQuantifier(const Formula& f, bool inside) {
  if (f.kind == Formula::Kind::kCompare) {
    if (!inside) return false;
    std::vector<Term> aggs;
    for (const Term& t : f.terms) CollectAggTerms(t, &aggs);
    return !aggs.empty();
  }
  const bool next_inside = inside || f.IsQuantifier();
  for (const Formula& c : f.children) {
    if (FormulaHasAggInsideQuantifier(c, next_inside)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Variable environment: maps tuple variables to attribute offsets in the
// (concatenated) base relation the translator is assembling, plus columns
// appended for aggregate terms.
// ---------------------------------------------------------------------------

struct VarBinding {
  std::string var;
  CalcRelRef range;
  int offset = 0;
  int arity = 0;
};

class VarEnv {
 public:
  Result<const VarBinding*> Find(const std::string& var) const {
    for (const VarBinding& b : bindings_) {
      if (b.var == var) return &b;
    }
    return Status::Internal(StrCat("unbound variable ", var,
                                   " reached the translator"));
  }

  bool Contains(const std::string& var) const {
    for (const VarBinding& b : bindings_) {
      if (b.var == var) return true;
    }
    return false;
  }

  void Add(std::string var, CalcRelRef range, int arity) {
    bindings_.push_back(
        VarBinding{std::move(var), std::move(range), width_, arity});
    width_ += arity;
  }

  /// Registers a one-column aggregate slot; returns its offset.
  int AddAggColumn(const std::string& key) {
    agg_offsets_[key] = width_;
    return width_++;
  }

  Result<int> AggOffset(const std::string& key) const {
    auto it = agg_offsets_.find(key);
    if (it == agg_offsets_.end()) {
      return Status::Unimplemented(
          StrCat("aggregate term ", key,
                 " in an unsupported position (aggregates are supported in "
                 "the outermost matrix and in closed atoms)"));
    }
    return it->second;
  }

  int width() const { return width_; }

 private:
  std::vector<VarBinding> bindings_;
  std::map<std::string, int> agg_offsets_;
  int width_ = 0;
};

// ---------------------------------------------------------------------------
// The translator.
// ---------------------------------------------------------------------------

class Translator {
 public:
  Translator(const DatabaseSchema& schema, const TranslateOptions& options)
      : schema_(schema), options_(options) {}

  /// Entry: expression that is non-empty iff the *closed* NNF formula
  /// `f` holds. The caller passes the NNF of ¬condition.
  Result<RelExprPtr> NonEmptyIff(const Formula& f) {
    switch (f.kind) {
      case Formula::Kind::kExists:
        return ExistsChain(f);
      case Formula::Kind::kForall: {
        // f holds iff the negated-body witness set is empty.
        TXMOD_ASSIGN_OR_RETURN(RelExprPtr witnesses,
                               ExistsChain(NegateForall(f)));
        return EmptyGuard(std::move(witnesses));
      }
      case Formula::Kind::kAnd: {
        TXMOD_ASSIGN_OR_RETURN(RelExprPtr a, NonEmptyIff(f.children[0]));
        TXMOD_ASSIGN_OR_RETURN(RelExprPtr b, NonEmptyIff(f.children[1]));
        // Non-empty iff both are: cross product of one-row guards.
        return RelExpr::Product(Guard(std::move(a)), Guard(std::move(b)));
      }
      case Formula::Kind::kOr: {
        TXMOD_ASSIGN_OR_RETURN(RelExprPtr a, NonEmptyIff(f.children[0]));
        TXMOD_ASSIGN_OR_RETURN(RelExprPtr b, NonEmptyIff(f.children[1]));
        return RelExpr::Union(Guard(std::move(a)), Guard(std::move(b)));
      }
      case Formula::Kind::kNot:
      case Formula::Kind::kCompare:
        return ClosedAtom(f);
      case Formula::Kind::kMembership:
      case Formula::Kind::kTupleEq:
        return Status::InvalidArgument(
            StrCat("constraint is not closed: ", f.ToString()));
      default:
        return Status::Internal("non-NNF formula reached the translator");
    }
  }

 private:
  // --- closed atoms: aggregate comparisons (Table 1 rows 6-7) -------------

  Result<RelExprPtr> ClosedAtom(const Formula& f) {
    const bool negated = f.kind == Formula::Kind::kNot;
    const Formula& atom = negated ? f.children[0] : f;
    if (atom.kind != Formula::Kind::kCompare) {
      return Status::InvalidArgument(
          StrCat("unsupported closed formula: ", f.ToString()));
    }
    std::vector<Term> aggs;
    for (const Term& t : atom.terms) CollectAggTerms(t, &aggs);
    VarEnv env;
    RelExprPtr base;
    for (const Term& agg : aggs) {
      const std::string key = agg.ToString();
      if (env.AggOffset(key).ok()) continue;  // deduplicate
      env.AddAggColumn(key);
      TXMOD_ASSIGN_OR_RETURN(RelExprPtr row, AggRow(agg));
      base = base == nullptr
                 ? std::move(row)
                 : RelExpr::Product(std::move(base), std::move(row));
    }
    if (base == nullptr) {
      // Constant comparison (degenerate): select over a one-tuple literal.
      base = RelExpr::Literal({Tuple{}}, 0);
    }
    TXMOD_ASSIGN_OR_RETURN(
        ScalarExpr pred,
        ScalarFromFormula(atom, env, /*inner_var=*/nullptr));
    if (negated) pred = ScalarExpr::Not(std::move(pred));
    return RelExpr::Select(std::move(pred), std::move(base));
  }

  Result<RelExprPtr> AggRow(const Term& agg) {
    TXMOD_ASSIGN_OR_RETURN(AggFunc func, ToAggFunc(agg.agg));
    return RelExpr::Aggregate(func, agg.agg_attr_index, RefFor(agg.rel));
  }

  // --- existential chains ---------------------------------------------------

  static Formula NegateForall(const Formula& forall) {
    return Formula::Exists(
        forall.var,
        calculus::SimplifyNnf(calculus::ToNnf(forall.children[0], true)));
  }

  static void FlattenAnd(const Formula& f, std::vector<Formula>* out) {
    if (f.kind == Formula::Kind::kAnd) {
      FlattenAnd(f.children[0], out);
      FlattenAnd(f.children[1], out);
      return;
    }
    out->push_back(f);
  }

  Result<int> RangeArity(const CalcRelRef& ref) {
    TXMOD_ASSIGN_OR_RETURN(const RelationSchema* s, schema_.Find(ref.name));
    return static_cast<int>(s->arity());
  }

  /// Translates an ∃-rooted NNF formula into the set of witness tuples.
  Result<RelExprPtr> ExistsChain(const Formula& f) {
    // Strip the quantifier prefix.
    std::vector<std::string> vars;
    const Formula* body = &f;
    while (body->kind == Formula::Kind::kExists) {
      vars.push_back(body->var);
      body = &body->children[0];
    }
    std::vector<Formula> conjuncts;
    FlattenAnd(*body, &conjuncts);

    // Locate each variable's range membership (safety).
    VarEnv env;
    std::vector<bool> used(conjuncts.size(), false);
    std::vector<CalcRelRef> ranges;
    for (const std::string& var : vars) {
      bool found = false;
      for (std::size_t i = 0; i < conjuncts.size(); ++i) {
        const Formula& c = conjuncts[i];
        if (c.kind == Formula::Kind::kMembership && c.var == var && !used[i]) {
          TXMOD_ASSIGN_OR_RETURN(int arity, RangeArity(c.rel));
          env.Add(var, c.rel, arity);
          ranges.push_back(c.rel);
          used[i] = true;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            StrCat("variable ", var,
                   " has no range membership in scope; the formula is not "
                   "range-restricted: ", f.ToString()));
      }
    }

    // Assemble the base: R1 × R2 × ... (selects fuse into joins below).
    RelExprPtr base = RefFor(ranges[0]);
    int product_split = -1;  // left width of a product not yet predicated
    for (std::size_t i = 1; i < ranges.size(); ++i) {
      product_split = ProductSplitBefore(env, vars[i]);
      base = RelExpr::Product(std::move(base), RefFor(ranges[i]));
    }

    // Append one-row columns for aggregate terms in the matrix.
    std::vector<Term> aggs;
    for (std::size_t i = 0; i < conjuncts.size(); ++i) {
      if (!used[i]) CollectAggTermsShallow(conjuncts[i], &aggs);
    }
    for (const Term& agg : aggs) {
      const std::string key = agg.ToString();
      if (env.AggOffset(key).ok()) continue;
      env.AddAggColumn(key);
      TXMOD_ASSIGN_OR_RETURN(RelExprPtr row, AggRow(agg));
      base = RelExpr::Product(std::move(base), std::move(row));
      product_split = -1;  // aggregate products are never join-fused
    }

    // Apply the remaining conjuncts in order.
    for (std::size_t i = 0; i < conjuncts.size(); ++i) {
      if (used[i]) continue;
      if (FormulaHasAggInsideQuantifier(conjuncts[i], false)) {
        return Status::Unimplemented(
            StrCat("aggregate inside a nested quantification: ",
                   conjuncts[i].ToString()));
      }
      TXMOD_ASSIGN_OR_RETURN(
          base, Apply(std::move(base), env, conjuncts[i], &product_split));
    }
    return base;
  }

  // Width of the env *before* `var` was added — the split point for fusing
  // a select over a fresh product into a theta join.
  static int ProductSplitBefore(const VarEnv& env, const std::string& var) {
    const VarBinding* b = *env.Find(var);
    return b->offset;
  }

  /// Filters `base` (schema described by `env`) by NNF formula `g`.
  /// `product_split`: when >= 0, `base` is a product whose left part has
  /// that width and carries no predicate yet — the first scalar select is
  /// fused into a theta join (σ_p(A × B) = A ⋈_p B).
  Result<RelExprPtr> Apply(RelExprPtr base, const VarEnv& env,
                           const Formula& g, int* product_split) {
    switch (g.kind) {
      case Formula::Kind::kAnd: {
        TXMOD_ASSIGN_OR_RETURN(
            base, Apply(std::move(base), env, g.children[0], product_split));
        return Apply(std::move(base), env, g.children[1], product_split);
      }
      case Formula::Kind::kOr: {
        int split_a = *product_split;
        int split_b = *product_split;
        TXMOD_ASSIGN_OR_RETURN(RelExprPtr a,
                               Apply(base, env, g.children[0], &split_a));
        TXMOD_ASSIGN_OR_RETURN(
            RelExprPtr b, Apply(std::move(base), env, g.children[1],
                                &split_b));
        *product_split = -1;
        return RelExpr::Union(std::move(a), std::move(b));
      }
      case Formula::Kind::kExists:
        *product_split = -1;
        return ApplyQuantified(std::move(base), env, g, /*anti=*/false);
      case Formula::Kind::kForall:
        *product_split = -1;
        return ApplyQuantified(std::move(base), env, NegateForall(g),
                               /*anti=*/true);
      case Formula::Kind::kMembership:
        return Status::InvalidArgument(
            StrCat("membership atom ", g.ToString(),
                   " outside a range position; give the variable a unique "
                   "range and use tuple equality for containment"));
      case Formula::Kind::kNot:
        if (g.children[0].kind == Formula::Kind::kMembership) {
          return Status::InvalidArgument(
              StrCat("negated membership ", g.ToString(),
                     " is not range-restricted; express exclusion with a "
                     "universal quantification"));
        }
        [[fallthrough]];
      case Formula::Kind::kCompare:
      case Formula::Kind::kTupleEq: {
        if (!IsScalarFormula(g)) {
          return Status::Internal(
              StrCat("unexpected non-scalar formula: ", g.ToString()));
        }
        TXMOD_ASSIGN_OR_RETURN(
            ScalarExpr pred, ScalarFromFormula(g, env, /*inner_var=*/nullptr));
        return MakeSelect(std::move(pred), std::move(base), product_split);
      }
      default:
        return Status::Internal("non-NNF formula in Apply");
    }
  }

  /// σ_p(base), fusing into a theta join when base is a fresh product.
  Result<RelExprPtr> MakeSelect(ScalarExpr pred, RelExprPtr base,
                                int* product_split) {
    if (*product_split >= 0 && base->kind() == algebra::RelExprKind::kProduct) {
      const int split = *product_split;
      TXMOD_ASSIGN_OR_RETURN(ScalarExpr join_pred,
                             SplitSides(std::move(pred), split));
      *product_split = -1;
      return RelExpr::Join(std::move(join_pred), base->left(), base->right());
    }
    return RelExpr::Select(std::move(pred), std::move(base));
  }

  /// Remaps side-0 references at offsets >= split to side 1 (offset-split):
  /// turns a predicate over a concatenated schema into a join predicate.
  static Result<ScalarExpr> SplitSides(ScalarExpr pred, int split) {
    if (pred.op() == ScalarOp::kAttrRef) {
      if (pred.side() == 0 && pred.attr_index() >= split) {
        return ScalarExpr::Attr(1, pred.attr_index() - split,
                                pred.attr_name());
      }
      return pred;
    }
    for (ScalarExpr& c : pred.mutable_children()) {
      TXMOD_ASSIGN_OR_RETURN(c, SplitSides(std::move(c), split));
    }
    return pred;
  }

  /// Handles one (anti-)existential conjunct:
  ///   base ⋉ / ▷ (reduced range of the inner variable).
  Result<RelExprPtr> ApplyQuantified(RelExprPtr base, const VarEnv& env,
                                     const Formula& exists, bool anti) {
    const std::string& var = exists.var;
    std::vector<Formula> conjuncts;
    FlattenAnd(exists.children[0], &conjuncts);

    // The inner variable's range.
    int range_idx = -1;
    for (std::size_t i = 0; i < conjuncts.size(); ++i) {
      if (conjuncts[i].kind == Formula::Kind::kMembership &&
          conjuncts[i].var == var) {
        range_idx = static_cast<int>(i);
        break;
      }
    }
    if (range_idx < 0) {
      return Status::InvalidArgument(
          StrCat("inner variable ", var,
                 " has no range membership: ", exists.ToString()));
    }
    const CalcRelRef range = conjuncts[range_idx].rel;
    TXMOD_ASSIGN_OR_RETURN(int arity, RangeArity(range));

    VarEnv inner_env;
    inner_env.Add(var, range, arity);

    RelExprPtr right = RefFor(range);
    std::vector<ScalarExpr> join_preds;
    for (std::size_t i = 0; i < conjuncts.size(); ++i) {
      if (static_cast<int>(i) == range_idx) continue;
      const Formula& c = conjuncts[i];
      std::set<std::string> free;
      CollectFreeVars(c, &free);
      free.erase(var);
      const bool refers_outer = !free.empty();
      if (refers_outer) {
        // Mixed predicate: must be scalar over outer env + inner var.
        for (const std::string& v : free) {
          if (!env.Contains(v)) {
            return Status::Unimplemented(
                StrCat("variable ", v, " crosses more than one "
                       "quantification level in ", c.ToString(),
                       " (supported correlation depth is 1)"));
          }
        }
        if (!IsScalarFormula(c)) {
          return Status::Unimplemented(
              StrCat("correlated subformula must be quantifier-free: ",
                     c.ToString()));
        }
        TXMOD_ASSIGN_OR_RETURN(ScalarExpr p,
                               ScalarFromFormula(c, env, &inner_env));
        join_preds.push_back(std::move(p));
      } else {
        // Inner-only condition: reduce the right side.
        int inner_split = -1;
        TXMOD_ASSIGN_OR_RETURN(
            right, Apply(std::move(right), inner_env, c, &inner_split));
      }
    }
    ScalarExpr pred = join_preds.empty() ? ScalarExpr::True()
                                         : ScalarExpr::And(join_preds);
    return anti ? RelExpr::AntiJoin(std::move(pred), std::move(base),
                                    std::move(right))
                : RelExpr::SemiJoin(std::move(pred), std::move(base),
                                    std::move(right));
  }

  // --- scalar translation ---------------------------------------------------

  /// Translates a quantifier-free, membership-free formula into a scalar
  /// predicate. Outer variables resolve to side 0 via `env`; when
  /// `inner_env` is non-null its single variable resolves to side 1.
  Result<ScalarExpr> ScalarFromFormula(const Formula& g, const VarEnv& env,
                                       const VarEnv* inner_env) {
    switch (g.kind) {
      case Formula::Kind::kCompare: {
        TXMOD_ASSIGN_OR_RETURN(ScalarExpr a,
                               ScalarFromTerm(g.terms[0], env, inner_env));
        TXMOD_ASSIGN_OR_RETURN(ScalarExpr b,
                               ScalarFromTerm(g.terms[1], env, inner_env));
        return ScalarExpr::Binary(ToScalarOp(g.cmp), std::move(a),
                                  std::move(b));
      }
      case Formula::Kind::kTupleEq: {
        TXMOD_ASSIGN_OR_RETURN(auto lhs, VarSide(g.var, env, inner_env));
        TXMOD_ASSIGN_OR_RETURN(auto rhs, VarSide(g.var2, env, inner_env));
        const auto [lside, loff, larity] = lhs;
        const auto [rside, roff, rarity] = rhs;
        if (larity != rarity) {
          return Status::InvalidArgument(
              StrCat("tuple equality over different arities: ",
                     g.ToString()));
        }
        std::vector<ScalarExpr> eqs;
        eqs.reserve(larity);
        for (int i = 0; i < larity; ++i) {
          eqs.push_back(ScalarExpr::Binary(ScalarOp::kEq,
                                           ScalarExpr::Attr(lside, loff + i),
                                           ScalarExpr::Attr(rside, roff + i)));
        }
        return ScalarExpr::And(std::move(eqs));
      }
      case Formula::Kind::kNot: {
        TXMOD_ASSIGN_OR_RETURN(
            ScalarExpr inner,
            ScalarFromFormula(g.children[0], env, inner_env));
        return ScalarExpr::Not(std::move(inner));
      }
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        TXMOD_ASSIGN_OR_RETURN(
            ScalarExpr a, ScalarFromFormula(g.children[0], env, inner_env));
        TXMOD_ASSIGN_OR_RETURN(
            ScalarExpr b, ScalarFromFormula(g.children[1], env, inner_env));
        return ScalarExpr::Binary(g.kind == Formula::Kind::kAnd
                                      ? ScalarOp::kAnd
                                      : ScalarOp::kOr,
                                  std::move(a), std::move(b));
      }
      default:
        return Status::Internal(
            StrCat("non-scalar formula in scalar context: ", g.ToString()));
    }
  }

  Result<std::tuple<int, int, int>> VarSide(const std::string& var,
                                            const VarEnv& env,
                                            const VarEnv* inner_env) {
    if (inner_env != nullptr && inner_env->Contains(var)) {
      const VarBinding* b = *inner_env->Find(var);
      return std::tuple<int, int, int>(1, b->offset, b->arity);
    }
    TXMOD_ASSIGN_OR_RETURN(const VarBinding* b, env.Find(var));
    return std::tuple<int, int, int>(0, b->offset, b->arity);
  }

  Result<ScalarExpr> ScalarFromTerm(const Term& t, const VarEnv& env,
                                    const VarEnv* inner_env) {
    switch (t.kind) {
      case Term::Kind::kConst:
        return ScalarExpr::Const(t.constant);
      case Term::Kind::kAttrSel: {
        if (inner_env != nullptr && inner_env->Contains(t.var)) {
          const VarBinding* b = *inner_env->Find(t.var);
          return ScalarExpr::Attr(1, b->offset + t.attr_index, t.attr_name);
        }
        TXMOD_ASSIGN_OR_RETURN(const VarBinding* b, env.Find(t.var));
        return ScalarExpr::Attr(0, b->offset + t.attr_index, t.attr_name);
      }
      case Term::Kind::kArith: {
        TXMOD_ASSIGN_OR_RETURN(ScalarExpr a,
                               ScalarFromTerm(t.children[0], env, inner_env));
        TXMOD_ASSIGN_OR_RETURN(ScalarExpr b,
                               ScalarFromTerm(t.children[1], env, inner_env));
        return ScalarExpr::Binary(ToScalarOp(t.arith_op), std::move(a),
                                  std::move(b));
      }
      case Term::Kind::kAggregate: {
        TXMOD_ASSIGN_OR_RETURN(int offset, env.AggOffset(t.ToString()));
        return ScalarExpr::Attr(0, offset, t.ToString());
      }
    }
    return Status::Internal("unknown term kind");
  }

  // --- guards ---------------------------------------------------------------

  /// One 1-attribute tuple iff `e` is non-empty (else empty).
  static RelExprPtr Guard(RelExprPtr e) {
    return RelExpr::Select(
        ScalarExpr::Binary(ScalarOp::kGt, ScalarExpr::Attr(0, 0, "cnt"),
                           ScalarExpr::Const(Value::Int(0))),
        RelExpr::Aggregate(AggFunc::kCnt, -1, std::move(e)));
  }

  /// One tuple iff `e` is empty — the paper's σ_{attr=0}(CNT(...)) form
  /// (Algorithm 5.6, existential case).
  static RelExprPtr EmptyGuard(RelExprPtr e) {
    return RelExpr::Select(
        ScalarExpr::Binary(ScalarOp::kEq, ScalarExpr::Attr(0, 0, "cnt"),
                           ScalarExpr::Const(Value::Int(0))),
        RelExpr::Aggregate(AggFunc::kCnt, -1, std::move(e)));
  }

  const DatabaseSchema& schema_;
  const TranslateOptions& options_;
};

// ---------------------------------------------------------------------------
// Emptiness-context peepholes (Table 1 rows 2 and 3).
// ---------------------------------------------------------------------------

// Recognizes a predicate that is exactly  attr(0,i) = attr(1,j), either
// written as an equality or as not(attr != attr) — with CL's comparison
// semantics not(a != b) is precisely a = b, null cases included.
bool IsSingleEquiPred(const ScalarExpr& p, ScalarExpr* left_ref,
                      ScalarExpr* right_ref) {
  if (p.op() == ScalarOp::kNot) {
    const ScalarExpr& inner = p.children()[0];
    if (inner.op() != ScalarOp::kNe) return false;
    ScalarExpr as_eq = ScalarExpr::Binary(ScalarOp::kEq, inner.children()[0],
                                          inner.children()[1]);
    return IsSingleEquiPred(as_eq, left_ref, right_ref);
  }
  if (p.op() != ScalarOp::kEq) return false;
  const ScalarExpr& a = p.children()[0];
  const ScalarExpr& b = p.children()[1];
  if (a.op() != ScalarOp::kAttrRef || b.op() != ScalarOp::kAttrRef) {
    return false;
  }
  if (a.side() == 0 && b.side() == 1) {
    *left_ref = a;
    *right_ref = b;
    return true;
  }
  if (a.side() == 1 && b.side() == 0) {
    *left_ref = b;
    *right_ref = a;
    return true;
  }
  return false;
}

// Single-item projection keeping the attribute's name for readable output.
RelExprPtr ProjectRef(const ScalarExpr& ref, RelExprPtr input) {
  ScalarExpr item = ScalarExpr::Attr(0, ref.attr_index(), ref.attr_name());
  return RelExpr::Project({ProjectionItem{std::move(item), ""}},
                          std::move(input));
}

// In emptiness context (the expression feeds an alarm), a single-equality
// antijoin / semijoin / join can be replaced by projection difference /
// intersection: the replacement is empty exactly when the original is.
RelExprPtr SimplifyForEmptiness(RelExprPtr e) {
  using algebra::RelExprKind;
  ScalarExpr li, ri;
  switch (e->kind()) {
    case RelExprKind::kAntiJoin:
      if (IsSingleEquiPred(e->predicate(), &li, &ri)) {
        return RelExpr::Difference(ProjectRef(li, e->left()),
                                   ProjectRef(ri, e->right()));
      }
      return e;
    case RelExprKind::kSemiJoin:
    case RelExprKind::kJoin:
      if (IsSingleEquiPred(e->predicate(), &li, &ri)) {
        return RelExpr::Intersect(ProjectRef(li, e->left()),
                                  ProjectRef(ri, e->right()));
      }
      return e;
    default:
      // Union branches are left in their general forms: rewriting only one
      // branch to a 1-column projection would break the union's arity.
      return e;
  }
}

}  // namespace

Result<RelExprPtr> ViolationQuery(const calculus::AnalyzedFormula& condition,
                                  const DatabaseSchema& schema,
                                  const TranslateOptions& options) {
  const Formula violated =
      calculus::SimplifyNnf(calculus::ToNnf(condition.formula, true));
  Translator translator(schema, options);
  TXMOD_ASSIGN_OR_RETURN(RelExprPtr expr, translator.NonEmptyIff(violated));
  if (options.table1_peepholes) expr = SimplifyForEmptiness(std::move(expr));
  return expr;
}

Result<algebra::Program> TransC(const calculus::AnalyzedFormula& condition,
                                const DatabaseSchema& schema,
                                std::string alarm_message,
                                const TranslateOptions& options) {
  TXMOD_ASSIGN_OR_RETURN(RelExprPtr expr,
                         ViolationQuery(condition, schema, options));
  algebra::Program program;
  program.statements.push_back(
      algebra::Statement::Alarm(std::move(expr), std::move(alarm_message)));
  // An alarm-only program performs no updates; mark it non-triggering so
  // the triggering graph (Definition 6.1) has no spurious edges.
  program.non_triggering = true;
  return program;
}

Result<algebra::Program> TransR(const rules::IntegrityRule& rule,
                                const DatabaseSchema& schema,
                                const TranslateOptions& options) {
  if (rule.action_kind == rules::ActionKind::kAbort) {
    return TransC(rule.condition, schema,
                  StrCat("integrity violation: rule ", rule.name),
                  options);
  }
  // TransCA: the compensating program is the action itself.
  return rule.action;
}

}  // namespace txmod::core
