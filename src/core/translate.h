#ifndef TXMOD_CORE_TRANSLATE_H_
#define TXMOD_CORE_TRANSLATE_H_

#include <string>

#include "src/algebra/statement.h"
#include "src/calculus/analyzer.h"
#include "src/common/result.h"
#include "src/relational/schema.h"
#include "src/rules/rule.h"

namespace txmod::core {

/// Options for the CL → extended-relational-algebra translation.
struct TranslateOptions {
  /// Emit the classical Table-1 forms for single-equality quantification
  /// patterns in emptiness context: antijoin → π-difference (row 2),
  /// join/semijoin on one equality → π-intersection (row 3). Semantically
  /// the general forms are equivalent (equi-empty); the peepholes produce
  /// smaller intermediates and match the paper's table verbatim.
  bool table1_peepholes = true;
};

/// CalcToAlg, violation form: an algebra expression that evaluates to a
/// non-empty relation exactly when `condition` is *violated*. This is the
/// argument the paper feeds to alarm (Definition 5.1 / Algorithm 5.6).
///
/// Supported fragment (errors are reported, never silently mistranslated):
/// range-restricted formulas whose quantified variables each carry one
/// membership atom, with arbitrary boolean structure, nested
/// quantification correlated with the immediately enclosing level,
/// tuple equality, arithmetic, and aggregate/count terms at the outermost
/// matrix or in closed atoms. See DESIGN.md §5.5.
Result<algebra::RelExprPtr> ViolationQuery(
    const calculus::AnalyzedFormula& condition, const DatabaseSchema& schema,
    const TranslateOptions& options = {});

/// TransC (Algorithm 5.6): translates a condition into an aborting
/// program: alarm(ViolationQuery(condition), message).
Result<algebra::Program> TransC(const calculus::AnalyzedFormula& condition,
                                const DatabaseSchema& schema,
                                std::string alarm_message,
                                const TranslateOptions& options = {});

/// TransR (Algorithm 5.5): translates an integrity rule into its triggered
/// program — TransC of the condition for aborting rules; the (analyzed)
/// violation response action itself for compensating rules (TransCA: "in
/// most practical cases, the program produced ... can be equal to the
/// violation response action", Section 5.2.2).
Result<algebra::Program> TransR(const rules::IntegrityRule& rule,
                                const DatabaseSchema& schema,
                                const TranslateOptions& options = {});

}  // namespace txmod::core

#endif  // TXMOD_CORE_TRANSLATE_H_
