#include "src/core/modifier.h"

#include "src/common/str_util.h"

namespace txmod::core {

using algebra::Program;
using algebra::Transaction;
using rules::TriggerSet;

namespace {

/// One fixpoint round: the integrity programs triggered by `trigger_set`,
/// in definition order (SelPS of Algorithm 6.2). The programs are kept
/// separate so each retains its own non-triggering flag for the next
/// round's GetTrigPX.
std::vector<const IntegrityProgram*> SelPS(const TriggerSet& trigger_set,
                                           const CompiledRuleSet& rules) {
  std::vector<const IntegrityProgram*> selected;
  for (const IntegrityProgram& p : rules.programs()) {
    if (p.triggers.Intersects(trigger_set)) selected.push_back(&p);
  }
  return selected;
}

TriggerSet TriggersOfRound(
    const std::vector<const IntegrityProgram*>& round) {
  TriggerSet out;
  for (const IntegrityProgram* p : round) {
    out.UnionWith(rules::GetTrigPX(p->program));
  }
  return out;
}

}  // namespace

Result<Transaction> ModifyTransaction(const Transaction& txn,
                                      const CompiledRuleSet& rules,
                                      const ModifierOptions& options,
                                      ModifyStats* stats) {
  Transaction out = txn;
  // ModP unrolled as a worklist: round 0 is the user program; round i+1 is
  // the concatenation of the programs triggered by round i.
  TriggerSet pending = rules::GetTrigP(txn.program);
  int depth = 0;
  while (!pending.empty()) {
    std::vector<const IntegrityProgram*> round = SelPS(pending, rules);
    if (round.empty()) break;
    if (++depth > options.max_depth) {
      return Status::FailedPrecondition(
          StrCat("transaction modification did not terminate within ",
                 options.max_depth,
                 " rounds; the rule set triggers itself indefinitely "
                 "(Section 6.1: semantically incorrect rule set)"));
    }
    for (const IntegrityProgram* p : round) {
      out.program = Program::Concat(std::move(out.program), p->program);
      if (stats != nullptr) {
        ++stats->programs_appended;
        stats->statements_added +=
            static_cast<int>(p->program.statements.size());
      }
    }
    if (stats != nullptr) stats->rounds = depth;
    pending = TriggersOfRound(round);
  }
  return out;
}

Result<Transaction> ModifyTransactionImmediate(const Transaction& txn,
                                               const CompiledRuleSet& rules,
                                               const ModifierOptions& options,
                                               ModifyStats* stats) {
  Transaction out;
  out.label = txn.label;
  for (const algebra::Statement& stmt : txn.program.statements) {
    out.program.statements.push_back(stmt);
    // Fixpoint over the checks triggered by this one statement.
    TriggerSet pending = rules::GetTrigS(stmt);
    int depth = 0;
    while (!pending.empty()) {
      std::vector<const IntegrityProgram*> round = SelPS(pending, rules);
      if (round.empty()) break;
      if (++depth > options.max_depth) {
        return Status::FailedPrecondition(
            StrCat("transaction modification did not terminate within ",
                   options.max_depth, " rounds (immediate placement)"));
      }
      for (const IntegrityProgram* p : round) {
        out.program = Program::Concat(std::move(out.program), p->program);
        if (stats != nullptr) {
          ++stats->programs_appended;
          stats->statements_added +=
              static_cast<int>(p->program.statements.size());
        }
      }
      if (stats != nullptr) stats->rounds = std::max(stats->rounds, depth);
      pending = TriggersOfRound(round);
    }
  }
  return out;
}

Result<Transaction> ModifyTransactionDynamic(
    const Transaction& txn, const std::vector<rules::IntegrityRule>& rules,
    const DatabaseSchema& schema, OptimizationLevel level,
    const ModifierOptions& options, ModifyStats* stats) {
  // The literal Algorithm 5.1: SelRS selects *rules*, and TrOptRS
  // optimizes + translates them on every modification round.
  Transaction out = txn;
  TriggerSet pending = rules::GetTrigP(txn.program);
  int depth = 0;
  while (!pending.empty()) {
    std::vector<const rules::IntegrityRule*> selected;
    for (const rules::IntegrityRule& rule : rules) {
      if (rule.triggers.Intersects(pending)) selected.push_back(&rule);
    }
    if (selected.empty()) break;
    if (++depth > options.max_depth) {
      return Status::FailedPrecondition(
          StrCat("transaction modification did not terminate within ",
                 options.max_depth, " rounds"));
    }
    TriggerSet next;
    for (const rules::IntegrityRule* rule : selected) {
      // TrOptRS: TransR(OptR(rule)) at enforcement time.
      TXMOD_ASSIGN_OR_RETURN(IntegrityProgram compiled,
                             GetIntP(*rule, schema, level));
      next.UnionWith(rules::GetTrigPX(compiled.program));
      out.program =
          Program::Concat(std::move(out.program), std::move(compiled.program));
      if (stats != nullptr) ++stats->programs_appended;
    }
    if (stats != nullptr) stats->rounds = depth;
    pending = std::move(next);
  }
  return out;
}

}  // namespace txmod::core
