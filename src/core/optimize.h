#ifndef TXMOD_CORE_OPTIMIZE_H_
#define TXMOD_CORE_OPTIMIZE_H_

#include <vector>

#include "src/calculus/analyzer.h"
#include "src/rules/rule.h"
#include "src/rules/trigger.h"

namespace txmod::core {

/// How much work OptC (Algorithm 5.4) is allowed to do.
enum class OptimizationLevel {
  /// Translate conditions as written — the paper's basic technique of
  /// Section 5 (used by Example 5.1 and the E7 ablation baseline).
  kNone,
  /// Differential optimization (Section 5.2.1, [18, 5, 7]): specialize the
  /// condition per trigger so checks touch the transaction differentials
  /// dplus/dminus instead of full relations wherever soundness permits.
  kDifferential,
};

/// An optimized condition: a list of formulas whose checks, concatenated,
/// enforce the original condition given a correct pre-transaction state.
/// Each part is translated separately by TransC; parts over empty
/// differentials evaluate to no-ops at enforcement time.
struct OptimizedCondition {
  std::vector<calculus::Formula> parts;
  /// True when a differential specialization was applied; false means the
  /// original condition is checked in full (sound fallback).
  bool differential = false;
};

/// OptC: optimizes `condition` for a rule with trigger set `triggers`.
///
/// Recognized classes and their specializations (soundness arguments in
/// DESIGN.md §5.4):
///  * single-variable domain constraints ∀x(x∈R ∧ pre(x) ⇒ M(x)) with
///    scalar M — check dplus(R) only;
///  * referential constraints ∀x(x∈R ∧ pre(x) ⇒ ∃y(y∈S ∧ H(x,y))) —
///    check dplus(R) against S, plus (when DEL(S) is triggered) the R
///    tuples whose potential witnesses intersect dminus(S);
///  * pair constraints ∀x∀y(x∈R ∧ y∈S ∧ C(x,y) ⇒ M(x,y)) with scalar
///    C, M — check dplus(R)×S and R×dplus(S);
///  * everything else (aggregates, transition constraints, deeper
///    nesting) falls back to the full condition.
OptimizedCondition OptC(const calculus::AnalyzedFormula& condition,
                        const rules::TriggerSet& triggers,
                        OptimizationLevel level);

/// OptR (Algorithm 5.4): rule-level wrapper — triggers and action pass
/// through, the condition is optimized.
struct OptimizedRule {
  const rules::IntegrityRule* rule = nullptr;
  OptimizedCondition condition;
};

OptimizedRule OptR(const rules::IntegrityRule& rule, OptimizationLevel level);

}  // namespace txmod::core

#endif  // TXMOD_CORE_OPTIMIZE_H_
