#ifndef TXMOD_CORE_MODIFIER_H_
#define TXMOD_CORE_MODIFIER_H_

#include <vector>

#include "src/algebra/statement.h"
#include "src/core/integrity_program.h"

namespace txmod::core {

/// Options for the transaction modification fixpoint.
struct ModifierOptions {
  /// Recursion cap: a rule set whose triggering graph has been validated
  /// acyclic terminates long before this; the cap protects against
  /// semantically incorrect rule sets (Section 6.1: a rule set that
  /// inherently implies infinite triggering "has to be considered
  /// semantically incorrect").
  int max_depth = 64;
};

/// Statistics of one modification (E6 bench, diagnostics).
struct ModifyStats {
  int rounds = 0;              // fixpoint iterations (recursion depth)
  int programs_appended = 0;   // triggered integrity programs concatenated
  int statements_added = 0;    // statements appended to the transaction
};

/// ModT over compiled integrity programs (Algorithm 6.2, the static-
/// compilation production path): extends `txn` with every integrity
/// program it triggers, recursively, until the appended programs trigger
/// nothing further:
///
///   ModT(T, K) = (ModP(T↓, K))↑
///   ModP(P, K) = P                          if TrigP(P, K) = P_ε
///                P ⊕ ModP(TrigP(P, K), K)   otherwise
///   TrigP(P, K) = ConcatP(SelPS(P, K)),
///   SelPS(P, K) = { K ∈ K | triggers(K) ∩ GetTrigPX(P) ≠ ∅ }
///
/// Programs are selected in rule-definition order. Per-program
/// non-triggering flags are honoured (GetTrigPX, Definition 6.2): the
/// trigger extraction of an appended round considers each appended
/// integrity program separately, so one rule's non-triggering action never
/// masks (or leaks into) another's.
Result<algebra::Transaction> ModifyTransaction(
    const algebra::Transaction& txn, const CompiledRuleSet& rules,
    const ModifierOptions& options = {}, ModifyStats* stats = nullptr);

/// ModT in the literal Algorithm 5.1 form (the dynamic path): integrity
/// rules are optimized and translated *at modification time* via
/// TrOptRS(SelRS(...)). Functionally identical to the static path; kept
/// for the Section 6.2 ablation (bench E6).
Result<algebra::Transaction> ModifyTransactionDynamic(
    const algebra::Transaction& txn,
    const std::vector<rules::IntegrityRule>& rules,
    const DatabaseSchema& schema, OptimizationLevel level,
    const ModifierOptions& options = {}, ModifyStats* stats = nullptr);

/// ModT with *immediate* check placement (design-space ablation; the
/// paper's ModP appends all checks after the whole program).
///
/// The integrity programs triggered by each statement are placed directly
/// after that statement, recursively. This is SQL's IMMEDIATE constraint
/// timing, against the paper's DEFERRED timing, and it is deliberately
/// *stricter*, not equivalent: checks observe intermediate states, which
/// Definition 2.6 gives no semantics — a transaction that violates
/// mid-way and repairs itself before the end (e.g. delete a referenced
/// key, then re-insert it) commits under deferred placement but aborts
/// under immediate placement. In exchange, a genuinely violating
/// transaction aborts at the first offending statement rather than after
/// executing everything (bench_modification's detection-latency series).
Result<algebra::Transaction> ModifyTransactionImmediate(
    const algebra::Transaction& txn, const CompiledRuleSet& rules,
    const ModifierOptions& options = {}, ModifyStats* stats = nullptr);

}  // namespace txmod::core

#endif  // TXMOD_CORE_MODIFIER_H_
