#ifndef TXMOD_CORE_TRIGGERING_GRAPH_H_
#define TXMOD_CORE_TRIGGERING_GRAPH_H_

#include <string>
#include <vector>

#include "src/core/integrity_program.h"

namespace txmod::core {

/// The triggering graph of a rule set (Definition 6.1): vertices are the
/// integrity programs; there is an edge J1 → J2 when the action of J1 can
/// trigger J2, i.e. GetTrigPX(action(J1)) ∩ triggers(J2) ≠ ∅. Per
/// Definition 6.2, programs flagged non-triggering contribute no outgoing
/// edges — declaring actions non-triggering is the paper's way to cut
/// cycles.
///
/// Infinite rule triggering can only occur when the graph has a cycle
/// (Section 6.1), so the subsystem validates rule sets by building this
/// graph and rejecting cyclic ones.
class TriggeringGraph {
 public:
  static TriggeringGraph Build(const CompiledRuleSet& rules);

  std::size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<std::vector<int>>& adjacency() const {
    return adjacency_;
  }

  /// Vertices on at least one cycle: members of non-trivial strongly
  /// connected components plus self-loop vertices. Empty result means the
  /// rule set cannot trigger infinitely.
  std::vector<std::vector<int>> FindCycles() const;

  bool HasCycle() const { return !FindCycles().empty(); }

  /// Human-readable cycle report naming the rules involved; empty when
  /// acyclic.
  std::string DescribeCycles() const;

  /// Graphviz dot rendering (documentation, debugging).
  std::string ToDot() const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace txmod::core

#endif  // TXMOD_CORE_TRIGGERING_GRAPH_H_
