#include "src/core/subsystem.h"

#include "src/algebra/parser.h"
#include "src/calculus/parser.h"
#include "src/common/str_util.h"
#include "src/rules/rule_parser.h"
#include "src/rules/trigger_gen.h"

namespace txmod::core {

namespace {

/// Declares a persistent equi-key index for every join-like node of a
/// compiled integrity program whose build (right) side is a base relation:
/// the translated form of `exists y (y in R and x.a = y.b)` is a
/// semijoin/antijoin probing R on b on *every* triggered transaction, so R
/// gets a RelationIndex on exactly those key attributes. Declared once at
/// rule definition time (the paper's Section 6.2 point: pay at definition
/// time, not at enforcement time); Relation::Insert/Erase keep it coherent
/// afterwards. Dropping a rule does not retract a declaration — an index
/// another rule may still use is cheap to keep and expensive to guess
/// about.
void DeclareIndexOnBase(const std::string& rel_name, std::vector<int> attrs,
                        Database* db) {
  Result<Relation*> rel = db->FindMutable(rel_name);
  if (rel.ok()) (*rel)->IndexOn(std::move(attrs));
}

void DeclareCheckIndexes(const algebra::RelExpr& e, Database* db) {
  for (const algebra::RelExprPtr& input : e.inputs()) {
    DeclareCheckIndexes(*input, db);
  }
  switch (e.kind()) {
    case algebra::RelExprKind::kJoin:
    case algebra::RelExprKind::kSemiJoin:
    case algebra::RelExprKind::kAntiJoin: {
      // The build side of an equi-join-like node: probed per left tuple.
      const algebra::RelExpr& right = *e.right();
      if (right.kind() != algebra::RelExprKind::kRef ||
          right.ref_kind() != algebra::RelRefKind::kBase) {
        return;
      }
      std::vector<std::pair<int, int>> equi;
      algebra::CollectEquiPairs(e.predicate(), &equi);
      if (equi.empty()) return;
      std::vector<int> rattrs;
      rattrs.reserve(equi.size());
      for (const auto& [lattr, rattr] : equi) rattrs.push_back(rattr);
      DeclareIndexOnBase(right.rel_name(), std::move(rattrs), db);
      return;
    }
    case algebra::RelExprKind::kDifference:
    case algebra::RelExprKind::kIntersect: {
      // The membership side of a projection difference — the translated
      // form of referential conditions: diff(project[ref](dplus(F)),
      // project[key](K)) tests each differential tuple for a partner in
      // K, which the evaluator answers with one probe of K's index.
      std::vector<int> attrs;
      if (!algebra::IsAttrProjectionOfRef(*e.right(), &attrs)) return;
      const algebra::RelExpr& ref = *e.right()->left();
      if (ref.ref_kind() != algebra::RelRefKind::kBase) return;
      DeclareIndexOnBase(ref.rel_name(), std::move(attrs), db);
      return;
    }
    default:
      return;
  }
}

}  // namespace

IntegritySubsystem::IntegritySubsystem(Database* db, SubsystemOptions options)
    : db_(db), options_(std::move(options)) {}

Status IntegritySubsystem::DefineConstraint(const std::string& name,
                                            const std::string& cl_text) {
  rules::IntegrityRule rule;
  rule.name = name;
  rule.source_text = cl_text;
  TXMOD_ASSIGN_OR_RETURN(calculus::Formula raw,
                         calculus::ParseFormula(cl_text));
  TXMOD_ASSIGN_OR_RETURN(rule.condition,
                         calculus::AnalyzeFormula(raw, db_->schema()));
  rule.triggers = rules::GenTrigC(rule.condition.formula);
  rule.triggers_were_generated = true;
  if (rule.triggers.empty()) {
    return Status::InvalidArgument(
        StrCat("constraint ", name,
               ": no update type can violate this condition; nothing to "
               "enforce"));
  }
  rule.action_kind = rules::ActionKind::kAbort;
  return AddRule(std::move(rule));
}

Status IntegritySubsystem::DefineRule(const std::string& name,
                                      const std::string& rl_text) {
  TXMOD_ASSIGN_OR_RETURN(rules::IntegrityRule rule,
                         rules::ParseRule(name, rl_text, db_->schema()));
  return AddRule(std::move(rule));
}

Status IntegritySubsystem::DefineRule(rules::IntegrityRule rule) {
  if (rule.name.empty()) {
    return Status::InvalidArgument("rule needs a name");
  }
  if (rule.triggers.empty()) {
    return Status::InvalidArgument(
        StrCat("rule ", rule.name, " has an empty trigger set"));
  }
  return AddRule(std::move(rule));
}

Status IntegritySubsystem::AddRule(rules::IntegrityRule rule) {
  for (const rules::IntegrityRule& existing : rules_) {
    if (existing.name == rule.name) {
      return Status::AlreadyExists(
          StrCat("rule ", rule.name, " already defined"));
    }
  }
  rules_.push_back(std::move(rule));
  const Status compile_status = Recompile();
  if (!compile_status.ok()) {
    rules_.pop_back();  // reject the definition, restore the catalog
    const Status restore = Recompile();
    if (!restore.ok()) return restore;
    return compile_status;
  }
  return Status::OK();
}

Status IntegritySubsystem::DropRule(const std::string& name) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->name == name) {
      rules_.erase(it);
      return Recompile();
    }
  }
  return Status::NotFound(StrCat("rule ", name, " not defined"));
}

Status IntegritySubsystem::Recompile() {
  CompiledRuleSet compiled;
  for (const rules::IntegrityRule& rule : rules_) {
    TXMOD_ASSIGN_OR_RETURN(
        IntegrityProgram program,
        GetIntP(rule, db_->schema(), options_.optimization,
                options_.translate));
    compiled.Add(std::move(program));
  }
  TriggeringGraph graph = TriggeringGraph::Build(compiled);
  if (options_.reject_cyclic_rule_sets && graph.HasCycle()) {
    return Status::FailedPrecondition(graph.DescribeCycles());
  }
  for (const IntegrityProgram& program : compiled.programs()) {
    for (const algebra::Statement& stmt : program.program.statements) {
      if (stmt.expr != nullptr) DeclareCheckIndexes(*stmt.expr, db_);
    }
  }
  compiled_ = std::move(compiled);
  graph_ = std::move(graph);
  return Status::OK();
}

Result<algebra::Transaction> IntegritySubsystem::Modify(
    const algebra::Transaction& txn, ModifyStats* stats) const {
  if (options_.placement == CheckPlacement::kImmediate) {
    return ModifyTransactionImmediate(txn, compiled_, options_.modifier,
                                      stats);
  }
  return ModifyTransaction(txn, compiled_, options_.modifier, stats);
}

Result<txn::TxnResult> IntegritySubsystem::Execute(
    const algebra::Transaction& txn) {
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction modified, Modify(txn));
  return txn::ExecuteTransaction(modified, db_);
}

Result<txn::TxnResult> IntegritySubsystem::ExecuteText(
    const std::string& txn_text) {
  algebra::AlgebraParser parser(&db_->schema());
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction txn,
                         parser.ParseTransaction(txn_text));
  return Execute(txn);
}

Result<txn::TxnResult> IntegritySubsystem::ExecuteUnchecked(
    const algebra::Transaction& txn) {
  return txn::ExecuteTransaction(txn, db_);
}

std::vector<std::string> IntegritySubsystem::ValidateRuleTriggers() const {
  std::vector<std::string> warnings;
  for (const rules::IntegrityRule& rule : rules_) {
    if (rule.triggers_were_generated) continue;
    const rules::TriggerSet generated = rules::GenTrigC(
        rule.condition.formula);
    std::vector<std::string> missing;
    for (const rules::Trigger& t : generated) {
      if (!rule.triggers.Contains(t)) missing.push_back(t.ToString());
    }
    if (!missing.empty()) {
      warnings.push_back(
          StrCat("rule ", rule.name, ": WHEN clause misses generated "
                 "trigger(s) ", Join(missing, ", "),
                 "; updates of these types will not be checked"));
    }
  }
  return warnings;
}

}  // namespace txmod::core
