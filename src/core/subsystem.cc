#include "src/core/subsystem.h"

#include "src/algebra/parser.h"
#include "src/calculus/parser.h"
#include "src/common/str_util.h"
#include "src/rules/rule_parser.h"
#include "src/rules/trigger_gen.h"

namespace txmod::core {

namespace {

/// Declares the persistent equi-key indexes a compiled check plan asked
/// for (PhysicalPlan::IndexRequests): hash-join build sides, projection-
/// difference membership sides, and — for the delete-heavy differential
/// shapes — index-lookup probe sides. Declared once at rule definition
/// time (the paper's Section 6.2 point: pay at definition time, not at
/// enforcement time); Relation::Insert/Erase keep them coherent
/// afterwards. Dropping a rule does not retract a declaration — an index
/// another rule may still use is cheap to keep and expensive to guess
/// about.
void DeclarePlanIndexes(const algebra::PhysicalPlan& plan, Database* db) {
  for (algebra::PhysicalPlan::IndexRequest& req : plan.IndexRequests()) {
    Result<Relation*> rel = db->FindMutable(req.relation);
    if (rel.ok()) (*rel)->IndexOn(std::move(req.attrs));
  }
}

}  // namespace

IntegritySubsystem::IntegritySubsystem(Database* db, SubsystemOptions options)
    : db_(db), options_(std::move(options)) {
  plan_cache_.set_shape_capacity(options_.adhoc_plan_capacity);
}

Status IntegritySubsystem::DefineConstraint(const std::string& name,
                                            const std::string& cl_text) {
  rules::IntegrityRule rule;
  rule.name = name;
  rule.source_text = cl_text;
  TXMOD_ASSIGN_OR_RETURN(calculus::Formula raw,
                         calculus::ParseFormula(cl_text));
  TXMOD_ASSIGN_OR_RETURN(rule.condition,
                         calculus::AnalyzeFormula(raw, db_->schema()));
  rule.triggers = rules::GenTrigC(rule.condition.formula);
  rule.triggers_were_generated = true;
  if (rule.triggers.empty()) {
    return Status::InvalidArgument(
        StrCat("constraint ", name,
               ": no update type can violate this condition; nothing to "
               "enforce"));
  }
  rule.action_kind = rules::ActionKind::kAbort;
  return AddRule(std::move(rule));
}

Status IntegritySubsystem::DefineRule(const std::string& name,
                                      const std::string& rl_text) {
  TXMOD_ASSIGN_OR_RETURN(rules::IntegrityRule rule,
                         rules::ParseRule(name, rl_text, db_->schema()));
  return AddRule(std::move(rule));
}

Status IntegritySubsystem::DefineRule(rules::IntegrityRule rule) {
  if (rule.name.empty()) {
    return Status::InvalidArgument("rule needs a name");
  }
  if (rule.triggers.empty()) {
    return Status::InvalidArgument(
        StrCat("rule ", rule.name, " has an empty trigger set"));
  }
  return AddRule(std::move(rule));
}

Status IntegritySubsystem::AddRule(rules::IntegrityRule rule) {
  for (const rules::IntegrityRule& existing : rules_) {
    if (existing.name == rule.name) {
      return Status::AlreadyExists(
          StrCat("rule ", rule.name, " already defined"));
    }
  }
  rules_.push_back(std::move(rule));
  const Status compile_status = Recompile();
  if (!compile_status.ok()) {
    rules_.pop_back();  // reject the definition, restore the catalog
    const Status restore = Recompile();
    if (!restore.ok()) return restore;
    return compile_status;
  }
  return Status::OK();
}

Status IntegritySubsystem::DropRule(const std::string& name) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->name == name) {
      rules_.erase(it);
      return Recompile();
    }
  }
  return Status::NotFound(StrCat("rule ", name, " not defined"));
}

Status IntegritySubsystem::Recompile() {
  CompiledRuleSet compiled;
  for (const rules::IntegrityRule& rule : rules_) {
    TXMOD_ASSIGN_OR_RETURN(
        IntegrityProgram program,
        GetIntP(rule, db_->schema(), options_.optimization,
                options_.translate));
    compiled.Add(std::move(program));
  }
  TriggeringGraph graph = TriggeringGraph::Build(compiled);
  if (options_.reject_cyclic_rule_sets && graph.HasCycle()) {
    return Status::FailedPrecondition(graph.DescribeCycles());
  }
  // Compile every check expression to a physical plan now — enforcement
  // reuses these via the plan cache — and declare whatever indexes the
  // chosen operators want. Operator and index choice both live in the
  // plan layer; this loop only carries decisions out. Building a fresh
  // cache (rather than patching the old one) is also the shaped-side
  // invalidation hook: any ad-hoc plan cached before this rule change is
  // dropped, so no statement can execute against a plan whose environment
  // (rule set, index declarations) has moved underneath it.
  algebra::PlanCache cache;
  cache.set_shape_capacity(options_.adhoc_plan_capacity);
  for (const IntegrityProgram& program : compiled.programs()) {
    for (const algebra::Statement& stmt : program.program.statements) {
      if (stmt.expr == nullptr) continue;
      TXMOD_ASSIGN_OR_RETURN(const algebra::PhysicalPlan* plan,
                             cache.GetOrCompile(stmt.expr));
      DeclarePlanIndexes(*plan, db_);
    }
  }
  compiled_ = std::move(compiled);
  graph_ = std::move(graph);
  plan_cache_ = std::move(cache);
  return Status::OK();
}

Result<algebra::Transaction> IntegritySubsystem::Modify(
    const algebra::Transaction& txn, ModifyStats* stats) const {
  if (options_.placement == CheckPlacement::kImmediate) {
    return ModifyTransactionImmediate(txn, compiled_, options_.modifier,
                                      stats);
  }
  return ModifyTransaction(txn, compiled_, options_.modifier, stats);
}

Result<txn::TxnResult> IntegritySubsystem::Execute(
    const algebra::Transaction& txn) {
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction modified, Modify(txn));
  // The appended check statements share their expression trees with the
  // compiled rule set, so they hit the definition-time plan cache.
  return txn::ExecuteTransaction(modified, db_, &plan_cache_);
}

Result<txn::TxnResult> IntegritySubsystem::ExecuteText(
    const std::string& txn_text) {
  algebra::AlgebraParser parser(&db_->schema());
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction txn,
                         parser.ParseTransaction(txn_text));
  return Execute(txn);
}

Result<txn::TxnResult> IntegritySubsystem::ExecuteUnchecked(
    const algebra::Transaction& txn) {
  return txn::ExecuteTransaction(txn, db_);
}

std::map<std::string, std::string> IntegritySubsystem::ExplainPlans() const {
  std::map<std::string, std::string> out;
  for (const IntegrityProgram& program : compiled_.programs()) {
    for (const algebra::Statement& stmt : program.program.statements) {
      if (stmt.expr == nullptr) continue;
      const algebra::PhysicalPlan* plan =
          plan_cache_.Lookup(stmt.expr.get());
      if (plan != nullptr) out.emplace(stmt.ToString(), plan->Explain());
    }
  }
  return out;
}

std::vector<std::string> IntegritySubsystem::ValidateRuleTriggers() const {
  std::vector<std::string> warnings;
  for (const rules::IntegrityRule& rule : rules_) {
    if (rule.triggers_were_generated) continue;
    const rules::TriggerSet generated = rules::GenTrigC(
        rule.condition.formula);
    std::vector<std::string> missing;
    for (const rules::Trigger& t : generated) {
      if (!rule.triggers.Contains(t)) missing.push_back(t.ToString());
    }
    if (!missing.empty()) {
      warnings.push_back(
          StrCat("rule ", rule.name, ": WHEN clause misses generated "
                 "trigger(s) ", Join(missing, ", "),
                 "; updates of these types will not be checked"));
    }
  }
  return warnings;
}

}  // namespace txmod::core
