#include "src/core/optimize.h"

#include <set>
#include <string>

#include "src/core/formula_util.h"

namespace txmod::core {

using calculus::CalcRelKind;
using calculus::CalcRelRef;
using calculus::Formula;
using rules::Trigger;
using rules::TriggerSet;
using rules::UpdateType;

namespace {

/// A universally quantified implication, destructured:
///   (∀v1)...(∀vk)(A1 ∧ ... ∧ An ⇒ C)
struct UniversalPattern {
  std::vector<std::string> vars;
  std::vector<Formula> antecedent;
  Formula consequent;
};

bool Destructure(const Formula& f, UniversalPattern* out) {
  const Formula* cur = &f;
  while (cur->kind == Formula::Kind::kForall) {
    out->vars.push_back(cur->var);
    cur = &cur->children[0];
  }
  if (out->vars.empty() || cur->kind != Formula::Kind::kImplies) {
    return false;
  }
  FlattenAnd(cur->children[0], &out->antecedent);
  out->consequent = cur->children[1];
  return true;
}

/// Finds the unique base-relation membership atom for `var` among
/// `conjuncts`; returns its index or -1.
int FindBaseMembership(const std::vector<Formula>& conjuncts,
                       const std::string& var) {
  int found = -1;
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    const Formula& c = conjuncts[i];
    if (c.kind == Formula::Kind::kMembership && c.var == var) {
      if (c.rel.kind != CalcRelKind::kBase || found >= 0) return -1;
      found = static_cast<int>(i);
    }
  }
  return found;
}

/// True when every conjunct except those at `skip` indices is scalar with
/// free variables within `allowed`.
bool RestAreScalarOver(const std::vector<Formula>& conjuncts,
                       const std::set<int>& skip,
                       const std::set<std::string>& allowed) {
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    if (skip.count(static_cast<int>(i)) > 0) continue;
    const Formula& c = conjuncts[i];
    if (!IsScalarFormula(c)) return false;
    std::set<std::string> free;
    CollectFreeVars(c, &free);
    for (const std::string& v : free) {
      if (allowed.count(v) == 0) return false;
    }
  }
  return true;
}

bool ScalarOver(const Formula& f, const std::set<std::string>& allowed) {
  if (!IsScalarFormula(f)) return false;
  std::set<std::string> free;
  CollectFreeVars(f, &free);
  for (const std::string& v : free) {
    if (allowed.count(v) == 0) return false;
  }
  return true;
}

Formula ReplaceMembershipRel(Formula f, CalcRelKind new_kind) {
  f.rel.kind = new_kind;
  return f;
}

/// Rebuilds (∀vars)(antecedent ⇒ consequent).
Formula BuildUniversal(const std::vector<std::string>& vars,
                       std::vector<Formula> antecedent, Formula consequent) {
  Formula body = Formula::Implies(BuildAnd(std::move(antecedent)),
                                  std::move(consequent));
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    body = Formula::Forall(*it, std::move(body));
  }
  return body;
}

bool FormulaMentionsAggOrAux(const Formula& f) {
  return ContainsAggregate(f) || ContainsAuxRef(f);
}

// --- class-specific specializations ----------------------------------------

/// Domain class: ∀x(x∈R ∧ pre(x) ⇒ M(x)), M scalar. Only INS(R) can
/// violate; check the inserted tuples only.
bool TryDomain(const UniversalPattern& p, const TriggerSet& triggers,
               OptimizedCondition* out) {
  if (p.vars.size() != 1) return false;
  const std::string& x = p.vars[0];
  const int mem = FindBaseMembership(p.antecedent, x);
  if (mem < 0) return false;
  const std::set<std::string> allowed = {x};
  if (!RestAreScalarOver(p.antecedent, {mem}, allowed)) return false;
  if (!ScalarOver(p.consequent, allowed)) return false;
  if (FormulaMentionsAggOrAux(BuildUniversal(p.vars, p.antecedent,
                                             p.consequent))) {
    return false;
  }
  const std::string& r = p.antecedent[mem].rel.name;
  if (triggers.Contains(Trigger{UpdateType::kIns, r})) {
    std::vector<Formula> ante = p.antecedent;
    ante[mem] = ReplaceMembershipRel(ante[mem], CalcRelKind::kDeltaPlus);
    out->parts.push_back(BuildUniversal(p.vars, std::move(ante),
                                        p.consequent));
  }
  // Uncovered triggers (beyond INS(R); deletions cannot violate this
  // class) fall back to the full condition.
  for (const Trigger& t : triggers) {
    if (t == Trigger{UpdateType::kIns, r}) continue;
    if (t.type == UpdateType::kDel && t.relation == r) continue;
    out->parts.push_back(BuildUniversal(p.vars, p.antecedent, p.consequent));
    break;
  }
  out->differential = true;
  return true;
}

/// Referential class: ∀x(x∈R ∧ pre(x) ⇒ ∃y(y∈S ∧ H(x,y))), H scalar.
bool TryReferential(const UniversalPattern& p, const TriggerSet& triggers,
                    OptimizedCondition* out) {
  if (p.vars.size() != 1) return false;
  const std::string& x = p.vars[0];
  const int mem = FindBaseMembership(p.antecedent, x);
  if (mem < 0) return false;
  if (!RestAreScalarOver(p.antecedent, {mem}, {x})) return false;
  if (p.consequent.kind != Formula::Kind::kExists) return false;
  const std::string& y = p.consequent.var;
  std::vector<Formula> inner;
  FlattenAnd(p.consequent.children[0], &inner);
  const int inner_mem = FindBaseMembership(inner, y);
  if (inner_mem < 0) return false;
  if (!RestAreScalarOver(inner, {inner_mem}, {x, y})) return false;
  if (FormulaMentionsAggOrAux(BuildUniversal(p.vars, p.antecedent,
                                             p.consequent))) {
    return false;
  }
  const std::string& r = p.antecedent[mem].rel.name;
  const std::string& s = inner[inner_mem].rel.name;

  if (triggers.Contains(Trigger{UpdateType::kIns, r})) {
    std::vector<Formula> ante = p.antecedent;
    ante[mem] = ReplaceMembershipRel(ante[mem], CalcRelKind::kDeltaPlus);
    out->parts.push_back(BuildUniversal(p.vars, std::move(ante),
                                        p.consequent));
  }
  if (triggers.Contains(Trigger{UpdateType::kDel, s})) {
    // Old R tuples whose potential witnesses were deleted: restrict x to
    // those matching a dminus(S) tuple, then require a surviving witness.
    const std::string z = y + "__deleted";
    std::vector<Formula> del_inner;
    for (std::size_t i = 0; i < inner.size(); ++i) {
      Formula c = inner[i];
      if (static_cast<int>(i) == inner_mem) {
        c = ReplaceMembershipRel(std::move(c), CalcRelKind::kDeltaMinus);
      }
      del_inner.push_back(RenameVar(std::move(c), y, z));
    }
    std::vector<Formula> ante = p.antecedent;
    ante.push_back(Formula::Exists(z, BuildAnd(std::move(del_inner))));
    out->parts.push_back(BuildUniversal(p.vars, std::move(ante),
                                        p.consequent));
  }
  // Uncovered triggers: INS(S) and DEL(R) cannot violate; anything else
  // (unusual explicit sets) falls back to the full condition.
  for (const Trigger& t : triggers) {
    const bool covered =
        t == Trigger{UpdateType::kIns, r} ||
        t == Trigger{UpdateType::kDel, s} ||
        (t.type == UpdateType::kDel && t.relation == r) ||
        (t.type == UpdateType::kIns && t.relation == s);
    if (!covered) {
      out->parts.push_back(
          BuildUniversal(p.vars, p.antecedent, p.consequent));
      break;
    }
  }
  out->differential = true;
  return true;
}

/// Pair class: ∀x∀y(x∈R ∧ y∈S ∧ C(x,y) ⇒ M(x,y)), C and M scalar.
bool TryPair(const UniversalPattern& p, const TriggerSet& triggers,
             OptimizedCondition* out) {
  if (p.vars.size() != 2) return false;
  const std::string& x = p.vars[0];
  const std::string& y = p.vars[1];
  const int mem_x = FindBaseMembership(p.antecedent, x);
  const int mem_y = FindBaseMembership(p.antecedent, y);
  if (mem_x < 0 || mem_y < 0) return false;
  const std::set<std::string> allowed = {x, y};
  if (!RestAreScalarOver(p.antecedent, {mem_x, mem_y}, allowed)) {
    return false;
  }
  if (!ScalarOver(p.consequent, allowed)) return false;
  if (FormulaMentionsAggOrAux(BuildUniversal(p.vars, p.antecedent,
                                             p.consequent))) {
    return false;
  }
  const std::string& r = p.antecedent[mem_x].rel.name;
  const std::string& s = p.antecedent[mem_y].rel.name;

  if (triggers.Contains(Trigger{UpdateType::kIns, r})) {
    std::vector<Formula> ante = p.antecedent;
    ante[mem_x] = ReplaceMembershipRel(ante[mem_x], CalcRelKind::kDeltaPlus);
    out->parts.push_back(BuildUniversal(p.vars, std::move(ante),
                                        p.consequent));
  }
  if (triggers.Contains(Trigger{UpdateType::kIns, s})) {
    std::vector<Formula> ante = p.antecedent;
    ante[mem_y] = ReplaceMembershipRel(ante[mem_y], CalcRelKind::kDeltaPlus);
    out->parts.push_back(BuildUniversal(p.vars, std::move(ante),
                                        p.consequent));
  }
  for (const Trigger& t : triggers) {
    const bool covered =
        (t.type == UpdateType::kIns && (t.relation == r || t.relation == s)) ||
        (t.type == UpdateType::kDel && (t.relation == r || t.relation == s));
    if (!covered) {
      out->parts.push_back(
          BuildUniversal(p.vars, p.antecedent, p.consequent));
      break;
    }
  }
  out->differential = true;
  return true;
}

}  // namespace

OptimizedCondition OptC(const calculus::AnalyzedFormula& condition,
                        const TriggerSet& triggers, OptimizationLevel level) {
  OptimizedCondition out;
  if (level == OptimizationLevel::kDifferential) {
    UniversalPattern p;
    if (Destructure(condition.formula, &p)) {
      if (TryDomain(p, triggers, &out) ||
          TryReferential(p, triggers, &out) || TryPair(p, triggers, &out)) {
        if (!out.parts.empty()) return out;
        // A specialization matched but produced no parts (the trigger set
        // excludes every relevant update type): the rule can only be
        // triggered by updates that cannot violate the condition, so a
        // full check is the honest remainder.
        out.differential = false;
      }
    }
  }
  out.parts = {condition.formula};
  out.differential = false;
  return out;
}

OptimizedRule OptR(const rules::IntegrityRule& rule,
                   OptimizationLevel level) {
  OptimizedRule out;
  out.rule = &rule;
  // Only the condition is optimized (Algorithm 5.4); triggers and action
  // pass through unchanged. Compensating actions are relational-algebra
  // programs already — their optimization is classical query optimization,
  // out of scope per Section 5.2.1.
  if (rule.action_kind == rules::ActionKind::kAbort) {
    out.condition = OptC(rule.condition, rule.triggers, level);
  } else {
    out.condition.parts = {rule.condition.formula};
    out.condition.differential = false;
  }
  return out;
}

}  // namespace txmod::core
