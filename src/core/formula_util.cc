#include "src/core/formula_util.h"

namespace txmod::core {

using calculus::CalcRelKind;
using calculus::Formula;
using calculus::Term;

void FlattenAnd(const Formula& f, std::vector<Formula>* out) {
  if (f.kind == Formula::Kind::kAnd) {
    FlattenAnd(f.children[0], out);
    FlattenAnd(f.children[1], out);
    return;
  }
  out->push_back(f);
}

Formula BuildAnd(std::vector<Formula> conjuncts) {
  Formula acc = std::move(conjuncts[0]);
  for (std::size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Formula::And(std::move(acc), std::move(conjuncts[i]));
  }
  return acc;
}

namespace {

void CollectTermVars(const Term& t, std::set<std::string>* vars) {
  switch (t.kind) {
    case Term::Kind::kAttrSel:
      vars->insert(t.var);
      break;
    case Term::Kind::kArith:
      for (const Term& c : t.children) CollectTermVars(c, vars);
      break;
    default:
      break;
  }
}

bool TermContainsAggregate(const Term& t) {
  switch (t.kind) {
    case Term::Kind::kAggregate:
      return true;
    case Term::Kind::kArith:
      for (const Term& c : t.children) {
        if (TermContainsAggregate(c)) return true;
      }
      return false;
    default:
      return false;
  }
}

bool TermContainsAuxRef(const Term& t) {
  switch (t.kind) {
    case Term::Kind::kAggregate:
      return t.rel.kind != CalcRelKind::kBase;
    case Term::Kind::kArith:
      for (const Term& c : t.children) {
        if (TermContainsAuxRef(c)) return true;
      }
      return false;
    default:
      return false;
  }
}

void RenameTermVar(Term* t, const std::string& from, const std::string& to) {
  switch (t->kind) {
    case Term::Kind::kAttrSel:
      if (t->var == from) t->var = to;
      break;
    case Term::Kind::kArith:
      for (Term& c : t->children) RenameTermVar(&c, from, to);
      break;
    default:
      break;
  }
}

}  // namespace

void CollectFreeVars(const Formula& f, std::set<std::string>* vars) {
  switch (f.kind) {
    case Formula::Kind::kCompare:
      for (const Term& t : f.terms) CollectTermVars(t, vars);
      return;
    case Formula::Kind::kMembership:
      vars->insert(f.var);
      return;
    case Formula::Kind::kTupleEq:
      vars->insert(f.var);
      vars->insert(f.var2);
      return;
    case Formula::Kind::kForall:
    case Formula::Kind::kExists: {
      std::set<std::string> inner;
      CollectFreeVars(f.children[0], &inner);
      inner.erase(f.var);
      vars->insert(inner.begin(), inner.end());
      return;
    }
    default:
      for (const Formula& c : f.children) CollectFreeVars(c, vars);
      return;
  }
}

bool ContainsQuantifier(const Formula& f) {
  if (f.IsQuantifier()) return true;
  for (const Formula& c : f.children) {
    if (ContainsQuantifier(c)) return true;
  }
  return false;
}

bool ContainsMembership(const Formula& f) {
  if (f.kind == Formula::Kind::kMembership) return true;
  for (const Formula& c : f.children) {
    if (ContainsMembership(c)) return true;
  }
  return false;
}

bool ContainsAggregate(const Formula& f) {
  if (f.kind == Formula::Kind::kCompare) {
    for (const Term& t : f.terms) {
      if (TermContainsAggregate(t)) return true;
    }
  }
  for (const Formula& c : f.children) {
    if (ContainsAggregate(c)) return true;
  }
  return false;
}

bool ContainsAuxRef(const Formula& f) {
  if (f.kind == Formula::Kind::kMembership &&
      f.rel.kind != CalcRelKind::kBase) {
    return true;
  }
  if (f.kind == Formula::Kind::kCompare) {
    for (const Term& t : f.terms) {
      if (TermContainsAuxRef(t)) return true;
    }
  }
  for (const Formula& c : f.children) {
    if (ContainsAuxRef(c)) return true;
  }
  return false;
}

bool IsScalarFormula(const Formula& f) {
  return !ContainsQuantifier(f) && !ContainsMembership(f);
}

Formula RenameVar(Formula f, const std::string& from, const std::string& to) {
  switch (f.kind) {
    case Formula::Kind::kMembership:
      if (f.var == from) f.var = to;
      break;
    case Formula::Kind::kTupleEq:
      if (f.var == from) f.var = to;
      if (f.var2 == from) f.var2 = to;
      break;
    case Formula::Kind::kCompare:
      for (Term& t : f.terms) RenameTermVar(&t, from, to);
      break;
    case Formula::Kind::kForall:
    case Formula::Kind::kExists:
      if (f.var == from) f.var = to;
      break;
    default:
      break;
  }
  for (Formula& c : f.children) c = RenameVar(std::move(c), from, to);
  return f;
}

}  // namespace txmod::core
