#ifndef TXMOD_CORE_SUBSYSTEM_H_
#define TXMOD_CORE_SUBSYSTEM_H_

#include <map>
#include <string>
#include <vector>

#include "src/algebra/physical_plan.h"
#include "src/core/modifier.h"
#include "src/core/triggering_graph.h"
#include "src/relational/database.h"
#include "src/txn/executor.h"

namespace txmod::core {

/// When the appended integrity programs run relative to the user's
/// statements (see ModifyTransactionImmediate for the semantics).
enum class CheckPlacement {
  /// The paper's ModP: checks run after the whole user program
  /// (Definition 2.6 gives intermediate states no semantics).
  kDeferred,
  /// SQL-IMMEDIATE-style: checks run directly after each triggering
  /// statement. Stricter — self-repairing transactions abort.
  kImmediate,
};

/// Configuration of the integrity control subsystem.
struct SubsystemOptions {
  OptimizationLevel optimization = OptimizationLevel::kDifferential;
  CheckPlacement placement = CheckPlacement::kDeferred;
  TranslateOptions translate;
  ModifierOptions modifier;
  /// Reject rule definitions that make the triggering graph cyclic
  /// (Section 6.1). Cycles cut by NONTRIGGERING actions are fine. With
  /// this off, the modifier's depth cap is the only protection.
  bool reject_cyclic_rule_sets = true;
  /// Bound on the shaped (ad-hoc statement) side of the plan cache:
  /// distinct statement shapes retained before least-recently-used
  /// eviction. 0 disables ad-hoc plan caching entirely (every statement
  /// compiles fresh — the oracle tests' reference mode).
  std::size_t adhoc_plan_capacity = algebra::PlanCache::kDefaultShapeCapacity;
};

/// The transaction modification subsystem: the public facade tying
/// together rule definition (RL), compilation to integrity programs
/// (Section 6.2), triggering-graph validation (Section 6.1), transaction
/// modification (Algorithm 6.2), and execution with full atomicity.
///
/// Typical use:
///
///   Database db;                       // create relations...
///   IntegritySubsystem ics(&db);
///   ics.DefineConstraint("domain", "forall x (x in beer implies "
///                                  "x.alcohol >= 0)");
///   ics.DefineRule("ref", "WHEN INS(beer), DEL(brewery) IF NOT ... "
///                         "THEN ...");
///   auto result = ics.ExecuteText("insert(beer, {(\"x\",...)});");
///
/// The subsystem guarantees: a transaction executed through Execute /
/// ExecuteText either commits a database state satisfying every defined
/// constraint, or aborts leaving the database unchanged.
class IntegritySubsystem {
 public:
  explicit IntegritySubsystem(Database* db, SubsystemOptions options = {});

  /// Defines a purely declarative constraint (Section 4: "if integrity
  /// control is to be performed in a default way ... the specification of
  /// integrity constraints is sufficient and rules can be derived
  /// automatically"): the constraint becomes an aborting rule with a
  /// generated trigger set.
  Status DefineConstraint(const std::string& name,
                          const std::string& cl_text);

  /// Defines a full RL integrity rule: WHEN ... IF NOT ... THEN ....
  Status DefineRule(const std::string& name, const std::string& rl_text);

  /// Defines a programmatically constructed rule. Needed when the action
  /// uses algebra constructs outside the textual syntax (e.g. grouped
  /// aggregates for materialized view maintenance, Section 7). The
  /// condition must already be analyzed against this database's schema.
  Status DefineRule(rules::IntegrityRule rule);

  Status DropRule(const std::string& name);

  const std::vector<rules::IntegrityRule>& rules() const { return rules_; }
  const CompiledRuleSet& compiled() const { return compiled_; }
  const TriggeringGraph& graph() const { return graph_; }

  /// The per-subsystem plan cache. Its pinned side holds the physical
  /// plans of every compiled integrity-check expression, compiled once at
  /// rule-definition time; its shaped side caches ad-hoc statement plans
  /// by structural fingerprint (two statements differing only in literal
  /// constants share one plan under different parameter bindings).
  /// Execute() runs transactions against this cache, so enforcement never
  /// recompiles plans and repeated ad-hoc shapes compile once; index
  /// declarations (Relation::IndexOn) are derived from the pinned plans'
  /// IndexRequests — operator choice and index choice live in the plan
  /// layer, not here. Defining or dropping a rule rebuilds the cache,
  /// which also invalidates every shaped entry.
  const algebra::PlanCache& plan_cache() const { return plan_cache_; }

  /// Mutable cache access for the transaction manager: concurrent
  /// sessions share one cache (the shaped side is internally
  /// synchronized; the pinned side is read-only during execution).
  /// Defining or dropping rules while sessions execute is NOT supported —
  /// quiesce traffic first.
  algebra::PlanCache* shared_plan_cache() { return &plan_cache_; }

  /// Explain() dumps of every compiled check plan, keyed by the check
  /// statement's textual form. Diagnostics; tests pin plan choices on it.
  std::map<std::string, std::string> ExplainPlans() const;
  Database* database() { return db_; }
  const SubsystemOptions& options() const { return options_; }

  /// ModT: the modified transaction (Algorithm 6.2), guaranteed correct.
  Result<algebra::Transaction> Modify(const algebra::Transaction& txn,
                                      ModifyStats* stats = nullptr) const;

  /// Modify + execute with atomicity.
  Result<txn::TxnResult> Execute(const algebra::Transaction& txn);

  /// Parses the textual transaction (begin ... end optional), then
  /// Execute.
  Result<txn::TxnResult> ExecuteText(const std::string& txn_text);

  /// Executes WITHOUT modification (no integrity control). Used by
  /// baselines and benches; never by production callers.
  Result<txn::TxnResult> ExecuteUnchecked(const algebra::Transaction& txn);

  /// Diagnostics for explicitly specified trigger sets: one message per
  /// rule whose WHEN clause misses a trigger GenTrigC derives from its
  /// condition (enforcement gaps the designer may not have intended).
  std::vector<std::string> ValidateRuleTriggers() const;

 private:
  Status AddRule(rules::IntegrityRule rule);
  Status Recompile();

  Database* db_;
  SubsystemOptions options_;
  std::vector<rules::IntegrityRule> rules_;
  CompiledRuleSet compiled_;
  TriggeringGraph graph_;
  algebra::PlanCache plan_cache_;
};

}  // namespace txmod::core

#endif  // TXMOD_CORE_SUBSYSTEM_H_
