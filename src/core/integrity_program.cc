#include "src/core/integrity_program.h"

#include "src/common/str_util.h"

namespace txmod::core {

std::string IntegrityProgram::ToString() const {
  std::string out = StrCat("integrity program ", rule_name, " [",
                           triggers.ToString(), "]");
  if (non_triggering) out += " (non-triggering)";
  if (differential) out += " (differential)";
  out += ":\n";
  out += program.ToString();
  return out;
}

Result<IntegrityProgram> GetIntP(const rules::IntegrityRule& rule,
                                 const DatabaseSchema& schema,
                                 OptimizationLevel level,
                                 const TranslateOptions& options) {
  IntegrityProgram out;
  out.rule_name = rule.name;
  out.triggers = rule.triggers;

  if (rule.action_kind == rules::ActionKind::kCompensate) {
    // TransCA: the compensating program is the action (Section 5.2.2).
    out.program = rule.action;
    out.non_triggering = rule.action_non_triggering;
    return out;
  }

  const OptimizedRule optimized = OptR(rule, level);
  out.differential = optimized.condition.differential;
  algebra::Program program;
  program.non_triggering = true;  // alarm-only programs never trigger
  for (const calculus::Formula& part : optimized.condition.parts) {
    calculus::AnalyzedFormula analyzed;
    analyzed.formula = part;
    analyzed.ranges = rule.condition.ranges;
    TXMOD_ASSIGN_OR_RETURN(
        algebra::Program translated,
        TransC(analyzed, schema,
               StrCat("integrity violation: rule ", rule.name), options));
    program = algebra::Program::Concat(std::move(program),
                                       std::move(translated));
  }
  out.program = std::move(program);
  out.non_triggering = true;
  return out;
}

}  // namespace txmod::core
