#ifndef TXMOD_CORE_FORMULA_UTIL_H_
#define TXMOD_CORE_FORMULA_UTIL_H_

#include <set>
#include <string>
#include <vector>

#include "src/calculus/ast.h"

namespace txmod::core {

/// Flattens nested conjunctions into a conjunct list (left-to-right order).
void FlattenAnd(const calculus::Formula& f,
                std::vector<calculus::Formula>* out);

/// Rebuilds a conjunction from a non-empty conjunct list.
calculus::Formula BuildAnd(std::vector<calculus::Formula> conjuncts);

/// Free tuple variables of `f` (variables used but not quantified in `f`).
void CollectFreeVars(const calculus::Formula& f,
                     std::set<std::string>* vars);

bool ContainsQuantifier(const calculus::Formula& f);
bool ContainsMembership(const calculus::Formula& f);

/// True when `f` contains an aggregate or count term anywhere.
bool ContainsAggregate(const calculus::Formula& f);

/// True when `f` references any auxiliary relation (old/dplus/dminus).
bool ContainsAuxRef(const calculus::Formula& f);

/// Quantifier-free and membership-free: translatable to one scalar
/// predicate.
bool IsScalarFormula(const calculus::Formula& f);

/// Renames every binding and use of tuple variable `from` to `to`.
calculus::Formula RenameVar(calculus::Formula f, const std::string& from,
                            const std::string& to);

}  // namespace txmod::core

#endif  // TXMOD_CORE_FORMULA_UTIL_H_
