#ifndef TXMOD_CORE_INTEGRITY_PROGRAM_H_
#define TXMOD_CORE_INTEGRITY_PROGRAM_H_

#include <string>
#include <vector>

#include "src/algebra/statement.h"
#include "src/core/optimize.h"
#include "src/core/translate.h"
#include "src/rules/rule.h"
#include "src/rules/trigger.h"

namespace txmod::core {

/// An integrity program (Definition 6.3): the statically compiled form of
/// an integrity rule — trigger set plus translated/optimized triggered
/// program, stored at rule definition time so that constraint enforcement
/// time does no optimization or translation (Section 6.2).
struct IntegrityProgram {
  std::string rule_name;
  rules::TriggerSet triggers;
  algebra::Program program;
  /// Definition 6.2 / 6.3 extension flag: a non-triggering program is
  /// skipped by trigger extraction during modification.
  bool non_triggering = false;
  /// True when the program uses differential relations (E7 diagnostics).
  bool differential = false;

  std::string ToString() const;
};

/// GetIntP (Algorithm 6.1): compiles one rule into its integrity program:
/// GetIntP(J) = (triggers(J), TransR(OptR(J))).
Result<IntegrityProgram> GetIntP(const rules::IntegrityRule& rule,
                                 const DatabaseSchema& schema,
                                 OptimizationLevel level,
                                 const TranslateOptions& options = {});

/// The compiled rule catalog: integrity programs in rule-definition order
/// (the paper's Section 6.2 note — the set is interpreted as a list by
/// imposing an order; definition order makes modification deterministic).
class CompiledRuleSet {
 public:
  void Add(IntegrityProgram program) {
    programs_.push_back(std::move(program));
  }
  void Clear() { programs_.clear(); }

  const std::vector<IntegrityProgram>& programs() const { return programs_; }
  bool empty() const { return programs_.empty(); }
  std::size_t size() const { return programs_.size(); }

 private:
  std::vector<IntegrityProgram> programs_;
};

}  // namespace txmod::core

#endif  // TXMOD_CORE_INTEGRITY_PROGRAM_H_
