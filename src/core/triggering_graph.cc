#include "src/core/triggering_graph.h"

#include <algorithm>
#include <functional>

#include "src/common/str_util.h"

namespace txmod::core {

TriggeringGraph TriggeringGraph::Build(const CompiledRuleSet& rules) {
  TriggeringGraph g;
  const auto& programs = rules.programs();
  g.names_.reserve(programs.size());
  for (const IntegrityProgram& p : programs) g.names_.push_back(p.rule_name);
  g.adjacency_.resize(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    const rules::TriggerSet out_triggers =
        rules::GetTrigPX(programs[i].program);
    if (out_triggers.empty()) continue;
    for (std::size_t j = 0; j < programs.size(); ++j) {
      if (out_triggers.Intersects(programs[j].triggers)) {
        g.adjacency_[i].push_back(static_cast<int>(j));
      }
    }
  }
  return g;
}

std::vector<std::vector<int>> TriggeringGraph::FindCycles() const {
  // Tarjan's strongly connected components, iteratively indexed.
  const int n = static_cast<int>(adjacency_.size());
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  std::vector<std::vector<int>> cyclic_sccs;
  int next_index = 0;

  std::function<void(int)> strongconnect = [&](int v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (int w : adjacency_[v]) {
      if (index[w] < 0) {
        strongconnect(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<int> scc;
      int w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
      } while (w != v);
      const bool self_loop =
          scc.size() == 1 &&
          std::find(adjacency_[v].begin(), adjacency_[v].end(), v) !=
              adjacency_[v].end();
      if (scc.size() > 1 || self_loop) {
        std::sort(scc.begin(), scc.end());
        cyclic_sccs.push_back(std::move(scc));
      }
    }
  };

  for (int v = 0; v < n; ++v) {
    if (index[v] < 0) strongconnect(v);
  }
  return cyclic_sccs;
}

std::string TriggeringGraph::DescribeCycles() const {
  const auto cycles = FindCycles();
  if (cycles.empty()) return "";
  std::string out = "cyclic triggering detected; rule cycles:";
  for (const std::vector<int>& scc : cycles) {
    std::vector<std::string> members;
    members.reserve(scc.size());
    for (int v : scc) members.push_back(names_[v]);
    out += StrCat(" {", Join(members, " -> "), "}");
  }
  out +=
      "; declare a compensating action NONTRIGGERING (Definition 6.2) or "
      "redesign the rules";
  return out;
}

std::string TriggeringGraph::ToDot() const {
  std::string out = "digraph triggering {\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out += StrCat("  \"", names_[i], "\";\n");
  }
  for (std::size_t i = 0; i < adjacency_.size(); ++i) {
    for (int j : adjacency_[i]) {
      out += StrCat("  \"", names_[i], "\" -> \"", names_[j], "\";\n");
    }
  }
  out += "}\n";
  return out;
}

}  // namespace txmod::core
