#ifndef TXMOD_COMMON_LEXER_H_
#define TXMOD_COMMON_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace txmod {

/// Token categories shared by the CL constraint language, the RL rule
/// language, and the textual extended-relational-algebra syntax.
enum class TokenKind {
  kEnd,        // end of input
  kIdent,      // identifiers / keywords (case preserved; parsers lowercase)
  kInt,        // integer literal
  kFloat,      // floating point literal
  kString,     // double-quoted string literal (escapes: \" \\ \n \t)
  kOp,         // operator or punctuation, one of the lexemes below
};

/// A single token with its source position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier text, operator lexeme, or raw literal
  int64_t int_value = 0;
  double float_value = 0.0;
  std::string string_value;
  int position = 0;     // byte offset in the input

  bool IsOp(const char* lexeme) const {
    return kind == TokenKind::kOp && text == lexeme;
  }
  /// Case-insensitive keyword test for identifier tokens.
  bool IsKeyword(const char* keyword) const;
};

/// Splits `input` into tokens. Recognized operators:
///   ( ) [ ] { } , ; . + - * / % = != <> < <= > >= := => # $
/// Comments run from '--' to end of line.
Result<std::vector<Token>> Tokenize(const std::string& input);

/// Renders the position of `token` within `input` as "line L, column C".
std::string DescribePosition(const std::string& input, const Token& token);

}  // namespace txmod

#endif  // TXMOD_COMMON_LEXER_H_
