#ifndef TXMOD_COMMON_HASH_H_
#define TXMOD_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace txmod {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit variant).
inline void HashCombine(std::size_t* seed, std::size_t value) {
  *seed ^= value + UINT64_C(0x9e3779b97f4a7c15) + (*seed << 12) + (*seed >> 4);
}

/// Hashes `v` with std::hash and mixes it into `seed`.
template <typename T>
void HashCombineValue(std::size_t* seed, const T& v) {
  HashCombine(seed, std::hash<T>{}(v));
}

}  // namespace txmod

#endif  // TXMOD_COMMON_HASH_H_
