#ifndef TXMOD_COMMON_FRAME_H_
#define TXMOD_COMMON_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/result.h"

namespace txmod {

/// Length-prefixed framing for the wire protocol (and any other stream
/// transport): a frame is a 4-byte little-endian payload length followed
/// by exactly that many payload bytes. Pure buffer-level functions —
/// sockets, files, and tests all share them.
///
/// Limits are the receiver's defense against malicious or corrupt peers:
/// a frame longer than the receiver's limit is a protocol error (the
/// whole stream is unsynchronized from that point — close it), never a
/// truncation. Zero-length frames are legal (payload semantics decide).
constexpr std::size_t kFrameHeaderBytes = 4;

/// The default per-frame payload limit (1 MiB): generous for request
/// text and stats bodies, small enough that a hostile length prefix
/// cannot balloon the receiver's buffer.
constexpr std::size_t kDefaultMaxFramePayload = 1u << 20;

/// Appends the frame (header + payload) for `payload` to `out`.
void AppendFrame(const std::string& payload, std::string* out);

/// Outcome of TryDecodeFrame.
enum class FrameDecode {
  kFrame,      // one complete frame consumed into *payload
  kNeedMore,   // buffer holds only a partial frame; read more bytes
  kTooLarge,   // declared length exceeds max_payload: protocol error
};

/// Attempts to decode one frame from buffer[offset...). On kFrame,
/// *payload receives the payload and *consumed the total frame size
/// (header + payload) so the caller can advance its offset. On
/// kNeedMore / kTooLarge nothing is consumed; kTooLarge sets *consumed
/// to 0 and leaves the stream unsynchronized (callers must close).
FrameDecode TryDecodeFrame(const std::string& buffer, std::size_t offset,
                           std::size_t max_payload, std::string* payload,
                           std::size_t* consumed);

}  // namespace txmod

#endif  // TXMOD_COMMON_FRAME_H_
