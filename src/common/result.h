#ifndef TXMOD_COMMON_RESULT_H_
#define TXMOD_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace txmod {

/// Either a value of type T or a non-OK Status (never both, never neither).
///
/// The exception-free analogue of absl::StatusOr / arrow::Result. Access to
/// the value when `!ok()` is a programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK() when a value is held.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds the
/// value to `lhs`. Usage: TXMOD_ASSIGN_OR_RETURN(auto v, ComputeV());
#define TXMOD_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  TXMOD_ASSIGN_OR_RETURN_IMPL_(                                         \
      TXMOD_RESULT_CONCAT_(_txmod_result, __LINE__), lhs, rexpr)

#define TXMOD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define TXMOD_RESULT_CONCAT_(a, b) TXMOD_RESULT_CONCAT_IMPL_(a, b)
#define TXMOD_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace txmod

#endif  // TXMOD_COMMON_RESULT_H_
