#include "src/common/status.h"

namespace txmod {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace txmod
