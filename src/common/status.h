#ifndef TXMOD_COMMON_STATUS_H_
#define TXMOD_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace txmod {

/// Error category for a failed operation.
///
/// The library does not use C++ exceptions (per the project style rules);
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  /// Caller supplied a malformed argument (bad syntax, arity mismatch, ...).
  kInvalidArgument = 1,
  /// A named entity (relation, rule, attribute, ...) does not exist.
  kNotFound = 2,
  /// A named entity already exists and may not be redefined.
  kAlreadyExists = 3,
  /// The operation is valid but the object is in the wrong state for it.
  kFailedPrecondition = 4,
  /// The requested construct is outside the supported fragment.
  kUnimplemented = 5,
  /// Invariant violation inside the library itself (a bug if ever seen).
  kInternal = 6,
  /// A transaction was aborted (by an alarm statement or abort statement).
  kAborted = 7,
  /// The service cannot take the operation right now — e.g. the
  /// transaction manager is in read-only degraded mode after a storage
  /// fault. Unlike kInternal this is an expected operational state; the
  /// message names the underlying cause and the recovery path.
  kUnavailable = 8,
  /// A caller-supplied deadline expired before the operation could
  /// complete (retry/backoff ran out of time, not out of attempts).
  kDeadlineExceeded = 9,
};

/// Returns the canonical lowercase name of a status code, e.g. "not found".
const char* StatusCodeToString(StatusCode code);

/// Value-type carrying either success (`ok()`) or an error code + message.
///
/// Mirrors the Status idiom of Arrow / RocksDB / absl. Statuses are cheap to
/// copy in the OK case and must be checked by the caller.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "invalid argument: bad arity".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller.
#define TXMOD_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::txmod::Status _txmod_st = (expr);        \
    if (!_txmod_st.ok()) return _txmod_st;     \
  } while (false)

}  // namespace txmod

#endif  // TXMOD_COMMON_STATUS_H_
