#include "src/common/str_util.h"

#include <cctype>

namespace txmod {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool IsIdentifier(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::string AsciiToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace txmod
