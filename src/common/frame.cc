#include "src/common/frame.h"

namespace txmod {

void AppendFrame(const std::string& payload, std::string* out) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  out->push_back(static_cast<char>(n & 0xff));
  out->push_back(static_cast<char>((n >> 8) & 0xff));
  out->push_back(static_cast<char>((n >> 16) & 0xff));
  out->push_back(static_cast<char>((n >> 24) & 0xff));
  out->append(payload);
}

FrameDecode TryDecodeFrame(const std::string& buffer, std::size_t offset,
                           std::size_t max_payload, std::string* payload,
                           std::size_t* consumed) {
  if (buffer.size() - offset < kFrameHeaderBytes) {
    return FrameDecode::kNeedMore;
  }
  const auto byte = [&](std::size_t i) {
    return static_cast<uint32_t>(
        static_cast<unsigned char>(buffer[offset + i]));
  };
  const uint32_t n = byte(0) | (byte(1) << 8) | (byte(2) << 16) |
                     (byte(3) << 24);
  if (n > max_payload) {
    *consumed = 0;
    return FrameDecode::kTooLarge;
  }
  if (buffer.size() - offset - kFrameHeaderBytes < n) {
    return FrameDecode::kNeedMore;
  }
  payload->assign(buffer, offset + kFrameHeaderBytes, n);
  *consumed = kFrameHeaderBytes + n;
  return FrameDecode::kFrame;
}

}  // namespace txmod
