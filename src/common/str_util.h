#ifndef TXMOD_COMMON_STR_UTIL_H_
#define TXMOD_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace txmod {

/// Joins the elements of `parts` with `sep`, e.g. Join({"a","b"}, ", ").
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Concatenates the streamed representation of all arguments.
/// Usage: StrCat("relation ", name, " has ", n, " tuples").
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// True when `s` consists only of ASCII letters, digits, and underscores and
/// starts with a letter or underscore (a valid identifier).
bool IsIdentifier(const std::string& s);

/// Lowercases ASCII characters of `s`.
std::string AsciiToLower(const std::string& s);

}  // namespace txmod

#endif  // TXMOD_COMMON_STR_UTIL_H_
