#ifndef TXMOD_COMMON_VFS_H_
#define TXMOD_COMMON_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace txmod {

/// One writable file handle obtained from a Vfs. Handles are append- or
/// truncate-opened (see Vfs); reads stay on the ordinary filesystem —
/// the durability machinery only *writes* through the environment, and
/// the fault injector keeps the real file in sync so readers (ReadWal,
/// LoadDatabaseFromFile) need no parallel read API.
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  /// Appends up to `n` bytes at the current end, returning the count
  /// actually written. Short writes (count < n) are legal POSIX behavior
  /// and the injector produces them on purpose; callers must loop (see
  /// WriteFullyTo). A returned count of 0 with n > 0 never happens from
  /// a conforming implementation.
  virtual Result<std::size_t> Write(const char* data, std::size_t n) = 0;

  /// Flushes written bytes to stable storage. After a *failed* Sync the
  /// caller must assume the unflushed bytes are gone (the kernel may
  /// drop dirty pages while marking them clean — fsyncgate): never
  /// retry a failed Sync and report durability on the second try.
  virtual Status Sync() = 0;

  /// Current file size in bytes.
  virtual Result<uint64_t> Size() = 0;

  /// Truncates (or extends with zeros) to `size` bytes. Not durable
  /// until the next successful Sync.
  virtual Status Truncate(uint64_t size) = 0;
};

/// The storage-and-clock environment behind the durability stack. The
/// write-ahead log, checkpointing, and the transaction manager route
/// every state-changing filesystem operation and every clock read
/// through a Vfs so tests can substitute FaultInjectingVfs and prove
/// the failure behavior instead of hoping for it.
///
/// The default implementation (Vfs::Default()) is plain POSIX:
/// open/write/fsync/rename/unlink plus the steady clock.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Opens `path` for appending, creating it when absent. Creation is
  /// an entry in the parent directory and is only crash-durable after
  /// SyncDirectory on that parent.
  virtual Result<std::unique_ptr<VfsFile>> OpenAppend(
      const std::string& path) = 0;

  /// Opens `path` truncated to empty (creating it when absent) for a
  /// fresh write — the checkpoint temp-file path.
  virtual Result<std::unique_ptr<VfsFile>> OpenTrunc(
      const std::string& path) = 0;

  /// Atomic rename. The new directory mapping is only crash-durable
  /// after SyncDirectory on the parent.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Removes `path`. Returns OK when the file does not exist (the
  /// callers use Remove idempotently while clearing stale temp files).
  virtual Status Remove(const std::string& path) = 0;

  /// Fsyncs the directory containing `path`, making entry operations
  /// (create, rename, remove) on it crash-durable.
  virtual Status SyncParentDirectory(const std::string& path) = 0;

  /// Monotonic clock in microseconds — the time base for retry backoff
  /// and transaction deadlines.
  virtual int64_t NowMicros() = 0;

  /// Sleeps for `micros` (the backoff primitive). Fake environments
  /// advance their virtual clock instantly so no test ever waits on the
  /// wall clock.
  virtual void SleepMicros(int64_t micros) = 0;

  /// The process-wide POSIX environment.
  static Vfs* Default();
};

/// Writes all of `buf`, looping over short writes. The error message
/// names `what` (e.g. "WAL").
Status WriteFullyTo(VfsFile* file, const std::string& buf, const char* what);

// ---------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------

/// The operations a fault schedule can target.
enum class VfsOp {
  kOpen,      // OpenAppend / OpenTrunc
  kWrite,     // VfsFile::Write
  kFsync,     // VfsFile::Sync
  kTruncate,  // VfsFile::Truncate
  kRename,
  kRemove,
  kDirSync,  // SyncParentDirectory
};

const char* VfsOpName(VfsOp op);

/// What happens when a scheduled fault fires.
enum class FaultKind {
  /// The operation fails with an I/O-error status; no bytes land.
  kEIO,
  /// The operation fails with a no-space status; no bytes land.
  kENOSPC,
  /// Write only: the first half of the buffer lands and the *count* is
  /// returned — a legal POSIX short write, success, no error. Exercises
  /// the caller's write-fully loop.
  kShortWrite,
  /// Write only: the first half lands, then the write FAILS — a torn
  /// write. The caller sees an error with a partial record on disk.
  kTornWrite,
  /// Fsync only, the fsyncgate trap: this Sync FAILS, the kernel drops
  /// the dirty pages (the unflushed bytes are lost at crash), and every
  /// LATER Sync on the file reports success without making them
  /// durable. Correct systems must therefore never ack after retrying a
  /// failed fsync — the poisoned-WAL contract this injector exists to
  /// pin.
  kFsyncGate,
  /// Fsync only, the silent variant: this Sync reports SUCCESS but the
  /// buffered bytes are dropped at the simulated crash (and later Syncs
  /// keep lying). No software survives a lying kernel with all
  /// acknowledged data intact; what must still hold — and what tests
  /// assert under this fault — is the prefix property: recovery yields
  /// a clean prefix of acknowledged commits, never a torn state.
  kFsyncLie,
};

const char* FaultKindName(FaultKind kind);

/// One programmed fault: fires on the `nth` (1-based) matching
/// operation counted from when the spec was injected. With `sticky`,
/// it keeps firing on every matching operation from the nth onward —
/// e.g. a persistently full disk — until ClearFaults.
struct FaultSpec {
  VfsOp op = VfsOp::kWrite;
  FaultKind kind = FaultKind::kEIO;
  uint64_t nth = 1;
  /// Only operations whose path contains this substring count (empty
  /// matches everything) — e.g. "wal" targets the log but not the
  /// checkpoint.
  std::string path_substring;
  bool sticky = false;
};

/// A Vfs that wraps the real filesystem, injects programmed faults, and
/// models crash durability precisely enough to simulate power loss:
///
///   * File data survives a crash only up to the last successful honest
///     Sync (SimulateCrash truncates/rewrites the real file to that
///     snapshot).
///   * Directory entries (create, rename, remove) survive only once
///     SyncParentDirectory covered them; un-synced renames roll back to
///     the old mapping, un-synced creates vanish, un-synced removes
///     reappear.
///   * kFsyncGate / kFsyncLie poison a file's durability: bytes past
///     the poison point are dropped at crash no matter what later Syncs
///     report.
///
/// The clock is virtual: NowMicros starts at 0 and SleepMicros advances
/// it instantly, recording each sleep — retry/backoff schedules become
/// deterministic, seed-reproducible data instead of wall-clock waits.
///
/// Thread safety: all state is behind one mutex; the group-commit fsync
/// path may call in concurrently.
class FaultInjectingVfs : public Vfs {
 public:
  FaultInjectingVfs() = default;

  Result<std::unique_ptr<VfsFile>> OpenAppend(
      const std::string& path) override;
  Result<std::unique_ptr<VfsFile>> OpenTrunc(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status SyncParentDirectory(const std::string& path) override;
  int64_t NowMicros() override;
  void SleepMicros(int64_t micros) override;

  /// Arms one fault. Multiple armed faults are checked independently.
  void InjectFault(FaultSpec spec);
  /// Disarms every armed fault ("the fault schedule clears"); already
  /// inflicted damage (poisoned files, dropped bytes) stays.
  void ClearFaults();

  /// Total operations seen per op type (fired or not).
  uint64_t op_count(VfsOp op) const;
  /// Faults fired so far.
  uint64_t faults_fired() const;

  /// Simulated power loss: rewrites the real filesystem to exactly the
  /// crash-durable state (see class comment). Open handles become
  /// useless; drop them first. The durability model resets to "all
  /// current content durable" afterwards, so a test can continue into
  /// recovery and crash again later.
  void SimulateCrash();

  /// Clock control and the recorded sleep schedule.
  void AdvanceClock(int64_t micros);
  std::vector<int64_t> sleep_log() const;

 private:
  friend class FaultInjectingFile;

  /// Crash-durability bookkeeping for one path.
  struct FileState {
    std::string durable_content;  // data layer: survives crash
    bool sync_poisoned = false;   // kFsyncGate/kFsyncLie hit: frozen
    bool entry_pending = false;   // created/renamed-in, dir not synced
    bool removal_pending = false;  // removed, dir not synced
    // What `entry_pending` hides: the previous durable occupant of the
    // path (restored if the crash precedes the directory sync).
    bool shadowed_exists = false;
    std::string shadowed_content;
  };

  /// Returns the fault to apply to (op, path), if any. Locked.
  bool FaultFiresLocked(VfsOp op, const std::string& path, FaultKind* kind);
  FileState& TouchLocked(const std::string& path);
  static std::string DirOf(const std::string& path);

  mutable std::mutex mu_;
  std::vector<FaultSpec> faults_;
  std::vector<uint64_t> fault_seen_;  // matching-op count per armed spec
  std::map<VfsOp, uint64_t> op_counts_;
  uint64_t fired_ = 0;
  std::map<std::string, FileState> files_;
  int64_t now_micros_ = 0;
  std::vector<int64_t> sleeps_;
};

}  // namespace txmod

#endif  // TXMOD_COMMON_VFS_H_
