#include "src/common/lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "src/common/str_util.h"

namespace txmod {

bool Token::IsKeyword(const char* keyword) const {
  if (kind != TokenKind::kIdent) return false;
  return AsciiToLower(text) == AsciiToLower(keyword);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comment: '--' to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    if (IsIdentStart(c)) {
      std::size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      tok.kind = TokenKind::kIdent;
      tok.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      // A '.' starts a fraction only when followed by a digit, so that
      // "x.1" stays an attribute selection and "1.5" is a float.
      if (j + 1 < n && input[j] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          is_float = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
            ++j;
          }
        }
      }
      const std::string text = input.substr(i, j - i);
      tok.text = text;
      // strtoll/strtod report overflow only through errno, and silently
      // saturate the return value (LLONG_MAX / HUGE_VAL) — without the
      // ERANGE check an out-of-range literal would lex to a *wrong*
      // number instead of an error. Full-consumption is checked too so a
      // scanner bug can never feed a partially-numeric text through.
      char* end = nullptr;
      errno = 0;
      if (is_float) {
        tok.kind = TokenKind::kFloat;
        tok.float_value = std::strtod(text.c_str(), &end);
        if (errno == ERANGE && std::fabs(tok.float_value) == HUGE_VAL) {
          return Status::InvalidArgument(
              StrCat("float literal out of range: ", text, " at offset ", i));
        }
      } else {
        tok.kind = TokenKind::kInt;
        tok.int_value = std::strtoll(text.c_str(), &end, 10);
        if (errno == ERANGE) {
          return Status::InvalidArgument(
              StrCat("integer literal out of range (does not fit int64): ",
                     text, " at offset ", i));
        }
      }
      if (end != text.c_str() + text.size()) {
        return Status::InvalidArgument(
            StrCat("malformed numeric literal: ", text, " at offset ", i));
      }
      i = j;
    } else if (c == '"') {
      std::string value;
      std::size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\\' && j + 1 < n) {
          const char esc = input[j + 1];
          switch (esc) {
            case 'n':
              value += '\n';
              break;
            case 't':
              value += '\t';
              break;
            case '"':
              value += '"';
              break;
            case '\\':
              value += '\\';
              break;
            default:
              return Status::InvalidArgument(
                  StrCat("unknown escape \\", std::string(1, esc),
                         " at offset ", j));
          }
          j += 2;
        } else if (input[j] == '"') {
          closed = true;
          ++j;
          break;
        } else {
          value += input[j];
          ++j;
        }
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrCat("unterminated string literal at offset ", i));
      }
      tok.kind = TokenKind::kString;
      tok.string_value = std::move(value);
      tok.text = input.substr(i, j - i);
      i = j;
    } else {
      // Multi-character operators first.
      static const char* kTwoCharOps[] = {":=", "!=", "<>", "<=", ">=", "=>"};
      std::string two = input.substr(i, 2);
      bool matched = false;
      for (const char* op : kTwoCharOps) {
        if (two == op) {
          tok.kind = TokenKind::kOp;
          tok.text = op;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string kOneCharOps = "()[]{},;.+-*/%=<>#$";
        if (kOneCharOps.find(c) == std::string::npos) {
          return Status::InvalidArgument(
              StrCat("unexpected character '", std::string(1, c),
                     "' at offset ", i));
        }
        tok.kind = TokenKind::kOp;
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

std::string DescribePosition(const std::string& input, const Token& token) {
  int line = 1;
  int column = 1;
  for (int i = 0; i < token.position && i < static_cast<int>(input.size());
       ++i) {
    if (input[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return StrCat("line ", line, ", column ", column);
}

}  // namespace txmod
