#include "src/common/vfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "src/common/str_util.h"

namespace txmod {

namespace {

/// Retries ::open on EINTR.
int OpenFd(const std::string& path, int flags) {
  int fd;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Overwrites `path` with exactly `content` (the crash-simulation
/// rewrite primitive; plain filesystem, not routed through any Vfs).
void RewriteWholeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

Status PosixSyncDirectoryOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = OpenFd(dir, O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(StrCat("cannot open directory ", dir));
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) return Status::Internal(StrCat("fsync of ", dir, " failed"));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// The real POSIX environment.
// ---------------------------------------------------------------------------

class PosixFile : public VfsFile {
 public:
  PosixFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<std::size_t> Write(const char* data, std::size_t n) override {
    ssize_t written;
    do {
      written = ::write(fd_, data, n);
    } while (written < 0 && errno == EINTR);
    if (written < 0) {
      return Status::Internal(StrCat("write to ", path_, " failed: ",
                                     std::strerror(errno)));
    }
    return static_cast<std::size_t>(written);
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::Internal(StrCat("fsync of ", path_, " failed: ",
                                     std::strerror(errno)));
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size < 0) {
      return Status::Internal(StrCat("lseek of ", path_, " failed"));
    }
    return static_cast<uint64_t>(size);
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::Internal(StrCat("ftruncate of ", path_, " failed: ",
                                     std::strerror(errno)));
    }
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixVfs : public Vfs {
 public:
  Result<std::unique_ptr<VfsFile>> OpenAppend(
      const std::string& path) override {
    const int fd = OpenFd(path, O_WRONLY | O_CREAT | O_APPEND);
    if (fd < 0) {
      return Status::InvalidArgument(StrCat("cannot open ", path, ": ",
                                            std::strerror(errno)));
    }
    return std::unique_ptr<VfsFile>(new PosixFile(path, fd));
  }

  Result<std::unique_ptr<VfsFile>> OpenTrunc(
      const std::string& path) override {
    const int fd = OpenFd(path, O_WRONLY | O_CREAT | O_TRUNC);
    if (fd < 0) {
      return Status::InvalidArgument(StrCat("cannot open ", path, ": ",
                                            std::strerror(errno)));
    }
    return std::unique_ptr<VfsFile>(new PosixFile(path, fd));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal(StrCat("rename of ", from, " to ", to,
                                     " failed: ", std::strerror(errno)));
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::Internal(StrCat("remove of ", path, " failed: ",
                                     std::strerror(errno)));
    }
    return Status::OK();
  }

  Status SyncParentDirectory(const std::string& path) override {
    return PosixSyncDirectoryOf(path);
  }

  int64_t NowMicros() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepMicros(int64_t micros) override {
    if (micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }
  }
};

Status InjectedFailure(VfsOp op, FaultKind kind, const std::string& path) {
  const char* what = kind == FaultKind::kENOSPC
                         ? "no space left on device"
                         : "I/O error";
  return Status::Internal(StrCat(VfsOpName(op), " of ", path, " failed: ",
                                 what, " (injected)"));
}

}  // namespace

Vfs* Vfs::Default() {
  static PosixVfs* posix = new PosixVfs();
  return posix;
}

Status WriteFullyTo(VfsFile* file, const std::string& buf, const char* what) {
  std::size_t off = 0;
  while (off < buf.size()) {
    TXMOD_ASSIGN_OR_RETURN(std::size_t n,
                           file->Write(buf.data() + off, buf.size() - off));
    if (n == 0) {
      return Status::Internal(StrCat(what, " write made no progress"));
    }
    off += n;
  }
  return Status::OK();
}

const char* VfsOpName(VfsOp op) {
  switch (op) {
    case VfsOp::kOpen:
      return "open";
    case VfsOp::kWrite:
      return "write";
    case VfsOp::kFsync:
      return "fsync";
    case VfsOp::kTruncate:
      return "truncate";
    case VfsOp::kRename:
      return "rename";
    case VfsOp::kRemove:
      return "remove";
    case VfsOp::kDirSync:
      return "directory fsync";
  }
  return "unknown";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEIO:
      return "EIO";
    case FaultKind::kENOSPC:
      return "ENOSPC";
    case FaultKind::kShortWrite:
      return "short-write";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kFsyncGate:
      return "fsync-gate";
    case FaultKind::kFsyncLie:
      return "fsync-lie";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// FaultInjectingVfs.
// ---------------------------------------------------------------------------

namespace {

/// What a crash right now would leave at `path` (existence + content).
struct CrashValue {
  bool exists = false;
  std::string content;
};

}  // namespace

/// A file handle that consults its parent's fault schedule and keeps the
/// parent's crash-durability model current.
class FaultInjectingFile : public VfsFile {
 public:
  FaultInjectingFile(FaultInjectingVfs* parent, std::string path, int fd)
      : parent_(parent), path_(std::move(path)), fd_(fd) {}
  ~FaultInjectingFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<std::size_t> Write(const char* data, std::size_t n) override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    FaultKind kind;
    if (parent_->FaultFiresLocked(VfsOp::kWrite, path_, &kind)) {
      if (kind == FaultKind::kShortWrite || kind == FaultKind::kTornWrite) {
        // Land a prefix: half the buffer (at least one byte so torn
        // records are really torn, not cleanly absent).
        const std::size_t partial = n >= 2 ? n / 2 : n;
        const Status landed = WriteRaw(data, partial);
        if (!landed.ok()) return landed;
        if (kind == FaultKind::kShortWrite) return partial;  // legal short
        return InjectedFailure(VfsOp::kWrite, kind, path_);  // torn
      }
      return InjectedFailure(VfsOp::kWrite, kind, path_);
    }
    const Status landed = WriteRaw(data, n);
    if (!landed.ok()) return landed;
    return n;
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    FaultInjectingVfs::FileState& state = parent_->TouchLocked(path_);
    FaultKind kind;
    if (parent_->FaultFiresLocked(VfsOp::kFsync, path_, &kind)) {
      if (kind == FaultKind::kFsyncGate) {
        // fsyncgate: fail, and the dirty pages are gone — no later Sync
        // can make the lost bytes durable (it will claim to, though).
        state.sync_poisoned = true;
        return InjectedFailure(VfsOp::kFsync, FaultKind::kEIO, path_);
      }
      if (kind == FaultKind::kFsyncLie) {
        state.sync_poisoned = true;
        return Status::OK();  // the lie: reported durable, actually lost
      }
      return InjectedFailure(VfsOp::kFsync, kind, path_);
    }
    if (state.sync_poisoned) {
      // Post-poison Syncs "succeed" without restoring the lost bytes.
      return Status::OK();
    }
    if (::fsync(fd_) != 0) {
      return Status::Internal(StrCat("fsync of ", path_, " failed: ",
                                     std::strerror(errno)));
    }
    state.durable_content = ReadWholeFile(path_);
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size < 0) {
      return Status::Internal(StrCat("lseek of ", path_, " failed"));
    }
    return static_cast<uint64_t>(size);
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    FaultKind kind;
    if (parent_->FaultFiresLocked(VfsOp::kTruncate, path_, &kind)) {
      return InjectedFailure(VfsOp::kTruncate, kind, path_);
    }
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::Internal(StrCat("ftruncate of ", path_, " failed: ",
                                     std::strerror(errno)));
    }
    return Status::OK();
  }

 private:
  Status WriteRaw(const char* data, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      ssize_t written;
      do {
        written = ::write(fd_, data + off, n - off);
      } while (written < 0 && errno == EINTR);
      if (written < 0) {
        return Status::Internal(StrCat("write to ", path_, " failed: ",
                                       std::strerror(errno)));
      }
      off += static_cast<std::size_t>(written);
    }
    return Status::OK();
  }

  FaultInjectingVfs* parent_;
  std::string path_;
  int fd_;
};

std::string FaultInjectingVfs::DirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash == 0 ? 1 : slash);
}

bool FaultInjectingVfs::FaultFiresLocked(VfsOp op, const std::string& path,
                                         FaultKind* kind) {
  ++op_counts_[op];
  // Count every matching armed spec first, then fire the first due one —
  // a fired fault must not stop later specs from keeping count.
  std::size_t due = faults_.size();
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const FaultSpec& spec = faults_[i];
    if (spec.op != op) continue;
    if (!spec.path_substring.empty() &&
        path.find(spec.path_substring) == std::string::npos) {
      continue;
    }
    ++fault_seen_[i];
    const bool fires = spec.sticky ? fault_seen_[i] >= spec.nth
                                   : fault_seen_[i] == spec.nth;
    if (fires && due == faults_.size()) due = i;
  }
  if (due == faults_.size()) return false;
  ++fired_;
  *kind = faults_[due].kind;
  return true;
}

FaultInjectingVfs::FileState& FaultInjectingVfs::TouchLocked(
    const std::string& path) {
  auto it = files_.find(path);
  if (it != files_.end()) return it->second;
  // First contact: whatever is on disk predates this environment and
  // counts as fully durable.
  FileState state;
  if (FileExists(path)) {
    state.durable_content = ReadWholeFile(path);
  } else {
    state.entry_pending = true;  // will be created by the caller
  }
  return files_.emplace(path, std::move(state)).first->second;
}

Result<std::unique_ptr<VfsFile>> FaultInjectingVfs::OpenAppend(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultKind kind;
  if (FaultFiresLocked(VfsOp::kOpen, path, &kind)) {
    return InjectedFailure(VfsOp::kOpen, kind, path);
  }
  const bool existed = FileExists(path);
  const int fd = OpenFd(path, O_WRONLY | O_CREAT | O_APPEND);
  if (fd < 0) {
    return Status::InvalidArgument(StrCat("cannot open ", path, ": ",
                                          std::strerror(errno)));
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    FileState state;
    if (existed) {
      state.durable_content = ReadWholeFile(path);
    } else {
      state.entry_pending = true;
    }
    files_.emplace(path, std::move(state));
  } else if (!existed) {
    // Re-creating a path whose removal (or prior create) is still
    // un-synced: the new entry is pending, shadowing whatever a crash
    // would have restored.
    FileState& state = it->second;
    const bool shadow_exists = state.removal_pending;
    const std::string shadow =
        state.removal_pending ? state.durable_content : state.shadowed_content;
    const bool shadow_exists2 =
        state.removal_pending ? shadow_exists : state.shadowed_exists;
    state = FileState{};
    state.entry_pending = true;
    state.shadowed_exists = shadow_exists2;
    state.shadowed_content = shadow;
  }
  return std::unique_ptr<VfsFile>(new FaultInjectingFile(this, path, fd));
}

Result<std::unique_ptr<VfsFile>> FaultInjectingVfs::OpenTrunc(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultKind kind;
  if (FaultFiresLocked(VfsOp::kOpen, path, &kind)) {
    return InjectedFailure(VfsOp::kOpen, kind, path);
  }
  const bool existed = FileExists(path);
  const int fd = OpenFd(path, O_WRONLY | O_CREAT | O_TRUNC);
  if (fd < 0) {
    return Status::InvalidArgument(StrCat("cannot open ", path, ": ",
                                          std::strerror(errno)));
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    // First contact via O_TRUNC destroyed the only copy of the prior
    // content, so we conservatively model the file as durably empty.
    // (Tracked files keep their recorded durable_content: truncation of
    // the working copy is not durable until the next Sync.)
    FileState state;
    if (!existed) state.entry_pending = true;
    files_.emplace(path, std::move(state));
  }
  return std::unique_ptr<VfsFile>(new FaultInjectingFile(this, path, fd));
}

Status FaultInjectingVfs::Rename(const std::string& from,
                                 const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultKind kind;
  if (FaultFiresLocked(VfsOp::kRename, from, &kind)) {
    return InjectedFailure(VfsOp::kRename, kind, from);
  }
  // Capture both crash values BEFORE the rename mutates the real tree.
  auto crash_value = [&](const std::string& path) -> CrashValue {
    auto it = files_.find(path);
    if (it == files_.end()) {
      CrashValue v;
      v.exists = FileExists(path);
      if (v.exists) v.content = ReadWholeFile(path);
      return v;
    }
    const FileState& s = it->second;
    CrashValue v;
    if (s.removal_pending) {
      v.exists = true;
      v.content = s.durable_content;
    } else if (s.entry_pending) {
      v.exists = s.shadowed_exists;
      v.content = s.shadowed_content;
    } else {
      v.exists = true;
      v.content = s.durable_content;
    }
    return v;
  };
  const CrashValue from_crash = crash_value(from);
  const CrashValue to_crash = crash_value(to);
  const FileState from_state = TouchLocked(from);

  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal(StrCat("rename of ", from, " to ", to,
                                   " failed: ", std::strerror(errno)));
  }

  // `to` now holds `from`'s inode: its data durability travels along;
  // the new name mapping is pending until the directory syncs, hiding
  // the previous durable occupant.
  FileState to_state;
  to_state.durable_content = from_state.durable_content;
  to_state.sync_poisoned = from_state.sync_poisoned;
  to_state.entry_pending = true;
  to_state.shadowed_exists = to_crash.exists;
  to_state.shadowed_content = to_crash.content;
  files_[to] = std::move(to_state);

  // `from`'s entry is gone, pending the directory sync; a crash before
  // it restores whatever was durable there.
  if (from_crash.exists) {
    FileState gone;
    gone.durable_content = from_crash.content;
    gone.removal_pending = true;
    files_[from] = std::move(gone);
  } else {
    files_.erase(from);
  }
  return Status::OK();
}

Status FaultInjectingVfs::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultKind kind;
  if (FaultFiresLocked(VfsOp::kRemove, path, &kind)) {
    return InjectedFailure(VfsOp::kRemove, kind, path);
  }
  CrashValue crash;
  auto it = files_.find(path);
  if (it == files_.end()) {
    crash.exists = FileExists(path);
    if (crash.exists) crash.content = ReadWholeFile(path);
  } else if (it->second.removal_pending) {
    crash.exists = true;
    crash.content = it->second.durable_content;
  } else if (it->second.entry_pending) {
    crash.exists = it->second.shadowed_exists;
    crash.content = it->second.shadowed_content;
  } else {
    crash.exists = true;
    crash.content = it->second.durable_content;
  }
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal(StrCat("remove of ", path, " failed: ",
                                   std::strerror(errno)));
  }
  if (crash.exists) {
    FileState gone;
    gone.durable_content = crash.content;
    gone.removal_pending = true;
    files_[path] = std::move(gone);
  } else {
    files_.erase(path);
  }
  return Status::OK();
}

Status FaultInjectingVfs::SyncParentDirectory(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultKind kind;
  if (FaultFiresLocked(VfsOp::kDirSync, path, &kind)) {
    if (kind == FaultKind::kFsyncLie) {
      return Status::OK();  // reported durable; pendings stay pending
    }
    return InjectedFailure(VfsOp::kDirSync, kind, path);
  }
  TXMOD_RETURN_IF_ERROR(PosixSyncDirectoryOf(path));
  // Every pending entry operation in this directory is now durable.
  const std::string dir = DirOf(path);
  for (auto it = files_.begin(); it != files_.end();) {
    if (DirOf(it->first) != dir) {
      ++it;
      continue;
    }
    FileState& state = it->second;
    if (state.removal_pending) {
      it = files_.erase(it);  // durably gone; nothing to restore
      continue;
    }
    if (state.entry_pending) {
      state.entry_pending = false;
      state.shadowed_exists = false;
      state.shadowed_content.clear();
    }
    ++it;
  }
  return Status::OK();
}

int64_t FaultInjectingVfs::NowMicros() {
  std::lock_guard<std::mutex> lock(mu_);
  return now_micros_;
}

void FaultInjectingVfs::SleepMicros(int64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  if (micros > 0) now_micros_ += micros;
  sleeps_.push_back(micros);
}

void FaultInjectingVfs::AdvanceClock(int64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  now_micros_ += micros;
}

std::vector<int64_t> FaultInjectingVfs::sleep_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sleeps_;
}

void FaultInjectingVfs::InjectFault(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.push_back(std::move(spec));
  fault_seen_.push_back(0);
}

void FaultInjectingVfs::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  fault_seen_.clear();
}

uint64_t FaultInjectingVfs::op_count(VfsOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = op_counts_.find(op);
  return it == op_counts_.end() ? 0 : it->second;
}

uint64_t FaultInjectingVfs::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

void FaultInjectingVfs::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, state] : files_) {
    bool exists;
    const std::string* content;
    if (state.removal_pending) {
      exists = true;
      content = &state.durable_content;
    } else if (state.entry_pending) {
      exists = state.shadowed_exists;
      content = &state.shadowed_content;
    } else {
      exists = true;
      content = &state.durable_content;
    }
    if (exists) {
      RewriteWholeFile(path, *content);
    } else {
      ::unlink(path.c_str());
    }
  }
  // Post-crash, the surviving tree is the durable baseline again.
  files_.clear();
}

}  // namespace txmod
