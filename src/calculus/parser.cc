#include "src/calculus/parser.h"

#include "src/common/lexer.h"
#include "src/common/str_util.h"

namespace txmod::calculus {

namespace {

bool IsReservedWord(const std::string& lower) {
  static const char* kWords[] = {"forall", "exists", "in",   "and", "or",
                                 "not",    "implies", "null", "old", "dplus",
                                 "dminus", "sum",     "avg",  "min", "max",
                                 "cnt",    "mlt"};
  for (const char* w : kWords) {
    if (lower == w) return true;
  }
  return false;
}

class ParserImpl {
 public:
  explicit ParserImpl(const std::string& text) : text_(text) {}

  Status Init() {
    TXMOD_ASSIGN_OR_RETURN(tokens_, Tokenize(text_));
    return Status::OK();
  }

  Result<Formula> ParseAll() {
    TXMOD_ASSIGN_OR_RETURN(Formula f, ParseFormula());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected input after formula");
    }
    return f;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrCat(message, " at ", DescribePosition(text_, Peek()),
               Peek().kind == TokenKind::kEnd
                   ? ""
                   : StrCat(" (near '", Peek().text, "')")));
  }

  Status ExpectOp(const char* op) {
    if (!Peek().IsOp(op)) return Error(StrCat("expected '", op, "'"));
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectName(const char* what) {
    if (Peek().kind != TokenKind::kIdent ||
        IsReservedWord(AsciiToLower(Peek().text))) {
      return Error(StrCat("expected ", what));
    }
    return Advance().text;
  }

  Result<Formula> ParseFormula() { return ParseImplies(); }

  /// 'forall'|'exists' var {',' var} '(' formula ')'. The parenthesized
  /// body makes the quantification self-delimiting, so it behaves as an
  /// atom for the connectives around it.
  Result<Formula> ParseQuantified() {
    const bool forall = Peek().IsKeyword("forall");
    Advance();
    std::vector<std::string> vars;
    TXMOD_ASSIGN_OR_RETURN(std::string v, ExpectName("variable"));
    vars.push_back(std::move(v));
    while (Peek().IsOp(",")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(std::string more, ExpectName("variable"));
      vars.push_back(std::move(more));
    }
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(Formula body, ParseFormula());
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    // (∀x,y)(W) desugars to (∀x)((∀y)(W)).
    for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
      body = forall ? Formula::Forall(*it, std::move(body))
                    : Formula::Exists(*it, std::move(body));
    }
    return body;
  }

  Result<Formula> ParseImplies() {
    TXMOD_ASSIGN_OR_RETURN(Formula lhs, ParseOr());
    if (Peek().IsKeyword("implies") || Peek().IsOp("=>")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(Formula rhs, ParseImplies());  // right-assoc
      return Formula::Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Formula> ParseOr() {
    TXMOD_ASSIGN_OR_RETURN(Formula lhs, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(Formula rhs, ParseAnd());
      lhs = Formula::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Formula> ParseAnd() {
    TXMOD_ASSIGN_OR_RETURN(Formula lhs, ParseNot());
    while (Peek().IsKeyword("and")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(Formula rhs, ParseNot());
      lhs = Formula::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Formula> ParseNot() {
    if (Peek().IsKeyword("not")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(Formula inner, ParseNot());
      return Formula::Not(std::move(inner));
    }
    // Quantifications may appear wherever an atom may (e.g. as the
    // consequent of an implication); their bodies are parenthesized, so
    // there is no ambiguity.
    if (Peek().IsKeyword("forall") || Peek().IsKeyword("exists")) {
      return ParseQuantified();
    }
    return ParseAtom();
  }

  // Looks ahead to decide whether a '(' starts a sub*formula* or a
  // parenthesized *term* (e.g. "(x.a + 1) > 0").
  bool ParenStartsFormula() const {
    // Scan to the matching ')' at depth 0; a comparison operator or
    // logical keyword at depth >= 1 before any term-only context decides.
    int depth = 0;
    for (int i = 0;; ++i) {
      const Token& t = Peek(i);
      if (t.kind == TokenKind::kEnd) return true;
      if (t.IsOp("(")) {
        ++depth;
      } else if (t.IsOp(")")) {
        --depth;
        if (depth == 0) return false;  // closed without formula evidence
      } else if (depth >= 1) {
        if (t.IsKeyword("forall") || t.IsKeyword("exists") ||
            t.IsKeyword("in") || t.IsKeyword("and") || t.IsKeyword("or") ||
            t.IsKeyword("not") || t.IsKeyword("implies") || t.IsOp("=>") ||
            t.IsOp("=") || t.IsOp("!=") || t.IsOp("<>") || t.IsOp("<") ||
            t.IsOp("<=") || t.IsOp(">") || t.IsOp(">=")) {
          return true;
        }
      }
    }
  }

  Result<Formula> ParseAtom() {
    if (Peek().IsOp("(") && ParenStartsFormula()) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(Formula inner, ParseFormula());
      TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    // Membership: var 'in' relref.
    if (Peek().kind == TokenKind::kIdent &&
        !IsReservedWord(AsciiToLower(Peek().text)) &&
        Peek(1).IsKeyword("in")) {
      const std::string var = Advance().text;
      Advance();  // in
      TXMOD_ASSIGN_OR_RETURN(CalcRelRef rel, ParseRelRef());
      return Formula::Membership(var, std::move(rel));
    }
    // Tuple equality: var '=' var (both bare names, no '.').
    if (Peek().kind == TokenKind::kIdent &&
        !IsReservedWord(AsciiToLower(Peek().text)) && Peek(1).IsOp("=") &&
        Peek(2).kind == TokenKind::kIdent &&
        !IsReservedWord(AsciiToLower(Peek(2).text)) && !Peek(3).IsOp(".")) {
      const std::string v1 = Advance().text;
      Advance();  // =
      const std::string v2 = Advance().text;
      return Formula::TupleEq(v1, v2);
    }
    // Comparison: term cmp term.
    TXMOD_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    CompareOp op;
    if (Peek().IsOp("=")) {
      op = CompareOp::kEq;
    } else if (Peek().IsOp("!=") || Peek().IsOp("<>")) {
      op = CompareOp::kNe;
    } else if (Peek().IsOp("<=")) {
      op = CompareOp::kLe;
    } else if (Peek().IsOp("<")) {
      op = CompareOp::kLt;
    } else if (Peek().IsOp(">=")) {
      op = CompareOp::kGe;
    } else if (Peek().IsOp(">")) {
      op = CompareOp::kGt;
    } else {
      return Error("expected comparison operator");
    }
    Advance();
    TXMOD_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Formula::Compare(op, std::move(lhs), std::move(rhs));
  }

  Result<CalcRelRef> ParseRelRef() {
    CalcRelRef ref;
    if (Peek().IsKeyword("old") || Peek().IsKeyword("dplus") ||
        Peek().IsKeyword("dminus")) {
      const std::string kw = AsciiToLower(Advance().text);
      ref.kind = kw == "old" ? CalcRelKind::kOld
                 : kw == "dplus" ? CalcRelKind::kDeltaPlus
                                 : CalcRelKind::kDeltaMinus;
      TXMOD_RETURN_IF_ERROR(ExpectOp("("));
      TXMOD_ASSIGN_OR_RETURN(ref.name, ExpectName("relation name"));
      TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
      return ref;
    }
    ref.kind = CalcRelKind::kBase;
    TXMOD_ASSIGN_OR_RETURN(ref.name, ExpectName("relation name"));
    return ref;
  }

  Result<Term> ParseTerm() { return ParseSum(); }

  Result<Term> ParseSum() {
    TXMOD_ASSIGN_OR_RETURN(Term lhs, ParseProduct());
    while (Peek().IsOp("+") || Peek().IsOp("-")) {
      const ArithOp op = Peek().IsOp("+") ? ArithOp::kAdd : ArithOp::kSub;
      Advance();
      TXMOD_ASSIGN_OR_RETURN(Term rhs, ParseProduct());
      lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Term> ParseProduct() {
    TXMOD_ASSIGN_OR_RETURN(Term lhs, ParseFactor());
    while (Peek().IsOp("*") || Peek().IsOp("/")) {
      const ArithOp op = Peek().IsOp("*") ? ArithOp::kMul : ArithOp::kDiv;
      Advance();
      TXMOD_ASSIGN_OR_RETURN(Term rhs, ParseFactor());
      lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Term> ParseFactor() {
    const Token& tok = Peek();
    if (tok.IsOp("(")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(Term inner, ParseTerm());
      TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    if (tok.IsOp("-")) {
      Advance();
      if (Peek().kind == TokenKind::kInt) {
        return Term::Const(Value::Int(-Advance().int_value));
      }
      if (Peek().kind == TokenKind::kFloat) {
        return Term::Const(Value::Double(-Advance().float_value));
      }
      return Error("expected number after unary '-'");
    }
    if (tok.kind == TokenKind::kInt) {
      return Term::Const(Value::Int(Advance().int_value));
    }
    if (tok.kind == TokenKind::kFloat) {
      return Term::Const(Value::Double(Advance().float_value));
    }
    if (tok.kind == TokenKind::kString) {
      return Term::Const(Value::String(Advance().string_value));
    }
    if (tok.IsKeyword("null")) {
      Advance();
      return Term::Const(Value::Null());
    }
    // Aggregates.
    if (tok.IsKeyword("cnt") || tok.IsKeyword("mlt")) {
      const CalcAgg agg =
          tok.IsKeyword("cnt") ? CalcAgg::kCnt : CalcAgg::kMlt;
      Advance();
      TXMOD_RETURN_IF_ERROR(ExpectOp("("));
      TXMOD_ASSIGN_OR_RETURN(CalcRelRef rel, ParseRelRef());
      TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
      return Term::Aggregate(agg, std::move(rel));
    }
    if (tok.IsKeyword("sum") || tok.IsKeyword("avg") ||
        tok.IsKeyword("min") || tok.IsKeyword("max")) {
      const std::string kw = AsciiToLower(Advance().text);
      const CalcAgg agg = kw == "sum"   ? CalcAgg::kSum
                          : kw == "avg" ? CalcAgg::kAvg
                          : kw == "min" ? CalcAgg::kMin
                                        : CalcAgg::kMax;
      TXMOD_RETURN_IF_ERROR(ExpectOp("("));
      TXMOD_ASSIGN_OR_RETURN(CalcRelRef rel, ParseRelRef());
      TXMOD_RETURN_IF_ERROR(ExpectOp(","));
      Term t = Term::Aggregate(agg, std::move(rel));
      if (Peek().kind == TokenKind::kInt) {
        t.agg_attr_index = static_cast<int>(Advance().int_value);
      } else {
        TXMOD_ASSIGN_OR_RETURN(t.agg_attr_name,
                               ExpectName("aggregate attribute"));
      }
      TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
      return t;
    }
    // Attribute selection: var '.' (name | index).
    if (tok.kind == TokenKind::kIdent &&
        !IsReservedWord(AsciiToLower(tok.text))) {
      const std::string var = Advance().text;
      TXMOD_RETURN_IF_ERROR(ExpectOp("."));
      if (Peek().kind == TokenKind::kInt) {
        return Term::AttrSelIndex(var, static_cast<int>(Advance().int_value));
      }
      TXMOD_ASSIGN_OR_RETURN(std::string attr, ExpectName("attribute name"));
      return Term::AttrSel(var, attr);
    }
    return Error("expected term");
  }

  const std::string& text_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Formula> ParseFormula(const std::string& text) {
  ParserImpl impl(text);
  TXMOD_RETURN_IF_ERROR(impl.Init());
  return impl.ParseAll();
}

}  // namespace txmod::calculus
