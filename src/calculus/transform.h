#ifndef TXMOD_CALCULUS_TRANSFORM_H_
#define TXMOD_CALCULUS_TRANSFORM_H_

#include "src/calculus/ast.h"

namespace txmod::calculus {

/// Negation normal form: implications are rewritten (a ⇒ b  ≡  ¬a ∨ b)
/// and negations pushed inward (De Morgan, quantifier duality) until they
/// sit directly on atoms. With `negate` the result is the NNF of ¬f —
/// used by the translator, which computes *violation* queries.
///
/// Comparisons under negation keep an explicit kNot wrapper rather than a
/// flipped operator: with null values, ¬(a < b) is *not* equivalent to
/// a >= b (both are false when a or b is null), and the translation must
/// preserve CL's exact semantics.
Formula ToNnf(const Formula& f, bool negate);

/// Simplifications that preserve semantics and normal form: flattening of
/// double negations and removal of constant-true conjuncts produced by
/// rewriting. (Kept intentionally small; relational-level optimization is
/// the job of query optimization, Section 5.2.1.)
Formula SimplifyNnf(Formula f);

}  // namespace txmod::calculus

#endif  // TXMOD_CALCULUS_TRANSFORM_H_
