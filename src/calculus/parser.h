#ifndef TXMOD_CALCULUS_PARSER_H_
#define TXMOD_CALCULUS_PARSER_H_

#include <string>

#include "src/calculus/ast.h"
#include "src/common/result.h"

namespace txmod::calculus {

/// Parses a CL well-formed formula from its textual syntax.
///
/// Grammar (keywords case-insensitive):
///
///   formula   := ('forall' | 'exists') var {',' var} '(' formula ')'
///              | implied
///   implied   := orf ['implies' implied]              (also accepts '=>')
///   orf       := andf {'or' andf}
///   andf      := notf {'and' notf}
///   notf      := 'not' notf | atom
///   atom      := '(' formula ')'
///              | var 'in' relref
///              | term cmp term                         (cmp: = != <> < <= > >=)
///              | var '=' var                           (tuple equality)
///   term      := sum
///   sum       := product {('+'|'-') product}
///   product   := factor {('*'|'/') factor}
///   factor    := const | var '.' (attr | index)
///              | ('sum'|'avg'|'min'|'max'|'mlt') '(' relref ',' attr ')'
///              | 'cnt' '(' relref ')'
///              | '(' term ')'
///   relref    := name | ('old'|'dplus'|'dminus') '(' name ')'
///
/// Name resolution, typing, and safety checks are done separately by
/// AnalyzeFormula (analyzer.h); the parser is purely syntactic.
Result<Formula> ParseFormula(const std::string& text);

}  // namespace txmod::calculus

#endif  // TXMOD_CALCULUS_PARSER_H_
