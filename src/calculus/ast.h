#ifndef TXMOD_CALCULUS_AST_H_
#define TXMOD_CALCULUS_AST_H_

#include <string>
#include <vector>

#include "src/relational/value.h"

namespace txmod::calculus {

/// Tuple-set constants of CL (Definition 4.1): base relations plus the
/// auxiliary relations the DBMS maintains for integrity control
/// (Section 4.1) — the pre-transaction state old(R) and the transaction
/// differentials. Plain constraints reference only base relations;
/// transition constraints reference old(R); the differential references
/// are introduced by the rule optimizer (OptC), not by users.
enum class CalcRelKind { kBase, kOld, kDeltaPlus, kDeltaMinus };

struct CalcRelRef {
  CalcRelKind kind = CalcRelKind::kBase;
  std::string name;

  bool operator==(const CalcRelRef& other) const {
    return kind == other.kind && name == other.name;
  }
  std::string ToString() const;
};

/// Arithmetic function symbols FV = {+, -, *, /} (Definition 4.1).
enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Aggregate function symbols FA ∪ FC (Definition 4.1). kMlt is the
/// multiset multiplicity function of the paper's multi-set extension [8];
/// it is recognized by the parser and rejected by the analyzer (set
/// semantics in this library — see DESIGN.md §5.2).
enum class CalcAgg { kSum, kAvg, kMin, kMax, kCnt, kMlt };

const char* ArithOpToString(ArithOp op);
const char* CalcAggToString(CalcAgg agg);

/// Terms (Definition 4.2): value constants, attribute selections x.i,
/// arithmetic applications, aggregate/counting applications.
struct Term {
  enum class Kind { kConst, kAttrSel, kArith, kAggregate };

  Kind kind = Kind::kConst;

  // kConst
  Value constant;

  // kAttrSel: variable x plus attribute (written as name or index; the
  // analyzer fills attr_index from the range relation's schema).
  std::string var;
  std::string attr_name;
  int attr_index = -1;

  // kArith
  ArithOp arith_op = ArithOp::kAdd;
  std::vector<Term> children;  // exactly 2 for kArith

  // kAggregate: func(rel, attr) for FA, func(rel) for CNT/MLT.
  CalcAgg agg = CalcAgg::kCnt;
  CalcRelRef rel;
  std::string agg_attr_name;
  int agg_attr_index = -1;

  static Term Const(Value v);
  static Term AttrSel(std::string var, std::string attr_name);
  static Term AttrSelIndex(std::string var, int index);
  static Term Arith(ArithOp op, Term lhs, Term rhs);
  static Term Aggregate(CalcAgg agg, CalcRelRef rel,
                        std::string attr_name = "");

  bool Equals(const Term& other) const;
  std::string ToString() const;
};

/// Value predicate symbols PV (Definition 4.1).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);
CompareOp NegateCompare(CompareOp op);

/// Well-formed formulas (Definitions 4.3-4.4): atomic formulas
/// (comparisons, set membership, tuple equality), connectives, and
/// quantifications.
struct Formula {
  enum class Kind {
    kCompare,     // T1 θ T2
    kMembership,  // x ∈ R
    kTupleEq,     // x = y (tuple predicate)
    kNot,
    kAnd,
    kOr,
    kImplies,
    kForall,      // (∀x)(W)
    kExists,      // (∃x)(W)
  };

  Kind kind = Kind::kCompare;

  // kCompare
  CompareOp cmp = CompareOp::kEq;
  std::vector<Term> terms;  // exactly 2 for kCompare

  // kMembership / kTupleEq / quantifiers
  std::string var;
  std::string var2;  // kTupleEq only
  CalcRelRef rel;    // kMembership only

  std::vector<Formula> children;  // 1 for kNot/quantifiers, 2 for binary

  static Formula Compare(CompareOp op, Term lhs, Term rhs);
  static Formula Membership(std::string var, CalcRelRef rel);
  static Formula TupleEq(std::string var1, std::string var2);
  static Formula Not(Formula f);
  static Formula And(Formula lhs, Formula rhs);
  static Formula Or(Formula lhs, Formula rhs);
  static Formula Implies(Formula lhs, Formula rhs);
  static Formula Forall(std::string var, Formula body);
  static Formula Exists(std::string var, Formula body);

  bool IsAtom() const {
    return kind == Kind::kCompare || kind == Kind::kMembership ||
           kind == Kind::kTupleEq;
  }
  bool IsQuantifier() const {
    return kind == Kind::kForall || kind == Kind::kExists;
  }

  bool Equals(const Formula& other) const;

  /// Renders in the textual CL syntax accepted by the parser, e.g.
  /// "forall x (x in beer implies x.alcohol >= 0)".
  std::string ToString() const;

  /// Collects every CalcRelRef mentioned (memberships and aggregates).
  void CollectRelRefs(std::vector<CalcRelRef>* refs) const;
};

}  // namespace txmod::calculus

#endif  // TXMOD_CALCULUS_AST_H_
