#ifndef TXMOD_CALCULUS_ANALYZER_H_
#define TXMOD_CALCULUS_ANALYZER_H_

#include <map>
#include <string>

#include "src/calculus/ast.h"
#include "src/common/result.h"
#include "src/relational/schema.h"

namespace txmod::calculus {

/// A formula that passed semantic analysis: attribute selections carry
/// resolved indices, every variable has a unique range relation, and the
/// formula is closed and type-correct.
struct AnalyzedFormula {
  Formula formula;
  /// Range relation of each (quantified) tuple variable, derived from its
  /// membership atom. Safe formulas bind every variable to exactly one
  /// tuple-set constant.
  std::map<std::string, CalcRelRef> ranges;
};

/// Semantic analysis of a CL constraint (run once at constraint definition
/// time). Checks and transformations:
///  * every tuple variable is bound by exactly one quantifier (no
///    shadowing) and used within its scope; the formula is closed;
///  * every variable has exactly one membership atom `x in R`, which makes
///    the formula range-restricted (safe) and determines the schema used
///    to resolve `x.attr` selections to attribute indices;
///  * attribute selections, arithmetic, comparisons and aggregates type
///    check against the database schema (old/dplus/dminus references use
///    the base relation's schema);
///  * MLT (multiset multiplicity, from the multi-set extension [8] of the
///    paper) is rejected: this library implements the paper's set
///    semantics — see DESIGN.md §5.2.
Result<AnalyzedFormula> AnalyzeFormula(const Formula& formula,
                                       const DatabaseSchema& schema);

}  // namespace txmod::calculus

#endif  // TXMOD_CALCULUS_ANALYZER_H_
