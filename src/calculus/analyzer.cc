#include "src/calculus/analyzer.h"

#include <set>

#include "src/common/str_util.h"

namespace txmod::calculus {

namespace {

/// Result type of term type checking: an attribute type or "null constant"
/// (which compares with anything).
struct TermType {
  bool is_null_const = false;
  AttrType type = AttrType::kInt;
};

class Analyzer {
 public:
  explicit Analyzer(const DatabaseSchema& schema) : schema_(schema) {}

  Result<AnalyzedFormula> Run(Formula formula) {
    // Pass 1: scopes and ranges.
    TXMOD_RETURN_IF_ERROR(CollectScopes(formula, {}));
    // Safety: every quantified variable needs a range membership, or the
    // formula is domain-dependent (it would quantify over the infinite
    // universe rather than a tuple-set constant).
    for (const std::string& var : all_vars_) {
      if (ranges_.count(var) == 0) {
        return Status::InvalidArgument(
            StrCat("variable ", var,
                   " has no membership atom; formulas must be "
                   "range-restricted (safe)"));
      }
    }
    // Pass 2: resolve attribute selections and type check (in place).
    TXMOD_RETURN_IF_ERROR(Resolve(&formula));
    AnalyzedFormula out;
    out.formula = std::move(formula);
    out.ranges = std::move(ranges_);
    return out;
  }

 private:
  Result<const RelationSchema*> SchemaOf(const CalcRelRef& ref) {
    // Auxiliary relations share the base relation's schema (Section 4.1).
    TXMOD_ASSIGN_OR_RETURN(const RelationSchema* s, schema_.Find(ref.name));
    return s;
  }

  // --- pass 1: scope and range collection ---------------------------------

  Status CollectScopes(const Formula& f, std::set<std::string> in_scope) {
    switch (f.kind) {
      case Formula::Kind::kForall:
      case Formula::Kind::kExists: {
        if (all_vars_.count(f.var) > 0) {
          return Status::InvalidArgument(
              StrCat("variable ", f.var,
                     " bound more than once (shadowing is not allowed)"));
        }
        all_vars_.insert(f.var);
        in_scope.insert(f.var);
        return CollectScopes(f.children[0], std::move(in_scope));
      }
      case Formula::Kind::kMembership: {
        TXMOD_RETURN_IF_ERROR(CheckVarInScope(f.var, in_scope));
        TXMOD_RETURN_IF_ERROR(SchemaOf(f.rel).status());
        auto it = ranges_.find(f.var);
        if (it != ranges_.end() && !(it->second == f.rel)) {
          return Status::InvalidArgument(
              StrCat("variable ", f.var, " ranges over both ",
                     it->second.ToString(), " and ", f.rel.ToString(),
                     "; a variable must have a unique range"));
        }
        ranges_.emplace(f.var, f.rel);
        return Status::OK();
      }
      case Formula::Kind::kTupleEq:
        TXMOD_RETURN_IF_ERROR(CheckVarInScope(f.var, in_scope));
        return CheckVarInScope(f.var2, in_scope);
      case Formula::Kind::kCompare:
        for (const Term& t : f.terms) {
          TXMOD_RETURN_IF_ERROR(CollectTermVars(t, in_scope));
        }
        return Status::OK();
      default:
        for (const Formula& c : f.children) {
          TXMOD_RETURN_IF_ERROR(CollectScopes(c, in_scope));
        }
        return Status::OK();
    }
  }

  Status CollectTermVars(const Term& t, const std::set<std::string>& scope) {
    switch (t.kind) {
      case Term::Kind::kAttrSel:
        return CheckVarInScope(t.var, scope);
      case Term::Kind::kArith:
        for (const Term& c : t.children) {
          TXMOD_RETURN_IF_ERROR(CollectTermVars(c, scope));
        }
        return Status::OK();
      case Term::Kind::kAggregate:
        if (t.agg == CalcAgg::kMlt) {
          return Status::Unimplemented(
              "MLT belongs to the multi-set algebra extension [8]; this "
              "library implements the paper's set semantics (DESIGN.md "
              "section 5.2)");
        }
        return SchemaOf(t.rel).status();
      case Term::Kind::kConst:
        return Status::OK();
    }
    return Status::OK();
  }

  Status CheckVarInScope(const std::string& var,
                         const std::set<std::string>& scope) {
    if (scope.count(var) == 0) {
      return Status::InvalidArgument(
          StrCat("variable ", var,
                 " is free; constraints must be closed formulas"));
    }
    return Status::OK();
  }

  // --- pass 2: resolution and type checking --------------------------------

  Status Resolve(Formula* f) {
    switch (f->kind) {
      case Formula::Kind::kCompare: {
        TXMOD_ASSIGN_OR_RETURN(TermType lt, ResolveTerm(&f->terms[0]));
        TXMOD_ASSIGN_OR_RETURN(TermType rt, ResolveTerm(&f->terms[1]));
        if (!lt.is_null_const && !rt.is_null_const) {
          const bool l_num = lt.type != AttrType::kString;
          const bool r_num = rt.type != AttrType::kString;
          if (l_num != r_num) {
            return Status::InvalidArgument(
                StrCat("type mismatch in comparison: ",
                       f->terms[0].ToString(), " ", CompareOpToString(f->cmp),
                       " ", f->terms[1].ToString()));
          }
        }
        return Status::OK();
      }
      case Formula::Kind::kTupleEq: {
        // Both sides must range over relations of equal arity.
        TXMOD_ASSIGN_OR_RETURN(const RelationSchema* s1,
                               RangeSchema(f->var));
        TXMOD_ASSIGN_OR_RETURN(const RelationSchema* s2,
                               RangeSchema(f->var2));
        if (s1->arity() != s2->arity()) {
          return Status::InvalidArgument(
              StrCat("tuple comparison ", f->var, " = ", f->var2,
                     " over different arities"));
        }
        return Status::OK();
      }
      case Formula::Kind::kMembership:
        return Status::OK();
      default:
        for (Formula& c : f->children) {
          TXMOD_RETURN_IF_ERROR(Resolve(&c));
        }
        return Status::OK();
    }
  }

  Result<const RelationSchema*> RangeSchema(const std::string& var) {
    auto it = ranges_.find(var);
    if (it == ranges_.end()) {
      return Status::InvalidArgument(
          StrCat("variable ", var,
                 " has no membership atom; formulas must be "
                 "range-restricted (safe)"));
    }
    return SchemaOf(it->second);
  }

  Result<TermType> ResolveTerm(Term* t) {
    switch (t->kind) {
      case Term::Kind::kConst: {
        TermType tt;
        if (t->constant.is_null()) {
          tt.is_null_const = true;
        } else if (t->constant.is_int()) {
          tt.type = AttrType::kInt;
        } else if (t->constant.is_double()) {
          tt.type = AttrType::kDouble;
        } else {
          tt.type = AttrType::kString;
        }
        return tt;
      }
      case Term::Kind::kAttrSel: {
        TXMOD_ASSIGN_OR_RETURN(const RelationSchema* s, RangeSchema(t->var));
        if (t->attr_index < 0) {
          TXMOD_ASSIGN_OR_RETURN(t->attr_index,
                                 s->AttributeIndex(t->attr_name));
        } else if (t->attr_index >= static_cast<int>(s->arity())) {
          return Status::InvalidArgument(
              StrCat("attribute index ", t->attr_index, " of variable ",
                     t->var, " out of range for ", s->name()));
        } else if (t->attr_name.empty()) {
          t->attr_name = s->attribute(t->attr_index).name;
        }
        TermType tt;
        tt.type = s->attribute(t->attr_index).type;
        return tt;
      }
      case Term::Kind::kArith: {
        TXMOD_ASSIGN_OR_RETURN(TermType lt, ResolveTerm(&t->children[0]));
        TXMOD_ASSIGN_OR_RETURN(TermType rt, ResolveTerm(&t->children[1]));
        if ((!lt.is_null_const && lt.type == AttrType::kString) ||
            (!rt.is_null_const && rt.type == AttrType::kString)) {
          return Status::InvalidArgument(
              StrCat("arithmetic over non-numeric operands in ",
                     t->ToString()));
        }
        TermType tt;
        tt.type = (lt.type == AttrType::kDouble || rt.type == AttrType::kDouble)
                      ? AttrType::kDouble
                      : AttrType::kInt;
        return tt;
      }
      case Term::Kind::kAggregate: {
        if (t->agg == CalcAgg::kMlt) {
          return Status::Unimplemented(
              "MLT belongs to the multi-set algebra extension [8]; this "
              "library implements the paper's set semantics (DESIGN.md "
              "section 5.2)");
        }
        TXMOD_ASSIGN_OR_RETURN(const RelationSchema* s, SchemaOf(t->rel));
        TermType tt;
        if (t->agg == CalcAgg::kCnt) {
          tt.type = AttrType::kInt;
          return tt;
        }
        if (t->agg_attr_index < 0) {
          if (t->agg_attr_name.empty()) {
            return Status::InvalidArgument(
                StrCat(CalcAggToString(t->agg),
                       " requires an attribute argument"));
          }
          TXMOD_ASSIGN_OR_RETURN(t->agg_attr_index,
                                 s->AttributeIndex(t->agg_attr_name));
        } else if (t->agg_attr_index >= static_cast<int>(s->arity())) {
          return Status::InvalidArgument(
              StrCat("aggregate attribute index ", t->agg_attr_index,
                     " out of range for ", s->name()));
        } else if (t->agg_attr_name.empty()) {
          t->agg_attr_name = s->attribute(t->agg_attr_index).name;
        }
        const AttrType attr_type = s->attribute(t->agg_attr_index).type;
        if ((t->agg == CalcAgg::kSum || t->agg == CalcAgg::kAvg) &&
            attr_type == AttrType::kString) {
          return Status::InvalidArgument(
              StrCat(CalcAggToString(t->agg), " over non-numeric attribute ",
                     t->agg_attr_name, " of ", s->name()));
        }
        tt.type = t->agg == CalcAgg::kAvg ? AttrType::kDouble : attr_type;
        return tt;
      }
    }
    return Status::Internal("unknown term kind");
  }

  const DatabaseSchema& schema_;
  std::set<std::string> all_vars_;
  std::map<std::string, CalcRelRef> ranges_;
};

}  // namespace

Result<AnalyzedFormula> AnalyzeFormula(const Formula& formula,
                                       const DatabaseSchema& schema) {
  Analyzer analyzer(schema);
  return analyzer.Run(formula);
}

}  // namespace txmod::calculus
