#include "src/calculus/transform.h"

namespace txmod::calculus {

Formula ToNnf(const Formula& f, bool negate) {
  switch (f.kind) {
    case Formula::Kind::kCompare:
    case Formula::Kind::kMembership:
    case Formula::Kind::kTupleEq: {
      Formula atom = f;
      return negate ? Formula::Not(std::move(atom)) : atom;
    }
    case Formula::Kind::kNot:
      return ToNnf(f.children[0], !negate);
    case Formula::Kind::kAnd:
      // ¬(a ∧ b) = ¬a ∨ ¬b.
      if (negate) {
        return Formula::Or(ToNnf(f.children[0], true),
                           ToNnf(f.children[1], true));
      }
      return Formula::And(ToNnf(f.children[0], false),
                          ToNnf(f.children[1], false));
    case Formula::Kind::kOr:
      if (negate) {
        return Formula::And(ToNnf(f.children[0], true),
                            ToNnf(f.children[1], true));
      }
      return Formula::Or(ToNnf(f.children[0], false),
                         ToNnf(f.children[1], false));
    case Formula::Kind::kImplies:
      // a ⇒ b = ¬a ∨ b;   ¬(a ⇒ b) = a ∧ ¬b.
      if (negate) {
        return Formula::And(ToNnf(f.children[0], false),
                            ToNnf(f.children[1], true));
      }
      return Formula::Or(ToNnf(f.children[0], true),
                         ToNnf(f.children[1], false));
    case Formula::Kind::kForall:
      // ¬(∀x)(W) = (∃x)(¬W).
      if (negate) {
        return Formula::Exists(f.var, ToNnf(f.children[0], true));
      }
      return Formula::Forall(f.var, ToNnf(f.children[0], false));
    case Formula::Kind::kExists:
      if (negate) {
        return Formula::Forall(f.var, ToNnf(f.children[0], true));
      }
      return Formula::Exists(f.var, ToNnf(f.children[0], false));
  }
  return f;
}

Formula SimplifyNnf(Formula f) {
  if (f.kind == Formula::Kind::kNot &&
      f.children[0].kind == Formula::Kind::kNot) {
    return SimplifyNnf(f.children[0].children[0]);
  }
  for (Formula& c : f.children) c = SimplifyNnf(std::move(c));
  return f;
}

}  // namespace txmod::calculus
