#include "src/calculus/ast.h"

#include "src/common/str_util.h"

namespace txmod::calculus {

std::string CalcRelRef::ToString() const {
  switch (kind) {
    case CalcRelKind::kBase:
      return name;
    case CalcRelKind::kOld:
      return StrCat("old(", name, ")");
    case CalcRelKind::kDeltaPlus:
      return StrCat("dplus(", name, ")");
    case CalcRelKind::kDeltaMinus:
      return StrCat("dminus(", name, ")");
  }
  return name;
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

const char* CalcAggToString(CalcAgg agg) {
  switch (agg) {
    case CalcAgg::kSum:
      return "sum";
    case CalcAgg::kAvg:
      return "avg";
    case CalcAgg::kMin:
      return "min";
    case CalcAgg::kMax:
      return "max";
    case CalcAgg::kCnt:
      return "cnt";
    case CalcAgg::kMlt:
      return "mlt";
  }
  return "?";
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp NegateCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

Term Term::Const(Value v) {
  Term t;
  t.kind = Kind::kConst;
  t.constant = std::move(v);
  return t;
}

Term Term::AttrSel(std::string var, std::string attr_name) {
  Term t;
  t.kind = Kind::kAttrSel;
  t.var = std::move(var);
  t.attr_name = std::move(attr_name);
  return t;
}

Term Term::AttrSelIndex(std::string var, int index) {
  Term t;
  t.kind = Kind::kAttrSel;
  t.var = std::move(var);
  t.attr_index = index;
  return t;
}

Term Term::Arith(ArithOp op, Term lhs, Term rhs) {
  Term t;
  t.kind = Kind::kArith;
  t.arith_op = op;
  t.children.push_back(std::move(lhs));
  t.children.push_back(std::move(rhs));
  return t;
}

Term Term::Aggregate(CalcAgg agg, CalcRelRef rel, std::string attr_name) {
  Term t;
  t.kind = Kind::kAggregate;
  t.agg = agg;
  t.rel = std::move(rel);
  t.agg_attr_name = std::move(attr_name);
  return t;
}

bool Term::Equals(const Term& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kConst:
      return constant == other.constant;
    case Kind::kAttrSel:
      return var == other.var && attr_index == other.attr_index &&
             attr_name == other.attr_name;
    case Kind::kArith:
      return arith_op == other.arith_op &&
             children[0].Equals(other.children[0]) &&
             children[1].Equals(other.children[1]);
    case Kind::kAggregate:
      return agg == other.agg && rel == other.rel &&
             agg_attr_name == other.agg_attr_name &&
             agg_attr_index == other.agg_attr_index;
  }
  return false;
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return constant.ToString();
    case Kind::kAttrSel:
      if (!attr_name.empty()) return StrCat(var, ".", attr_name);
      return StrCat(var, ".", attr_index);
    case Kind::kArith:
      return StrCat("(", children[0].ToString(), " ",
                    ArithOpToString(arith_op), " ", children[1].ToString(),
                    ")");
    case Kind::kAggregate: {
      std::string fn = AsciiToLower(CalcAggToString(agg));
      if (agg == CalcAgg::kCnt) return StrCat(fn, "(", rel.ToString(), ")");
      const std::string attr = agg_attr_name.empty()
                                   ? StrCat(agg_attr_index)
                                   : agg_attr_name;
      return StrCat(fn, "(", rel.ToString(), ", ", attr, ")");
    }
  }
  return "?";
}

Formula Formula::Compare(CompareOp op, Term lhs, Term rhs) {
  Formula f;
  f.kind = Kind::kCompare;
  f.cmp = op;
  f.terms.push_back(std::move(lhs));
  f.terms.push_back(std::move(rhs));
  return f;
}

Formula Formula::Membership(std::string var, CalcRelRef rel) {
  Formula f;
  f.kind = Kind::kMembership;
  f.var = std::move(var);
  f.rel = std::move(rel);
  return f;
}

Formula Formula::TupleEq(std::string var1, std::string var2) {
  Formula f;
  f.kind = Kind::kTupleEq;
  f.var = std::move(var1);
  f.var2 = std::move(var2);
  return f;
}

Formula Formula::Not(Formula inner) {
  Formula f;
  f.kind = Kind::kNot;
  f.children.push_back(std::move(inner));
  return f;
}

namespace {

Formula BinaryFormula(Formula::Kind kind, Formula lhs, Formula rhs) {
  Formula f;
  f.kind = kind;
  f.children.push_back(std::move(lhs));
  f.children.push_back(std::move(rhs));
  return f;
}

Formula QuantFormula(Formula::Kind kind, std::string var, Formula body) {
  Formula f;
  f.kind = kind;
  f.var = std::move(var);
  f.children.push_back(std::move(body));
  return f;
}

}  // namespace

Formula Formula::And(Formula lhs, Formula rhs) {
  return BinaryFormula(Kind::kAnd, std::move(lhs), std::move(rhs));
}
Formula Formula::Or(Formula lhs, Formula rhs) {
  return BinaryFormula(Kind::kOr, std::move(lhs), std::move(rhs));
}
Formula Formula::Implies(Formula lhs, Formula rhs) {
  return BinaryFormula(Kind::kImplies, std::move(lhs), std::move(rhs));
}
Formula Formula::Forall(std::string var, Formula body) {
  return QuantFormula(Kind::kForall, std::move(var), std::move(body));
}
Formula Formula::Exists(std::string var, Formula body) {
  return QuantFormula(Kind::kExists, std::move(var), std::move(body));
}

bool Formula::Equals(const Formula& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kCompare:
      if (cmp != other.cmp) return false;
      return terms[0].Equals(other.terms[0]) &&
             terms[1].Equals(other.terms[1]);
    case Kind::kMembership:
      return var == other.var && rel == other.rel;
    case Kind::kTupleEq:
      return var == other.var && var2 == other.var2;
    case Kind::kForall:
    case Kind::kExists:
      if (var != other.var) return false;
      break;
    default:
      break;
  }
  if (children.size() != other.children.size()) return false;
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (!children[i].Equals(other.children[i])) return false;
  }
  return true;
}

namespace {

// Precedence: implies < or < and < not < atoms.
int FormulaPrecedence(Formula::Kind kind) {
  switch (kind) {
    case Formula::Kind::kImplies:
      return 1;
    case Formula::Kind::kOr:
      return 2;
    case Formula::Kind::kAnd:
      return 3;
    case Formula::Kind::kNot:
      return 4;
    default:
      return 5;
  }
}

std::string ToStringPrec(const Formula& f, int parent_prec) {
  std::string out;
  switch (f.kind) {
    case Formula::Kind::kCompare:
      out = StrCat(f.terms[0].ToString(), " ", CompareOpToString(f.cmp), " ",
                   f.terms[1].ToString());
      break;
    case Formula::Kind::kMembership:
      out = StrCat(f.var, " in ", f.rel.ToString());
      break;
    case Formula::Kind::kTupleEq:
      out = StrCat(f.var, " = ", f.var2);
      break;
    case Formula::Kind::kNot:
      out = StrCat("not ",
                   ToStringPrec(f.children[0],
                                FormulaPrecedence(Formula::Kind::kNot)));
      break;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies: {
      const char* op = f.kind == Formula::Kind::kAnd
                           ? "and"
                           : f.kind == Formula::Kind::kOr ? "or" : "implies";
      const int prec = FormulaPrecedence(f.kind);
      // implies is right-associative; and/or are left-associative.
      const int lhs_prec =
          f.kind == Formula::Kind::kImplies ? prec + 1 : prec;
      const int rhs_prec =
          f.kind == Formula::Kind::kImplies ? prec : prec + 1;
      out = StrCat(ToStringPrec(f.children[0], lhs_prec), " ", op, " ",
                   ToStringPrec(f.children[1], rhs_prec));
      break;
    }
    case Formula::Kind::kForall:
    case Formula::Kind::kExists: {
      const char* q =
          f.kind == Formula::Kind::kForall ? "forall" : "exists";
      // Quantifier bodies are always parenthesized: forall x (...).
      return StrCat(q, " ", f.var, " (", ToStringPrec(f.children[0], 0),
                    ")");
    }
  }
  if (FormulaPrecedence(f.kind) < parent_prec && !f.IsAtom()) {
    return StrCat("(", out, ")");
  }
  return out;
}

void CollectTermRelRefs(const Term& t, std::vector<CalcRelRef>* refs) {
  switch (t.kind) {
    case Term::Kind::kAggregate:
      refs->push_back(t.rel);
      break;
    case Term::Kind::kArith:
      for (const Term& c : t.children) CollectTermRelRefs(c, refs);
      break;
    default:
      break;
  }
}

}  // namespace

std::string Formula::ToString() const { return ToStringPrec(*this, 0); }

void Formula::CollectRelRefs(std::vector<CalcRelRef>* refs) const {
  switch (kind) {
    case Kind::kMembership:
      refs->push_back(rel);
      break;
    case Kind::kCompare:
      for (const Term& t : terms) CollectTermRelRefs(t, refs);
      break;
    default:
      break;
  }
  for (const Formula& c : children) c.CollectRelRefs(refs);
}

}  // namespace txmod::calculus
