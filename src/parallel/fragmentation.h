#ifndef TXMOD_PARALLEL_FRAGMENTATION_H_
#define TXMOD_PARALLEL_FRAGMENTATION_H_

#include <string>

#include "src/relational/tuple.h"

namespace txmod::parallel {

/// Horizontal fragmentation strategies for PRISMA-style fragmented
/// relations ([7]: relations are horizontally fragmented across the nodes
/// of the POOMA machine).
enum class FragmentationKind {
  /// Hash on one attribute: tuples with equal attribute values co-locate,
  /// which makes single-attribute joins/set-operations node-local when
  /// both operands are partitioned on the join attribute.
  kHash,
  /// Deterministic spread ignoring values (whole-tuple hash). Balances
  /// load; every multi-fragment operation needs redistribution.
  kRoundRobin,
};

struct FragmentationScheme {
  FragmentationKind kind = FragmentationKind::kRoundRobin;
  int attr = 0;  // kHash: the partitioning attribute
};

/// Fragment index of `tuple` under `scheme` with `num_fragments` nodes.
int FragmentOf(const Tuple& tuple, const FragmentationScheme& scheme,
               int num_fragments);

/// Fragment index for a raw value under hash partitioning (used when
/// redistributing intermediate results on a join attribute).
int FragmentOfValue(const Value& value, int num_fragments);

}  // namespace txmod::parallel

#endif  // TXMOD_PARALLEL_FRAGMENTATION_H_
