#include "src/parallel/thread_pool.h"

#include <cstdlib>
#include <random>

namespace txmod::parallel {

/// Shared state of one running phase. Heap-allocated and shared_ptr-held
/// so a worker that grabs the phase just as it completes still holds a
/// live object after Run returns. One mutex guards the queues and
/// counters: morsels are coarse (hundreds to thousands of tuples), so a
/// pop is negligible against the task it schedules, and a single lock
/// keeps the stealing policy easy to reason about (and TSan-clean).
struct ThreadPool::PhaseState {
  std::mutex mu;
  std::condition_variable done_cv;
  std::vector<std::deque<std::function<void()>>> queues;
  std::deque<std::function<void()>> followers;
  std::size_t queued = 0;     // tasks still sitting in `queues`
  std::size_t remaining = 0;  // tasks not yet finished (incl. running)
  uint64_t seed = 0;
  std::size_t participants = 1;  // pool threads + the Run caller
};

ThreadPool::ThreadPool(std::size_t workers) {
  // workers == 0 is a valid caller-only pool: Run's caller is always a
  // participant, so every task still executes (on the calling thread).
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t ThreadPool::DefaultWorkerCount() {
  if (const char* env = std::getenv("TXMOD_PARALLEL_WORKERS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(DefaultWorkerCount());
  return pool;
}

void ThreadPool::WorkerLoop(std::size_t id) {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<PhaseState> st;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (phase_ != nullptr && epoch_ != seen);
      });
      if (stop_) return;
      seen = epoch_;
      st = phase_;
    }
    Participate(*st, id);
  }
}

void ThreadPool::Participate(PhaseState& st, std::size_t participant) {
  // The steal order is a deterministic function of (phase seed,
  // participant): distinct seeds exercise distinct interleavings, which
  // the determinism tests sweep.
  std::mt19937_64 rng(st.seed * 0x9e3779b97f4a7c15ULL + participant + 1);
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(st.mu);
      const std::size_t nq = st.queues.size();
      // Owned shards first, front-to-back.
      for (std::size_t s = participant; s < nq; s += st.participants) {
        if (!st.queues[s].empty()) {
          task = std::move(st.queues[s].front());
          st.queues[s].pop_front();
          break;
        }
      }
      if (!task && st.queued > 0) {
        // Steal from the back of a victim chosen by the seeded order.
        std::vector<std::size_t> victims;
        victims.reserve(nq);
        for (std::size_t s = 0; s < nq; ++s) {
          if (!st.queues[s].empty()) victims.push_back(s);
        }
        if (!victims.empty()) {
          const std::size_t v = victims[rng() % victims.size()];
          task = std::move(st.queues[v].back());
          st.queues[v].pop_back();
        }
      }
      if (task) {
        --st.queued;
      } else if (st.queued == 0 && !st.followers.empty()) {
        // Every queue task is at least scheduled; followers may run.
        task = std::move(st.followers.front());
        st.followers.pop_front();
      }
    }
    if (!task) return;  // running tasks elsewhere finish on their threads
    task();
    {
      std::lock_guard<std::mutex> lock(st.mu);
      if (--st.remaining == 0) st.done_cv.notify_all();
    }
  }
}

void ThreadPool::Run(PhasePlan plan) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  auto st = std::make_shared<PhaseState>();
  st->queues = std::move(plan.queues);
  st->followers = std::move(plan.followers);
  st->seed = plan.steal_seed;
  st->participants = threads_.size() + 1;
  for (const auto& q : st->queues) st->queued += q.size();
  st->remaining = st->queued + st->followers.size();
  if (st->remaining == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_ = st;
    ++epoch_;
  }
  work_cv_.notify_all();
  Participate(*st, threads_.size());  // the caller is the last participant
  {
    std::unique_lock<std::mutex> lock(st->mu);
    st->done_cv.wait(lock, [&] { return st->remaining == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_.reset();
  }
}

void ExchangeQueue::Push(std::vector<Tuple> batch) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [&] { return q_.size() < capacity_ || !consumer_live_; });
  q_.push_back(std::move(batch));
  ++batches_;
  not_empty_.notify_one();
}

bool ExchangeQueue::Pop(std::vector<Tuple>* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  consumer_live_ = true;
  not_empty_.wait(lock, [&] { return !q_.empty() || producers_ == 0; });
  if (q_.empty()) return false;
  *batch = std::move(q_.front());
  q_.pop_front();
  not_full_.notify_all();
  return true;
}

void ExchangeQueue::ProducerDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--producers_ == 0) not_empty_.notify_all();
}

uint64_t ExchangeQueue::batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

}  // namespace txmod::parallel
