#ifndef TXMOD_PARALLEL_EXECUTOR_H_
#define TXMOD_PARALLEL_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/algebra/physical_plan.h"
#include "src/algebra/statement.h"
#include "src/parallel/cost_model.h"
#include "src/parallel/parallel_db.h"
#include "src/parallel/thread_pool.h"

namespace txmod::parallel {

/// True when this host has more than one hardware thread — the default
/// for ParallelOptions::use_threads.
bool DefaultUseThreads();

struct ParallelOptions {
  CostModel cost_model;
  /// Execute operator phases on the persistent worker pool: morselized
  /// fragment-local kernels with work stealing, and real exchange-queue
  /// redistribution. The default whenever the host has more than one
  /// hardware thread. false = *simulate* mode: every phase runs inline
  /// on the caller and parallelism exists only in the cost model's
  /// simulated makespan — the deterministic reference the determinism
  /// suite diffs threaded runs against (final states are identical in
  /// both modes).
  bool use_threads = DefaultUseThreads();
  /// Worker threads for threaded phases. 0 = the process-wide shared
  /// pool (ThreadPool::DefaultWorkerCount(): the TXMOD_PARALLEL_WORKERS
  /// env override, else hardware_concurrency). n > 0 = a pool of exactly
  /// n threads owned by this executor. Ignored when `pool` is set.
  std::size_t num_workers = 0;
  /// External pool override (not owned; must outlive the executor).
  ThreadPool* pool = nullptr;
  /// Tuples per morsel: the unit of work the pool's queues hold and
  /// workers steal. Smaller = better balance, more scheduling overhead.
  std::size_t morsel_tuples = 1024;
  /// Tuples per exchange batch pushed through a redistribution queue.
  std::size_t exchange_batch_tuples = 256;
  /// Exchange-queue capacity in batches (the bound is soft until the
  /// consumer is scheduled; see ExchangeQueue).
  std::size_t exchange_capacity = 64;
  /// Perturbs each phase's steal order; the determinism tests sweep it
  /// to pin that steal interleaving cannot change final states.
  uint64_t steal_seed = 0;
  /// Bound on the executor's shape-keyed plan cache: statement shapes
  /// retained before LRU eviction. Statements compile once per *shape*
  /// per executor, not once per execution — reuse the executor across
  /// transactions to benefit. 0 disables caching (every statement
  /// compiles its own tree one-shot — the oracle tests' reference mode).
  std::size_t plan_cache_capacity =
      algebra::PlanCache::kDefaultShapeCapacity;
};

struct ParallelTxnResult {
  bool committed = false;
  std::string abort_reason;
  ParallelStats stats{1};
  /// Operator-kernel work counters, merged across nodes, plus this
  /// execution's plan-cache traffic. Comparable (minus the cache
  /// counters) with the serial engine's TxnResult::stats.
  algebra::EvalStats eval_stats;
};

/// Executes (modified) transactions against a fragmented database,
/// implementing the parallel constraint-enforcement strategies of [7] on
/// a real shared-nothing runtime.
///
/// Statements compile to the same physical plans as serial execution
/// (algebra::PhysicalPlan); this executor owns only the *distribution*
/// decisions — alignment tracking, redistribution, broadcast, cost-model
/// charging — while each fragment's tuples run through the shared
/// fragment-local operator kernels (algebra::ExecuteNodeLocal and its
/// morsel-granular form algebra::NodeLocalKernel), so operator semantics
/// cannot diverge between the two engines:
///
///  * selections/projections run fragment-local;
///  * equality joins, semijoins, antijoins run fragment-local as *hash
///    joins* when operand partitioning already co-locates matching tuples
///    (the paper's fragmentation on key / foreign-key attributes), and
///    redistribute operands otherwise, with transfers charged to the cost
///    model; predicates without equality conjuncts broadcast the right
///    operand and fall back to nested loops;
///  * set operations run fragment-local by hashed membership after
///    whole-tuple alignment;
///  * aggregates compute node-local partials (algebra::AggPartial)
///    merged at a coordinator;
///  * updates are routed to the owning fragment; alarm statements abort
///    the whole transaction if any node reports violations.
///
/// In threaded mode (the default on multi-core hosts) each fragment-local
/// phase is morselized: shard inputs are sliced into fixed-size runs of
/// tuple pointers queued per shard on a persistent ThreadPool, idle
/// workers steal morsels from other shards' queues, and per-morsel
/// outputs merge into set-semantics fragment results (so morsel
/// boundaries, worker count, and steal order cannot change final
/// states). Redistribution and broadcast move tuples through bounded
/// ExchangeQueues — per-destination MPSC batch queues with the consumers
/// scheduled as phase followers. Simulate mode (use_threads = false)
/// runs the same kernels inline and keeps only the cost model's
/// simulated makespan; ParallelStats reports measured wall-clock phase
/// timings next to the simulated numbers in both modes (wall ≈ 0 when
/// inline).
///
/// Statement expressions are compiled through a per-executor shape-keyed
/// plan cache (algebra::PlanCache): repeated statement shapes — the same
/// tree modulo literal constants — reuse one compiled plan under fresh
/// parameter bindings instead of recompiling per execution. Because the
/// distribution decisions (which key attributes to redistribute on,
/// partition vs broadcast) are derived from the cached plan's join-key
/// metadata, caching the operator tree caches them too.
///
/// Scope note (DESIGN.md §3): this is the enforcement substrate for the
/// E5 experiment, not a distributed transaction manager — commit is
/// single-site, there is no 2PC or replication, exactly as the paper's
/// single-transaction enforcement experiments assume.
class ParallelExecutor {
 public:
  ParallelExecutor(ParallelDatabase* db, ParallelOptions options = {});

  /// Runs the transaction with atomicity across fragments: on alarm/abort
  /// every fragment is restored. The result carries the work statistics:
  /// the simulated POOMA makespan plus measured per-phase wall clock.
  Result<ParallelTxnResult> Execute(const algebra::Transaction& txn);

  /// This executor's plan cache (diagnostics: hit/miss/eviction totals).
  const algebra::PlanCache& plan_cache() const { return plan_cache_; }

  /// The pool threaded phases run on; null in simulate mode.
  ThreadPool* pool() const { return pool_; }

 private:
  class Impl;
  ParallelDatabase* db_;
  ParallelOptions options_;
  algebra::PlanCache plan_cache_;
  std::unique_ptr<ThreadPool> owned_pool_;  // when num_workers > 0
  ThreadPool* pool_ = nullptr;              // null = simulate mode
};

}  // namespace txmod::parallel

#endif  // TXMOD_PARALLEL_EXECUTOR_H_
