#ifndef TXMOD_PARALLEL_EXECUTOR_H_
#define TXMOD_PARALLEL_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "src/algebra/statement.h"
#include "src/parallel/cost_model.h"
#include "src/parallel/parallel_db.h"

namespace txmod::parallel {

struct ParallelOptions {
  CostModel cost_model;
  /// Execute per-node operator phases on real std::threads. Correctness
  /// is identical; on the single-core reproduction host this only adds
  /// overhead, so benches keep it off and report the simulated makespan
  /// (see CostModel). Tests turn it on to exercise the threaded path.
  bool use_threads = false;
};

struct ParallelTxnResult {
  bool committed = false;
  std::string abort_reason;
  ParallelStats stats{1};
};

/// Executes (modified) transactions against a fragmented database,
/// implementing the parallel constraint-enforcement strategies of [7].
///
/// Statements compile to the same physical plans as serial execution
/// (algebra::PhysicalPlan); this executor owns only the *distribution*
/// decisions — alignment tracking, redistribution, broadcast, cost-model
/// charging — while each fragment's tuples run through the shared
/// fragment-local operator kernels (algebra::ExecuteNodeLocal /
/// AggregateLocal), so operator semantics cannot diverge between the two
/// engines:
///
///  * selections/projections run fragment-local;
///  * equality joins, semijoins, antijoins run fragment-local as *hash
///    joins* when operand partitioning already co-locates matching tuples
///    (the paper's fragmentation on key / foreign-key attributes), and
///    redistribute operands otherwise, with transfers charged to the cost
///    model; predicates without equality conjuncts broadcast the right
///    operand and fall back to nested loops;
///  * set operations run fragment-local by hashed membership after
///    whole-tuple alignment;
///  * aggregates compute node-local partials (algebra::AggPartial)
///    merged at a coordinator;
///  * updates are routed to the owning fragment; alarm statements abort
///    the whole transaction if any node reports violations.
///
/// Scope note (DESIGN.md §3): this is the enforcement substrate for the
/// E5 experiment, not a distributed transaction manager — commit is
/// single-site, there is no 2PC or replication, exactly as the paper's
/// single-transaction enforcement experiments assume.
class ParallelExecutor {
 public:
  ParallelExecutor(ParallelDatabase* db, ParallelOptions options = {});

  /// Runs the transaction with atomicity across fragments: on alarm/abort
  /// every fragment is restored. The result carries the work statistics
  /// including the simulated POOMA makespan.
  Result<ParallelTxnResult> Execute(const algebra::Transaction& txn);

 private:
  class Impl;
  ParallelDatabase* db_;
  ParallelOptions options_;
};

}  // namespace txmod::parallel

#endif  // TXMOD_PARALLEL_EXECUTOR_H_
