#ifndef TXMOD_PARALLEL_EXECUTOR_H_
#define TXMOD_PARALLEL_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "src/algebra/physical_plan.h"
#include "src/algebra/statement.h"
#include "src/parallel/cost_model.h"
#include "src/parallel/parallel_db.h"

namespace txmod::parallel {

struct ParallelOptions {
  CostModel cost_model;
  /// Execute per-node operator phases on real std::threads. Correctness
  /// is identical; on the single-core reproduction host this only adds
  /// overhead, so benches keep it off and report the simulated makespan
  /// (see CostModel). Tests turn it on to exercise the threaded path.
  bool use_threads = false;
  /// Bound on the executor's shape-keyed plan cache: statement shapes
  /// retained before LRU eviction. Statements compile once per *shape*
  /// per executor, not once per execution — reuse the executor across
  /// transactions to benefit. 0 disables caching (every statement
  /// compiles its own tree one-shot — the oracle tests' reference mode).
  std::size_t plan_cache_capacity =
      algebra::PlanCache::kDefaultShapeCapacity;
};

struct ParallelTxnResult {
  bool committed = false;
  std::string abort_reason;
  ParallelStats stats{1};
  /// Operator-kernel work counters, merged across nodes, plus this
  /// execution's plan-cache traffic. Comparable (minus the cache
  /// counters) with the serial engine's TxnResult::stats.
  algebra::EvalStats eval_stats;
};

/// Executes (modified) transactions against a fragmented database,
/// implementing the parallel constraint-enforcement strategies of [7].
///
/// Statements compile to the same physical plans as serial execution
/// (algebra::PhysicalPlan); this executor owns only the *distribution*
/// decisions — alignment tracking, redistribution, broadcast, cost-model
/// charging — while each fragment's tuples run through the shared
/// fragment-local operator kernels (algebra::ExecuteNodeLocal /
/// AggregateLocal), so operator semantics cannot diverge between the two
/// engines:
///
///  * selections/projections run fragment-local;
///  * equality joins, semijoins, antijoins run fragment-local as *hash
///    joins* when operand partitioning already co-locates matching tuples
///    (the paper's fragmentation on key / foreign-key attributes), and
///    redistribute operands otherwise, with transfers charged to the cost
///    model; predicates without equality conjuncts broadcast the right
///    operand and fall back to nested loops;
///  * set operations run fragment-local by hashed membership after
///    whole-tuple alignment;
///  * aggregates compute node-local partials (algebra::AggPartial)
///    merged at a coordinator;
///  * updates are routed to the owning fragment; alarm statements abort
///    the whole transaction if any node reports violations.
///
/// Statement expressions are compiled through a per-executor shape-keyed
/// plan cache (algebra::PlanCache): repeated statement shapes — the same
/// tree modulo literal constants — reuse one compiled plan under fresh
/// parameter bindings instead of recompiling per execution. Because the
/// distribution decisions (which key attributes to redistribute on,
/// partition vs broadcast) are derived from the cached plan's join-key
/// metadata, caching the operator tree caches them too.
///
/// Scope note (DESIGN.md §3): this is the enforcement substrate for the
/// E5 experiment, not a distributed transaction manager — commit is
/// single-site, there is no 2PC or replication, exactly as the paper's
/// single-transaction enforcement experiments assume.
class ParallelExecutor {
 public:
  ParallelExecutor(ParallelDatabase* db, ParallelOptions options = {});

  /// Runs the transaction with atomicity across fragments: on alarm/abort
  /// every fragment is restored. The result carries the work statistics
  /// including the simulated POOMA makespan.
  Result<ParallelTxnResult> Execute(const algebra::Transaction& txn);

  /// This executor's plan cache (diagnostics: hit/miss/eviction totals).
  const algebra::PlanCache& plan_cache() const { return plan_cache_; }

 private:
  class Impl;
  ParallelDatabase* db_;
  ParallelOptions options_;
  algebra::PlanCache plan_cache_;
};

}  // namespace txmod::parallel

#endif  // TXMOD_PARALLEL_EXECUTOR_H_
