#include "src/parallel/parallel_db.h"

#include "src/common/str_util.h"

namespace txmod::parallel {

Result<ParallelDatabase> ParallelDatabase::Partition(
    const Database& db,
    const std::map<std::string, FragmentationScheme>& schemes,
    int num_nodes) {
  if (num_nodes < 1) {
    return Status::InvalidArgument("num_nodes must be at least 1");
  }
  ParallelDatabase out;
  out.num_nodes_ = num_nodes;
  for (const RelationSchema& rs : db.schema().relations()) {
    TXMOD_RETURN_IF_ERROR(out.schema_.AddRelation(rs));
    FragmentedRelation frag;
    auto it = schemes.find(rs.name());
    frag.scheme = it != schemes.end() ? it->second : FragmentationScheme{};
    if (frag.scheme.kind == FragmentationKind::kHash &&
        (frag.scheme.attr < 0 ||
         frag.scheme.attr >= static_cast<int>(rs.arity()))) {
      return Status::InvalidArgument(
          StrCat("hash fragmentation attribute #", frag.scheme.attr,
                 " out of range for ", rs.name()));
    }
    TXMOD_ASSIGN_OR_RETURN(const Relation* rel, db.Find(rs.name()));
    frag.fragments.reserve(num_nodes);
    for (int i = 0; i < num_nodes; ++i) {
      frag.fragments.emplace_back(rel->schema_ptr());
    }
    for (const Tuple& t : *rel) {
      frag.fragments[FragmentOf(t, frag.scheme, num_nodes)].Insert(t);
    }
    out.relations_.emplace(rs.name(), std::move(frag));
  }
  return out;
}

Result<const FragmentedRelation*> ParallelDatabase::Find(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation ", name, " not partitioned"));
  }
  return &it->second;
}

Result<FragmentedRelation*> ParallelDatabase::FindMutable(
    const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation ", name, " not partitioned"));
  }
  return &it->second;
}

Database ParallelDatabase::Merge() const {
  Database db;
  for (const RelationSchema& rs : schema_.relations()) {
    Status st = db.CreateRelation(rs);
    (void)st;
    Relation* rel = *db.FindMutable(rs.name());
    const FragmentedRelation& frag = relations_.at(rs.name());
    for (const Relation& f : frag.fragments) {
      for (const Tuple& t : f) rel->Insert(t);
    }
  }
  return db;
}

}  // namespace txmod::parallel
