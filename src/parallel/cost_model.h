#ifndef TXMOD_PARALLEL_COST_MODEL_H_
#define TXMOD_PARALLEL_COST_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace txmod::parallel {

/// Deterministic cost model of the simulated POOMA multiprocessor [22].
///
/// The reproduction host is a single-core machine, so the E5 scaling
/// experiment cannot measure wall-clock speedup; instead every parallel
/// operator phase records per-node local work and inter-node transfers,
/// and the simulated makespan is
///
///   Σ_phases ( max_node(local_tuples(node)) · per_tuple_local
///              + transferred_tuples/num_nodes · per_tuple_comm
///              + messages · per_message )
///
/// The constants are calibrated loosely on late-80s hardware (the POOMA
/// nodes were 68020-class with a custom interconnect) — their absolute
/// values are irrelevant to the experiment; the *ratio* of communication
/// to local work is what shapes the speedup curves.
struct CostModel {
  double per_tuple_local_us = 50.0;  // local processing per tuple
  double per_tuple_comm_us = 150.0;  // transfer cost per tuple
  double per_message_us = 1000.0;    // per node-to-node message setup
};

/// Work accounting for one parallel execution.
class ParallelStats {
 public:
  explicit ParallelStats(int num_nodes = 1)
      : num_nodes_(num_nodes) {}

  /// Records one operator phase: `local` holds tuples processed per node;
  /// `transferred` tuples crossed the interconnect in `messages` messages.
  void AddPhase(const std::vector<uint64_t>& local, uint64_t transferred,
                uint64_t messages, const CostModel& model) {
    uint64_t max_local = 0;
    for (uint64_t l : local) max_local = std::max(max_local, l);
    simulated_us_ += static_cast<double>(max_local) * model.per_tuple_local_us;
    simulated_us_ += static_cast<double>(transferred) /
                     static_cast<double>(num_nodes_) *
                     model.per_tuple_comm_us;
    simulated_us_ += static_cast<double>(messages) * model.per_message_us;
    tuples_transferred_ += transferred;
    messages_ += messages;
    ++phases_;
    for (uint64_t l : local) total_local_tuples_ += l;
  }

  double simulated_us() const { return simulated_us_; }
  uint64_t tuples_transferred() const { return tuples_transferred_; }
  uint64_t messages() const { return messages_; }
  uint64_t total_local_tuples() const { return total_local_tuples_; }
  int phases() const { return phases_; }
  int num_nodes() const { return num_nodes_; }

 private:
  int num_nodes_;
  double simulated_us_ = 0;
  uint64_t tuples_transferred_ = 0;
  uint64_t messages_ = 0;
  uint64_t total_local_tuples_ = 0;
  int phases_ = 0;
};

}  // namespace txmod::parallel

#endif  // TXMOD_PARALLEL_COST_MODEL_H_
