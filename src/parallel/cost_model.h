#ifndef TXMOD_PARALLEL_COST_MODEL_H_
#define TXMOD_PARALLEL_COST_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace txmod::parallel {

/// Deterministic cost model of the simulated POOMA multiprocessor [22].
///
/// Kept as the opt-in *simulate* mode next to the real threaded runtime:
/// the simulated makespan is a deterministic function of the data alone,
/// so the determinism suite can diff threaded runs against it, and the
/// scaling experiments keep a machine-independent series. Every parallel
/// operator phase records per-node local work and inter-node transfers,
/// and the simulated makespan is
///
///   Σ_phases ( max_node(local_tuples(node)) · per_tuple_local
///              + transferred_tuples/num_nodes · per_tuple_comm
///              + messages · per_message )
///
/// The constants are calibrated loosely on late-80s hardware (the POOMA
/// nodes were 68020-class with a custom interconnect) — their absolute
/// values are irrelevant to the experiment; the *ratio* of communication
/// to local work is what shapes the speedup curves.
struct CostModel {
  double per_tuple_local_us = 50.0;  // local processing per tuple
  double per_tuple_comm_us = 150.0;  // transfer cost per tuple
  double per_message_us = 1000.0;    // per node-to-node message setup
};

/// One recorded operator phase: the simulated charge next to the wall
/// clock actually measured on this host. `wall_us` is 0 in simulate mode
/// (phases run inline; only the model parallelizes them) and measured
/// around the pool phase in threaded mode.
struct PhaseTiming {
  const char* label = "phase";
  double simulated_us = 0;
  double wall_us = 0;
  uint64_t max_local = 0;     // widest node's local tuple count
  uint64_t transferred = 0;   // tuples that crossed the interconnect
  uint64_t messages = 0;      // simulated message setups (cost model)
};

/// Work accounting for one parallel execution: the simulated POOMA
/// makespan (unchanged math, pinned by the cost tests) plus per-phase
/// measured wall-clock timings and exchange-queue traffic from the
/// threaded runtime.
class ParallelStats {
 public:
  explicit ParallelStats(int num_nodes = 1)
      : num_nodes_(num_nodes) {}

  /// Records one operator phase: `local` holds tuples processed per node;
  /// `transferred` tuples crossed the interconnect in `messages` messages.
  void AddPhase(const std::vector<uint64_t>& local, uint64_t transferred,
                uint64_t messages, const CostModel& model) {
    AddPhaseTimed("phase", local, transferred, messages, model,
                  /*wall_us=*/0);
  }

  /// AddPhase plus the phase's label and measured wall-clock duration.
  /// The simulated charge is computed identically in both modes — it
  /// depends only on the tuple counts, never on the real timing.
  void AddPhaseTimed(const char* label, const std::vector<uint64_t>& local,
                     uint64_t transferred, uint64_t messages,
                     const CostModel& model, double wall_us) {
    uint64_t max_local = 0;
    for (uint64_t l : local) max_local = std::max(max_local, l);
    double sim = static_cast<double>(max_local) * model.per_tuple_local_us;
    sim += static_cast<double>(transferred) /
           static_cast<double>(num_nodes_) * model.per_tuple_comm_us;
    sim += static_cast<double>(messages) * model.per_message_us;
    simulated_us_ += sim;
    measured_us_ += wall_us;
    tuples_transferred_ += transferred;
    messages_ += messages;
    ++phases_;
    for (uint64_t l : local) total_local_tuples_ += l;
    timings_.push_back(
        PhaseTiming{label, sim, wall_us, max_local, transferred, messages});
  }

  /// Real exchange-queue batches moved during threaded redistribution
  /// (the measured counterpart of the simulated `messages`).
  void AddExchangeBatches(uint64_t batches) { exchange_batches_ += batches; }

  double simulated_us() const { return simulated_us_; }
  /// Measured wall-clock total across phases; 0 in simulate mode.
  double measured_us() const { return measured_us_; }
  uint64_t tuples_transferred() const { return tuples_transferred_; }
  uint64_t messages() const { return messages_; }
  uint64_t exchange_batches() const { return exchange_batches_; }
  uint64_t total_local_tuples() const { return total_local_tuples_; }
  int phases() const { return phases_; }
  int num_nodes() const { return num_nodes_; }
  const std::vector<PhaseTiming>& phase_timings() const { return timings_; }

 private:
  int num_nodes_;
  double simulated_us_ = 0;
  double measured_us_ = 0;
  uint64_t tuples_transferred_ = 0;
  uint64_t messages_ = 0;
  uint64_t exchange_batches_ = 0;
  uint64_t total_local_tuples_ = 0;
  int phases_ = 0;
  std::vector<PhaseTiming> timings_;
};

}  // namespace txmod::parallel

#endif  // TXMOD_PARALLEL_COST_MODEL_H_
