#ifndef TXMOD_PARALLEL_PARALLEL_DB_H_
#define TXMOD_PARALLEL_PARALLEL_DB_H_

#include <map>
#include <string>
#include <vector>

#include "src/parallel/fragmentation.h"
#include "src/relational/database.h"

namespace txmod::parallel {

/// A relation split into one fragment per node.
struct FragmentedRelation {
  FragmentationScheme scheme;
  std::vector<Relation> fragments;  // one per node

  std::size_t TotalSize() const {
    std::size_t n = 0;
    for (const Relation& f : fragments) n += f.size();
    return n;
  }
};

/// A PRISMA-style fragmented database: every relation horizontally
/// partitioned over `num_nodes` nodes ([7]). Built by partitioning a
/// serial Database; Merge() reconstructs one for verification against
/// serial execution.
class ParallelDatabase {
 public:
  /// Partitions `db`. Relations without an entry in `schemes` default to
  /// round-robin.
  static Result<ParallelDatabase> Partition(
      const Database& db,
      const std::map<std::string, FragmentationScheme>& schemes,
      int num_nodes);

  int num_nodes() const { return num_nodes_; }

  Result<const FragmentedRelation*> Find(const std::string& name) const;
  Result<FragmentedRelation*> FindMutable(const std::string& name);

  const DatabaseSchema& schema() const { return schema_; }

  /// Reassembles the fragments into a serial database state.
  Database Merge() const;

 private:
  int num_nodes_ = 1;
  DatabaseSchema schema_;
  std::map<std::string, FragmentedRelation> relations_;
};

}  // namespace txmod::parallel

#endif  // TXMOD_PARALLEL_PARALLEL_DB_H_
