#ifndef TXMOD_PARALLEL_THREAD_POOL_H_
#define TXMOD_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/relational/relation.h"

namespace txmod::parallel {

/// One operator phase's work, laid out for shared-nothing execution.
///
/// `queues[s]` holds shard s's tasks (morsels) in order; the worker whose
/// id is `s mod participants` owns queue s and drains it front-to-back.
/// An idle worker steals from the *back* of other shards' queues, visiting
/// victims in an order drawn from `steal_seed` — the determinism suite
/// sweeps the seed to shake out any dependence on steal interleaving.
///
/// `followers` become runnable only once every queue task has been
/// dequeued. The exchange phases put redistribution *consumers* here: no
/// thread can block consuming before every producer is at least
/// scheduled, which (together with ExchangeQueue's liveness-gated bound)
/// makes the redistribution phases deadlock-free on arbitrarily narrow
/// pools.
struct PhasePlan {
  std::vector<std::deque<std::function<void()>>> queues;
  std::deque<std::function<void()>> followers;
  uint64_t steal_seed = 0;
};

/// Persistent worker pool of the parallel runtime: threads are spawned
/// once and execute operator phases (PhasePlan) for the lifetime of the
/// pool, instead of the throwaway per-phase std::threads the executor
/// used to spawn.
///
/// The caller of Run participates in the phase's work loop, so a phase
/// completes even when every pool thread is busy — which is what makes it
/// safe for a task running *on* the pool (e.g. a TxnManager integrity
/// check) to be an indirect cause of another Run: the nested caller
/// drains its own phase. Concurrent Run callers are serialized; tasks of
/// one phase still execute concurrently across all workers.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Pool threads (the Run caller participates on top of these).
  std::size_t workers() const { return threads_.size(); }

  /// Runs every task in `plan` to completion (queues first, then
  /// followers; see PhasePlan). Tasks must not throw.
  void Run(PhasePlan plan);

  /// Worker count for pools nobody sized explicitly: the
  /// TXMOD_PARALLEL_WORKERS environment override when set to a positive
  /// integer, else std::thread::hardware_concurrency(), floor 1.
  static std::size_t DefaultWorkerCount();

  /// Process-wide pool of DefaultWorkerCount() workers, built on first
  /// use and shared by every executor that does not size its own.
  static ThreadPool& Shared();

 private:
  struct PhaseState;
  void WorkerLoop(std::size_t id);
  static void Participate(PhaseState& st, std::size_t participant);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::shared_ptr<PhaseState> phase_;  // published phase; null when idle
  uint64_t epoch_ = 0;                 // bumped per published phase
  bool stop_ = false;
  std::mutex run_mu_;  // serializes concurrent Run callers
  std::vector<std::thread> threads_;
};

/// Bounded multi-producer single-consumer queue of tuple batches: the
/// inter-shard data path of the redistribution and broadcast phases.
/// Producer tasks route tuples into per-destination batches and Push
/// them here; the destination shard's consumer task Pops until every
/// producer has called ProducerDone.
///
/// Deadlock freedom over strict boundedness: Push blocks at capacity only
/// once the consumer is live (it is running on some thread and will
/// drain); before that the bound is soft, because blocking then could
/// wedge a pool whose every thread is mid-producer-task. Consumers are
/// scheduled as phase followers (see PhasePlan), so by the time any
/// consumer can block in Pop, every producer has been dequeued and is
/// either finished or running on another thread.
class ExchangeQueue {
 public:
  /// `producers` is the number of producer tasks that will each call
  /// ProducerDone exactly once.
  ExchangeQueue(std::size_t capacity_batches, std::size_t producers)
      : capacity_(capacity_batches == 0 ? 1 : capacity_batches),
        producers_(producers) {}

  /// Producer: enqueues one batch (blocking per the bound above).
  void Push(std::vector<Tuple> batch);

  /// Consumer: pops the next batch into `*batch`. Returns false when the
  /// queue is drained and every producer is done. Marks the consumer
  /// live on first call.
  bool Pop(std::vector<Tuple>* batch);

  /// Producer: signals this producer task will push no further batches.
  void ProducerDone();

  /// Batches pushed so far (the phase's real message count).
  uint64_t batches() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::vector<Tuple>> q_;
  std::size_t capacity_;
  std::size_t producers_;
  bool consumer_live_ = false;
  uint64_t batches_ = 0;
};

}  // namespace txmod::parallel

#endif  // TXMOD_PARALLEL_THREAD_POOL_H_
