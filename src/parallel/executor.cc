#include "src/parallel/executor.h"

#include <chrono>
#include <functional>
#include <optional>
#include <thread>
#include <utility>

#include "src/algebra/physical_plan.h"
#include "src/common/str_util.h"

namespace txmod::parallel {

using algebra::AggFunc;
using algebra::AggPartial;
using algebra::PhysOpKind;
using algebra::PhysicalNode;
using algebra::PhysicalPlan;
using algebra::RelExpr;
using algebra::RelExprKind;
using algebra::RelRefKind;
using algebra::ScalarExpr;
using algebra::ScalarOp;
using algebra::Statement;
using algebra::StatementKind;

namespace {

/// How the fragments of an intermediate result are aligned across nodes.
enum class Alignment {
  kNone,         // tuples may be anywhere (and may duplicate across nodes)
  kAttr,         // hash-partitioned on one attribute (attr index below)
  kWholeTuple,   // hash-partitioned on the full tuple (set-op safe)
  kCoordinator,  // all tuples on node 0 (literals, aggregate results)
};

/// A fragmented intermediate result.
struct FragRel {
  std::vector<Relation> frags;
  Alignment alignment = Alignment::kNone;
  int attr = -1;  // kAttr only
  /// False when tuples are globally duplicate-free under set semantics.
  bool maybe_duplicated = false;
};

std::shared_ptr<const RelationSchema> MakeSchema(
    std::vector<Attribute> attrs) {
  return std::make_shared<const RelationSchema>("", std::move(attrs));
}

std::vector<Attribute> ConcatAttrs(const RelationSchema& a,
                                   const RelationSchema& b) {
  std::vector<Attribute> attrs = a.attributes();
  attrs.insert(attrs.end(), b.attributes().begin(), b.attributes().end());
  return attrs;
}

/// Node ids cross the fragmentation API as int; containers index with
/// size_t. One named conversion point instead of a cast per call site.
constexpr std::size_t U(int node) { return static_cast<std::size_t>(node); }

/// Wall clock around one operator phase (the measured side of
/// ParallelStats, next to the simulated makespan).
class PhaseTimer {
 public:
  PhaseTimer() : t0_(std::chrono::steady_clock::now()) {}
  double us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

bool DefaultUseThreads() {
  return std::thread::hardware_concurrency() > 1;
}

// ---------------------------------------------------------------------------
// Implementation: one Impl per transaction execution.
// ---------------------------------------------------------------------------

class ParallelExecutor::Impl {
 public:
  Impl(ParallelDatabase* db, const ParallelOptions& options,
       algebra::PlanCache* plan_cache, ThreadPool* pool)
      : db_(db),
        options_(options),
        plan_cache_(plan_cache),
        pool_(pool),
        nodes_(db->num_nodes()),
        width_(U(db->num_nodes())),
        result_{false, "", ParallelStats(db->num_nodes()),
                algebra::EvalStats{}} {}

  Result<ParallelTxnResult> Run(const algebra::Transaction& txn) {
    for (const Statement& stmt : txn.program.statements) {
      const Status st = ExecuteStatement(stmt);
      if (st.ok()) continue;
      Rollback();
      if (st.code() == StatusCode::kAborted) {
        result_.committed = false;
        result_.abort_reason = st.message();
        return result_;
      }
      return st;
    }
    result_.committed = true;
    return result_;
  }

 private:
  // --- statement execution -------------------------------------------------

  Status ExecuteStatement(const Statement& stmt) {
    switch (stmt.kind) {
      case StatementKind::kAssign: {
        TXMOD_ASSIGN_OR_RETURN(FragRel value, EvalExpr(*stmt.expr));
        temps_.insert_or_assign(stmt.target, std::move(value));
        return Status::OK();
      }
      case StatementKind::kInsert:
        return ExecuteInsert(stmt);
      case StatementKind::kDelete:
        return ExecuteDelete(stmt);
      case StatementKind::kUpdate:
        return ExecuteUpdate(stmt);
      case StatementKind::kAlarm: {
        TXMOD_ASSIGN_OR_RETURN(FragRel value, EvalExpr(*stmt.expr));
        std::size_t total = 0;
        for (const Relation& f : value.frags) total += f.size();
        if (total == 0) return Status::OK();
        return Status::Aborted(stmt.message.empty()
                                   ? StrCat("alarm raised: ",
                                            stmt.expr->ToString())
                                   : stmt.message);
      }
      case StatementKind::kAbort:
        return Status::Aborted(stmt.message.empty() ? "abort statement"
                                                    : stmt.message);
    }
    return Status::Internal("unknown statement kind");
  }

  Status ExecuteInsert(const Statement& stmt) {
    TXMOD_ASSIGN_OR_RETURN(FragRel value, EvalExpr(*stmt.expr));
    TXMOD_ASSIGN_OR_RETURN(FragmentedRelation * target,
                           db_->FindMutable(stmt.target));
    const RelationSchema& schema = target->fragments[0].schema();
    // Route every produced tuple to its owning fragment; a tuple produced
    // on a different node is a transfer. Mutation stays on the
    // coordinator: the differential bookkeeping below is the transaction's
    // undo log and must observe one total order of changes.
    const PhaseTimer timer;
    uint64_t transferred = 0;
    std::vector<uint64_t> local(width_, 0);
    for (std::size_t src = 0; src < width_; ++src) {
      for (const Tuple& raw : value.frags[src]) {
        TXMOD_RETURN_IF_ERROR(schema.CheckTuple(raw));
        Tuple t = schema.CoerceTuple(raw);
        const std::size_t dst = U(FragmentOf(t, target->scheme, nodes_));
        if (dst != src) ++transferred;
        ++local[src];
        ApplyInsert(stmt.target, target, dst, std::move(t));
      }
    }
    result_.stats.AddPhaseTimed("insert", local, transferred,
                                transferred > 0 ? 1 : 0,
                                options_.cost_model, Wall(timer));
    return Status::OK();
  }

  Status ExecuteDelete(const Statement& stmt) {
    TXMOD_ASSIGN_OR_RETURN(FragRel value, EvalExpr(*stmt.expr));
    TXMOD_ASSIGN_OR_RETURN(FragmentedRelation * target,
                           db_->FindMutable(stmt.target));
    const RelationSchema& schema = target->fragments[0].schema();
    const PhaseTimer timer;
    uint64_t transferred = 0;
    std::vector<uint64_t> local(width_, 0);
    for (std::size_t src = 0; src < width_; ++src) {
      for (const Tuple& raw : value.frags[src]) {
        const Tuple t = schema.CoerceTuple(raw);
        const std::size_t dst = U(FragmentOf(t, target->scheme, nodes_));
        if (dst != src) ++transferred;
        ++local[src];
        ApplyDelete(stmt.target, target, dst, t);
      }
    }
    result_.stats.AddPhaseTimed("delete", local, transferred,
                                transferred > 0 ? 1 : 0,
                                options_.cost_model, Wall(timer));
    return Status::OK();
  }

  Status ExecuteUpdate(const Statement& stmt) {
    TXMOD_ASSIGN_OR_RETURN(FragmentedRelation * target,
                           db_->FindMutable(stmt.target));
    const RelationSchema& schema = target->fragments[0].schema();
    const PhaseTimer timer;
    uint64_t transferred = 0;
    std::vector<uint64_t> local(width_, 0);
    for (std::size_t node = 0; node < width_; ++node) {
      std::vector<Tuple> selected;
      for (const Tuple& t : target->fragments[node]) {
        TXMOD_ASSIGN_OR_RETURN(bool match,
                               stmt.predicate.EvalPredicate(&t, nullptr));
        if (match) selected.push_back(t);
      }
      local[node] += target->fragments[node].size();
      for (const Tuple& old_tuple : selected) {
        Tuple new_tuple = old_tuple;
        for (const algebra::UpdateSet& u : stmt.sets) {
          TXMOD_ASSIGN_OR_RETURN(Value v,
                                 u.expr.EvalValue(&old_tuple, nullptr));
          new_tuple.at(U(u.attr)) = std::move(v);
        }
        TXMOD_RETURN_IF_ERROR(schema.CheckTuple(new_tuple));
        new_tuple = schema.CoerceTuple(std::move(new_tuple));
        ApplyDelete(stmt.target, target, node, old_tuple);
        const std::size_t dst =
            U(FragmentOf(new_tuple, target->scheme, nodes_));
        if (dst != node) ++transferred;
        ApplyInsert(stmt.target, target, dst, std::move(new_tuple));
      }
    }
    result_.stats.AddPhaseTimed("update", local, transferred,
                                transferred > 0 ? 1 : 0,
                                options_.cost_model, Wall(timer));
    return Status::OK();
  }

  // --- differential bookkeeping + rollback ----------------------------------

  struct NodeDiff {
    std::vector<Relation> plus;
    std::vector<Relation> minus;
  };

  NodeDiff& DiffFor(const std::string& rel, const FragmentedRelation& f) {
    auto it = diffs_.find(rel);
    if (it == diffs_.end()) {
      NodeDiff d;
      for (std::size_t i = 0; i < width_; ++i) {
        d.plus.emplace_back(f.fragments[0].schema_ptr());
        d.minus.emplace_back(f.fragments[0].schema_ptr());
      }
      it = diffs_.emplace(rel, std::move(d)).first;
    }
    return it->second;
  }

  void ApplyInsert(const std::string& name, FragmentedRelation* rel,
                   std::size_t node, Tuple t) {
    if (!rel->fragments[node].Insert(t)) return;
    NodeDiff& d = DiffFor(name, *rel);
    if (!d.minus[node].Erase(t)) d.plus[node].Insert(std::move(t));
  }

  void ApplyDelete(const std::string& name, FragmentedRelation* rel,
                   std::size_t node, const Tuple& t) {
    if (!rel->fragments[node].Erase(t)) return;
    NodeDiff& d = DiffFor(name, *rel);
    if (!d.plus[node].Erase(t)) d.minus[node].Insert(t);
  }

  void Rollback() {
    for (auto& [name, diff] : diffs_) {
      FragmentedRelation* rel = *db_->FindMutable(name);
      for (std::size_t i = 0; i < width_; ++i) {
        for (const Tuple& t : diff.plus[i]) rel->fragments[i].Erase(t);
        for (const Tuple& t : diff.minus[i]) rel->fragments[i].Insert(t);
      }
    }
    diffs_.clear();
    temps_.clear();
  }

  // --- expression evaluation -------------------------------------------------

  /// Evaluates `e` through the executor's shape-keyed plan cache: the
  /// same physical plan the serial engine runs, compiled once per
  /// statement *shape* and reused under this statement's constant binding
  /// — this executor decides *where* each operator's work happens
  /// (alignment, redistribution, broadcast — charged to the cost model),
  /// and the shared fragment-local kernels (algebra::ExecuteNodeLocal /
  /// algebra::NodeLocalKernel) decide *how* a fragment's tuples are
  /// joined, filtered, and projected. The distribution decisions ride
  /// with the cached tree: redistribution keys and the
  /// partition-vs-broadcast choice are read off the plan nodes'
  /// equality-key metadata, so a cache hit skips re-deriving them as
  /// well.
  Result<FragRel> EvalExpr(const RelExpr& e) {
    if (plan_cache_ == nullptr || plan_cache_->shape_capacity() == 0) {
      // Reference mode: one-shot compile of the statement's own tree
      // (not even canonicalized — the oracle tests diff the cached
      // engine against this as an independent implementation).
      if (plan_cache_ != nullptr) {
        plan_cache_->CountBypassedMiss(&result_.eval_stats);
      } else {
        ++result_.eval_stats.plan_cache_misses;
      }
      TXMOD_ASSIGN_OR_RETURN(PhysicalPlan plan, PhysicalPlan::Compile(e));
      cur_params_ = nullptr;
      return Eval(plan.root());
    }
    TXMOD_ASSIGN_OR_RETURN(
        algebra::BoundPlan bound,
        plan_cache_->GetOrCompileShaped(e, &result_.eval_stats));
    cur_params_ = &bound.params;
    Result<FragRel> out = Eval(bound.plan->root());
    cur_params_ = nullptr;
    return out;
  }

  Result<FragRel> Eval(const PhysicalNode& n) {
    switch (n.op) {
      case PhysOpKind::kScan:
        return EvalRef(*n.logical);
      case PhysOpKind::kLiteral:
        return EvalLiteral(*n.logical);
      case PhysOpKind::kSelect:
      case PhysOpKind::kProject:
        return EvalUnary(n);
      case PhysOpKind::kHashJoin:
      case PhysOpKind::kIndexLookupJoin:
      case PhysOpKind::kNestedLoopJoin:
        return EvalJoinLike(n);
      case PhysOpKind::kUnion:
      case PhysOpKind::kHashSetOp:
      case PhysOpKind::kIndexSetOp:
        return EvalSetOp(n);
      case PhysOpKind::kAggregate:
        return EvalAggregate(n);
      case PhysOpKind::kProduct:
        return Status::Unimplemented(
            "cartesian products are not part of the parallel enforcement "
            "substrate (no integrity program needs them; see executor.h)");
    }
    return Status::Internal("unknown physical operator");
  }

  Alignment BaseAlignment(const FragmentedRelation& f, int* attr) const {
    if (f.scheme.kind == FragmentationKind::kHash) {
      *attr = f.scheme.attr;
      return Alignment::kAttr;
    }
    *attr = -1;
    return Alignment::kNone;
  }

  Result<FragRel> EvalRef(const RelExpr& e) {
    if (e.ref_kind() == RelRefKind::kTemp) {
      auto it = temps_.find(e.rel_name());
      if (it == temps_.end()) {
        return Status::NotFound(StrCat("unknown temporary ", e.rel_name()));
      }
      return it->second;
    }
    TXMOD_ASSIGN_OR_RETURN(const FragmentedRelation* base,
                           db_->Find(e.rel_name()));
    FragRel out;
    switch (e.ref_kind()) {
      case RelRefKind::kBase:
        out.frags = base->fragments;  // copy; mutation safety
        break;
      case RelRefKind::kTemp:
        return Status::Internal("temp handled above");
      case RelRefKind::kDeltaPlus:
      case RelRefKind::kDeltaMinus: {
        auto it = diffs_.find(e.rel_name());
        if (it == diffs_.end()) {
          for (std::size_t i = 0; i < width_; ++i) {
            out.frags.emplace_back(base->fragments[0].schema_ptr());
          }
        } else {
          out.frags = e.ref_kind() == RelRefKind::kDeltaPlus
                          ? it->second.plus
                          : it->second.minus;
        }
        break;
      }
      case RelRefKind::kOld: {
        // (R \ plus) ∪ minus, node-local (diffs are routed to owners).
        auto it = diffs_.find(e.rel_name());
        for (std::size_t i = 0; i < width_; ++i) {
          Relation old_view(base->fragments[0].schema_ptr());
          for (const Tuple& t : base->fragments[i]) {
            if (it == diffs_.end() || !it->second.plus[i].Contains(t)) {
              old_view.Insert(t);
            }
          }
          if (it != diffs_.end()) {
            for (const Tuple& t : it->second.minus[i]) old_view.Insert(t);
          }
          out.frags.push_back(std::move(old_view));
        }
        break;
      }
    }
    out.alignment = BaseAlignment(*base, &out.attr);
    out.maybe_duplicated = false;
    return out;
  }

  Result<FragRel> EvalLiteral(const RelExpr& e) {
    TXMOD_ASSIGN_OR_RETURN(
        Relation lit,
        algebra::MaterializeLiteral(e, &result_.eval_stats, cur_params_));
    FragRel out;
    for (std::size_t i = 0; i < width_; ++i) {
      out.frags.emplace_back(lit.schema_ptr());
    }
    out.frags[0] = std::move(lit);
    out.alignment = Alignment::kCoordinator;
    return out;
  }

  // --- phase machinery -------------------------------------------------------

  /// Wall-clock charge for a phase: measured in threaded mode, 0 in
  /// simulate mode (inline phases keep the stats fully deterministic).
  double Wall(const PhaseTimer& timer) const {
    return pool_ != nullptr ? timer.us() : 0.0;
  }

  /// Per-phase steal seed: distinct per phase so interleavings vary
  /// across phases, deterministic per (options seed, phase ordinal).
  uint64_t PhaseSeed() {
    return options_.steal_seed * 0x9e3779b97f4a7c15ULL + phase_ordinal_++;
  }

  /// One fragment-local operator phase through the shared kernels.
  ///
  /// Simulate mode runs whole fragments inline (ExecuteNodeLocal).
  /// Threaded mode morselizes: each shard's input tuples are sliced into
  /// fixed-size pointer runs queued on the shard's work queue; the pool
  /// executes them with work stealing, each morsel writing its own output
  /// buffer and EvalStats (merged afterward in deterministic shard/morsel
  /// order). Union nodes feed both sides' tuples as morsels; the other
  /// operators morselize the left side with the right fragment borrowed
  /// (hash-join builds happen once per shard in a preparation step).
  /// Because fragment results are set-semantics Relations, morsel
  /// boundaries, worker count, and steal order cannot change the merged
  /// outcome — final states are identical across modes.
  Result<FragRel> RunKernelPhase(const char* label, const PhysicalNode& n,
                                 const FragRel& l, const FragRel* r,
                                 Alignment align, int attr,
                                 bool maybe_dup) {
    FragRel out;
    out.alignment = align;
    out.attr = attr;
    out.maybe_duplicated = maybe_dup;
    out.frags.resize(width_);
    std::vector<uint64_t> scanned(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      scanned[i] =
          l.frags[i].size() + (r != nullptr ? r->frags[i].size() : 0);
    }
    const PhaseTimer timer;
    if (pool_ == nullptr) {
      std::vector<algebra::EvalStats> node_stats(width_);
      for (std::size_t i = 0; i < width_; ++i) {
        TXMOD_ASSIGN_OR_RETURN(
            out.frags[i],
            algebra::ExecuteNodeLocal(n, l.frags[i],
                                      r != nullptr ? &r->frags[i] : nullptr,
                                      &node_stats[i], cur_params_));
      }
      MergeNodeStats(node_stats);
    } else {
      TXMOD_RETURN_IF_ERROR(MorselPhase(n, l, r, &out));
    }
    result_.stats.AddPhaseTimed(label, scanned, 0, 0, options_.cost_model,
                                Wall(timer));
    return out;
  }

  Status MorselPhase(const PhysicalNode& n, const FragRel& l,
                     const FragRel* r, FragRel* out) {
    const std::size_t msize =
        options_.morsel_tuples > 0 ? options_.morsel_tuples : 1;
    const bool union_op = n.op == PhysOpKind::kUnion;
    struct Shard {
      std::optional<algebra::NodeLocalKernel> kernel;
      Status prep_status;
      algebra::EvalStats prep_stats;
      std::vector<const Tuple*> input;
      std::size_t morsels = 0;
      std::vector<std::vector<Tuple>> morsel_out;
      std::vector<Status> morsel_status;
      std::vector<algebra::EvalStats> morsel_stats;
    };
    std::vector<Shard> shards(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      Shard& sh = shards[i];
      sh.input.reserve(l.frags[i].size() +
                       (union_op && r != nullptr ? r->frags[i].size() : 0));
      for (const Tuple& t : l.frags[i]) sh.input.push_back(&t);
      if (union_op && r != nullptr) {
        for (const Tuple& t : r->frags[i]) sh.input.push_back(&t);
      }
      sh.morsels = (sh.input.size() + msize - 1) / msize;
      sh.morsel_out.resize(sh.morsels);
      sh.morsel_status.assign(sh.morsels, Status::OK());
      sh.morsel_stats.resize(sh.morsels);
    }
    // Preparation: per-shard build sides (hash tables, output schemas),
    // one task per shard on the pool.
    {
      PhasePlan plan;
      plan.steal_seed = PhaseSeed();
      plan.queues.resize(width_);
      for (std::size_t i = 0; i < width_; ++i) {
        Shard& sh = shards[i];
        const Relation& left = l.frags[i];
        const Relation* right = r != nullptr ? &r->frags[i] : nullptr;
        const std::vector<Value>* params = cur_params_;
        plan.queues[i].push_back([&n, &sh, &left, right, params] {
          Result<algebra::NodeLocalKernel> k =
              algebra::NodeLocalKernel::Prepare(n, left.schema_ptr(), right,
                                                &sh.prep_stats, params);
          if (k.ok()) {
            sh.kernel.emplace(std::move(k).value());
          } else {
            sh.prep_status = k.status();
          }
        });
      }
      pool_->Run(std::move(plan));
    }
    for (const Shard& sh : shards) {
      TXMOD_RETURN_IF_ERROR(sh.prep_status);
    }
    // Morsels: the work-stealing heart of the phase.
    {
      PhasePlan plan;
      plan.steal_seed = PhaseSeed();
      plan.queues.resize(width_);
      for (std::size_t i = 0; i < width_; ++i) {
        Shard& sh = shards[i];
        for (std::size_t m = 0; m < sh.morsels; ++m) {
          const Tuple* const* base = sh.input.data() + m * msize;
          const std::size_t count =
              std::min(msize, sh.input.size() - m * msize);
          plan.queues[i].push_back([&sh, m, base, count] {
            sh.morsel_status[m] = sh.kernel->RunMorsel(
                base, count, &sh.morsel_out[m], &sh.morsel_stats[m]);
          });
        }
      }
      pool_->Run(std::move(plan));
    }
    // Deterministic fold: stats and errors in (shard, morsel) order.
    for (Shard& sh : shards) {
      result_.eval_stats.Add(sh.prep_stats);
      for (std::size_t m = 0; m < sh.morsels; ++m) {
        TXMOD_RETURN_IF_ERROR(sh.morsel_status[m]);
        result_.eval_stats.Add(sh.morsel_stats[m]);
      }
    }
    // Merge morsel outputs into set-semantics fragments, one task per
    // shard (disjoint destinations — no synchronization needed).
    {
      PhasePlan plan;
      plan.steal_seed = PhaseSeed();
      plan.queues.resize(width_);
      for (std::size_t i = 0; i < width_; ++i) {
        Shard& sh = shards[i];
        Relation* dst = &out->frags[i];
        plan.queues[i].push_back([&sh, dst] {
          *dst = Relation(sh.kernel->output_schema());
          for (std::vector<Tuple>& mo : sh.morsel_out) {
            for (Tuple& t : mo) dst->Insert(std::move(t));
          }
        });
      }
      pool_->Run(std::move(plan));
    }
    return Status::OK();
  }

  /// One redistribution phase: every input tuple moves to the shard
  /// `route` names. Simulate mode routes inline; threaded mode runs
  /// morselized producer tasks that batch tuples into per-destination
  /// ExchangeQueues, with one consumer per destination scheduled as a
  /// phase follower (see ExchangeQueue for the deadlock-freedom
  /// contract). Cost-model charges (transfers, messages) are computed
  /// from the deterministic per-(src,dst) tallies in both modes, so the
  /// simulated makespan never depends on batching or timing.
  template <typename RouteFn>
  FragRel ExchangePhase(const char* label, const FragRel& in, RouteFn route,
                        Alignment align, int attr, bool maybe_dup,
                        bool per_pair_messages) {
    FragRel out;
    out.frags.assign(width_, Relation(in.frags[0].schema_ptr()));
    out.alignment = align;
    out.attr = attr;
    out.maybe_duplicated = maybe_dup;
    std::vector<uint64_t> scanned(width_, 0);
    for (std::size_t i = 0; i < width_; ++i) scanned[i] = in.frags[i].size();
    uint64_t transferred = 0;
    std::vector<std::vector<bool>> pair_used(
        width_, std::vector<bool>(width_, false));
    const PhaseTimer timer;
    if (pool_ == nullptr) {
      for (std::size_t src = 0; src < width_; ++src) {
        for (const Tuple& t : in.frags[src]) {
          const std::size_t dst = route(t);
          if (dst != src) {
            ++transferred;
            pair_used[src][dst] = true;
          }
          out.frags[dst].Insert(t);
        }
      }
    } else {
      const std::size_t msize =
          options_.morsel_tuples > 0 ? options_.morsel_tuples : 1;
      const std::size_t batch = options_.exchange_batch_tuples > 0
                                    ? options_.exchange_batch_tuples
                                    : 1;
      struct Producer {
        std::size_t src = 0;
        const Tuple* const* base = nullptr;
        std::size_t count = 0;
        std::vector<uint64_t> sent;  // per destination
      };
      std::vector<std::vector<const Tuple*>> inputs(width_);
      std::vector<Producer> producers;
      for (std::size_t src = 0; src < width_; ++src) {
        inputs[src].reserve(in.frags[src].size());
        for (const Tuple& t : in.frags[src]) inputs[src].push_back(&t);
        for (std::size_t off = 0; off < inputs[src].size(); off += msize) {
          Producer p;
          p.src = src;
          p.base = inputs[src].data() + off;
          p.count = std::min(msize, inputs[src].size() - off);
          p.sent.assign(width_, 0);
          producers.push_back(std::move(p));
        }
      }
      std::vector<std::unique_ptr<ExchangeQueue>> queues;
      queues.reserve(width_);
      for (std::size_t dst = 0; dst < width_; ++dst) {
        queues.push_back(std::make_unique<ExchangeQueue>(
            options_.exchange_capacity, producers.size()));
      }
      PhasePlan plan;
      plan.steal_seed = PhaseSeed();
      plan.queues.resize(width_);
      for (Producer& p : producers) {
        Producer* pp = &p;
        plan.queues[p.src].push_back([pp, &queues, route, batch, this] {
          std::vector<std::vector<Tuple>> bufs(width_);
          for (std::size_t k = 0; k < pp->count; ++k) {
            const Tuple& t = *pp->base[k];
            const std::size_t dst = route(t);
            ++pp->sent[dst];
            bufs[dst].push_back(t);
            if (bufs[dst].size() >= batch) {
              queues[dst]->Push(std::move(bufs[dst]));
              bufs[dst] = {};
            }
          }
          for (std::size_t dst = 0; dst < width_; ++dst) {
            if (!bufs[dst].empty()) queues[dst]->Push(std::move(bufs[dst]));
            queues[dst]->ProducerDone();
          }
        });
      }
      for (std::size_t dst = 0; dst < width_; ++dst) {
        Relation* target = &out.frags[dst];
        ExchangeQueue* q = queues[dst].get();
        plan.followers.push_back([target, q] {
          std::vector<Tuple> b;
          while (q->Pop(&b)) {
            for (Tuple& t : b) target->Insert(std::move(t));
          }
        });
      }
      pool_->Run(std::move(plan));
      uint64_t batches = 0;
      for (const auto& q : queues) batches += q->batches();
      result_.stats.AddExchangeBatches(batches);
      for (const Producer& p : producers) {
        for (std::size_t dst = 0; dst < width_; ++dst) {
          if (dst == p.src || p.sent[dst] == 0) continue;
          transferred += p.sent[dst];
          pair_used[p.src][dst] = true;
        }
      }
    }
    uint64_t messages = 0;
    if (per_pair_messages) {
      for (std::size_t s = 0; s < width_; ++s) {
        for (std::size_t d = 0; d < width_; ++d) {
          if (pair_used[s][d]) ++messages;
        }
      }
    } else {
      messages = transferred > 0 ? 1 : 0;
    }
    result_.stats.AddPhaseTimed(label, scanned, transferred, messages,
                                options_.cost_model, Wall(timer));
    return out;
  }

  /// Hash-redistributes `in` on attribute `attr` (FragmentOfValue).
  FragRel RedistributeOnAttr(const FragRel& in, int attr) {
    const int nodes = nodes_;
    return ExchangePhase(
        "redistribute-attr", in,
        [attr, nodes](const Tuple& t) {
          return U(FragmentOfValue(t.at(U(attr)), nodes));
        },
        Alignment::kAttr, attr, in.maybe_duplicated,
        /*per_pair_messages=*/true);
  }

  /// Hash-redistributes on the whole tuple (set-operation alignment).
  FragRel RedistributeWholeTuple(const FragRel& in) {
    const std::size_t w = width_;
    return ExchangePhase(
        "redistribute-tuple", in,
        [w](const Tuple& t) { return t.Hash() % w; },
        Alignment::kWholeTuple, /*attr=*/-1,
        /*maybe_dup=*/false,  // equal tuples co-locate and dedup
        /*per_pair_messages=*/false);
  }

  /// Replicates every right-side tuple to every node (join predicates
  /// without equality conjuncts). Threaded mode pushes each producer
  /// batch into every destination's ExchangeQueue.
  FragRel BroadcastAll(const FragRel& r, std::size_t right_total) {
    FragRel bc;
    bc.frags.assign(width_, Relation(r.frags[0].schema_ptr()));
    bc.alignment = Alignment::kNone;
    const PhaseTimer timer;
    if (pool_ == nullptr) {
      for (std::size_t i = 0; i < width_; ++i) {
        for (std::size_t src = 0; src < width_; ++src) {
          for (const Tuple& t : r.frags[src]) bc.frags[i].Insert(t);
        }
      }
    } else {
      const std::size_t msize =
          options_.morsel_tuples > 0 ? options_.morsel_tuples : 1;
      struct Producer {
        const Tuple* const* base = nullptr;
        std::size_t count = 0;
      };
      std::vector<std::vector<const Tuple*>> inputs(width_);
      std::vector<Producer> producers;
      std::vector<std::size_t> producer_src;
      for (std::size_t src = 0; src < width_; ++src) {
        inputs[src].reserve(r.frags[src].size());
        for (const Tuple& t : r.frags[src]) inputs[src].push_back(&t);
        for (std::size_t off = 0; off < inputs[src].size(); off += msize) {
          producers.push_back(
              Producer{inputs[src].data() + off,
                       std::min(msize, inputs[src].size() - off)});
          producer_src.push_back(src);
        }
      }
      std::vector<std::unique_ptr<ExchangeQueue>> queues;
      queues.reserve(width_);
      for (std::size_t dst = 0; dst < width_; ++dst) {
        queues.push_back(std::make_unique<ExchangeQueue>(
            options_.exchange_capacity, producers.size()));
      }
      PhasePlan plan;
      plan.steal_seed = PhaseSeed();
      plan.queues.resize(width_);
      for (std::size_t pi = 0; pi < producers.size(); ++pi) {
        Producer* pp = &producers[pi];
        plan.queues[producer_src[pi]].push_back([pp, &queues, this] {
          std::vector<Tuple> buf;
          buf.reserve(pp->count);
          for (std::size_t k = 0; k < pp->count; ++k) {
            buf.push_back(*pp->base[k]);
          }
          for (std::size_t dst = 0; dst < width_; ++dst) {
            if (!buf.empty()) queues[dst]->Push(buf);
            queues[dst]->ProducerDone();
          }
        });
      }
      for (std::size_t dst = 0; dst < width_; ++dst) {
        Relation* target = &bc.frags[dst];
        ExchangeQueue* q = queues[dst].get();
        plan.followers.push_back([target, q] {
          std::vector<Tuple> b;
          while (q->Pop(&b)) {
            for (Tuple& t : b) target->Insert(std::move(t));
          }
        });
      }
      pool_->Run(std::move(plan));
      uint64_t batches = 0;
      for (const auto& q : queues) batches += q->batches();
      result_.stats.AddExchangeBatches(batches);
    }
    result_.stats.AddPhaseTimed(
        "broadcast", std::vector<uint64_t>(width_, 0),
        static_cast<uint64_t>(right_total) * (width_ - 1),
        width_ > 1 ? width_ - 1 : 0, options_.cost_model, Wall(timer));
    return bc;
  }

  /// Selections and projections run fragment-local through the shared
  /// kernel; only the distribution metadata is computed here.
  Result<FragRel> EvalUnary(const PhysicalNode& n) {
    TXMOD_ASSIGN_OR_RETURN(FragRel in, Eval(n.child(0)));
    const RelExpr& e = *n.logical;
    Alignment align;
    int attr;
    bool maybe_dup;
    if (n.op == PhysOpKind::kSelect) {
      align = in.alignment;
      attr = in.attr;
      maybe_dup = in.maybe_duplicated;
    } else {
      // Partitioning survives when some output item is exactly the
      // input's partitioning attribute.
      align = Alignment::kNone;
      attr = -1;
      maybe_dup = true;
      if (in.alignment == Alignment::kAttr) {
        for (std::size_t i = 0; i < e.projections().size(); ++i) {
          const ScalarExpr& pe = e.projections()[i].expr;
          if (pe.op() == ScalarOp::kAttrRef && pe.attr_index() == in.attr) {
            align = Alignment::kAttr;
            attr = static_cast<int>(i);
            maybe_dup = false;  // equal keys co-locate
            break;
          }
        }
      }
      if (in.alignment == Alignment::kCoordinator) {
        align = Alignment::kCoordinator;
        maybe_dup = false;
      }
    }
    return RunKernelPhase(algebra::PhysOpKindToString(n.op), n, in, nullptr,
                          align, attr, maybe_dup);
  }

  bool SetOpAligned(const FragRel& a, const FragRel& b) const {
    if (width_ == 1) return true;  // single node: everything co-located
    if (a.alignment == Alignment::kCoordinator &&
        b.alignment == Alignment::kCoordinator) {
      return true;
    }
    if (a.alignment == Alignment::kWholeTuple &&
        b.alignment == Alignment::kWholeTuple) {
      return true;
    }
    // Arity-1 results hash-partitioned on their only attribute do NOT
    // align with kWholeTuple (different hash normalization), but do align
    // with each other.
    if (a.alignment == Alignment::kAttr && b.alignment == Alignment::kAttr &&
        a.attr == b.attr) {
      return true;
    }
    return false;
  }

  Result<FragRel> EvalSetOp(const PhysicalNode& n) {
    TXMOD_ASSIGN_OR_RETURN(FragRel l, Eval(n.child(0)));
    TXMOD_ASSIGN_OR_RETURN(FragRel r, Eval(n.child(1)));
    if (l.frags[0].arity() != r.frags[0].arity()) {
      return Status::InvalidArgument("set operation over different arities");
    }
    if (!SetOpAligned(l, r)) {
      l = RedistributeWholeTuple(l);
      r = RedistributeWholeTuple(r);
    }
    return RunKernelPhase(algebra::PhysOpKindToString(n.op), n, l, &r,
                          l.alignment, l.attr, /*maybe_dup=*/false);
  }

  Result<FragRel> EvalJoinLike(const PhysicalNode& n) {
    const RelExpr& e = *n.logical;
    TXMOD_ASSIGN_OR_RETURN(FragRel r, Eval(n.child(1)));
    // Empty right operand: joins and semijoins are empty, an antijoin is
    // the left side — without scanning it (differential fast path).
    std::size_t right_total = 0;
    for (const Relation& f : r.frags) right_total += f.size();
    if (right_total == 0) {
      if (e.kind() == RelExprKind::kAntiJoin) return Eval(n.child(0));
      TXMOD_ASSIGN_OR_RETURN(FragRel l, Eval(n.child(0)));
      FragRel out;
      std::shared_ptr<const RelationSchema> schema =
          e.kind() == RelExprKind::kJoin
              ? MakeSchema(
                    ConcatAttrs(l.frags[0].schema(), r.frags[0].schema()))
              : l.frags[0].schema_ptr();
      out.frags.assign(width_, Relation(schema));
      out.alignment = l.alignment;
      out.attr = l.attr;
      return out;
    }
    TXMOD_ASSIGN_OR_RETURN(FragRel l, Eval(n.child(0)));
    if (!n.left_keys.empty()) {
      const int la = n.left_keys[0];
      const int ra = n.right_keys[0];
      // Co-located already? (The paper's key/foreign-key fragmentation.)
      const bool l_ok = width_ == 1 ||
                        (l.alignment == Alignment::kAttr && l.attr == la);
      const bool r_ok = width_ == 1 ||
                        (r.alignment == Alignment::kAttr && r.attr == ra);
      if (!l_ok) l = RedistributeOnAttr(l, la);
      if (!r_ok) r = RedistributeOnAttr(r, ra);
    } else {
      // No equality: broadcast the right operand to every node.
      r = BroadcastAll(r, right_total);
    }

    // Fragment-local join execution through the shared kernel: a hash
    // join (build over the smaller right fragment, probe the left) for
    // equality predicates, nested loops otherwise.
    return RunKernelPhase(algebra::PhysOpKindToString(n.op), n, l, &r,
                          l.alignment, l.attr, l.maybe_duplicated);
  }

  Result<FragRel> EvalAggregate(const PhysicalNode& n) {
    const RelExpr& e = *n.logical;
    if (!e.group_by().empty()) {
      return Status::Unimplemented(
          "grouped aggregates are not part of the parallel enforcement "
          "substrate");
    }
    TXMOD_ASSIGN_OR_RETURN(FragRel in, Eval(n.child(0)));
    // Set semantics: counting a possibly-duplicated intermediate would
    // overcount; dedup by whole-tuple redistribution first.
    if (in.maybe_duplicated) in = RedistributeWholeTuple(in);

    // Node-local partials through the shared aggregate kernel, merged at
    // the coordinator: one partial record per node crosses the
    // interconnect. Fragment granularity in both modes (no morsels):
    // partials then merge in the same order everywhere, so even
    // floating-point sums cannot differ between modes or steal orders.
    std::vector<AggPartial> partials(width_);
    std::vector<uint64_t> scanned(width_);
    for (std::size_t i = 0; i < width_; ++i) scanned[i] = in.frags[i].size();
    std::vector<algebra::EvalStats> node_stats(width_);
    std::vector<Status> statuses(width_, Status::OK());
    const PhaseTimer timer;
    if (pool_ == nullptr) {
      for (std::size_t i = 0; i < width_; ++i) {
        Result<AggPartial> p =
            algebra::AggregateLocal(n, in.frags[i], &node_stats[i]);
        if (p.ok()) {
          partials[i] = std::move(p).value();
        } else {
          statuses[i] = p.status();
        }
      }
    } else {
      PhasePlan plan;
      plan.steal_seed = PhaseSeed();
      plan.queues.resize(width_);
      for (std::size_t i = 0; i < width_; ++i) {
        const Relation* frag = &in.frags[i];
        AggPartial* partial = &partials[i];
        algebra::EvalStats* stats = &node_stats[i];
        Status* status = &statuses[i];
        plan.queues[i].push_back([&n, frag, partial, stats, status] {
          Result<AggPartial> p = algebra::AggregateLocal(n, *frag, stats);
          if (p.ok()) {
            *partial = std::move(p).value();
          } else {
            *status = p.status();
          }
        });
      }
      pool_->Run(std::move(plan));
    }
    for (const Status& st : statuses) {
      TXMOD_RETURN_IF_ERROR(st);
    }
    MergeNodeStats(node_stats);
    result_.stats.AddPhaseTimed("aggregate", scanned, 0, 0,
                                options_.cost_model, Wall(timer));
    result_.stats.AddPhaseTimed("aggregate-merge",
                                std::vector<uint64_t>(width_, 0),
                                static_cast<uint64_t>(width_ - 1),
                                width_ > 1
                                    ? static_cast<uint64_t>(width_ - 1)
                                    : 0,
                                options_.cost_model, 0);
    AggPartial total;
    for (const AggPartial& p : partials) total.Merge(p);
    TXMOD_ASSIGN_OR_RETURN(Value result,
                           algebra::FinalizeAggregate(total, e.agg_func()));
    auto schema = MakeSchema(
        {Attribute{AggFuncToString(e.agg_func()),
                   result.is_double() ? AttrType::kDouble : AttrType::kInt}});
    FragRel out;
    out.frags.assign(width_, Relation(schema));
    out.frags[0].Insert(Tuple({std::move(result)}));
    out.alignment = Alignment::kCoordinator;
    return out;
  }

  /// Folds per-node kernel counters into the transaction's EvalStats.
  /// Kernels write disjoint per-node records during a threaded phase; the
  /// merge happens after the pool phase completes, so no counter is ever
  /// shared across threads.
  void MergeNodeStats(const std::vector<algebra::EvalStats>& node_stats) {
    for (const algebra::EvalStats& s : node_stats) {
      result_.eval_stats.Add(s);
    }
  }

  ParallelDatabase* db_;
  const ParallelOptions& options_;
  algebra::PlanCache* plan_cache_;
  ThreadPool* pool_;         // null = simulate mode (inline phases)
  const int nodes_;          // node count for the fragmentation API
  const std::size_t width_;  // the same count, as a container extent
  ParallelTxnResult result_;
  uint64_t phase_ordinal_ = 0;  // feeds PhaseSeed
  /// Binding vector of the statement currently being evaluated (null in
  /// reference mode); read-only during threaded phases.
  const std::vector<Value>* cur_params_ = nullptr;
  std::map<std::string, FragRel> temps_;
  std::map<std::string, NodeDiff> diffs_;
};

ParallelExecutor::ParallelExecutor(ParallelDatabase* db,
                                   ParallelOptions options)
    : db_(db), options_(std::move(options)) {
  plan_cache_.set_shape_capacity(options_.plan_cache_capacity);
  if (options_.use_threads) {
    if (options_.pool != nullptr) {
      pool_ = options_.pool;
    } else if (options_.num_workers > 0) {
      owned_pool_ = std::make_unique<ThreadPool>(options_.num_workers);
      pool_ = owned_pool_.get();
    } else {
      pool_ = &ThreadPool::Shared();
    }
  }
}

Result<ParallelTxnResult> ParallelExecutor::Execute(
    const algebra::Transaction& txn) {
  Impl impl(db_, options_, &plan_cache_, pool_);
  return impl.Run(txn);
}

}  // namespace txmod::parallel
