#include "src/parallel/executor.h"

#include <functional>
#include <optional>
#include <thread>

#include "src/algebra/physical_plan.h"
#include "src/common/str_util.h"

namespace txmod::parallel {

using algebra::AggFunc;
using algebra::AggPartial;
using algebra::PhysOpKind;
using algebra::PhysicalNode;
using algebra::PhysicalPlan;
using algebra::RelExpr;
using algebra::RelExprKind;
using algebra::RelRefKind;
using algebra::ScalarExpr;
using algebra::ScalarOp;
using algebra::Statement;
using algebra::StatementKind;

namespace {

/// How the fragments of an intermediate result are aligned across nodes.
enum class Alignment {
  kNone,         // tuples may be anywhere (and may duplicate across nodes)
  kAttr,         // hash-partitioned on one attribute (attr index below)
  kWholeTuple,   // hash-partitioned on the full tuple (set-op safe)
  kCoordinator,  // all tuples on node 0 (literals, aggregate results)
};

/// A fragmented intermediate result.
struct FragRel {
  std::vector<Relation> frags;
  Alignment alignment = Alignment::kNone;
  int attr = -1;  // kAttr only
  /// False when tuples are globally duplicate-free under set semantics.
  bool maybe_duplicated = false;
};

std::shared_ptr<const RelationSchema> MakeSchema(
    std::vector<Attribute> attrs) {
  return std::make_shared<const RelationSchema>("", std::move(attrs));
}

std::vector<Attribute> ConcatAttrs(const RelationSchema& a,
                                   const RelationSchema& b) {
  std::vector<Attribute> attrs = a.attributes();
  attrs.insert(attrs.end(), b.attributes().begin(), b.attributes().end());
  return attrs;
}

/// Node ids cross the fragmentation API as int; containers index with
/// size_t. One named conversion point instead of a cast per call site.
constexpr std::size_t U(int node) { return static_cast<std::size_t>(node); }

}  // namespace

// ---------------------------------------------------------------------------
// Implementation: one Impl per transaction execution.
// ---------------------------------------------------------------------------

class ParallelExecutor::Impl {
 public:
  Impl(ParallelDatabase* db, const ParallelOptions& options,
       algebra::PlanCache* plan_cache)
      : db_(db),
        options_(options),
        plan_cache_(plan_cache),
        nodes_(db->num_nodes()),
        width_(U(db->num_nodes())),
        result_{false, "", ParallelStats(db->num_nodes()),
                algebra::EvalStats{}} {}

  Result<ParallelTxnResult> Run(const algebra::Transaction& txn) {
    for (const Statement& stmt : txn.program.statements) {
      const Status st = ExecuteStatement(stmt);
      if (st.ok()) continue;
      Rollback();
      if (st.code() == StatusCode::kAborted) {
        result_.committed = false;
        result_.abort_reason = st.message();
        return result_;
      }
      return st;
    }
    result_.committed = true;
    return result_;
  }

 private:
  // --- statement execution -------------------------------------------------

  Status ExecuteStatement(const Statement& stmt) {
    switch (stmt.kind) {
      case StatementKind::kAssign: {
        TXMOD_ASSIGN_OR_RETURN(FragRel value, EvalExpr(*stmt.expr));
        temps_.insert_or_assign(stmt.target, std::move(value));
        return Status::OK();
      }
      case StatementKind::kInsert:
        return ExecuteInsert(stmt);
      case StatementKind::kDelete:
        return ExecuteDelete(stmt);
      case StatementKind::kUpdate:
        return ExecuteUpdate(stmt);
      case StatementKind::kAlarm: {
        TXMOD_ASSIGN_OR_RETURN(FragRel value, EvalExpr(*stmt.expr));
        std::size_t total = 0;
        for (const Relation& f : value.frags) total += f.size();
        if (total == 0) return Status::OK();
        return Status::Aborted(stmt.message.empty()
                                   ? StrCat("alarm raised: ",
                                            stmt.expr->ToString())
                                   : stmt.message);
      }
      case StatementKind::kAbort:
        return Status::Aborted(stmt.message.empty() ? "abort statement"
                                                    : stmt.message);
    }
    return Status::Internal("unknown statement kind");
  }

  Status ExecuteInsert(const Statement& stmt) {
    TXMOD_ASSIGN_OR_RETURN(FragRel value, EvalExpr(*stmt.expr));
    TXMOD_ASSIGN_OR_RETURN(FragmentedRelation * target,
                           db_->FindMutable(stmt.target));
    const RelationSchema& schema = target->fragments[0].schema();
    // Route every produced tuple to its owning fragment; a tuple produced
    // on a different node is a transfer.
    uint64_t transferred = 0;
    std::vector<uint64_t> local(width_, 0);
    for (std::size_t src = 0; src < width_; ++src) {
      for (const Tuple& raw : value.frags[src]) {
        TXMOD_RETURN_IF_ERROR(schema.CheckTuple(raw));
        Tuple t = schema.CoerceTuple(raw);
        const std::size_t dst = U(FragmentOf(t, target->scheme, nodes_));
        if (dst != src) ++transferred;
        ++local[src];
        ApplyInsert(stmt.target, target, dst, std::move(t));
      }
    }
    result_.stats.AddPhase(local, transferred, transferred > 0 ? 1 : 0,
                           options_.cost_model);
    return Status::OK();
  }

  Status ExecuteDelete(const Statement& stmt) {
    TXMOD_ASSIGN_OR_RETURN(FragRel value, EvalExpr(*stmt.expr));
    TXMOD_ASSIGN_OR_RETURN(FragmentedRelation * target,
                           db_->FindMutable(stmt.target));
    const RelationSchema& schema = target->fragments[0].schema();
    uint64_t transferred = 0;
    std::vector<uint64_t> local(width_, 0);
    for (std::size_t src = 0; src < width_; ++src) {
      for (const Tuple& raw : value.frags[src]) {
        const Tuple t = schema.CoerceTuple(raw);
        const std::size_t dst = U(FragmentOf(t, target->scheme, nodes_));
        if (dst != src) ++transferred;
        ++local[src];
        ApplyDelete(stmt.target, target, dst, t);
      }
    }
    result_.stats.AddPhase(local, transferred, transferred > 0 ? 1 : 0,
                           options_.cost_model);
    return Status::OK();
  }

  Status ExecuteUpdate(const Statement& stmt) {
    TXMOD_ASSIGN_OR_RETURN(FragmentedRelation * target,
                           db_->FindMutable(stmt.target));
    const RelationSchema& schema = target->fragments[0].schema();
    uint64_t transferred = 0;
    std::vector<uint64_t> local(width_, 0);
    for (std::size_t node = 0; node < width_; ++node) {
      std::vector<Tuple> selected;
      for (const Tuple& t : target->fragments[node]) {
        TXMOD_ASSIGN_OR_RETURN(bool match,
                               stmt.predicate.EvalPredicate(&t, nullptr));
        if (match) selected.push_back(t);
      }
      local[node] += target->fragments[node].size();
      for (const Tuple& old_tuple : selected) {
        Tuple new_tuple = old_tuple;
        for (const algebra::UpdateSet& u : stmt.sets) {
          TXMOD_ASSIGN_OR_RETURN(Value v,
                                 u.expr.EvalValue(&old_tuple, nullptr));
          new_tuple.at(U(u.attr)) = std::move(v);
        }
        TXMOD_RETURN_IF_ERROR(schema.CheckTuple(new_tuple));
        new_tuple = schema.CoerceTuple(std::move(new_tuple));
        ApplyDelete(stmt.target, target, node, old_tuple);
        const std::size_t dst =
            U(FragmentOf(new_tuple, target->scheme, nodes_));
        if (dst != node) ++transferred;
        ApplyInsert(stmt.target, target, dst, std::move(new_tuple));
      }
    }
    result_.stats.AddPhase(local, transferred, transferred > 0 ? 1 : 0,
                           options_.cost_model);
    return Status::OK();
  }

  // --- differential bookkeeping + rollback ----------------------------------

  struct NodeDiff {
    std::vector<Relation> plus;
    std::vector<Relation> minus;
  };

  NodeDiff& DiffFor(const std::string& rel, const FragmentedRelation& f) {
    auto it = diffs_.find(rel);
    if (it == diffs_.end()) {
      NodeDiff d;
      for (std::size_t i = 0; i < width_; ++i) {
        d.plus.emplace_back(f.fragments[0].schema_ptr());
        d.minus.emplace_back(f.fragments[0].schema_ptr());
      }
      it = diffs_.emplace(rel, std::move(d)).first;
    }
    return it->second;
  }

  void ApplyInsert(const std::string& name, FragmentedRelation* rel,
                   std::size_t node, Tuple t) {
    if (!rel->fragments[node].Insert(t)) return;
    NodeDiff& d = DiffFor(name, *rel);
    if (!d.minus[node].Erase(t)) d.plus[node].Insert(std::move(t));
  }

  void ApplyDelete(const std::string& name, FragmentedRelation* rel,
                   std::size_t node, const Tuple& t) {
    if (!rel->fragments[node].Erase(t)) return;
    NodeDiff& d = DiffFor(name, *rel);
    if (!d.plus[node].Erase(t)) d.minus[node].Insert(t);
  }

  void Rollback() {
    for (auto& [name, diff] : diffs_) {
      FragmentedRelation* rel = *db_->FindMutable(name);
      for (std::size_t i = 0; i < width_; ++i) {
        for (const Tuple& t : diff.plus[i]) rel->fragments[i].Erase(t);
        for (const Tuple& t : diff.minus[i]) rel->fragments[i].Insert(t);
      }
    }
    diffs_.clear();
    temps_.clear();
  }

  // --- expression evaluation -------------------------------------------------

  /// Evaluates `e` through the executor's shape-keyed plan cache: the
  /// same physical plan the serial engine runs, compiled once per
  /// statement *shape* and reused under this statement's constant binding
  /// — this executor decides *where* each operator's work happens
  /// (alignment, redistribution, broadcast — charged to the cost model),
  /// and the shared fragment-local kernels (algebra::ExecuteNodeLocal)
  /// decide *how* a fragment's tuples are joined, filtered, and
  /// projected. The distribution decisions ride with the cached tree:
  /// redistribution keys and the partition-vs-broadcast choice are read
  /// off the plan nodes' equality-key metadata, so a cache hit skips
  /// re-deriving them as well.
  Result<FragRel> EvalExpr(const RelExpr& e) {
    if (plan_cache_ == nullptr || plan_cache_->shape_capacity() == 0) {
      // Reference mode: one-shot compile of the statement's own tree
      // (not even canonicalized — the oracle tests diff the cached
      // engine against this as an independent implementation).
      if (plan_cache_ != nullptr) {
        plan_cache_->CountBypassedMiss(&result_.eval_stats);
      } else {
        ++result_.eval_stats.plan_cache_misses;
      }
      TXMOD_ASSIGN_OR_RETURN(PhysicalPlan plan, PhysicalPlan::Compile(e));
      cur_params_ = nullptr;
      return Eval(plan.root());
    }
    TXMOD_ASSIGN_OR_RETURN(
        algebra::BoundPlan bound,
        plan_cache_->GetOrCompileShaped(e, &result_.eval_stats));
    cur_params_ = &bound.params;
    Result<FragRel> out = Eval(bound.plan->root());
    cur_params_ = nullptr;
    return out;
  }

  Result<FragRel> Eval(const PhysicalNode& n) {
    switch (n.op) {
      case PhysOpKind::kScan:
        return EvalRef(*n.logical);
      case PhysOpKind::kLiteral:
        return EvalLiteral(*n.logical);
      case PhysOpKind::kSelect:
      case PhysOpKind::kProject:
        return EvalUnary(n);
      case PhysOpKind::kHashJoin:
      case PhysOpKind::kIndexLookupJoin:
      case PhysOpKind::kNestedLoopJoin:
        return EvalJoinLike(n);
      case PhysOpKind::kUnion:
      case PhysOpKind::kHashSetOp:
      case PhysOpKind::kIndexSetOp:
        return EvalSetOp(n);
      case PhysOpKind::kAggregate:
        return EvalAggregate(n);
      case PhysOpKind::kProduct:
        return Status::Unimplemented(
            "cartesian products are not part of the parallel enforcement "
            "substrate (no integrity program needs them; see executor.h)");
    }
    return Status::Internal("unknown physical operator");
  }

  Alignment BaseAlignment(const FragmentedRelation& f, int* attr) const {
    if (f.scheme.kind == FragmentationKind::kHash) {
      *attr = f.scheme.attr;
      return Alignment::kAttr;
    }
    *attr = -1;
    return Alignment::kNone;
  }

  Result<FragRel> EvalRef(const RelExpr& e) {
    if (e.ref_kind() == RelRefKind::kTemp) {
      auto it = temps_.find(e.rel_name());
      if (it == temps_.end()) {
        return Status::NotFound(StrCat("unknown temporary ", e.rel_name()));
      }
      return it->second;
    }
    TXMOD_ASSIGN_OR_RETURN(const FragmentedRelation* base,
                           db_->Find(e.rel_name()));
    FragRel out;
    switch (e.ref_kind()) {
      case RelRefKind::kBase:
        out.frags = base->fragments;  // copy; mutation safety
        break;
      case RelRefKind::kTemp:
        return Status::Internal("temp handled above");
      case RelRefKind::kDeltaPlus:
      case RelRefKind::kDeltaMinus: {
        auto it = diffs_.find(e.rel_name());
        if (it == diffs_.end()) {
          for (std::size_t i = 0; i < width_; ++i) {
            out.frags.emplace_back(base->fragments[0].schema_ptr());
          }
        } else {
          out.frags = e.ref_kind() == RelRefKind::kDeltaPlus
                          ? it->second.plus
                          : it->second.minus;
        }
        break;
      }
      case RelRefKind::kOld: {
        // (R \ plus) ∪ minus, node-local (diffs are routed to owners).
        auto it = diffs_.find(e.rel_name());
        for (std::size_t i = 0; i < width_; ++i) {
          Relation old_view(base->fragments[0].schema_ptr());
          for (const Tuple& t : base->fragments[i]) {
            if (it == diffs_.end() || !it->second.plus[i].Contains(t)) {
              old_view.Insert(t);
            }
          }
          if (it != diffs_.end()) {
            for (const Tuple& t : it->second.minus[i]) old_view.Insert(t);
          }
          out.frags.push_back(std::move(old_view));
        }
        break;
      }
    }
    out.alignment = BaseAlignment(*base, &out.attr);
    out.maybe_duplicated = false;
    return out;
  }

  Result<FragRel> EvalLiteral(const RelExpr& e) {
    TXMOD_ASSIGN_OR_RETURN(
        Relation lit,
        algebra::MaterializeLiteral(e, &result_.eval_stats, cur_params_));
    FragRel out;
    for (std::size_t i = 0; i < width_; ++i) {
      out.frags.emplace_back(lit.schema_ptr());
    }
    out.frags[0] = std::move(lit);
    out.alignment = Alignment::kCoordinator;
    return out;
  }

  /// Runs `fn(node)` for every node, optionally on real threads, and
  /// records the per-node scan counts as one phase.
  Status ParallelPhase(const std::vector<uint64_t>& scanned,
                       const std::function<Status(std::size_t)>& fn,
                       uint64_t transferred = 0, uint64_t messages = 0) {
    std::vector<Status> statuses(width_);
    if (options_.use_threads && width_ > 1) {
      std::vector<std::thread> threads;
      threads.reserve(width_);
      for (std::size_t i = 0; i < width_; ++i) {
        threads.emplace_back([&, i] { statuses[i] = fn(i); });
      }
      for (std::thread& t : threads) t.join();
    } else {
      for (std::size_t i = 0; i < width_; ++i) statuses[i] = fn(i);
    }
    for (const Status& st : statuses) {
      TXMOD_RETURN_IF_ERROR(st);
    }
    result_.stats.AddPhase(scanned, transferred, messages,
                           options_.cost_model);
    return Status::OK();
  }

  /// Selections and projections run fragment-local through the shared
  /// kernel; only the distribution metadata is computed here.
  Result<FragRel> EvalUnary(const PhysicalNode& n) {
    TXMOD_ASSIGN_OR_RETURN(FragRel in, Eval(n.child(0)));
    const RelExpr& e = *n.logical;
    FragRel out;
    out.frags.assign(width_, Relation());
    if (n.op == PhysOpKind::kSelect) {
      out.alignment = in.alignment;
      out.attr = in.attr;
      out.maybe_duplicated = in.maybe_duplicated;
    } else {
      // Partitioning survives when some output item is exactly the
      // input's partitioning attribute.
      out.alignment = Alignment::kNone;
      out.attr = -1;
      out.maybe_duplicated = true;
      if (in.alignment == Alignment::kAttr) {
        for (std::size_t i = 0; i < e.projections().size(); ++i) {
          const ScalarExpr& pe = e.projections()[i].expr;
          if (pe.op() == ScalarOp::kAttrRef && pe.attr_index() == in.attr) {
            out.alignment = Alignment::kAttr;
            out.attr = static_cast<int>(i);
            out.maybe_duplicated = false;  // equal keys co-locate
            break;
          }
        }
      }
      if (in.alignment == Alignment::kCoordinator) {
        out.alignment = Alignment::kCoordinator;
        out.maybe_duplicated = false;
      }
    }
    std::vector<uint64_t> scanned(width_);
    for (std::size_t i = 0; i < width_; ++i) scanned[i] = in.frags[i].size();
    std::vector<algebra::EvalStats> node_stats(width_);
    TXMOD_RETURN_IF_ERROR(
        ParallelPhase(scanned, [&](std::size_t i) -> Status {
          TXMOD_ASSIGN_OR_RETURN(
              out.frags[i],
              algebra::ExecuteNodeLocal(n, in.frags[i], nullptr,
                                        &node_stats[i], cur_params_));
          return Status::OK();
        }));
    MergeNodeStats(node_stats);
    return out;
  }

  /// Hash-redistributes `in` on attribute `attr` (FragmentOfValue).
  FragRel RedistributeOnAttr(FragRel in, int attr) {
    FragRel out;
    out.frags.assign(width_, Relation(in.frags[0].schema_ptr()));
    out.alignment = Alignment::kAttr;
    out.attr = attr;
    out.maybe_duplicated = in.maybe_duplicated;
    uint64_t transferred = 0;
    std::vector<uint64_t> scanned(width_, 0);
    std::vector<std::vector<bool>> pair_used(
        width_, std::vector<bool>(width_, false));
    for (std::size_t src = 0; src < width_; ++src) {
      scanned[src] = in.frags[src].size();
      for (const Tuple& t : in.frags[src]) {
        const std::size_t dst = U(FragmentOfValue(t.at(U(attr)), nodes_));
        if (dst != src) {
          ++transferred;
          pair_used[src][dst] = true;
        }
        out.frags[dst].Insert(t);
      }
    }
    uint64_t messages = 0;
    for (std::size_t s = 0; s < width_; ++s) {
      for (std::size_t d = 0; d < width_; ++d) {
        if (pair_used[s][d]) ++messages;
      }
    }
    result_.stats.AddPhase(scanned, transferred, messages,
                           options_.cost_model);
    return out;
  }

  /// Hash-redistributes on the whole tuple (set-operation alignment).
  FragRel RedistributeWholeTuple(FragRel in) {
    FragRel out;
    out.frags.assign(width_, Relation(in.frags[0].schema_ptr()));
    out.alignment = Alignment::kWholeTuple;
    out.maybe_duplicated = false;  // equal tuples co-locate and dedup
    uint64_t transferred = 0;
    std::vector<uint64_t> scanned(width_, 0);
    for (std::size_t src = 0; src < width_; ++src) {
      scanned[src] = in.frags[src].size();
      for (const Tuple& t : in.frags[src]) {
        const std::size_t dst = t.Hash() % width_;
        if (dst != src) ++transferred;
        out.frags[dst].Insert(t);
      }
    }
    result_.stats.AddPhase(scanned, transferred,
                           transferred > 0 ? 1 : 0, options_.cost_model);
    return out;
  }

  bool SetOpAligned(const FragRel& a, const FragRel& b) const {
    if (width_ == 1) return true;  // single node: everything co-located
    if (a.alignment == Alignment::kCoordinator &&
        b.alignment == Alignment::kCoordinator) {
      return true;
    }
    if (a.alignment == Alignment::kWholeTuple &&
        b.alignment == Alignment::kWholeTuple) {
      return true;
    }
    // Arity-1 results hash-partitioned on their only attribute do NOT
    // align with kWholeTuple (different hash normalization), but do align
    // with each other.
    if (a.alignment == Alignment::kAttr && b.alignment == Alignment::kAttr &&
        a.attr == b.attr) {
      return true;
    }
    return false;
  }

  Result<FragRel> EvalSetOp(const PhysicalNode& n) {
    TXMOD_ASSIGN_OR_RETURN(FragRel l, Eval(n.child(0)));
    TXMOD_ASSIGN_OR_RETURN(FragRel r, Eval(n.child(1)));
    if (l.frags[0].arity() != r.frags[0].arity()) {
      return Status::InvalidArgument("set operation over different arities");
    }
    if (!SetOpAligned(l, r)) {
      l = RedistributeWholeTuple(std::move(l));
      r = RedistributeWholeTuple(std::move(r));
    }
    FragRel out;
    out.frags.assign(width_, Relation());
    out.alignment = l.alignment;
    out.attr = l.attr;
    out.maybe_duplicated = false;
    std::vector<uint64_t> scanned(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      scanned[i] = l.frags[i].size() + r.frags[i].size();
    }
    std::vector<algebra::EvalStats> node_stats(width_);
    TXMOD_RETURN_IF_ERROR(
        ParallelPhase(scanned, [&](std::size_t i) -> Status {
          TXMOD_ASSIGN_OR_RETURN(
              out.frags[i],
              algebra::ExecuteNodeLocal(n, l.frags[i], &r.frags[i],
                                        &node_stats[i], cur_params_));
          return Status::OK();
        }));
    MergeNodeStats(node_stats);
    return out;
  }

  Result<FragRel> EvalJoinLike(const PhysicalNode& n) {
    const RelExpr& e = *n.logical;
    TXMOD_ASSIGN_OR_RETURN(FragRel r, Eval(n.child(1)));
    // Empty right operand: joins and semijoins are empty, an antijoin is
    // the left side — without scanning it (differential fast path).
    std::size_t right_total = 0;
    for (const Relation& f : r.frags) right_total += f.size();
    if (right_total == 0) {
      if (e.kind() == RelExprKind::kAntiJoin) return Eval(n.child(0));
      TXMOD_ASSIGN_OR_RETURN(FragRel l, Eval(n.child(0)));
      FragRel out;
      std::shared_ptr<const RelationSchema> schema =
          e.kind() == RelExprKind::kJoin
              ? MakeSchema(
                    ConcatAttrs(l.frags[0].schema(), r.frags[0].schema()))
              : l.frags[0].schema_ptr();
      out.frags.assign(width_, Relation(schema));
      out.alignment = l.alignment;
      out.attr = l.attr;
      return out;
    }
    TXMOD_ASSIGN_OR_RETURN(FragRel l, Eval(n.child(0)));
    if (!n.left_keys.empty()) {
      const int la = n.left_keys[0];
      const int ra = n.right_keys[0];
      // Co-located already? (The paper's key/foreign-key fragmentation.)
      const bool l_ok = width_ == 1 ||
                        (l.alignment == Alignment::kAttr && l.attr == la);
      const bool r_ok = width_ == 1 ||
                        (r.alignment == Alignment::kAttr && r.attr == ra);
      if (!l_ok) l = RedistributeOnAttr(std::move(l), la);
      if (!r_ok) r = RedistributeOnAttr(std::move(r), ra);
    } else {
      // No equality: broadcast the right operand to every node.
      FragRel bc;
      bc.frags.assign(width_, Relation(r.frags[0].schema_ptr()));
      for (std::size_t i = 0; i < width_; ++i) {
        for (std::size_t src = 0; src < width_; ++src) {
          for (const Tuple& t : r.frags[src]) bc.frags[i].Insert(t);
        }
      }
      result_.stats.AddPhase(
          std::vector<uint64_t>(width_, 0),
          static_cast<uint64_t>(right_total) * (width_ - 1),
          width_ > 1 ? width_ - 1 : 0, options_.cost_model);
      bc.alignment = Alignment::kNone;
      r = std::move(bc);
    }

    // Fragment-local join execution through the shared kernel: a hash
    // join (build over the smaller right fragment, probe the left) for
    // equality predicates, nested loops otherwise.
    FragRel out;
    out.frags.assign(width_, Relation());
    out.alignment = l.alignment;
    out.attr = l.attr;
    out.maybe_duplicated = l.maybe_duplicated;
    std::vector<uint64_t> scanned(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      scanned[i] = l.frags[i].size() + r.frags[i].size();
    }
    std::vector<algebra::EvalStats> node_stats(width_);
    TXMOD_RETURN_IF_ERROR(
        ParallelPhase(scanned, [&](std::size_t i) -> Status {
          TXMOD_ASSIGN_OR_RETURN(
              out.frags[i],
              algebra::ExecuteNodeLocal(n, l.frags[i], &r.frags[i],
                                        &node_stats[i], cur_params_));
          return Status::OK();
        }));
    MergeNodeStats(node_stats);
    return out;
  }

  Result<FragRel> EvalAggregate(const PhysicalNode& n) {
    const RelExpr& e = *n.logical;
    if (!e.group_by().empty()) {
      return Status::Unimplemented(
          "grouped aggregates are not part of the parallel enforcement "
          "substrate");
    }
    TXMOD_ASSIGN_OR_RETURN(FragRel in, Eval(n.child(0)));
    // Set semantics: counting a possibly-duplicated intermediate would
    // overcount; dedup by whole-tuple redistribution first.
    if (in.maybe_duplicated) in = RedistributeWholeTuple(std::move(in));

    // Node-local partials through the shared aggregate kernel, merged at
    // the coordinator: one partial record per node crosses the
    // interconnect.
    std::vector<AggPartial> partials(width_);
    std::vector<uint64_t> scanned(width_);
    for (std::size_t i = 0; i < width_; ++i) scanned[i] = in.frags[i].size();
    std::vector<algebra::EvalStats> node_stats(width_);
    TXMOD_RETURN_IF_ERROR(
        ParallelPhase(scanned, [&](std::size_t i) -> Status {
          TXMOD_ASSIGN_OR_RETURN(
              partials[i],
              algebra::AggregateLocal(n, in.frags[i], &node_stats[i]));
          return Status::OK();
        }));
    MergeNodeStats(node_stats);
    result_.stats.AddPhase(std::vector<uint64_t>(width_, 0),
                           static_cast<uint64_t>(width_ - 1),
                           width_ > 1 ? static_cast<uint64_t>(width_ - 1) : 0,
                           options_.cost_model);
    AggPartial total;
    for (const AggPartial& p : partials) total.Merge(p);
    TXMOD_ASSIGN_OR_RETURN(Value result,
                           algebra::FinalizeAggregate(total, e.agg_func()));
    auto schema = MakeSchema(
        {Attribute{AggFuncToString(e.agg_func()),
                   result.is_double() ? AttrType::kDouble : AttrType::kInt}});
    FragRel out;
    out.frags.assign(width_, Relation(schema));
    out.frags[0].Insert(Tuple({std::move(result)}));
    out.alignment = Alignment::kCoordinator;
    return out;
  }

  /// Folds per-node kernel counters into the transaction's EvalStats.
  /// Kernels write disjoint per-node records during a threaded phase; the
  /// merge happens after the join, so no counter is ever shared across
  /// threads.
  void MergeNodeStats(const std::vector<algebra::EvalStats>& node_stats) {
    for (const algebra::EvalStats& s : node_stats) {
      result_.eval_stats.Add(s);
    }
  }

  ParallelDatabase* db_;
  const ParallelOptions& options_;
  algebra::PlanCache* plan_cache_;
  const int nodes_;          // node count for the fragmentation API
  const std::size_t width_;  // the same count, as a container extent
  ParallelTxnResult result_;
  /// Binding vector of the statement currently being evaluated (null in
  /// reference mode); read-only during threaded phases.
  const std::vector<Value>* cur_params_ = nullptr;
  std::map<std::string, FragRel> temps_;
  std::map<std::string, NodeDiff> diffs_;
};

ParallelExecutor::ParallelExecutor(ParallelDatabase* db,
                                   ParallelOptions options)
    : db_(db), options_(std::move(options)) {
  plan_cache_.set_shape_capacity(options_.plan_cache_capacity);
}

Result<ParallelTxnResult> ParallelExecutor::Execute(
    const algebra::Transaction& txn) {
  Impl impl(db_, options_, &plan_cache_);
  return impl.Run(txn);
}

}  // namespace txmod::parallel
