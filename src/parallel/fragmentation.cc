#include "src/parallel/fragmentation.h"

namespace txmod::parallel {

int FragmentOfValue(const Value& value, int num_fragments) {
  // Numeric values are normalized so that Int(1) and Double(1.0) land on
  // the same node — consistent with predicate equality (join keys).
  const Value normalized =
      value.is_int() ? Value::Double(static_cast<double>(value.as_int()))
                     : value;
  return static_cast<int>(normalized.Hash() %
                          static_cast<std::size_t>(num_fragments));
}

int FragmentOf(const Tuple& tuple, const FragmentationScheme& scheme,
               int num_fragments) {
  if (num_fragments <= 1) return 0;
  switch (scheme.kind) {
    case FragmentationKind::kHash:
      return FragmentOfValue(tuple.at(scheme.attr), num_fragments);
    case FragmentationKind::kRoundRobin:
      return static_cast<int>(tuple.Hash() %
                              static_cast<std::size_t>(num_fragments));
  }
  return 0;
}

}  // namespace txmod::parallel
