#include "src/txn/txn_context.h"

#include "src/common/str_util.h"

namespace txmod::txn {

using algebra::RelRefKind;

Result<const Relation*> TxnContext::Resolve(RelRefKind kind,
                                            const std::string& name) const {
  if (track_conflicts_ &&
      (kind == RelRefKind::kBase || kind == RelRefKind::kOld)) {
    base_reads_.insert(name);
  }
  return ResolveData(kind, name);
}

Result<const Relation*> TxnContext::ResolveSchemaOnly(
    RelRefKind kind, const std::string& name) const {
  if (kind == RelRefKind::kOld) {
    // old(R) has exactly R's schema; a schema-only access must not pay
    // for materializing the old view of a possibly huge relation.
    return db_->Find(name);
  }
  return ResolveData(kind, name);
}

Result<const Relation*> TxnContext::ResolveData(
    RelRefKind kind, const std::string& name) const {
  switch (kind) {
    case RelRefKind::kBase: {
      TXMOD_ASSIGN_OR_RETURN(const Relation* rel, db_->Find(name));
      return rel;
    }
    case RelRefKind::kTemp: {
      auto it = temps_.find(name);
      if (it == temps_.end()) {
        return Status::NotFound(StrCat("unknown temporary ", name));
      }
      return &it->second;
    }
    case RelRefKind::kOld: {
      auto cached = old_cache_.find(name);
      if (cached != old_cache_.end()) return &cached->second;
      TXMOD_ASSIGN_OR_RETURN(const Relation* rel, db_->Find(name));
      // R_pre = (R \ plus) ∪ minus; invariant of Differential.
      Relation old_view(rel->schema_ptr());
      auto dit = diffs_.find(name);
      const Differential* diff = dit != diffs_.end() ? &dit->second : nullptr;
      for (const Tuple& t : *rel) {
        if (diff == nullptr || !diff->plus.Contains(t)) old_view.Insert(t);
      }
      if (diff != nullptr) {
        for (const Tuple& t : diff->minus) old_view.Insert(t);
      }
      auto [it, inserted] = old_cache_.emplace(name, std::move(old_view));
      return &it->second;
    }
    case RelRefKind::kDeltaPlus:
    case RelRefKind::kDeltaMinus: {
      auto dit = diffs_.find(name);
      if (dit != diffs_.end()) {
        return kind == RelRefKind::kDeltaPlus ? &dit->second.plus
                                              : &dit->second.minus;
      }
      // Untouched relation: an empty relation with the base schema.
      auto eit = empty_diffs_.find(name);
      if (eit == empty_diffs_.end()) {
        TXMOD_ASSIGN_OR_RETURN(const Relation* rel, db_->Find(name));
        eit = empty_diffs_.emplace(name, Relation(rel->schema_ptr())).first;
      }
      return &eit->second;
    }
  }
  return Status::Internal("unknown RelRefKind");
}

void TxnContext::SetTemp(const std::string& name, Relation value) {
  temps_.insert_or_assign(name, std::move(value));
}

Differential& TxnContext::MutableDiff(const std::string& rel) {
  auto it = diffs_.find(rel);
  if (it == diffs_.end()) {
    const Relation* base = *db_->Find(rel);
    Differential d;
    d.plus = Relation(base->schema_ptr());
    d.minus = Relation(base->schema_ptr());
    it = diffs_.emplace(rel, std::move(d)).first;
  }
  return it->second;
}

void TxnContext::RecordFootprint(const std::string& rel,
                                 const Relation& target, const Tuple& t) {
  auto it = footprint_.find(rel);
  if (it == footprint_.end()) {
    it = footprint_.emplace(rel, Relation(target.schema_ptr())).first;
  }
  // Dedupe before inserting: the footprint has set semantics anyway, but
  // Insert's by-value parameter deep-copies the tuple per attempt — a
  // large idempotent batch re-touching the same tuples would pay an
  // O(attempts) allocation bill for an unchanged set.
  if (!it->second.Contains(t)) it->second.Insert(t);
}

Result<bool> TxnContext::InsertTuple(const std::string& rel, Tuple tuple) {
  // Probe the const view first: a no-op insert (tuple already present)
  // must not trigger a copy-on-write clone of the whole relation. Under
  // conflict tracking the footprint is recorded either way — whether it
  // WAS a no-op is a tuple-granularity read of the committed state.
  TXMOD_ASSIGN_OR_RETURN(const Relation* current, db_->Find(rel));
  TXMOD_RETURN_IF_ERROR(current->schema().CheckTuple(tuple));
  Tuple coerced = current->schema().CoerceTuple(std::move(tuple));
  if (track_conflicts_) {
    RecordFootprint(rel, *current, coerced);
    if (current->Contains(coerced)) return false;  // already present
  }
  TXMOD_ASSIGN_OR_RETURN(Relation * target, db_->FindMutable(rel));
  if (!target->Insert(coerced)) return false;  // already present: no-op
  Differential& d = MutableDiff(rel);
  // Re-inserting a tuple the transaction deleted nets out to "unchanged".
  if (!d.minus.Erase(coerced)) d.plus.Insert(std::move(coerced));
  return true;
}

Result<bool> TxnContext::DeleteTuple(const std::string& rel,
                                     const Tuple& tuple) {
  TXMOD_ASSIGN_OR_RETURN(const Relation* current, db_->Find(rel));
  const Tuple coerced = current->schema().CoerceTuple(tuple);
  if (track_conflicts_) {
    RecordFootprint(rel, *current, coerced);
    if (!current->Contains(coerced)) return false;  // absent: no-op
  }
  TXMOD_ASSIGN_OR_RETURN(Relation * target, db_->FindMutable(rel));
  if (!target->Erase(coerced)) return false;  // absent: no-op
  Differential& d = MutableDiff(rel);
  // Deleting a tuple the transaction inserted nets out to "unchanged".
  if (!d.plus.Erase(coerced)) d.minus.Insert(coerced);
  return true;
}

const Differential& TxnContext::diff(const std::string& rel) const {
  static const Differential kEmpty;
  auto it = diffs_.find(rel);
  return it != diffs_.end() ? it->second : kEmpty;
}

std::vector<std::string> TxnContext::TouchedRelations() const {
  std::vector<std::string> out;
  out.reserve(diffs_.size());
  for (const auto& [name, diff] : diffs_) {
    if (!diff.plus.empty() || !diff.minus.empty()) out.push_back(name);
  }
  return out;
}

void TxnContext::Rollback() {
  for (auto& [name, diff] : diffs_) {
    Relation* rel = *db_->FindMutable(name);
    for (const Tuple& t : diff.plus) rel->Erase(t);
    for (const Tuple& t : diff.minus) rel->Insert(t);
  }
  diffs_.clear();
  temps_.clear();
  old_cache_.clear();
  empty_diffs_.clear();
}

void TxnContext::Commit() {
  diffs_.clear();
  temps_.clear();
  old_cache_.clear();
  empty_diffs_.clear();
  base_reads_.clear();
  footprint_.clear();
  db_->AdvanceTime();
}

}  // namespace txmod::txn
