#ifndef TXMOD_TXN_TXN_CONTEXT_H_
#define TXMOD_TXN_TXN_CONTEXT_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/algebra/eval_context.h"
#include "src/algebra/physical_plan.h"
#include "src/common/result.h"
#include "src/relational/database.h"

namespace txmod::parallel {
class ThreadPool;
}  // namespace txmod::parallel

namespace txmod::txn {

/// Net changes of one transaction to one relation, maintained with the
/// invariant  R_pre = (R \ plus) ∪ minus  and  plus ∩ minus = ∅.
///
/// These sets serve three purposes at once:
///  1. they are the *undo log* that implements atomicity (Section 2.2:
///     T(D) = [D^{t,n}] or T(D) = D);
///  2. they are the paper's *auxiliary relations* dplus(R) / dminus(R)
///     available to integrity programs (Section 4.1);
///  3. they drive the differential optimization of rule conditions
///     (Section 5.2.1, references [18, 5, 7]).
struct Differential {
  Relation plus;   // tuples in R now but not in the pre-transaction state
  Relation minus;  // tuples in the pre-transaction state but not in R now
};

/// Transaction-local execution state over a Database: the intermediate
/// states D^{t,i} of Definition 2.6. Statements mutate the database in
/// place while the context records differentials for rollback, exposes the
/// temporaries created by assignments, and materializes the pre-transaction
/// views old(R) on demand.
class TxnContext : public algebra::EvalContext {
 public:
  explicit TxnContext(Database* db) : db_(db) {}

  /// EvalContext: resolves base relations against the current intermediate
  /// state, kTemp against the transaction-local environment, kOld /
  /// kDeltaPlus / kDeltaMinus against the differential bookkeeping.
  /// Under conflict tracking, resolving kBase or kOld records the
  /// relation in BaseReads (the optimistic read set); ResolveSchemaOnly
  /// resolves the same relation but records nothing and never
  /// materializes old() views — the evaluator uses it where only the
  /// result shape is needed (e.g. the base side of a join whose
  /// differential side is empty), keeping the read set free of false
  /// conflicts.
  Result<const Relation*> Resolve(algebra::RelRefKind kind,
                                  const std::string& name) const override;
  Result<const Relation*> ResolveSchemaOnly(
      algebra::RelRefKind kind, const std::string& name) const override;

  Database* database() { return db_; }
  const Database& database() const { return *db_; }

  /// Optional per-subsystem plan cache. Statement execution consults its
  /// pinned (identity) side first — integrity-check expressions are
  /// pre-compiled there at rule-definition time — then its shaped side,
  /// which caches ad-hoc statement plans by structural fingerprint so
  /// repeated statement shapes (same tree modulo literal constants) skip
  /// recompilation. Non-const: shaped lookups compile-on-miss and touch
  /// LRU state.
  void set_plan_cache(algebra::PlanCache* cache) { plan_cache_ = cache; }
  algebra::PlanCache* plan_cache() const { return plan_cache_; }

  /// Optional worker pool for integrity-check evaluation: when set, the
  /// statement executor evaluates runs of consecutive alarm statements
  /// (the shape TransC + the transaction modifier emit — independent,
  /// read-only rule checks) concurrently on this pool instead of one by
  /// one. Null = serial checks (the default; TxnManager wires a pool in
  /// when TxnManagerOptions::parallel_check_workers > 0).
  void set_check_pool(parallel::ThreadPool* pool) { check_pool_ = pool; }
  parallel::ThreadPool* check_pool() const { return check_pool_; }

  /// Resolve without touching the conflict read set — the data access of
  /// a concurrent check task, whose reads are recorded separately (in
  /// statement order, only up to an aborting alarm) via RecordBaseRead so
  /// the optimistic footprint stays identical to serial execution.
  /// Thread-compatible, NOT thread-safe: kOld and kDeltaPlus/kDeltaMinus
  /// fill mutable caches — concurrent callers must serialize (the
  /// executor's LockedCheckContext holds one mutex across all tasks).
  Result<const Relation*> ResolveUnrecorded(algebra::RelRefKind kind,
                                            const std::string& name) const {
    return ResolveData(kind, name);
  }

  /// Records one base-relation read into the optimistic read set, as if
  /// Resolve(kBase/kOld, name) had run under conflict tracking.
  void RecordBaseRead(const std::string& name) const {
    if (track_conflicts_) base_reads_.insert(name);
  }

  /// Stores (replaces) a temporary relation.
  void SetTemp(const std::string& name, Relation value);

  /// Inserts one schema-checked, coerced tuple into base relation `rel`,
  /// maintaining differentials. Returns true when the tuple was new.
  Result<bool> InsertTuple(const std::string& rel, Tuple tuple);

  /// Deletes one tuple; returns true when the tuple was present.
  Result<bool> DeleteTuple(const std::string& rel, const Tuple& tuple);

  /// The differential of `rel` (empty differentials for untouched ones).
  const Differential& diff(const std::string& rel) const;

  /// Every differential, keyed by relation (the commit-time write set).
  const std::map<std::string, Differential>& AllDiffs() const {
    return diffs_;
  }

  /// Names of relations touched by the transaction so far.
  std::vector<std::string> TouchedRelations() const;

  // -------------------------------------------------------------------
  // Conflict footprint for optimistic (snapshot) execution. A session
  // executing against a snapshot records what it observed of the
  // committed state; the transaction manager validates these against
  // concurrently committed writes (first-committer-wins). Recording is
  // OPT-IN (EnableConflictTracking, called by TxnSession): the serial
  // single-session engine never consumes these sets and must not pay
  // for building them.
  // -------------------------------------------------------------------

  /// Turns on BaseReads/WriteFootprint recording for this context.
  void EnableConflictTracking() { track_conflicts_ = true; }
  bool conflict_tracking() const { return track_conflicts_; }

  /// Base relations resolved during evaluation (kBase and kOld
  /// references): the relation-granularity read set. A rule check
  /// probing key_rel lands key_rel here; dplus/dminus and temporaries
  /// are transaction-local and never recorded.
  const std::set<std::string>& BaseReads() const { return base_reads_; }

  /// Every tuple this transaction attempted to insert or delete, per
  /// relation — *including* no-ops (inserting a present tuple, deleting
  /// an absent one). No-ops are reads of the committed state at tuple
  /// granularity: whether they were no-ops depends on it, so commit
  /// validation must see them even though they leave no differential.
  /// Identical attempts are deduped on record: a batch re-touching the
  /// same tuple N times costs one entry and no repeated tuple copies.
  const std::map<std::string, Relation>& WriteFootprint() const {
    return footprint_;
  }

  /// Undoes every recorded change; the database returns to its
  /// pre-transaction state. Temporaries are dropped. BaseReads and
  /// WriteFootprint survive: an aborted transaction's outcome (the
  /// abort) was still decided by what it read, and the transaction
  /// manager validates that against concurrent commits too.
  void Rollback();

  /// Drops transaction-local state and advances the database's logical
  /// time: D^{t+1} is installed (Definition 2.6's end bracket).
  void Commit();

 private:
  Differential& MutableDiff(const std::string& rel);
  void RecordFootprint(const std::string& rel, const Relation& target,
                       const Tuple& t);
  Result<const Relation*> ResolveData(algebra::RelRefKind kind,
                                      const std::string& name) const;

  Database* db_;
  algebra::PlanCache* plan_cache_ = nullptr;
  parallel::ThreadPool* check_pool_ = nullptr;
  std::map<std::string, Relation> temps_;
  std::map<std::string, Differential> diffs_;
  // Conflict footprint (see BaseReads/WriteFootprint). base_reads_ is
  // mutable because reads are recorded from const Resolve.
  bool track_conflicts_ = false;
  mutable std::set<std::string> base_reads_;
  std::map<std::string, Relation> footprint_;
  // old(R) views are immutable once the transaction starts, so the cache
  // never needs invalidation. Mutable: filled lazily from const Resolve.
  mutable std::map<std::string, Relation> old_cache_;
  mutable std::map<std::string, Relation> empty_diffs_;
};

}  // namespace txmod::txn

#endif  // TXMOD_TXN_TXN_CONTEXT_H_
