#include "src/txn/txn_manager.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/algebra/parser.h"
#include "src/common/str_util.h"
#include "src/relational/persist.h"

namespace txmod::txn {

// ---------------------------------------------------------------------------
// TxnSession.
// ---------------------------------------------------------------------------

TxnSession::TxnSession(TxnManager* manager, Database snapshot,
                       uint64_t snapshot_version)
    : manager_(manager),
      snapshot_db_(std::move(snapshot)),
      snapshot_version_(snapshot_version),
      ctx_(&snapshot_db_) {
  ctx_.set_plan_cache(manager_->subsystem_->shared_plan_cache());
  ctx_.EnableConflictTracking();  // commit validation consumes the sets
}

Result<TxnResult> TxnSession::Execute(const algebra::Transaction& txn) {
  if (state_ == State::kFinished) {
    return Status::FailedPrecondition("session already finished");
  }
  if (state_ == State::kAborted) {
    return Status::FailedPrecondition(
        "session aborted by an integrity violation; begin a new one");
  }
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction modified,
                         manager_->subsystem_->Modify(txn));
  Result<TxnResult> executed = ExecuteProgram(modified, &ctx_);
  if (!executed.ok()) {
    // Malformed program: the context rolled back; the session is dead.
    Finish();
    return executed.status();
  }
  accumulated_.stats.Add(executed->stats);
  accumulated_.statements_executed += executed->statements_executed;
  accumulated_.tuples_inserted += executed->tuples_inserted;
  accumulated_.tuples_deleted += executed->tuples_deleted;
  if (!executed->committed) {
    // Integrity alarm/abort: the whole session rolled back. Commit()
    // will validate that the decision wasn't based on stale reads.
    state_ = State::kAborted;
    accumulated_.committed = false;
    accumulated_.abort_reason = executed->abort_reason;
    accumulated_.aborting_statement = executed->aborting_statement;
  }
  return *std::move(executed);
}

Result<TxnResult> TxnSession::ExecuteText(const std::string& txn_text) {
  algebra::AlgebraParser parser(&snapshot_db_.schema());
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction txn,
                         parser.ParseTransaction(txn_text));
  return Execute(txn);
}

Result<TxnResult> TxnSession::Commit() {
  if (state_ == State::kFinished) {
    return Status::FailedPrecondition("session already finished");
  }
  Result<TxnResult> result = manager_->CommitSession(this);
  Finish();
  return result;
}

void TxnSession::Abort() { Finish(); }

TxnSession::~TxnSession() { Finish(); }

void TxnSession::Finish() {
  if (state_ == State::kFinished) return;
  state_ = State::kFinished;
  manager_->ReleaseSession();
}

// ---------------------------------------------------------------------------
// TxnManager.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TxnManager>> TxnManager::Create(
    core::IntegritySubsystem* subsystem, TxnManagerOptions options) {
  std::unique_ptr<TxnManager> manager(
      new TxnManager(subsystem, std::move(options)));
  const TxnManagerOptions& opts = manager->options_;
  manager->vfs_ = opts.vfs != nullptr ? opts.vfs : Vfs::Default();
  Vfs* vfs = manager->vfs_;
  // Session snapshots inherit the mode from the master via Clone().
  manager->db_->set_overlay_enabled(opts.overlay_sessions);
  if (!opts.wal_path.empty()) {
    if (!opts.checkpoint_path.empty() &&
        ::access(opts.checkpoint_path.c_str(), F_OK) != 0) {
      // The WAL holds only differentials; seed the base state the first
      // recovery will replay onto.
      TXMOD_RETURN_IF_ERROR(CheckpointDatabaseToFile(
          *manager->db_, opts.checkpoint_path, vfs));
    }
    // A crash can leave a torn record at the WAL tail; appending after
    // it would make every later record unreachable to recovery (which
    // stops at the first invalid record). Repair by rewriting the valid
    // prefix before reopening for append.
    WalReplayStats replay;
    TXMOD_ASSIGN_OR_RETURN(std::vector<WalRecord> valid,
                           ReadWal(opts.wal_path, &replay));
    if (replay.tail_dropped) {
      const std::string tmp = StrCat(opts.wal_path, ".repair");
      // A crash during a previous repair can leave a stale (possibly
      // itself torn) .repair file; appending to it would corrupt the
      // repaired log or brick startup. Start from nothing.
      TXMOD_RETURN_IF_ERROR(vfs->Remove(tmp));
      {
        TXMOD_ASSIGN_OR_RETURN(WriteAheadLog fresh,
                               WriteAheadLog::Open(tmp, vfs));
        for (const WalRecord& rec : valid) {
          TXMOD_RETURN_IF_ERROR(fresh.Append(rec).status());
        }
        TXMOD_RETURN_IF_ERROR(fresh.Sync(fresh.appended_lsn()));
      }
      TXMOD_RETURN_IF_ERROR(vfs->Rename(tmp, opts.wal_path));
      TXMOD_RETURN_IF_ERROR(vfs->SyncParentDirectory(opts.wal_path));
    }
    TXMOD_ASSIGN_OR_RETURN(WriteAheadLog wal,
                           WriteAheadLog::Open(opts.wal_path, vfs));
    manager->wal_ = std::make_unique<WriteAheadLog>(std::move(wal));
  }
  return manager;
}

std::unique_ptr<TxnSession> TxnManager::Begin() {
  std::lock_guard<std::mutex> lock(commit_mu_);
  // Snapshot under the commit lock: copy-on-write sharing requires that
  // nobody mutates the master while its relation pointers are copied.
  Database snapshot = db_->Clone();
  const uint64_t version = db_->logical_time();
  ++active_sessions_;  // released by TxnSession::Finish
  return std::unique_ptr<TxnSession>(
      new TxnSession(this, std::move(snapshot), version));
}

void TxnManager::ReleaseSession() {
  std::lock_guard<std::mutex> lock(commit_mu_);
  --active_sessions_;
}

uint64_t TxnManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return active_sessions_;
}

template <typename Fn>
Status TxnManager::WithQuiescedSessions(const char* what, Fn&& mutate) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (active_sessions_ > 0) {
    // Recompiling rule plans (and re-declaring indexes) while sessions
    // execute against them is a race by contract; reject with the count
    // so the caller knows what to drain.
    return Status::FailedPrecondition(
        StrCat(what, " requires quiesced sessions: ", active_sessions_,
               " live session(s); commit, abort, or destroy them first"));
  }
  return mutate();
}

Status TxnManager::DefineConstraint(const std::string& name,
                                    const std::string& cl_text) {
  return WithQuiescedSessions("DefineConstraint", [&] {
    return subsystem_->DefineConstraint(name, cl_text);
  });
}

Status TxnManager::DefineRule(const std::string& name,
                              const std::string& rl_text) {
  return WithQuiescedSessions(
      "DefineRule", [&] { return subsystem_->DefineRule(name, rl_text); });
}

Status TxnManager::DropRule(const std::string& name) {
  return WithQuiescedSessions(
      "DropRule", [&] { return subsystem_->DropRule(name); });
}

int64_t TxnManager::ComputeBackoffMicros(const TxnManagerOptions& options,
                                         uint64_t run_seq, int attempt) {
  if (options.retry_backoff_initial_micros <= 0 || attempt < 2) return 0;
  const int64_t max = std::max(options.retry_backoff_max_micros,
                               options.retry_backoff_initial_micros);
  // Bounded exponential: initial << (attempt - 2), clamped (shift guarded
  // against overflow by clamping first).
  int64_t base = options.retry_backoff_initial_micros;
  for (int i = 2; i < attempt && base < max; ++i) base *= 2;
  base = std::min(base, max);
  // Deterministic jitter in [base/2, base]: splitmix64 over
  // (seed, run_seq, attempt) — same seed, same schedule, every run.
  uint64_t x = options.retry_jitter_seed ^
               (run_seq * UINT64_C(0x9E3779B97F4A7C15)) ^
               static_cast<uint64_t>(attempt);
  x += UINT64_C(0x9E3779B97F4A7C15);
  x = (x ^ (x >> 30)) * UINT64_C(0xBF58476D1CE4E5B9);
  x = (x ^ (x >> 27)) * UINT64_C(0x94D049BB133111EB);
  x ^= x >> 31;
  const int64_t half = base / 2;
  return half + static_cast<int64_t>(
                    x % static_cast<uint64_t>(base - half + 1));
}

Result<TxnResult> TxnManager::Run(const algebra::Transaction& txn) {
  const uint64_t run_seq = run_seq_.fetch_add(1);
  const int64_t deadline =
      options_.run_timeout_micros > 0
          ? vfs_->NowMicros() + options_.run_timeout_micros
          : 0;
  TxnResult last;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) {
      // Conflict loser about to retry: back off (bounded exponential,
      // jittered) without overrunning the caller's time budget. The
      // sleep and the clock both go through the Vfs, so tests drive
      // this deterministically with a virtual clock.
      const int64_t backoff = ComputeBackoffMicros(options_, run_seq,
                                                   attempt);
      if (deadline > 0 && vfs_->NowMicros() + backoff > deadline) {
        {
          std::lock_guard<std::mutex> lock(commit_mu_);
          ++stats_.deadlines_exceeded;
        }
        return Status::DeadlineExceeded(
            StrCat("transaction gave up after ", attempt - 1,
                   " attempt(s); last conflict: ", last.abort_reason));
      }
      if (backoff > 0) {
        vfs_->SleepMicros(backoff);
        std::lock_guard<std::mutex> lock(commit_mu_);
        ++stats_.backoff_sleeps;
      }
      {
        std::lock_guard<std::mutex> lock(commit_mu_);
        ++stats_.retries;
      }
    }
    std::unique_ptr<TxnSession> session = Begin();
    TXMOD_ASSIGN_OR_RETURN(TxnResult executed, session->Execute(txn));
    (void)executed;  // outcome folded into Commit's validated result
    if (run_probe_) run_probe_(attempt);
    TXMOD_ASSIGN_OR_RETURN(TxnResult result, session->Commit());
    result.attempts = static_cast<uint32_t>(attempt);
    if (!result.conflict) return result;
    last = std::move(result);  // first-committer-wins loser: retry
  }
  return last;
}

Result<TxnResult> TxnManager::RunText(const std::string& txn_text) {
  algebra::AlgebraParser parser(&db_->schema());
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction txn,
                         parser.ParseTransaction(txn_text));
  return Run(txn);
}

bool TxnManager::HasConflictLocked(const TxnSession& session,
                                   std::string* reason) {
  const uint64_t snap = session.snapshot_version_;
  if (db_->logical_time() == snap) return false;  // nothing committed since
  if (recent_.empty() || recent_.front().version > snap + 1) {
    // The records needed to validate this snapshot were evicted from the
    // rolling window; fail conservatively (the retry re-executes on a
    // fresh snapshot).
    *reason = "snapshot predates the validation window";
    return true;
  }
  const std::set<std::string>& reads = session.ctx_.BaseReads();
  const std::map<std::string, Relation>& footprint =
      session.ctx_.WriteFootprint();
  for (const CommitRecord& record : recent_) {
    if (record.version <= snap) continue;
    for (const auto& [rel, writes] : record.writes) {
      if (reads.count(rel) > 0) {
        *reason = StrCat("read-write conflict on ", rel,
                         " with transaction ", record.version);
        return true;
      }
      auto fp = footprint.find(rel);
      if (fp == footprint.end()) continue;
      // Tuple-granularity overlap; probe the smaller side.
      const Relation& small =
          fp->second.size() <= writes.size() ? fp->second : writes;
      const Relation& large =
          fp->second.size() <= writes.size() ? writes : fp->second;
      for (const Tuple& t : small) {
        if (large.Contains(t)) {
          *reason = StrCat("write-write conflict on ", rel,
                           " with transaction ", record.version);
          return true;
        }
      }
    }
  }
  return false;
}

void TxnManager::EnterDegradedLocked(const std::string& cause) {
  if (degraded_) return;
  degraded_ = true;
  degraded_cause_ = cause;
  ++stats_.wal_failures;
}

Result<TxnResult> TxnManager::CommitSession(TxnSession* session) {
  TxnResult result = session->accumulated_;
  const bool aborted = session->state_ == TxnSession::State::kAborted;
  uint64_t lsn = 0;
  bool need_sync = false;
  WalRecord wal_record;  // outlives the lock: the sync-failure unwind
                         // reverse-applies its deltas
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    std::string reason;
    if (HasConflictLocked(*session, &reason)) {
      ++stats_.conflicts;
      result.committed = false;
      result.conflict = true;
      result.abort_reason = std::move(reason);
      return result;
    }
    if (aborted) {
      // The integrity-abort decision is consistent with the current
      // committed state (validation passed); report it as final.
      ++stats_.integrity_aborts;
      result.committed = false;
      return result;
    }

    // Collect the net differentials. Relations whose changes netted out
    // publish nothing — serially equivalent and keeps the WAL dense.
    CommitRecord commit_record;
    for (const auto& [name, diff] : session->ctx_.AllDiffs()) {
      if (diff.plus.empty() && diff.minus.empty()) continue;
      WalDelta delta;
      delta.relation = name;
      Relation touched(diff.plus.schema_ptr());
      for (const Tuple& t : diff.plus) {
        delta.plus.push_back(t);
        touched.Insert(t);
      }
      for (const Tuple& t : diff.minus) {
        delta.minus.push_back(t);
        touched.Insert(t);
      }
      wal_record.deltas.push_back(std::move(delta));
      commit_record.writes.emplace(name, std::move(touched));
    }

    if (wal_record.deltas.empty()) {
      // Read-only (or fully netted-out) transaction: nothing to install,
      // no version consumed, no log record — but the reads were
      // validated above, so the outcome is serially consistent.
      ++stats_.commits;
      ++stats_.readonly_commits;
      result.committed = true;
      result.commit_version = db_->logical_time();
      return result;
    }

    // Write-ful commit: degraded mode rejects it up front (read-only
    // commits took the return above on purpose — they need no log).
    if (degraded_) {
      ++stats_.unavailable_rejections;
      return Status::Unavailable(
          StrCat("manager is in read-only degraded mode (",
                 degraded_cause_, "); TryReopenWal() to restore writes"));
    }

    const uint64_t version = db_->logical_time() + 1;
    wal_record.version = version;
    commit_record.version = version;

    // Log before install: a commit may only become visible to new
    // snapshots once its differential is at least on its way to the log.
    if (wal_ != nullptr) {
      Result<uint64_t> appended = wal_->Append(wal_record);
      if (!appended.ok()) {
        // Nothing installed yet: the commit simply fails, and the
        // manager degrades so later writers fail fast instead of
        // piling onto broken storage.
        EnterDegradedLocked(appended.status().message());
        return Status::Unavailable(
            StrCat("commit ", version, " failed to log: ",
                   appended.status().message(),
                   "; manager is now in read-only degraded mode"));
      }
      lsn = *appended;
      ++stats_.wal_appends;
      need_sync = options_.sync_commits;
    }

    // Install into the committed master. Fast path: when nothing
    // committed since this session's snapshot, the session's private
    // copy-on-write clone of a written relation IS the exact post-commit
    // state (snapshot plus this transaction's changes, indexes
    // re-declared) — adopt it by pointer swap instead of re-copying the
    // whole relation. The ownership discipline proves sole ownership:
    // TakeOwnedRelation succeeds only for states the session cloned
    // itself and never shared out. Otherwise (interleaved commits, or a
    // shared state), FindMutable's copy-on-write applies the delta while
    // every outstanding snapshot keeps reading its pinned state.
    const bool snapshot_is_current =
        session->snapshot_version_ == db_->logical_time();
    for (const WalDelta& delta : wal_record.deltas) {
      Relation* installed = nullptr;
      if (snapshot_is_current) {
        std::shared_ptr<Relation> adopted =
            session->snapshot_db_.TakeOwnedRelation(delta.relation);
        if (adopted != nullptr) {
          installed = adopted.get();
          db_->AdoptRelation(delta.relation, std::move(adopted));
        }
      }
      if (installed == nullptr) {
        TXMOD_ASSIGN_OR_RETURN(Relation * rel,
                               db_->FindMutable(delta.relation));
        for (const Tuple& t : delta.minus) rel->Erase(t);
        for (const Tuple& t : delta.plus) rel->Insert(t);
        installed = rel;
      }
      // Overlay maintenance, still exclusively owned and under the
      // commit lock (i.e. before any new snapshot can share the state):
      // geometrically merge the freshly adopted level into the chain
      // (small-delta case) or collapse the chain flat once the
      // accumulated deltas rival the base (large-delta case). Amortized
      // O(log) merge work per changed tuple; outstanding snapshots keep
      // reading their pinned levels untouched.
      installed->CompactOverlay();
    }
    db_->AdvanceTime();

    recent_.push_back(std::move(commit_record));
    while (recent_.size() > options_.validation_window) recent_.pop_front();
    ++stats_.commits;
    result.committed = true;
    result.commit_version = version;
    result.installed = true;
  }

  // Group-commit boundary, outside the commit lock: concurrent
  // committers batch into one fsync while the next commit proceeds.
  if (need_sync) {
    const Status synced = wal_->Sync(lsn);
    if (!synced.ok()) {
      // The record may not be durable: never acknowledge. The commit is
      // already installed in memory, though — un-install it when it is
      // still the newest one (reverse-apply the deltas), so an unacked
      // commit does not linger visible. With concurrent commits stacked
      // on top the unwind is impossible; that commit's outcome is
      // "unknown" (classic in-doubt), and recovery decides.
      std::lock_guard<std::mutex> lock(commit_mu_);
      EnterDegradedLocked(synced.message());
      if (db_->logical_time() == result.commit_version) {
        bool unwound = true;
        for (const WalDelta& delta : wal_record.deltas) {
          Result<Relation*> rel = db_->FindMutable(delta.relation);
          if (!rel.ok()) {
            unwound = false;  // unreachable in practice; stay installed
            break;
          }
          for (const Tuple& t : delta.plus) (*rel)->Erase(t);
          for (const Tuple& t : delta.minus) (*rel)->Insert(t);
        }
        if (unwound) {
          db_->RewindTime();
          recent_.pop_back();
          --stats_.commits;
          result.installed = false;
        }
      }
      return Status::Unavailable(
          StrCat("commit ", result.commit_version, " not durable: ",
                 synced.message(),
                 "; manager is now in read-only degraded mode"));
    }
  }
  return result;
}

Status TxnManager::Checkpoint() {
  if (options_.checkpoint_path.empty()) {
    return Status::FailedPrecondition("no checkpoint_path configured");
  }
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (degraded_) {
    return Status::Unavailable(
        StrCat("manager is in read-only degraded mode (", degraded_cause_,
               "); TryReopenWal() performs the recovery checkpoint"));
  }
  TXMOD_RETURN_IF_ERROR(
      CheckpointDatabaseToFile(*db_, options_.checkpoint_path, vfs_));
  if (wal_ != nullptr) {
    // Safe ordering: the checkpoint is durably renamed into place first,
    // so a crash between the two steps merely leaves WAL records the
    // replay will skip (version <= checkpoint time).
    const Status truncated = wal_->Truncate();
    if (!truncated.ok()) {
      // A half-truncated log (e.g. header write failed) is poisoned;
      // degrade so writers fail fast rather than append to it.
      std::string cause;
      if (wal_->broken(&cause)) EnterDegradedLocked(cause);
      return truncated;
    }
  }
  ++stats_.checkpoints;
  return Status::OK();
}

bool TxnManager::degraded(std::string* cause) const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (cause != nullptr) *cause = degraded_cause_;
  return degraded_;
}

Status TxnManager::TryReopenWal() {
  if (options_.wal_path.empty()) {
    return Status::FailedPrecondition("no WAL configured");
  }
  if (options_.checkpoint_path.empty()) {
    return Status::FailedPrecondition(
        "recovery needs a checkpoint_path: the poisoned log's tail is "
        "untrustworthy, so a fresh checkpoint must supersede it");
  }
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (!degraded_ && wal_ != nullptr && !wal_->broken()) {
    return Status::OK();  // nothing to recover
  }
  if (!degraded_) {
    // Broken log but not yet degraded (no writer hit it yet): degrade
    // now, so a failure in any step below leaves writers fenced off —
    // never silently committing without a log.
    std::string cause = "WAL unavailable";
    if (wal_ != nullptr) wal_->broken(&cause);
    EnterDegradedLocked(cause);
  }
  // The committed in-memory state is the authority now; checkpoint it so
  // the poisoned log (whose durable suffix is unknowable) is obsolete.
  TXMOD_RETURN_IF_ERROR(
      CheckpointDatabaseToFile(*db_, options_.checkpoint_path, vfs_));
  // Only now is it safe to discard the old log. While any of these steps
  // fail the manager stays degraded (wal_ may be null; the degraded_
  // guard keeps every writer away from it).
  wal_.reset();
  TXMOD_RETURN_IF_ERROR(vfs_->Remove(options_.wal_path));
  TXMOD_ASSIGN_OR_RETURN(WriteAheadLog fresh,
                         WriteAheadLog::Open(options_.wal_path, vfs_));
  wal_ = std::make_unique<WriteAheadLog>(std::move(fresh));
  degraded_ = false;
  degraded_cause_.clear();
  ++stats_.wal_reopens;
  return Status::OK();
}

Result<Database> TxnManager::Recover(const TxnManagerOptions& options,
                                     WalReplayStats* stats) {
  if (options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "recovery needs a checkpoint_path (the WAL holds only "
        "differentials)");
  }
  return RecoverDatabase(options.checkpoint_path, options.wal_path, stats);
}

uint64_t TxnManager::committed_version() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return db_->logical_time();
}

TxnManagerStats TxnManager::stats() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  TxnManagerStats out = stats_;
  if (wal_ != nullptr) out.wal_fsyncs = wal_->fsync_count();
  out.degraded = degraded_;
  out.degraded_cause = degraded_cause_;
  out.cow_relation_clones = CowStats::relation_clones.load();
  out.cow_overlays_created = CowStats::overlays_created.load();
  out.cow_overlay_merges = CowStats::overlay_merges.load();
  out.cow_overlay_collapses = CowStats::overlay_collapses.load();
  return out;
}

}  // namespace txmod::txn
