#include "src/txn/txn_manager.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "src/algebra/parser.h"
#include "src/common/str_util.h"
#include "src/relational/persist.h"

namespace txmod::txn {

// ---------------------------------------------------------------------------
// TxnSession.
// ---------------------------------------------------------------------------

TxnSession::TxnSession(TxnManager* manager, Database snapshot,
                       uint64_t snapshot_version)
    : manager_(manager),
      snapshot_db_(std::move(snapshot)),
      snapshot_version_(snapshot_version),
      ctx_(&snapshot_db_) {
  ctx_.set_plan_cache(manager_->subsystem_->shared_plan_cache());
  ctx_.EnableConflictTracking();  // commit validation consumes the sets
  ctx_.set_check_pool(manager_->check_pool_.get());
}

Result<TxnResult> TxnSession::Execute(const algebra::Transaction& txn) {
  if (state_ == State::kFinished) {
    return Status::FailedPrecondition("session already finished");
  }
  if (state_ == State::kAborted) {
    return Status::FailedPrecondition(
        "session aborted by an integrity violation; begin a new one");
  }
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction modified,
                         manager_->subsystem_->Modify(txn));
  Result<TxnResult> executed = ExecuteProgram(modified, &ctx_);
  if (!executed.ok()) {
    // Malformed program: the context rolled back; the session is dead.
    Finish();
    return executed.status();
  }
  accumulated_.stats.Add(executed->stats);
  accumulated_.statements_executed += executed->statements_executed;
  accumulated_.tuples_inserted += executed->tuples_inserted;
  accumulated_.tuples_deleted += executed->tuples_deleted;
  if (!executed->committed) {
    // Integrity alarm/abort: the whole session rolled back. Commit()
    // will validate that the decision wasn't based on stale reads.
    state_ = State::kAborted;
    accumulated_.committed = false;
    accumulated_.abort_reason = executed->abort_reason;
    accumulated_.aborting_statement = executed->aborting_statement;
  }
  return *std::move(executed);
}

Result<TxnResult> TxnSession::ExecuteText(const std::string& txn_text) {
  algebra::AlgebraParser parser(&snapshot_db_.schema());
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction txn,
                         parser.ParseTransaction(txn_text));
  return Execute(txn);
}

Result<TxnResult> TxnSession::Commit() {
  if (state_ == State::kFinished) {
    return Status::FailedPrecondition("session already finished");
  }
  Result<TxnResult> result = manager_->CommitSession(this);
  Finish();
  return result;
}

void TxnSession::Abort() { Finish(); }

TxnSession::~TxnSession() { Finish(); }

void TxnSession::Finish() {
  if (state_ == State::kFinished) return;
  state_ = State::kFinished;
  manager_->ReleaseSession();
}

// ---------------------------------------------------------------------------
// TxnManager.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TxnManager>> TxnManager::Create(
    core::IntegritySubsystem* subsystem, TxnManagerOptions options) {
  std::unique_ptr<TxnManager> manager(
      new TxnManager(subsystem, std::move(options)));
  const TxnManagerOptions& opts = manager->options_;
  manager->vfs_ = opts.vfs != nullptr ? opts.vfs : Vfs::Default();
  if (opts.parallel_check_workers > 0) {
    manager->check_pool_ = std::make_unique<parallel::ThreadPool>(
        opts.parallel_check_workers);
  }
  Vfs* vfs = manager->vfs_;
  // Session snapshots inherit the mode from the master via Clone().
  manager->db_->set_overlay_enabled(opts.overlay_sessions);
  if (!opts.wal_path.empty()) {
    if (!opts.checkpoint_path.empty() &&
        ::access(opts.checkpoint_path.c_str(), F_OK) != 0) {
      // The WAL holds only differentials; seed the base state the first
      // recovery will replay onto.
      TXMOD_RETURN_IF_ERROR(CheckpointDatabaseToFile(
          *manager->db_, opts.checkpoint_path, vfs));
    }
    // ShardedWal::Open repairs torn per-stream tails (rewriting each
    // valid prefix) and adopts the on-disk shard layout when one exists.
    TXMOD_ASSIGN_OR_RETURN(
        std::shared_ptr<ShardedWal> wal,
        ShardedWal::Open(opts.wal_path, opts.wal_shards, vfs));
    manager->wal_ = std::move(wal);
  }
  // The state the manager starts from is durable (recovered checkpoint +
  // WAL, or the freshly seeded checkpoint): the durability horizon and
  // the no-unwind floor both start here.
  manager->checkpoint_time_ = manager->db_->logical_time();
  manager->durable_floor_ = manager->db_->logical_time();
  return manager;
}

std::unique_ptr<TxnSession> TxnManager::Begin() {
  std::lock_guard<std::mutex> lock(commit_mu_);
  // Snapshot under the commit lock: copy-on-write sharing requires that
  // nobody mutates the master while its relation pointers are copied.
  Database snapshot = db_->Clone();
  const uint64_t version = db_->logical_time();
  active_sessions_.fetch_add(1);  // released by TxnSession::Finish
  return std::unique_ptr<TxnSession>(
      new TxnSession(this, std::move(snapshot), version));
}

void TxnManager::ReleaseSession() { active_sessions_.fetch_sub(1); }

uint64_t TxnManager::active_sessions() const {
  return active_sessions_.load();
}

template <typename Fn>
Status TxnManager::WithQuiescedSessions(const char* what, Fn&& mutate) {
  // commit_mu_ blocks Begin for the duration, so no session can START
  // while the mutation runs; the atomic count rejects the ones already
  // live.
  std::lock_guard<std::mutex> lock(commit_mu_);
  const uint64_t live = active_sessions_.load();
  if (live > 0) {
    // Recompiling rule plans (and re-declaring indexes) while sessions
    // execute against them is a race by contract; reject with the count
    // so the caller knows what to drain.
    return Status::FailedPrecondition(
        StrCat(what, " requires quiesced sessions: ", live,
               " live session(s); commit, abort, or destroy them first"));
  }
  return mutate();
}

Status TxnManager::DefineConstraint(const std::string& name,
                                    const std::string& cl_text) {
  return WithQuiescedSessions("DefineConstraint", [&] {
    return subsystem_->DefineConstraint(name, cl_text);
  });
}

Status TxnManager::DefineRule(const std::string& name,
                              const std::string& rl_text) {
  return WithQuiescedSessions(
      "DefineRule", [&] { return subsystem_->DefineRule(name, rl_text); });
}

Status TxnManager::DropRule(const std::string& name) {
  return WithQuiescedSessions(
      "DropRule", [&] { return subsystem_->DropRule(name); });
}

int64_t TxnManager::ComputeBackoffMicros(const TxnManagerOptions& options,
                                         uint64_t run_seq, int attempt) {
  if (options.retry_backoff_initial_micros <= 0 || attempt < 2) return 0;
  const int64_t max = std::max(options.retry_backoff_max_micros,
                               options.retry_backoff_initial_micros);
  // Bounded exponential: initial << (attempt - 2), clamped (shift guarded
  // against overflow by clamping first).
  int64_t base = options.retry_backoff_initial_micros;
  for (int i = 2; i < attempt && base < max; ++i) base *= 2;
  base = std::min(base, max);
  // Deterministic jitter in [base/2, base]: splitmix64 over
  // (seed, run_seq, attempt) — same seed, same schedule, every run.
  uint64_t x = options.retry_jitter_seed ^
               (run_seq * UINT64_C(0x9E3779B97F4A7C15)) ^
               static_cast<uint64_t>(attempt);
  x += UINT64_C(0x9E3779B97F4A7C15);
  x = (x ^ (x >> 30)) * UINT64_C(0xBF58476D1CE4E5B9);
  x = (x ^ (x >> 27)) * UINT64_C(0x94D049BB133111EB);
  x ^= x >> 31;
  const int64_t half = base / 2;
  return half + static_cast<int64_t>(
                    x % static_cast<uint64_t>(base - half + 1));
}

Result<TxnResult> TxnManager::Run(const algebra::Transaction& txn) {
  return Run(txn, RunPolicy{});
}

Result<TxnResult> TxnManager::Run(const algebra::Transaction& txn,
                                  const RunPolicy& policy) {
  // Resolve the effective policy: per-call overrides where set, the
  // manager-wide options otherwise. The jitter seed is never overridden —
  // one manager, one deterministic schedule.
  TxnManagerOptions effective = options_;
  if (policy.max_attempts > 0) effective.max_attempts = policy.max_attempts;
  if (policy.retry_backoff_initial_micros >= 0) {
    effective.retry_backoff_initial_micros =
        policy.retry_backoff_initial_micros;
  }
  if (policy.retry_backoff_max_micros >= 0) {
    effective.retry_backoff_max_micros = policy.retry_backoff_max_micros;
  }
  if (policy.run_timeout_micros >= 0) {
    effective.run_timeout_micros = policy.run_timeout_micros;
  }
  const uint64_t run_seq = run_seq_.fetch_add(1);
  const int64_t deadline =
      effective.run_timeout_micros > 0
          ? vfs_->NowMicros() + effective.run_timeout_micros
          : 0;
  TxnResult last;
  for (int attempt = 1; attempt <= effective.max_attempts; ++attempt) {
    if (attempt > 1) {
      // Conflict loser about to retry: back off (bounded exponential,
      // jittered) without overrunning the caller's time budget. The
      // sleep and the clock both go through the Vfs, so tests drive
      // this deterministically with a virtual clock.
      const int64_t backoff = ComputeBackoffMicros(effective, run_seq,
                                                   attempt);
      if (deadline > 0 && vfs_->NowMicros() + backoff > deadline) {
        stats_.deadlines_exceeded.fetch_add(1);
        return Status::DeadlineExceeded(
            StrCat("transaction gave up after ", attempt - 1,
                   " attempt(s); last conflict: ", last.abort_reason));
      }
      if (backoff > 0) {
        vfs_->SleepMicros(backoff);
        stats_.backoff_sleeps.fetch_add(1);
      }
      stats_.retries.fetch_add(1);
    }
    std::unique_ptr<TxnSession> session = Begin();
    TXMOD_ASSIGN_OR_RETURN(TxnResult executed, session->Execute(txn));
    (void)executed;  // outcome folded into Commit's validated result
    if (run_probe_) run_probe_(attempt);
    TXMOD_ASSIGN_OR_RETURN(TxnResult result, session->Commit());
    result.attempts = static_cast<uint32_t>(attempt);
    if (!result.conflict) return result;
    last = std::move(result);  // first-committer-wins loser: retry
  }
  return last;
}

Result<TxnResult> TxnManager::RunText(const std::string& txn_text) {
  return RunText(txn_text, RunPolicy{});
}

Result<TxnResult> TxnManager::RunText(const std::string& txn_text,
                                      const RunPolicy& policy) {
  algebra::AlgebraParser parser(&db_->schema());
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction txn,
                         parser.ParseTransaction(txn_text));
  return Run(txn, policy);
}

bool TxnManager::HasConflictLocked(const TxnSession& session,
                                   std::string* reason) {
  const uint64_t snap = session.snapshot_version_;
  if (db_->logical_time() == snap) return false;  // nothing committed since
  if (recent_.empty() || recent_.front().version > snap + 1) {
    // The records needed to validate this snapshot were evicted from the
    // rolling window; fail conservatively (the retry re-executes on a
    // fresh snapshot).
    *reason = "snapshot predates the validation window";
    return true;
  }
  // Probe the per-relation index instead of scanning the window: cost is
  // O(|reads| + |footprint|), independent of how many commits landed
  // since the snapshot. The smallest conflicting version (read-write
  // before write-write at a tie) is reported, mirroring the scan order
  // of the old linear validation.
  uint64_t best_version = 0;
  const std::string* best_rel = nullptr;
  bool best_is_read = false;
  auto consider = [&](uint64_t version, const std::string& rel,
                      bool is_read) {
    if (best_rel == nullptr || version < best_version ||
        (version == best_version &&
         (rel < *best_rel || (rel == *best_rel && is_read && !best_is_read)))) {
      best_version = version;
      best_rel = &rel;
      best_is_read = is_read;
    }
  };
  for (const std::string& rel : session.ctx_.BaseReads()) {
    const auto it = write_index_.find(rel);
    if (it == write_index_.end()) continue;
    const std::deque<uint64_t>& versions = it->second.versions;
    const auto pos = std::upper_bound(versions.begin(), versions.end(), snap);
    if (pos != versions.end()) consider(*pos, rel, /*is_read=*/true);
  }
  for (const auto& [rel, footprint] : session.ctx_.WriteFootprint()) {
    const auto it = write_index_.find(rel);
    if (it == write_index_.end()) continue;
    const RelWriteIndex& index = it->second;
    if (index.versions.empty() || index.versions.back() <= snap) continue;
    for (const Tuple& t : footprint) {
      const auto writer = index.writers.find(&t);
      if (writer != index.writers.end() && writer->second > snap) {
        consider(writer->second, rel, /*is_read=*/false);
        break;  // one overlapping tuple convicts the relation
      }
    }
  }
  if (best_rel == nullptr) return false;
  *reason = StrCat(best_is_read ? "read-write" : "write-write",
                   " conflict on ", *best_rel, " with transaction ",
                   best_version);
  return true;
}

void TxnManager::PublishCommitLocked(const CommitRecord& record) {
  for (const auto& [rel, writes] : record.writes) {
    RelWriteIndex& index = write_index_[rel];
    index.versions.push_back(record.version);
    for (const Tuple& t : writes) {
      // Re-key onto THIS record's node: the entry must always name the
      // newest writer, and its key must live at least as long as the
      // value's record (eviction erases only entries it still owns).
      const auto it = index.writers.find(&t);
      if (it != index.writers.end()) index.writers.erase(it);
      index.writers.emplace(&t, record.version);
    }
  }
}

void TxnManager::EvictFromIndexLocked(const CommitRecord& record) {
  for (const auto& [rel, writes] : record.writes) {
    const auto found = write_index_.find(rel);
    if (found == write_index_.end()) continue;
    RelWriteIndex& index = found->second;
    if (!index.versions.empty() && index.versions.front() == record.version) {
      index.versions.pop_front();
    }
    for (const Tuple& t : writes) {
      const auto it = index.writers.find(&t);
      // A newer record re-keyed entries for tuples it re-wrote; erase
      // only the ones this record still owns.
      if (it != index.writers.end() && it->second == record.version) {
        index.writers.erase(it);
      }
    }
    if (index.versions.empty()) write_index_.erase(found);
  }
}

void TxnManager::UnpublishNewestLocked() {
  const CommitRecord& record = recent_.back();
  for (const auto& [rel, writes] : record.writes) {
    const auto found = write_index_.find(rel);
    if (found == write_index_.end()) continue;
    RelWriteIndex& index = found->second;
    if (!index.versions.empty() && index.versions.back() == record.version) {
      index.versions.pop_back();
    }
    for (const Tuple& t : writes) {
      const auto it = index.writers.find(&t);
      if (it == index.writers.end() || it->second != record.version) continue;
      index.writers.erase(it);
      // Publishing this record re-keyed away any older writer of the
      // same tuple; restore the most recent one still in the window so
      // its conflicts are not forgotten.
      for (auto older = recent_.rbegin() + 1; older != recent_.rend();
           ++older) {
        const auto w = older->writes.find(rel);
        if (w == older->writes.end()) continue;
        const Tuple* node = w->second.FindTuple(t);
        if (node != nullptr) {
          index.writers.emplace(node, older->version);
          break;
        }
      }
    }
    if (index.versions.empty()) write_index_.erase(found);
  }
  recent_.pop_back();
}

void TxnManager::EnterDegradedLocked(const std::string& cause) {
  if (degraded_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(degraded_cause_mu_);
    degraded_cause_ = cause;
  }
  degraded_.store(true, std::memory_order_release);
  stats_.wal_failures.fetch_add(1);
}

// ---------------------------------------------------------------------------
// The contiguous durability horizon (commit acknowledgement order).
// ---------------------------------------------------------------------------

void TxnManager::MarkDurable(uint64_t version) {
  std::lock_guard<std::mutex> lock(ack_mu_);
  if (version > durable_floor_) {
    durable_above_.insert(version);
    while (!durable_above_.empty() &&
           *durable_above_.begin() == durable_floor_ + 1) {
      ++durable_floor_;
      durable_above_.erase(durable_above_.begin());
    }
  }
  ack_cv_.notify_all();
}

void TxnManager::MarkDurabilityFailed(uint64_t version) {
  std::lock_guard<std::mutex> lock(ack_mu_);
  failed_version_ = std::min(failed_version_, version);
  ack_cv_.notify_all();
}

Status TxnManager::WaitDurableThrough(uint64_t version) {
  std::unique_lock<std::mutex> lock(ack_mu_);
  ack_cv_.wait(lock, [&] {
    return durable_floor_ >= version || failed_version_ <= version;
  });
  if (durable_floor_ >= version) return Status::OK();
  return Status::Unavailable(
      StrCat("commit ", version, " cannot be acknowledged: commit ",
             failed_version_, " was not durable, so the log has a hole "
             "below it; recovery decides the outcome"));
}

void TxnManager::ResetDurabilityHorizon(uint64_t floor) {
  std::lock_guard<std::mutex> lock(ack_mu_);
  durable_floor_ = std::max(durable_floor_, floor);
  durable_above_.clear();
  failed_version_ = kNoFailedVersion;
  ack_cv_.notify_all();
}

Result<TxnResult> TxnManager::CommitSession(TxnSession* session) {
  TxnResult result = session->accumulated_;
  const bool aborted = session->state_ == TxnSession::State::kAborted;

  // -- Stage A: collect (no lock) --------------------------------------
  // Net-delta collection and record assembly read only session-private
  // state, so they run before the critical section. Relations whose
  // changes netted out publish nothing — serially equivalent and keeps
  // the WAL dense.
  WalRecord wal_record;  // outlives stage B: the durability-failure
                         // unwind reverse-applies its deltas
  CommitRecord commit_record;
  if (!aborted) {
    for (const auto& [name, diff] : session->ctx_.AllDiffs()) {
      if (diff.plus.empty() && diff.minus.empty()) continue;
      WalDelta delta;
      delta.relation = name;
      Relation touched(diff.plus.schema_ptr());
      for (const Tuple& t : diff.plus) {
        delta.plus.push_back(t);
        touched.Insert(t);
      }
      for (const Tuple& t : diff.minus) {
        delta.minus.push_back(t);
        touched.Insert(t);
      }
      wal_record.deltas.push_back(std::move(delta));
      commit_record.writes.emplace(name, std::move(touched));
    }
  }

  // -- Stage B: validate, reserve, install, publish (commit_mu_) -------
  uint64_t version = 0;
  bool need_sync = false;
  std::shared_ptr<ShardedWal> wal;  // handle pinned under the lock; a
                                    // concurrent TryReopenWal swap never
                                    // strands this commit's stage C
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    std::string reason;
    if (HasConflictLocked(*session, &reason)) {
      stats_.conflicts.fetch_add(1);
      result.committed = false;
      result.conflict = true;
      result.abort_reason = std::move(reason);
      return result;
    }
    if (aborted) {
      // The integrity-abort decision is consistent with the current
      // committed state (validation passed); report it as final.
      stats_.integrity_aborts.fetch_add(1);
      result.committed = false;
      return result;
    }

    if (wal_record.deltas.empty()) {
      // Read-only (or fully netted-out) transaction: nothing to install,
      // no version consumed, no log record — but the reads were
      // validated above, so the outcome is serially consistent.
      stats_.commits.fetch_add(1);
      stats_.readonly_commits.fetch_add(1);
      result.committed = true;
      result.commit_version = db_->logical_time();
      return result;
    }

    // Write-ful commit: degraded mode rejects it up front (read-only
    // commits took the return above on purpose — they need no log).
    if (degraded_.load(std::memory_order_acquire)) {
      stats_.unavailable_rejections.fetch_add(1);
      std::string cause;
      {
        std::lock_guard<std::mutex> cause_lock(degraded_cause_mu_);
        cause = degraded_cause_;
      }
      return Status::Unavailable(
          StrCat("manager is in read-only degraded mode (", cause,
                 "); TryReopenWal() to restore writes"));
    }

    version = db_->logical_time() + 1;
    wal_record.version = version;
    commit_record.version = version;

    // Install into the committed master. Fast path: when nothing
    // committed since this session's snapshot, the session's private
    // copy-on-write clone of a written relation IS the exact post-commit
    // state (snapshot plus this transaction's changes, indexes
    // re-declared) — adopt it by pointer swap instead of re-copying the
    // whole relation. The ownership discipline proves sole ownership:
    // TakeOwnedRelation succeeds only for states the session cloned
    // itself and never shared out. Otherwise (interleaved commits, or a
    // shared state), FindMutable's copy-on-write applies the delta while
    // every outstanding snapshot keeps reading its pinned state.
    const bool snapshot_is_current =
        session->snapshot_version_ == db_->logical_time();
    for (const WalDelta& delta : wal_record.deltas) {
      Relation* installed = nullptr;
      if (snapshot_is_current) {
        std::shared_ptr<Relation> adopted =
            session->snapshot_db_.TakeOwnedRelation(delta.relation);
        if (adopted != nullptr) {
          installed = adopted.get();
          db_->AdoptRelation(delta.relation, std::move(adopted));
        }
      }
      if (installed == nullptr) {
        TXMOD_ASSIGN_OR_RETURN(Relation * rel,
                               db_->FindMutable(delta.relation));
        for (const Tuple& t : delta.minus) rel->Erase(t);
        for (const Tuple& t : delta.plus) rel->Insert(t);
        installed = rel;
      }
      // Overlay maintenance, still exclusively owned and under the
      // commit lock (i.e. before any new snapshot can share the state):
      // geometrically merge the freshly adopted level into the chain
      // (small-delta case) or collapse the chain flat once the
      // accumulated deltas rival the base (large-delta case). Amortized
      // O(log) merge work per changed tuple; outstanding snapshots keep
      // reading their pinned levels untouched.
      installed->CompactOverlay();
    }
    db_->AdvanceTime();

    recent_.push_back(std::move(commit_record));
    PublishCommitLocked(recent_.back());
    while (recent_.size() > options_.validation_window) {
      EvictFromIndexLocked(recent_.front());
      recent_.pop_front();
    }
    stats_.commits.fetch_add(1);
    result.committed = true;
    result.commit_version = version;
    result.installed = true;

    wal = wal_;
    need_sync = options_.sync_commits;
  }

  // -- Stage C: log and acknowledge (no lock) --------------------------
  // The commit is visible to new snapshots (ordering is decided), but it
  // is acknowledged only once it — and every commit below it — is
  // durable. Logging outside the lock lets commit N+1 validate and
  // install while commit N's record is still being encoded and fsynced;
  // per-shard group commit batches concurrent committers into one fsync
  // per shard.
  if (wal != nullptr) {
    Result<std::vector<ShardedWal::Position>> appended =
        wal->AppendCommit(wal_record);
    if (!appended.ok()) {
      return HandleLogFailure(version, wal_record, appended.status(),
                              &result);
    }
    stats_.wal_appends.fetch_add(1);
    if (need_sync) {
      const Status synced = wal->SyncPositions(*appended);
      if (!synced.ok()) {
        return HandleLogFailure(version, wal_record, synced, &result);
      }
    }
  }
  MarkDurable(version);
  // Even with our own record durable, acknowledging is only safe once
  // every earlier version is durable too — otherwise a crash could
  // recover a prefix that is missing a commit below an acked one.
  TXMOD_RETURN_IF_ERROR(WaitDurableThrough(version));
  return result;
}

Status TxnManager::HandleLogFailure(uint64_t version,
                                    const WalRecord& wal_record,
                                    const Status& cause, TxnResult* result) {
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    EnterDegradedLocked(cause.message());
    // The record may not be durable: never acknowledge. The commit is
    // already installed in memory, though — un-install it when it is
    // still the newest one (reverse-apply the deltas), so an unacked
    // commit does not linger visible. With concurrent commits stacked on
    // top the unwind is impossible; that commit's outcome is "unknown"
    // (classic in-doubt), and recovery decides. A commit at or below the
    // durable checkpoint is never unwound: the checkpoint already made
    // it durable, so the failed log record is irrelevant to its fate.
    if (db_->logical_time() == version && version > checkpoint_time_) {
      bool unwound = true;
      for (const WalDelta& delta : wal_record.deltas) {
        Result<Relation*> rel = db_->FindMutable(delta.relation);
        if (!rel.ok()) {
          unwound = false;  // unreachable in practice; stay installed
          break;
        }
        for (const Tuple& t : delta.plus) (*rel)->Erase(t);
        for (const Tuple& t : delta.minus) (*rel)->Insert(t);
      }
      if (unwound) {
        UnpublishNewestLocked();
        db_->RewindTime();
        stats_.commits.fetch_sub(1);
        result->installed = false;
      }
    }
  }
  // Wake committers stacked above this version: their records cannot be
  // acknowledged over a hole, so they fail over to the same degraded
  // outcome instead of waiting forever.
  MarkDurabilityFailed(version);
  return Status::Unavailable(
      StrCat("commit ", version, " not durable: ", cause.message(),
             "; manager is now in read-only degraded mode"));
}

Status TxnManager::Checkpoint() {
  if (options_.checkpoint_path.empty()) {
    return Status::FailedPrecondition("no checkpoint_path configured");
  }
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (degraded_.load(std::memory_order_acquire)) {
    std::string cause;
    {
      std::lock_guard<std::mutex> cause_lock(degraded_cause_mu_);
      cause = degraded_cause_;
    }
    return Status::Unavailable(
        StrCat("manager is in read-only degraded mode (", cause,
               "); TryReopenWal() performs the recovery checkpoint"));
  }
  TXMOD_RETURN_IF_ERROR(
      CheckpointDatabaseToFile(*db_, options_.checkpoint_path, vfs_));
  if (wal_ != nullptr) {
    // Safe ordering: the checkpoint is durably renamed into place first,
    // so a crash between the two steps merely leaves WAL records the
    // replay will skip (version <= checkpoint time).
    const Status truncated = wal_->Truncate();
    if (!truncated.ok()) {
      // A half-truncated log (e.g. header write failed) is poisoned;
      // degrade so writers fail fast rather than append to it.
      std::string cause;
      if (wal_->broken(&cause)) EnterDegradedLocked(cause);
      return truncated;
    }
  }
  // Every version the checkpoint covers is durable regardless of the
  // log's fate; move both the no-unwind floor and the ack horizon.
  checkpoint_time_ = db_->logical_time();
  ResetDurabilityHorizon(db_->logical_time());
  stats_.checkpoints.fetch_add(1);
  return Status::OK();
}

bool TxnManager::degraded(std::string* cause) const {
  const bool is = degraded_.load(std::memory_order_acquire);
  if (cause != nullptr) {
    std::lock_guard<std::mutex> lock(degraded_cause_mu_);
    *cause = degraded_cause_;
  }
  return is;
}

Status TxnManager::TryReopenWal() {
  if (options_.wal_path.empty()) {
    return Status::FailedPrecondition("no WAL configured");
  }
  if (options_.checkpoint_path.empty()) {
    return Status::FailedPrecondition(
        "recovery needs a checkpoint_path: the poisoned log's tail is "
        "untrustworthy, so a fresh checkpoint must supersede it");
  }
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (!degraded_.load(std::memory_order_acquire) && wal_ != nullptr &&
      !wal_->broken()) {
    return Status::OK();  // nothing to recover
  }
  if (!degraded_.load(std::memory_order_acquire)) {
    // Broken log but not yet degraded (no writer hit it yet): degrade
    // now, so a failure in any step below leaves writers fenced off —
    // never silently committing without a log.
    std::string cause = "WAL unavailable";
    if (wal_ != nullptr) wal_->broken(&cause);
    EnterDegradedLocked(cause);
  }
  // The committed in-memory state is the authority now; checkpoint it so
  // the poisoned log (whose durable suffix is unknowable) is obsolete.
  TXMOD_RETURN_IF_ERROR(
      CheckpointDatabaseToFile(*db_, options_.checkpoint_path, vfs_));
  // Only now is it safe to discard the old log. While any of these steps
  // fail the manager stays degraded (wal_ may be null; the degraded_
  // guard keeps every writer away from it). In-flight stage-C appenders
  // that pinned the old handle keep a live (poisoned) object; their
  // commits are covered by the checkpoint above, so the no-unwind floor
  // makes their failure harmless.
  {
    std::lock_guard<std::mutex> wal_lock(wal_ptr_mu_);
    wal_.reset();
  }
  TXMOD_RETURN_IF_ERROR(vfs_->Remove(options_.wal_path));
  // Discard stale shard streams too, probing cheaply first so a
  // non-sharded reopen issues no extra vfs operations (fault-injection
  // schedules on the main path stay stable). Probe EVERY index — a
  // failed previous wipe can leave holes, and a stale higher shard
  // surviving the wipe would collide with reused versions on the fresh
  // log.
  for (uint32_t k = 0; k < ShardedWal::kMaxProbeShards; ++k) {
    const std::string shard_path = ShardedWal::ShardPath(options_.wal_path, k);
    if (!std::ifstream(shard_path).good()) continue;
    TXMOD_RETURN_IF_ERROR(vfs_->Remove(shard_path));
  }
  TXMOD_ASSIGN_OR_RETURN(
      std::shared_ptr<ShardedWal> fresh,
      ShardedWal::Open(options_.wal_path, options_.wal_shards, vfs_));
  {
    std::lock_guard<std::mutex> wal_lock(wal_ptr_mu_);
    wal_ = std::move(fresh);
  }
  checkpoint_time_ = db_->logical_time();
  ResetDurabilityHorizon(db_->logical_time());
  {
    std::lock_guard<std::mutex> cause_lock(degraded_cause_mu_);
    degraded_cause_.clear();
  }
  degraded_.store(false, std::memory_order_release);
  stats_.wal_reopens.fetch_add(1);
  return Status::OK();
}

Result<Database> TxnManager::Recover(const TxnManagerOptions& options,
                                     WalReplayStats* stats) {
  if (options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "recovery needs a checkpoint_path (the WAL holds only "
        "differentials)");
  }
  return RecoverDatabase(options.checkpoint_path, options.wal_path, stats);
}

uint64_t TxnManager::committed_version() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return db_->logical_time();
}

std::shared_ptr<const ShardedWal> TxnManager::wal() const {
  std::lock_guard<std::mutex> lock(wal_ptr_mu_);
  return wal_;
}

TxnManagerStats TxnManager::stats() const {
  // Deliberately lock-free with respect to commit_mu_: a monitoring
  // probe (e.g. the REPL's \stats) must never stall the commit pipeline.
  TxnManagerStats out;
  out.commits = stats_.commits.load();
  out.readonly_commits = stats_.readonly_commits.load();
  out.conflicts = stats_.conflicts.load();
  out.integrity_aborts = stats_.integrity_aborts.load();
  out.wal_appends = stats_.wal_appends.load();
  out.checkpoints = stats_.checkpoints.load();
  out.retries = stats_.retries.load();
  out.backoff_sleeps = stats_.backoff_sleeps.load();
  out.deadlines_exceeded = stats_.deadlines_exceeded.load();
  out.wal_failures = stats_.wal_failures.load();
  out.wal_reopens = stats_.wal_reopens.load();
  out.unavailable_rejections = stats_.unavailable_rejections.load();
  const std::shared_ptr<const ShardedWal> log = wal();
  if (log != nullptr) out.wal_fsyncs = log->fsync_count();
  out.degraded = degraded_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(degraded_cause_mu_);
    out.degraded_cause = degraded_cause_;
  }
  out.cow_relation_clones = CowStats::relation_clones.load();
  out.cow_overlays_created = CowStats::overlays_created.load();
  out.cow_overlay_merges = CowStats::overlay_merges.load();
  out.cow_overlay_collapses = CowStats::overlay_collapses.load();
  return out;
}

}  // namespace txmod::txn
