#ifndef TXMOD_TXN_TXN_MANAGER_H_
#define TXMOD_TXN_TXN_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "src/common/vfs.h"
#include "src/core/subsystem.h"
#include "src/parallel/thread_pool.h"
#include "src/relational/wal.h"
#include "src/txn/executor.h"
#include "src/txn/txn_context.h"

namespace txmod::txn {

/// Tuning and durability knobs of the transaction manager.
struct TxnManagerOptions {
  /// Executions TxnManager::Run attempts before reporting a conflict
  /// abort to the caller (first-committer-wins losers re-execute from a
  /// fresh snapshot).
  int max_attempts = 8;

  /// Write-ahead log path; empty runs the manager volatile (no
  /// durability, no recovery).
  std::string wal_path;

  /// Checkpoint path. With a WAL, Create() seeds an initial checkpoint
  /// here when none exists (the WAL holds only differentials, so
  /// recovery always needs a base state), and Checkpoint() refreshes it.
  std::string checkpoint_path;

  /// Group-commit boundary: when true, a commit reports success only
  /// after its WAL record is fsync'd — concurrent committers batch into
  /// one fsync (the group-commit window is "while the current leader's
  /// fsync runs"). When false, commits are durable only up to the OS
  /// page cache (crash may lose a suffix; recovery still restores a
  /// consistent committed prefix).
  bool sync_commits = true;

  /// Committed-transaction write records retained for conflict
  /// validation. A session whose snapshot predates the window is
  /// conservatively treated as conflicted (it re-executes on a fresh
  /// snapshot). Must comfortably exceed the number of commits that can
  /// land during one session's lifetime.
  std::size_t validation_window = 1024;

  /// When true (default), a session's first write to a relation layers an
  /// O(1) overlay over the shared snapshot state and commits merge or
  /// collapse the overlay (mutation cost O(|delta|)). When false, first
  /// writes pay the legacy O(|R|) copy-on-write clone — kept as the
  /// baseline the overlay-vs-clone oracle compares against.
  bool overlay_sessions = true;

  /// Storage-and-clock environment every WAL/checkpoint byte and every
  /// backoff clock read goes through. nullptr = the real POSIX
  /// environment; tests substitute a FaultInjectingVfs. Must outlive the
  /// manager.
  Vfs* vfs = nullptr;

  /// Retry backoff for TxnManager::Run conflict losers: the base sleep
  /// before the second attempt, doubling each further attempt (bounded
  /// exponential), with deterministic jitter in [base/2, base] drawn
  /// from retry_jitter_seed. 0 (default) disables backoff — the
  /// conflict-heavy oracles and benchmarks retry hot on purpose.
  int64_t retry_backoff_initial_micros = 0;
  /// Clamp for a single backoff sleep.
  int64_t retry_backoff_max_micros = 100000;
  /// Seed of the jitter sequence; two managers with equal seeds produce
  /// identical backoff schedules (per Run sequence number and attempt).
  uint64_t retry_jitter_seed = 0;

  /// Per-Run time budget in Vfs-clock microseconds; <= 0 means none.
  /// When an attempt's backoff would overrun the budget — or the budget
  /// is already spent before an attempt — Run stops with
  /// DeadlineExceeded instead of burning the remaining attempts.
  /// Conflicts are retried within the budget; terminal errors
  /// (integrity aborts, I/O faults, Unavailable) never retry.
  int64_t run_timeout_micros = 0;

  /// Number of WAL append streams. 1 (default) keeps the single
  /// v1-format file at wal_path — byte-for-byte the pre-shard layout.
  /// N >= 2 shards committed deltas by relation-name hash across
  /// `<wal_path>.shard<k>` streams with independent group-commit fsync
  /// leaders, so commits with disjoint shard footprints never share an
  /// append mutex or an fsync; recovery stitches the streams back into
  /// commit-version order. An existing log's on-disk shard count always
  /// wins over this setting (see ShardedWal::Open); TryReopenWal is the
  /// point where a changed setting takes effect.
  uint32_t wal_shards = 1;

  /// Worker threads for concurrent integrity-check evaluation inside
  /// sessions: runs of consecutive alarm statements (the shape the
  /// transaction modifier emits) evaluate in parallel on a pool owned by
  /// the manager, with outcomes folded back in statement order — the
  /// abort decision, counters, and optimistic read set stay identical to
  /// serial execution (pinned by the serial-vs-parallel oracle tests).
  /// 0 (default) = serial checks.
  std::size_t parallel_check_workers = 0;
};

/// A snapshot of the manager's life so far: monotonic counters plus the
/// current degraded-mode state and the process-wide CowStats counters.
struct TxnManagerStats {
  uint64_t commits = 0;            // write-ful + read-only commits
  uint64_t readonly_commits = 0;   // commits that installed nothing
  uint64_t conflicts = 0;          // first-committer-wins losses
  uint64_t integrity_aborts = 0;   // alarm/abort outcomes (validated)
  uint64_t wal_appends = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t checkpoints = 0;
  uint64_t retries = 0;            // Run re-executions after conflicts
  uint64_t backoff_sleeps = 0;     // backoff waits Run performed
  uint64_t deadlines_exceeded = 0;  // Runs stopped by their time budget
  uint64_t wal_failures = 0;       // storage faults that degraded the manager
  uint64_t wal_reopens = 0;        // successful TryReopenWal recoveries
  uint64_t unavailable_rejections = 0;  // writers refused while degraded

  /// Current state, not counters: read-only degraded mode and why.
  bool degraded = false;
  std::string degraded_cause;

  /// Copy-on-write / overlay instrumentation (process-wide CowStats).
  uint64_t cow_relation_clones = 0;
  uint64_t cow_overlays_created = 0;
  uint64_t cow_overlay_merges = 0;
  uint64_t cow_overlay_collapses = 0;
};

/// Per-call overrides of TxnManager::Run's retry/deadline policy — the
/// network layer applies one per client connection so two clients of one
/// manager can run under different deadlines and backoff schedules.
/// Negative (or, for max_attempts, non-positive) fields inherit the
/// manager-wide TxnManagerOptions value; timeout_micros = 0 explicitly
/// disables the deadline even when the manager has one.
struct RunPolicy {
  int max_attempts = 0;
  int64_t retry_backoff_initial_micros = -1;
  int64_t retry_backoff_max_micros = -1;
  int64_t run_timeout_micros = -1;
};

class TxnManager;

/// One optimistic transaction's lifecycle against a pinned snapshot:
///
///   auto session = manager.Begin();
///   session->Execute(txn1);       // runs against the snapshot D^t
///   session->Execute(txn2);       // same snapshot, accumulated diffs
///   auto result = session->Commit();  // first-committer-wins validation
///
/// Execute runs the integrity-modified transaction against the session's
/// private copy-on-write snapshot: reads see exactly the committed state
/// D^t of Begin() time plus this session's own writes; nothing the
/// session does is visible outside it before Commit. Execute results with
/// committed == true mean "ran cleanly, ready to commit" — only Commit's
/// result is authoritative. An integrity alarm aborts the whole session
/// (its snapshot state is rolled back); Commit then merely validates
/// that the abort decision wasn't based on stale reads.
///
/// Sessions are single-threaded; different sessions may run on different
/// threads concurrently. Not movable (the execution context points into
/// the session's snapshot).
class TxnSession {
 public:
  TxnSession(const TxnSession&) = delete;
  TxnSession& operator=(const TxnSession&) = delete;

  /// A session that was never committed or aborted releases its
  /// active-session slot on destruction (the rule-definition quiesce
  /// check counts live sessions).
  ~TxnSession();

  /// Runs one transaction (integrity-modified by the subsystem) against
  /// the session's snapshot. May be called repeatedly while the session
  /// is active; differentials accumulate.
  Result<TxnResult> Execute(const algebra::Transaction& txn);

  /// Parses, then Execute.
  Result<TxnResult> ExecuteText(const std::string& txn_text);

  /// First-committer-wins commit: validates this session's reads and
  /// write footprint against every transaction committed since the
  /// snapshot; on success installs the differentials into the committed
  /// database, appends them to the WAL, and (options.sync_commits)
  /// returns after the group-commit fsync. The result reports
  /// `conflict = true` when validation lost — the caller may retry from
  /// a fresh session (TxnManager::Run does). After Commit the session is
  /// finished.
  Result<TxnResult> Commit();

  /// Discards the session without committing.
  void Abort();

  /// The committed logical time this session's snapshot pinned.
  uint64_t snapshot_version() const { return snapshot_version_; }

  /// The session's private view (the snapshot plus this session's own
  /// uncommitted writes). Test/diagnostic access. Invalid once the
  /// session is finished — a successful Commit may relinquish written
  /// relations to the committed master by pointer swap.
  const Database& snapshot() const { return snapshot_db_; }

  bool finished() const { return state_ == State::kFinished; }

 private:
  friend class TxnManager;
  enum class State { kActive, kAborted, kFinished };

  TxnSession(TxnManager* manager, Database snapshot,
             uint64_t snapshot_version);

  /// Idempotent transition to kFinished; releases the manager's
  /// active-session slot exactly once.
  void Finish();

  TxnManager* manager_;
  Database snapshot_db_;
  uint64_t snapshot_version_;
  TxnContext ctx_;
  State state_ = State::kActive;
  TxnResult accumulated_;  // stats/counters across Execute calls
};

/// The concurrent transaction manager: snapshot-isolated optimistic
/// sessions over one committed database, serialized through
/// first-committer-wins commit validation, made durable by a
/// differential write-ahead log with group commit.
///
/// Concurrency model (Section 2's single-step transition semantics,
/// lifted to many clients): the committed database advances strictly
/// one transaction at a time — commit order IS the serialization order.
/// Sessions execute fully in parallel against copy-on-write snapshots;
/// at commit, a session wins only if nothing it depended on changed
/// after its snapshot:
///
///   * tuple-granularity: its write footprint (every tuple it inserted
///     or deleted, *including* no-ops) overlaps no committed
///     differential since the snapshot;
///   * relation-granularity: no relation it read during evaluation
///     (rule-check probes included) was written since the snapshot.
///
/// Together these make every committed (and every reported abort)
/// outcome equal to a serial execution in commit order — the
/// linearizability oracle in tests/concurrent_oracle_test.cc pins
/// exactly that, and the integrity guarantee of the underlying
/// subsystem (commit states satisfy every constraint) carries over
/// unchanged.
///
/// Commit pipeline (three stages; only stage B holds the commit lock):
///
///   A. collect — the session's net differentials and validation
///      footprint are gathered into the WAL record and commit record
///      with no lock held (session state is private to its thread);
///   B. validate → reserve → publish — under commit_mu_: hash-indexed
///      conflict validation against the rolling window, version
///      assignment, in-memory install (pointer-swap fast path), and
///      publication of the write set into the validation index;
///   C. log + ack — outside the lock: the record fans out to the
///      sharded WAL, group-commit fsyncs run per shard, and the commit
///      is acknowledged only once every version up to its own is
///      durable (the contiguous durability horizon — out-of-order
///      shard fsync completions never ack a commit above a hole).
///
/// Disjoint-footprint commits therefore validate, append, and fsync in
/// parallel; the serialized region is the short stage B.
///
/// Durability: committed differentials — the same dplus/dminus sets the
/// paper's transaction modification computes — are appended to the WAL
/// before the commit is reported; concurrent committers share fsyncs
/// per shard (group commit). Recover() replays the stitched WAL over
/// the latest checkpoint and restores exactly the durable committed
/// prefix.
///
/// Failure: any WAL fault (failed append, failed fsync) flips the
/// manager into read-only degraded mode instead of silently poisoning
/// every later commit — reads and read-only commits keep working,
/// write-ful commits fail fast with Unavailable naming the original
/// cause, and TryReopenWal() restores write service (checkpoint + fresh
/// log) once storage works again.
///
/// Rule definition: DefineConstraint/DefineRule/DropRule on this manager
/// enforce the quiesce contract — they serialize against Begin/commit
/// and fail with FailedPrecondition while any session is live, instead
/// of racing the recompile against executing sessions. (Calling the
/// subsystem's definition methods directly bypasses the guard and keeps
/// the old undefined-by-contract behavior; don't.)
class TxnManager {
 public:
  /// Creates a manager over `subsystem`'s database and rule set. With a
  /// WAL path, opens (creating) the log; with a checkpoint path and no
  /// existing checkpoint file, seeds one from the current database so
  /// recovery always has a base state.
  static Result<std::unique_ptr<TxnManager>> Create(
      core::IntegritySubsystem* subsystem, TxnManagerOptions options = {});

  /// Starts a session pinned to the current committed state.
  std::unique_ptr<TxnSession> Begin();

  /// Begin + Execute + Commit with automatic retry of conflict losers
  /// (fresh snapshot per attempt, up to options.max_attempts, with
  /// bounded-exponential jittered backoff between attempts when
  /// options.retry_backoff_initial_micros > 0, all under the optional
  /// options.run_timeout_micros budget). The returned result's
  /// `attempts` counts executions; `conflict` is true only when every
  /// attempt lost validation. Only conflicts retry: integrity aborts,
  /// I/O faults, and Unavailable (degraded mode) are terminal.
  Result<TxnResult> Run(const algebra::Transaction& txn);

  /// Run under per-call policy overrides (see RunPolicy): the same retry
  /// loop, but attempts/backoff/deadline come from `policy` where set.
  Result<TxnResult> Run(const algebra::Transaction& txn,
                        const RunPolicy& policy);

  /// Parses against the committed schema, then Run.
  Result<TxnResult> RunText(const std::string& txn_text);
  Result<TxnResult> RunText(const std::string& txn_text,
                            const RunPolicy& policy);

  /// Checkpoints the committed state (atomic temp+rename+fsync) and
  /// truncates the WAL. Commits are blocked for the duration. Requires
  /// options.checkpoint_path.
  Status Checkpoint();

  /// Guarded rule definition: forwards to the subsystem only when no
  /// session is live (Begin'd but not yet committed, aborted, or
  /// destroyed), serialized against Begin and commit application.
  /// Returns FailedPrecondition naming the live-session count otherwise —
  /// recompiling rule plans while sessions execute them is a data race by
  /// contract, so the manager detects and rejects instead.
  Status DefineConstraint(const std::string& name,
                          const std::string& cl_text);
  Status DefineRule(const std::string& name, const std::string& rl_text);
  Status DropRule(const std::string& name);

  /// Live sessions: Begin'd and not yet finished. Test/diagnostic.
  uint64_t active_sessions() const;

  /// Crash recovery: checkpoint + WAL replay, restoring the durable
  /// committed prefix. Static — call before constructing the subsystem
  /// and manager over the recovered database.
  static Result<Database> Recover(const TxnManagerOptions& options,
                                  WalReplayStats* stats = nullptr);

  /// True while the manager is in read-only degraded mode after a
  /// storage fault; `cause` (when non-null) receives the original
  /// failure. Reads and read-only commits keep working in this state;
  /// write-ful commits fail fast with Unavailable naming the cause.
  bool degraded(std::string* cause = nullptr) const;

  /// Attempts to restore write service after a storage fault: writes a
  /// fresh checkpoint of the current committed state, replaces the
  /// poisoned WAL file with a new empty log, and clears degraded mode.
  /// Fails (and the manager stays degraded) while storage still faults.
  /// Caution: a commit that was installed in memory but whose WAL fsync
  /// failed ("unknown outcome" for its caller) is part of the committed
  /// state and becomes durable with this checkpoint.
  Status TryReopenWal();

  /// The deterministic backoff schedule: the jittered sleep Run performs
  /// before `attempt` (>= 2) of its `run_seq`-th invocation. Exposed so
  /// tests assert the exact schedule instead of timing sleeps.
  static int64_t ComputeBackoffMicros(const TxnManagerOptions& options,
                                      uint64_t run_seq, int attempt);

  /// Test seam: called between Execute and Commit of every Run attempt
  /// (with the 1-based attempt number) — lets a test deterministically
  /// sneak a conflicting commit under a running attempt.
  void set_run_probe(std::function<void(int)> probe) {
    run_probe_ = std::move(probe);
  }

  uint64_t committed_version() const;
  /// Counter snapshot. Lock-free on the commit path's mutex: counters
  /// are atomics and the degraded flag has its own tiny lock, so a
  /// monitoring loop (the REPL's \stats) can never stall committers.
  TxnManagerStats stats() const;
  /// The live log handle (shared: TryReopenWal may swap the log under
  /// in-flight commits, which keep their own handle). Null when the
  /// manager runs volatile or while a reopen is in progress.
  std::shared_ptr<const ShardedWal> wal() const;
  core::IntegritySubsystem* subsystem() { return subsystem_; }
  Vfs* vfs() const { return vfs_; }

 private:
  friend class TxnSession;

  /// A committed transaction's published write set, kept for validation.
  struct CommitRecord {
    uint64_t version = 0;
    // Net changes per relation (dplus ∪ dminus as one membership set:
    // validation only asks "did version v touch tuple t of R?").
    std::map<std::string, Relation> writes;
  };

  /// Hash/equality over the pointed-to tuple VALUE, so the validation
  /// index can be probed with any tuple's address while its keys are
  /// nodes inside the window records' Relations (unordered_set nodes
  /// keep their addresses across container moves and deque growth).
  struct TupleNodeHash {
    std::size_t operator()(const Tuple* t) const { return TupleHasher{}(*t); }
  };
  struct TupleNodeEq {
    bool operator()(const Tuple* a, const Tuple* b) const { return *a == *b; }
  };

  /// The per-relation hash index over the validation window that
  /// replaces the linear recent_ scan: a commit validates in
  /// O(|reads| + |footprint|) regardless of how many commits the window
  /// holds, so disjoint-footprint validations stop paying for each
  /// other's history.
  struct RelWriteIndex {
    /// Window versions that wrote this relation, ascending. Read
    /// validation asks for the first entry > snapshot (binary search).
    std::deque<uint64_t> versions;
    /// Newest window writer per tuple. Keys point into the OWNING
    /// CommitRecord's writes Relation — re-keyed onto the newest record
    /// on publish so an evicted record never leaves a dangling key.
    std::unordered_map<const Tuple*, uint64_t, TupleNodeHash, TupleNodeEq>
        writers;
  };

  /// Monotonic counters, atomics so stats() and the Run retry path
  /// never touch commit_mu_.
  struct Counters {
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> readonly_commits{0};
    std::atomic<uint64_t> conflicts{0};
    std::atomic<uint64_t> integrity_aborts{0};
    std::atomic<uint64_t> wal_appends{0};
    std::atomic<uint64_t> checkpoints{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> backoff_sleeps{0};
    std::atomic<uint64_t> deadlines_exceeded{0};
    std::atomic<uint64_t> wal_failures{0};
    std::atomic<uint64_t> wal_reopens{0};
    std::atomic<uint64_t> unavailable_rejections{0};
  };

  TxnManager(core::IntegritySubsystem* subsystem, TxnManagerOptions options)
      : subsystem_(subsystem), db_(subsystem->database()),
        options_(std::move(options)) {}

  /// The commit protocol (called by TxnSession::Commit) — the staged
  /// pipeline described in the class comment.
  Result<TxnResult> CommitSession(TxnSession* session);

  /// True when `session` conflicts with any commit after its snapshot,
  /// answered from the validation index. Caller holds commit_mu_. Sets
  /// `reason`.
  bool HasConflictLocked(const TxnSession& session, std::string* reason);

  /// Validation-index maintenance. All require commit_mu_.
  void PublishCommitLocked(const CommitRecord& record);
  void EvictFromIndexLocked(const CommitRecord& record);
  /// Unwinds the newest record (recent_.back()) out of the index —
  /// re-pointing each tuple entry at the most recent older writer still
  /// in the window — and pops it from recent_. The WAL-failure unwind.
  void UnpublishNewestLocked();

  /// Contiguous durability horizon: a commit is acknowledged only when
  /// every version up to its own is durable, so out-of-order per-shard
  /// fsync completions can never ack a commit that recovery would have
  /// to drop for a hole below it.
  void MarkDurable(uint64_t version);
  void MarkDurabilityFailed(uint64_t version);
  Status WaitDurableThrough(uint64_t version);
  /// Checkpoint/reopen: everything at or below `floor` is covered by
  /// the durable checkpoint; pending failures are obsolete.
  void ResetDurabilityHorizon(uint64_t floor);

  /// Stage-C failure path: degrades the manager, unwinds the commit
  /// when it is still the newest one and not already covered by a
  /// checkpoint, and marks the version failed for later waiters.
  Status HandleLogFailure(uint64_t version, const WalRecord& wal_record,
                          const Status& cause, TxnResult* result);

  /// Releases one active-session slot (TxnSession::Finish).
  void ReleaseSession();

  /// The quiesce guard shared by the rule-definition entry points.
  /// Returns FailedPrecondition while sessions are live; otherwise runs
  /// `mutate` under commit_mu_.
  template <typename Fn>
  Status WithQuiescedSessions(const char* what, Fn&& mutate);

  /// Flips into read-only degraded mode (first cause wins). Caller
  /// holds commit_mu_ (transitions are serialized by it; the flag and
  /// cause themselves are readable without it).
  void EnterDegradedLocked(const std::string& cause);

  core::IntegritySubsystem* subsystem_;
  Database* db_;
  TxnManagerOptions options_;
  /// Check-evaluation pool handed to every session's context when
  /// options_.parallel_check_workers > 0 (see TxnManagerOptions).
  std::unique_ptr<parallel::ThreadPool> check_pool_;
  Vfs* vfs_ = nullptr;  // options_.vfs resolved against Vfs::Default()
  std::function<void(int)> run_probe_;
  std::atomic<uint64_t> run_seq_{0};

  /// The live log. shared_ptr because stage C appends outside
  /// commit_mu_ while TryReopenWal may concurrently swap in a fresh
  /// log: each commit captures its handle under commit_mu_ in stage B
  /// and the old log stays alive (poisoned) until the last holder
  /// drops it. The pointer itself is guarded by wal_ptr_mu_ for
  /// lock-free-commit-path readers (stats, wal()).
  std::shared_ptr<ShardedWal> wal_;
  mutable std::mutex wal_ptr_mu_;

  /// Serializes Begin (snapshot creation) against commit application —
  /// the copy-on-write contract — and orders commits (= the
  /// serialization order). Execution never holds it; stage A and C of
  /// the commit pipeline don't either.
  mutable std::mutex commit_mu_;
  std::deque<CommitRecord> recent_;  // rolling validation window
  std::unordered_map<std::string, RelWriteIndex> write_index_;  // commit_mu_
  /// Logical time covered by the latest durable checkpoint; a commit at
  /// or below it must never be unwound (it is durable regardless of its
  /// log record's fate). Guarded by commit_mu_.
  uint64_t checkpoint_time_ = 0;

  /// Durability-horizon state (ack_mu_; lock order commit_mu_ -> ack_mu_).
  mutable std::mutex ack_mu_;
  std::condition_variable ack_cv_;
  uint64_t durable_floor_ = 0;        // all versions <= this are durable
  std::set<uint64_t> durable_above_;  // durable versions > floor
  uint64_t failed_version_ = kNoFailedVersion;
  static constexpr uint64_t kNoFailedVersion = ~uint64_t{0};

  Counters stats_;
  std::atomic<uint64_t> active_sessions_{0};
  std::atomic<bool> degraded_{false};
  mutable std::mutex degraded_cause_mu_;
  std::string degraded_cause_;  // guarded by degraded_cause_mu_
};

}  // namespace txmod::txn

#endif  // TXMOD_TXN_TXN_MANAGER_H_
