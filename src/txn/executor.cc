#include "src/txn/executor.h"

#include "src/algebra/evaluator.h"
#include "src/common/str_util.h"

namespace txmod::txn {

using algebra::EvaluateRelExpr;
using algebra::Statement;
using algebra::StatementKind;

namespace {

/// Evaluates a statement's expression through the context's plan cache:
/// the pinned side by pointer identity (integrity checks, pre-compiled at
/// rule definition time), then the shaped side by structural fingerprint
/// (ad-hoc statements — repeated shapes reuse one compiled plan under
/// this statement's constant binding). Without a cache, compiles one-shot.
Result<Relation> EvalStatementExpr(const Statement& stmt, TxnContext* ctx,
                                   TxnResult* result) {
  if (algebra::PlanCache* cache = ctx->plan_cache()) {
    if (const algebra::PhysicalPlan* plan = cache->Lookup(stmt.expr.get())) {
      return plan->Execute(*ctx, &result->stats);
    }
    TXMOD_ASSIGN_OR_RETURN(
        algebra::BoundPlan bound,
        cache->GetOrCompileShaped(*stmt.expr, &result->stats));
    return bound.plan->Execute(*ctx, &result->stats, &bound.params);
  }
  return EvaluateRelExpr(*stmt.expr, *ctx, &result->stats);
}

Status ExecuteAssign(const Statement& stmt, TxnContext* ctx,
                     TxnResult* result) {
  TXMOD_ASSIGN_OR_RETURN(Relation value,
                         EvalStatementExpr(stmt, ctx, result));
  ctx->SetTemp(stmt.target, std::move(value));
  return Status::OK();
}

Status ExecuteInsert(const Statement& stmt, TxnContext* ctx,
                     TxnResult* result) {
  TXMOD_ASSIGN_OR_RETURN(Relation value,
                         EvalStatementExpr(stmt, ctx, result));
  for (const Tuple& t : value) {
    TXMOD_ASSIGN_OR_RETURN(bool inserted, ctx->InsertTuple(stmt.target, t));
    if (inserted) ++result->tuples_inserted;
  }
  return Status::OK();
}

Status ExecuteDelete(const Statement& stmt, TxnContext* ctx,
                     TxnResult* result) {
  TXMOD_ASSIGN_OR_RETURN(Relation value,
                         EvalStatementExpr(stmt, ctx, result));
  for (const Tuple& t : value) {
    TXMOD_ASSIGN_OR_RETURN(bool deleted, ctx->DeleteTuple(stmt.target, t));
    if (deleted) ++result->tuples_deleted;
  }
  return Status::OK();
}

Status ExecuteUpdate(const Statement& stmt, TxnContext* ctx,
                     TxnResult* result) {
  // update(R, θ, f) has delete-plus-insert semantics (Definition 4.5 maps
  // an update to {INS(R), DEL(R)}); evaluate the selection against the
  // current state first, then apply both halves.
  TXMOD_ASSIGN_OR_RETURN(const Relation* rel,
                         ctx->Resolve(algebra::RelRefKind::kBase,
                                      stmt.target));
  std::vector<Tuple> selected;
  for (const Tuple& t : *rel) {
    TXMOD_ASSIGN_OR_RETURN(bool match,
                           stmt.predicate.EvalPredicate(&t, nullptr));
    if (match) selected.push_back(t);
  }
  result->stats.tuples_scanned += rel->size();
  for (const Tuple& old_tuple : selected) {
    Tuple new_tuple = old_tuple;
    for (const algebra::UpdateSet& u : stmt.sets) {
      TXMOD_ASSIGN_OR_RETURN(Value v, u.expr.EvalValue(&old_tuple, nullptr));
      if (u.attr < 0 || u.attr >= static_cast<int>(new_tuple.arity())) {
        return Status::InvalidArgument(
            StrCat("update of ", stmt.target, ": attribute #", u.attr,
                   " out of range"));
      }
      new_tuple.at(u.attr) = std::move(v);
    }
    TXMOD_ASSIGN_OR_RETURN(bool deleted,
                           ctx->DeleteTuple(stmt.target, old_tuple));
    if (deleted) ++result->tuples_deleted;
    TXMOD_ASSIGN_OR_RETURN(bool inserted,
                           ctx->InsertTuple(stmt.target, new_tuple));
    if (inserted) ++result->tuples_inserted;
  }
  return Status::OK();
}

Status ExecuteAlarm(const Statement& stmt, TxnContext* ctx,
                    TxnResult* result) {
  TXMOD_ASSIGN_OR_RETURN(Relation value,
                         EvalStatementExpr(stmt, ctx, result));
  if (value.empty()) return Status::OK();  // Definition 5.1: no effect
  std::string reason = stmt.message.empty()
                           ? StrCat("alarm raised: ", stmt.expr->ToString(),
                                    " is non-empty (", value.size(),
                                    " tuple(s))")
                           : stmt.message;
  return Status::Aborted(std::move(reason));
}

}  // namespace

Status ExecuteStatement(const Statement& stmt, TxnContext* ctx,
                        TxnResult* result) {
  switch (stmt.kind) {
    case StatementKind::kAssign:
      return ExecuteAssign(stmt, ctx, result);
    case StatementKind::kInsert:
      return ExecuteInsert(stmt, ctx, result);
    case StatementKind::kDelete:
      return ExecuteDelete(stmt, ctx, result);
    case StatementKind::kUpdate:
      return ExecuteUpdate(stmt, ctx, result);
    case StatementKind::kAlarm:
      return ExecuteAlarm(stmt, ctx, result);
    case StatementKind::kAbort:
      return Status::Aborted(stmt.message.empty() ? "abort statement"
                                                  : stmt.message);
  }
  return Status::Internal("unknown statement kind");
}

Result<TxnResult> ExecuteProgram(const algebra::Transaction& txn,
                                 TxnContext* ctx) {
  TxnResult result;
  for (std::size_t i = 0; i < txn.program.statements.size(); ++i) {
    const Status st = ExecuteStatement(txn.program.statements[i], ctx,
                                       &result);
    if (st.ok()) {
      ++result.statements_executed;
      continue;
    }
    ctx->Rollback();
    if (st.code() == StatusCode::kAborted) {
      result.committed = false;
      result.abort_reason = st.message();
      result.aborting_statement = static_cast<int>(i);
      return result;
    }
    return st;  // malformed program: error out (state already restored)
  }
  result.committed = true;  // ran to completion; caller commits
  return result;
}

Result<TxnResult> ExecuteTransaction(const algebra::Transaction& txn,
                                     Database* db,
                                     algebra::PlanCache* plan_cache) {
  // The single-session fast path: execute and commit in one step. A
  // TxnManager session runs the same ExecuteProgram against a snapshot
  // and defers the commit decision to first-committer-wins validation.
  TxnContext ctx(db);
  ctx.set_plan_cache(plan_cache);
  TXMOD_ASSIGN_OR_RETURN(TxnResult result, ExecuteProgram(txn, &ctx));
  if (result.committed) {
    ctx.Commit();
    result.commit_version = db->logical_time();
    result.installed = true;
  }
  return result;
}

}  // namespace txmod::txn
