#include "src/txn/executor.h"

#include <mutex>
#include <set>

#include "src/algebra/evaluator.h"
#include "src/common/str_util.h"
#include "src/parallel/thread_pool.h"

namespace txmod::txn {

using algebra::EvaluateRelExpr;
using algebra::Statement;
using algebra::StatementKind;

namespace {

/// Evaluates a statement's expression through the context's plan cache:
/// the pinned side by pointer identity (integrity checks, pre-compiled at
/// rule definition time), then the shaped side by structural fingerprint
/// (ad-hoc statements — repeated shapes reuse one compiled plan under
/// this statement's constant binding). Without a cache, compiles one-shot.
Result<Relation> EvalStatementExpr(const Statement& stmt, TxnContext* ctx,
                                   TxnResult* result) {
  if (algebra::PlanCache* cache = ctx->plan_cache()) {
    if (const algebra::PhysicalPlan* plan = cache->Lookup(stmt.expr.get())) {
      return plan->Execute(*ctx, &result->stats);
    }
    TXMOD_ASSIGN_OR_RETURN(
        algebra::BoundPlan bound,
        cache->GetOrCompileShaped(*stmt.expr, &result->stats));
    return bound.plan->Execute(*ctx, &result->stats, &bound.params);
  }
  return EvaluateRelExpr(*stmt.expr, *ctx, &result->stats);
}

Status ExecuteAssign(const Statement& stmt, TxnContext* ctx,
                     TxnResult* result) {
  TXMOD_ASSIGN_OR_RETURN(Relation value,
                         EvalStatementExpr(stmt, ctx, result));
  ctx->SetTemp(stmt.target, std::move(value));
  return Status::OK();
}

Status ExecuteInsert(const Statement& stmt, TxnContext* ctx,
                     TxnResult* result) {
  TXMOD_ASSIGN_OR_RETURN(Relation value,
                         EvalStatementExpr(stmt, ctx, result));
  for (const Tuple& t : value) {
    TXMOD_ASSIGN_OR_RETURN(bool inserted, ctx->InsertTuple(stmt.target, t));
    if (inserted) ++result->tuples_inserted;
  }
  return Status::OK();
}

Status ExecuteDelete(const Statement& stmt, TxnContext* ctx,
                     TxnResult* result) {
  TXMOD_ASSIGN_OR_RETURN(Relation value,
                         EvalStatementExpr(stmt, ctx, result));
  for (const Tuple& t : value) {
    TXMOD_ASSIGN_OR_RETURN(bool deleted, ctx->DeleteTuple(stmt.target, t));
    if (deleted) ++result->tuples_deleted;
  }
  return Status::OK();
}

Status ExecuteUpdate(const Statement& stmt, TxnContext* ctx,
                     TxnResult* result) {
  // update(R, θ, f) has delete-plus-insert semantics (Definition 4.5 maps
  // an update to {INS(R), DEL(R)}); evaluate the selection against the
  // current state first, then apply both halves.
  TXMOD_ASSIGN_OR_RETURN(const Relation* rel,
                         ctx->Resolve(algebra::RelRefKind::kBase,
                                      stmt.target));
  std::vector<Tuple> selected;
  for (const Tuple& t : *rel) {
    TXMOD_ASSIGN_OR_RETURN(bool match,
                           stmt.predicate.EvalPredicate(&t, nullptr));
    if (match) selected.push_back(t);
  }
  result->stats.tuples_scanned += rel->size();
  for (const Tuple& old_tuple : selected) {
    Tuple new_tuple = old_tuple;
    for (const algebra::UpdateSet& u : stmt.sets) {
      TXMOD_ASSIGN_OR_RETURN(Value v, u.expr.EvalValue(&old_tuple, nullptr));
      if (u.attr < 0 || u.attr >= static_cast<int>(new_tuple.arity())) {
        return Status::InvalidArgument(
            StrCat("update of ", stmt.target, ": attribute #", u.attr,
                   " out of range"));
      }
      new_tuple.at(u.attr) = std::move(v);
    }
    TXMOD_ASSIGN_OR_RETURN(bool deleted,
                           ctx->DeleteTuple(stmt.target, old_tuple));
    if (deleted) ++result->tuples_deleted;
    TXMOD_ASSIGN_OR_RETURN(bool inserted,
                           ctx->InsertTuple(stmt.target, new_tuple));
    if (inserted) ++result->tuples_inserted;
  }
  return Status::OK();
}

Status ExecuteAlarm(const Statement& stmt, TxnContext* ctx,
                    TxnResult* result) {
  TXMOD_ASSIGN_OR_RETURN(Relation value,
                         EvalStatementExpr(stmt, ctx, result));
  if (value.empty()) return Status::OK();  // Definition 5.1: no effect
  std::string reason = stmt.message.empty()
                           ? StrCat("alarm raised: ", stmt.expr->ToString(),
                                    " is non-empty (", value.size(),
                                    " tuple(s))")
                           : stmt.message;
  return Status::Aborted(std::move(reason));
}

// ---------------------------------------------------------------------------
// Parallel integrity-check runs.
//
// Compiled integrity programs are alarm-only (TransC emits one alarm per
// rule; the transaction modifier appends triggered programs back to
// back), so a modified transaction ends in a run of consecutive alarm
// statements — independent, read-only checks over the same intermediate
// state. When the context carries a check pool, such runs evaluate
// concurrently, one task per alarm, against a locked proxy context; the
// results fold back serially in statement order so the abort decision,
// abort message, statement counters, and optimistic read set are
// byte-identical to serial execution.
// ---------------------------------------------------------------------------

/// EvalContext proxy for one concurrent check task. All resolution is
/// funneled through one shared mutex: TxnContext's const Resolve fills
/// mutable caches (old() views, empty differentials) and is therefore
/// only thread-compatible. Relation reads themselves happen lock-free on
/// the evaluator side — the lock covers resolution only, so concurrency
/// is lost solely on the (cached, cheap) name→relation step. Base reads
/// are recorded per task and merged later in statement order, keeping the
/// optimistic footprint identical to serial execution.
class LockedCheckContext : public algebra::EvalContext {
 public:
  LockedCheckContext(const TxnContext* parent, std::mutex* mu,
                     std::set<std::string>* reads)
      : parent_(parent), mu_(mu), reads_(reads) {}

  Result<const Relation*> Resolve(algebra::RelRefKind kind,
                                  const std::string& name) const override {
    std::lock_guard<std::mutex> lock(*mu_);
    if (kind == algebra::RelRefKind::kBase ||
        kind == algebra::RelRefKind::kOld) {
      reads_->insert(name);
    }
    return parent_->ResolveUnrecorded(kind, name);
  }

  Result<const Relation*> ResolveSchemaOnly(
      algebra::RelRefKind kind, const std::string& name) const override {
    std::lock_guard<std::mutex> lock(*mu_);
    return parent_->ResolveSchemaOnly(kind, name);
  }

 private:
  const TxnContext* parent_;
  std::mutex* mu_;
  std::set<std::string>* reads_;
};

/// One check task's outcome: the alarm's verdict plus the evaluation
/// work and reads it performed, folded into the transaction serially.
struct CheckOutcome {
  Status status;
  algebra::EvalStats stats;
  std::set<std::string> reads;
};

/// Evaluates one alarm statement against `eval_ctx` (same plan-cache
/// discipline as EvalStatementExpr; same abort message as ExecuteAlarm).
/// PlanCache is safe here: the pinned side is read-only after rule
/// definition and the shaped side serializes internally.
Status EvalAlarmTask(const Statement& stmt, algebra::PlanCache* cache,
                     const algebra::EvalContext& eval_ctx,
                     algebra::EvalStats* stats) {
  Result<Relation> value = [&]() -> Result<Relation> {
    if (cache != nullptr) {
      if (const algebra::PhysicalPlan* plan = cache->Lookup(stmt.expr.get())) {
        return plan->Execute(eval_ctx, stats);
      }
      TXMOD_ASSIGN_OR_RETURN(algebra::BoundPlan bound,
                             cache->GetOrCompileShaped(*stmt.expr, stats));
      return bound.plan->Execute(eval_ctx, stats, &bound.params);
    }
    return EvaluateRelExpr(*stmt.expr, eval_ctx, stats);
  }();
  if (!value.ok()) return value.status();
  if (value->empty()) return Status::OK();  // Definition 5.1: no effect
  std::string reason = stmt.message.empty()
                           ? StrCat("alarm raised: ", stmt.expr->ToString(),
                                    " is non-empty (", value->size(),
                                    " tuple(s))")
                           : stmt.message;
  return Status::Aborted(std::move(reason));
}

/// Runs alarm statements [begin, end) of `stmts` concurrently on the
/// context's check pool, one task per alarm on its own work queue (idle
/// workers steal across queues). Outcomes are written into disjoint
/// slots; the caller folds them in statement order.
void RunChecksParallel(const std::vector<Statement>& stmts,
                       std::size_t begin, std::size_t end, TxnContext* ctx,
                       std::vector<CheckOutcome>* outcomes) {
  std::mutex resolve_mu;
  // Pre-resolve nothing: first access materializes old() views under the
  // shared lock, later accesses hit the context's caches.
  parallel::PhasePlan plan;
  plan.queues.resize(end - begin);
  for (std::size_t k = 0; k < end - begin; ++k) {
    const Statement* stmt = &stmts[begin + k];
    CheckOutcome* out = &(*outcomes)[k];
    algebra::PlanCache* cache = ctx->plan_cache();
    const TxnContext* parent = ctx;
    plan.queues[k].push_back([stmt, out, cache, parent, &resolve_mu] {
      LockedCheckContext eval_ctx(parent, &resolve_mu, &out->reads);
      out->status = EvalAlarmTask(*stmt, cache, eval_ctx, &out->stats);
    });
  }
  ctx->check_pool()->Run(std::move(plan));
}

}  // namespace

Status ExecuteStatement(const Statement& stmt, TxnContext* ctx,
                        TxnResult* result) {
  switch (stmt.kind) {
    case StatementKind::kAssign:
      return ExecuteAssign(stmt, ctx, result);
    case StatementKind::kInsert:
      return ExecuteInsert(stmt, ctx, result);
    case StatementKind::kDelete:
      return ExecuteDelete(stmt, ctx, result);
    case StatementKind::kUpdate:
      return ExecuteUpdate(stmt, ctx, result);
    case StatementKind::kAlarm:
      return ExecuteAlarm(stmt, ctx, result);
    case StatementKind::kAbort:
      return Status::Aborted(stmt.message.empty() ? "abort statement"
                                                  : stmt.message);
  }
  return Status::Internal("unknown statement kind");
}

Result<TxnResult> ExecuteProgram(const algebra::Transaction& txn,
                                 TxnContext* ctx) {
  TxnResult result;
  const std::vector<Statement>& stmts = txn.program.statements;
  for (std::size_t i = 0; i < stmts.size();) {
    // A run of >= 2 consecutive alarms with a check pool available:
    // evaluate concurrently, fold serially.
    std::size_t run_end = i;
    if (ctx->check_pool() != nullptr) {
      while (run_end < stmts.size() &&
             stmts[run_end].kind == StatementKind::kAlarm) {
        ++run_end;
      }
    }
    if (run_end - i >= 2) {
      std::vector<CheckOutcome> outcomes(run_end - i);
      RunChecksParallel(stmts, i, run_end, ctx, &outcomes);
      Status run_status = Status::OK();
      std::size_t k = 0;
      for (; k < outcomes.size(); ++k) {
        // Merge in statement order, stopping at the first failing check:
        // its own work counts (the serial engine evaluated it too), later
        // tasks' work and reads are discarded — serial execution never
        // reached them.
        result.stats.Add(outcomes[k].stats);
        for (const std::string& r : outcomes[k].reads) {
          ctx->RecordBaseRead(r);
        }
        if (!outcomes[k].status.ok()) {
          run_status = outcomes[k].status;
          break;
        }
        ++result.statements_executed;
      }
      if (!run_status.ok()) {
        ctx->Rollback();
        if (run_status.code() == StatusCode::kAborted) {
          result.committed = false;
          result.abort_reason = run_status.message();
          result.aborting_statement = static_cast<int>(i + k);
          return result;
        }
        return run_status;
      }
      i = run_end;
      continue;
    }
    const Status st = ExecuteStatement(stmts[i], ctx, &result);
    if (st.ok()) {
      ++result.statements_executed;
      ++i;
      continue;
    }
    ctx->Rollback();
    if (st.code() == StatusCode::kAborted) {
      result.committed = false;
      result.abort_reason = st.message();
      result.aborting_statement = static_cast<int>(i);
      return result;
    }
    return st;  // malformed program: error out (state already restored)
  }
  result.committed = true;  // ran to completion; caller commits
  return result;
}

Result<TxnResult> ExecuteTransaction(const algebra::Transaction& txn,
                                     Database* db,
                                     algebra::PlanCache* plan_cache) {
  // The single-session fast path: execute and commit in one step. A
  // TxnManager session runs the same ExecuteProgram against a snapshot
  // and defers the commit decision to first-committer-wins validation.
  TxnContext ctx(db);
  ctx.set_plan_cache(plan_cache);
  TXMOD_ASSIGN_OR_RETURN(TxnResult result, ExecuteProgram(txn, &ctx));
  if (result.committed) {
    ctx.Commit();
    result.commit_version = db->logical_time();
    result.installed = true;
  }
  return result;
}

}  // namespace txmod::txn
