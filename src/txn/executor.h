#ifndef TXMOD_TXN_EXECUTOR_H_
#define TXMOD_TXN_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "src/algebra/statement.h"
#include "src/common/result.h"
#include "src/txn/txn_context.h"

namespace txmod::txn {

/// Outcome of a committed or cleanly aborted transaction execution.
struct TxnResult {
  bool committed = false;
  std::string abort_reason;          // alarm/abort message when not committed
  int aborting_statement = -1;       // index of the statement that aborted
  uint64_t statements_executed = 0;  // statements fully executed
  algebra::EvalStats stats;          // evaluation work counters

  /// Count of base-relation tuple changes applied before commit/abort.
  uint64_t tuples_inserted = 0;
  uint64_t tuples_deleted = 0;

  /// Concurrent (TxnManager) executions only. `conflict` marks an abort
  /// caused by first-committer-wins validation — another transaction
  /// committed overlapping writes after this one's snapshot — rather than
  /// by an integrity alarm; such aborts are retryable. On commit,
  /// `commit_version` is the logical time the transaction installed
  /// (equal to the snapshot time for read-only commits, which install
  /// nothing). `attempts` counts executions TxnManager::Run needed.
  bool conflict = false;
  uint64_t commit_version = 0;
  uint32_t attempts = 1;
  /// True when the commit installed a new version (write-ful); false for
  /// read-only / fully-netted-out commits, which consume no version.
  bool installed = false;
};

/// Executes one extended relational algebra statement against `ctx`.
///
/// Returns:
///  * OK on success;
///  * kAborted when an alarm fired (Definition 5.1: non-empty argument) or
///    an abort statement ran — the caller must roll back;
///  * any other error for malformed statements (also roll back).
Status ExecuteStatement(const algebra::Statement& stmt, TxnContext* ctx,
                        TxnResult* result);

/// Runs every statement of `txn` through `ctx` WITHOUT committing: on
/// clean completion the context still holds its differentials (and
/// read/footprint records) so the caller decides the transaction's fate —
/// ExecuteTransaction commits immediately; a TxnManager session carries
/// the differentials to commit-time validation instead. On an alarm or
/// abort statement the context is rolled back (every recorded change
/// undone) and the result reports the reason with committed == false; on
/// malformed statements the context is rolled back and the error Status
/// surfaces. `result.committed == true` therefore means "ran to
/// completion, ready to commit", not "installed".
Result<TxnResult> ExecuteProgram(const algebra::Transaction& txn,
                                 TxnContext* ctx);

/// Executes a bracketed transaction against `db` with full atomicity: on
/// commit the post-transaction state D^{t+1} is installed and logical time
/// advances; on abort (alarm/abort statement) the database is restored to
/// D^t and the result reports the reason. Malformed programs (evaluation
/// errors, schema violations) also restore D^t but surface as error
/// Statuses rather than TxnResults.
///
/// `plan_cache` (optional) is the per-subsystem plan cache: expressions
/// pre-compiled at rule-definition time (its pinned side) skip
/// per-execution compilation outright, and every other statement
/// expression is looked up by structural fingerprint on its shaped side,
/// so repeated ad-hoc shapes reuse one compiled plan under fresh
/// parameter bindings (cache traffic lands in TxnResult::stats). Without
/// a cache every expression is compiled one-shot.
Result<TxnResult> ExecuteTransaction(const algebra::Transaction& txn,
                                     Database* db,
                                     algebra::PlanCache* plan_cache = nullptr);

}  // namespace txmod::txn

#endif  // TXMOD_TXN_EXECUTOR_H_
