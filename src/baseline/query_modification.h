#ifndef TXMOD_BASELINE_QUERY_MODIFICATION_H_
#define TXMOD_BASELINE_QUERY_MODIFICATION_H_

#include <string>
#include <vector>

#include "src/core/subsystem.h"

namespace txmod::baseline {

/// Stonebraker-style query modification ([19], INGRES): integrity is
/// enforced by appending the constraint's qualification to each *update
/// statement*, so that violating tuples are silently filtered out.
///
/// This is the system-oriented comparator the paper's introduction
/// criticizes: it has no transaction awareness and different semantics —
/// a violating insert simply inserts nothing rather than aborting the
/// transaction, and only single-tuple-variable (domain-style) constraints
/// can be attached to a statement at all. Referential, aggregate, and
/// transition constraints are out of reach; UnsupportedRules() lists the
/// rules this baseline silently cannot enforce.
class QueryModifier {
 public:
  explicit QueryModifier(core::IntegritySubsystem* subsystem);

  /// Rewrites every insert(R, E) into insert(R, select[q](E)) where q is
  /// the conjunction of the domain-constraint qualifications on R.
  /// Deletes and updates pass through unmodified (deletes cannot violate
  /// domain constraints; update support mirrors inserts).
  Result<algebra::Transaction> Modify(const algebra::Transaction& txn) const;

  /// Modify + execute (commits unless an explicit abort statement ran).
  Result<txn::TxnResult> Execute(const algebra::Transaction& txn);

  /// Names of catalog rules query modification cannot express.
  const std::vector<std::string>& UnsupportedRules() const {
    return unsupported_;
  }

 private:
  core::IntegritySubsystem* subsystem_;
  /// Per-relation qualification predicates compiled from domain rules.
  std::vector<std::pair<std::string, algebra::ScalarExpr>> qualifications_;
  std::vector<std::string> unsupported_;
};

}  // namespace txmod::baseline

#endif  // TXMOD_BASELINE_QUERY_MODIFICATION_H_
