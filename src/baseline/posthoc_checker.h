#ifndef TXMOD_BASELINE_POSTHOC_CHECKER_H_
#define TXMOD_BASELINE_POSTHOC_CHECKER_H_

#include <string>
#include <vector>

#include "src/core/subsystem.h"

namespace txmod::baseline {

/// The classical alternative the paper's differential optimization is
/// motivated against: execute the transaction without modification, then
/// evaluate every (relevant) constraint in full against the tentative
/// post-state, and roll back on violation.
///
/// For aborting rules this baseline makes exactly the same accept/reject
/// decisions as transaction modification (property-tested); the cost
/// differs — full-relation scans instead of differential checks. Rule
/// selection can optionally use the trigger sets (`use_triggers`), which
/// is the half-way design point between naive and differential checking.
struct PostHocOptions {
  /// Check only rules whose trigger set intersects the transaction's
  /// updates; with false, every rule is checked on every transaction.
  bool use_triggers = true;
};

class PostHocChecker {
 public:
  /// `subsystem` provides the rule catalog and the database; only
  /// aborting rules are supported (compensating actions need the
  /// modification machinery — that asymmetry is the point of the paper).
  explicit PostHocChecker(core::IntegritySubsystem* subsystem,
                          PostHocOptions options = {});

  /// Executes `txn` unmodified, evaluates the constraints on the
  /// tentative post-state, commits or rolls back.
  Result<txn::TxnResult> Execute(const algebra::Transaction& txn);

 private:
  core::IntegritySubsystem* subsystem_;
  PostHocOptions options_;
};

}  // namespace txmod::baseline

#endif  // TXMOD_BASELINE_POSTHOC_CHECKER_H_
