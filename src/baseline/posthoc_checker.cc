#include "src/baseline/posthoc_checker.h"

#include "src/algebra/evaluator.h"
#include "src/common/str_util.h"
#include "src/core/translate.h"
#include "src/txn/executor.h"

namespace txmod::baseline {

PostHocChecker::PostHocChecker(core::IntegritySubsystem* subsystem,
                               PostHocOptions options)
    : subsystem_(subsystem), options_(options) {}

Result<txn::TxnResult> PostHocChecker::Execute(
    const algebra::Transaction& txn) {
  Database* db = subsystem_->database();
  txn::TxnContext ctx(db);
  txn::TxnResult result;

  // Phase 1: run the transaction unmodified.
  for (std::size_t i = 0; i < txn.program.statements.size(); ++i) {
    const Status st =
        txn::ExecuteStatement(txn.program.statements[i], &ctx, &result);
    if (st.ok()) {
      ++result.statements_executed;
      continue;
    }
    ctx.Rollback();
    if (st.code() == StatusCode::kAborted) {
      result.committed = false;
      result.abort_reason = st.message();
      result.aborting_statement = static_cast<int>(i);
      return result;
    }
    return st;
  }

  // Phase 2: evaluate the (relevant) constraints in full against the
  // tentative post-state.
  const rules::TriggerSet txn_triggers = rules::GetTrigP(txn.program);
  for (const rules::IntegrityRule& rule : subsystem_->rules()) {
    if (rule.action_kind != rules::ActionKind::kAbort) {
      ctx.Rollback();
      return Status::FailedPrecondition(
          StrCat("post-hoc checking cannot run compensating rule ",
                 rule.name,
                 "; compensation requires transaction modification"));
    }
    if (options_.use_triggers && !rule.triggers.Intersects(txn_triggers)) {
      continue;
    }
    // Full-relation check: translate without differential optimization.
    TXMOD_ASSIGN_OR_RETURN(
        algebra::RelExprPtr query,
        core::ViolationQuery(rule.condition, db->schema(),
                             subsystem_->options().translate));
    auto violations = algebra::EvaluateRelExpr(*query, ctx, &result.stats);
    if (!violations.ok()) {
      ctx.Rollback();
      return violations.status();
    }
    if (!violations->empty()) {
      ctx.Rollback();
      result.committed = false;
      result.abort_reason =
          StrCat("integrity violation: rule ", rule.name);
      return result;
    }
  }

  ctx.Commit();
  result.committed = true;
  return result;
}

}  // namespace txmod::baseline
