#include "src/baseline/query_modification.h"

#include <set>

#include "src/core/formula_util.h"
#include "src/txn/executor.h"

namespace txmod::baseline {

using algebra::ScalarExpr;
using algebra::ScalarOp;
using calculus::CompareOp;
using calculus::Formula;
using calculus::Term;

namespace {

ScalarOp ToScalarOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return ScalarOp::kEq;
    case CompareOp::kNe:
      return ScalarOp::kNe;
    case CompareOp::kLt:
      return ScalarOp::kLt;
    case CompareOp::kLe:
      return ScalarOp::kLe;
    case CompareOp::kGt:
      return ScalarOp::kGt;
    case CompareOp::kGe:
      return ScalarOp::kGe;
  }
  return ScalarOp::kEq;
}

ScalarOp ToScalarOp(calculus::ArithOp op) {
  switch (op) {
    case calculus::ArithOp::kAdd:
      return ScalarOp::kAdd;
    case calculus::ArithOp::kSub:
      return ScalarOp::kSub;
    case calculus::ArithOp::kMul:
      return ScalarOp::kMul;
    case calculus::ArithOp::kDiv:
      return ScalarOp::kDiv;
  }
  return ScalarOp::kAdd;
}

/// Translates a quantifier-free single-variable formula over `var` into a
/// tuple predicate. Aggregates and memberships are out of reach for query
/// modification (no subqueries in a statement qualification).
Result<ScalarExpr> QualificationOf(const Formula& f, const std::string& var) {
  switch (f.kind) {
    case Formula::Kind::kCompare: {
      std::vector<ScalarExpr> sides;
      for (const Term& t : f.terms) {
        switch (t.kind) {
          case Term::Kind::kConst:
            sides.push_back(ScalarExpr::Const(t.constant));
            break;
          case Term::Kind::kAttrSel:
            if (t.var != var) {
              return Status::Unimplemented("foreign variable");
            }
            sides.push_back(
                ScalarExpr::Attr(0, t.attr_index, t.attr_name));
            break;
          case Term::Kind::kArith: {
            // Recurse through a synthetic comparison to reuse this path.
            Formula sub = Formula::Compare(CompareOp::kEq, t.children[0],
                                           t.children[1]);
            TXMOD_ASSIGN_OR_RETURN(ScalarExpr pair,
                                   QualificationOf(sub, var));
            sides.push_back(ScalarExpr::Binary(ToScalarOp(t.arith_op),
                                               pair.children()[0],
                                               pair.children()[1]));
            break;
          }
          case Term::Kind::kAggregate:
            return Status::Unimplemented(
                "aggregates cannot be attached to a statement");
        }
      }
      return ScalarExpr::Binary(ToScalarOp(f.cmp), std::move(sides[0]),
                                std::move(sides[1]));
    }
    case Formula::Kind::kNot: {
      TXMOD_ASSIGN_OR_RETURN(ScalarExpr inner,
                             QualificationOf(f.children[0], var));
      return ScalarExpr::Not(std::move(inner));
    }
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      TXMOD_ASSIGN_OR_RETURN(ScalarExpr a,
                             QualificationOf(f.children[0], var));
      TXMOD_ASSIGN_OR_RETURN(ScalarExpr b,
                             QualificationOf(f.children[1], var));
      return ScalarExpr::Binary(
          f.kind == Formula::Kind::kAnd ? ScalarOp::kAnd : ScalarOp::kOr,
          std::move(a), std::move(b));
    }
    default:
      return Status::Unimplemented("not a statement-level qualification");
  }
}

}  // namespace

QueryModifier::QueryModifier(core::IntegritySubsystem* subsystem)
    : subsystem_(subsystem) {
  // Compile each domain-style rule ∀x(x∈R ∧ C(x) ⇒ M(x)) into the
  // per-relation qualification (¬C ∨ M); everything else is unsupported.
  for (const rules::IntegrityRule& rule : subsystem->rules()) {
    const Formula& f = rule.condition.formula;
    bool compiled = false;
    if (rule.action_kind == rules::ActionKind::kAbort &&
        f.kind == Formula::Kind::kForall &&
        f.children[0].kind == Formula::Kind::kImplies) {
      const std::string& var = f.var;
      std::vector<Formula> ante;
      core::FlattenAnd(f.children[0].children[0], &ante);
      const Formula& consequent = f.children[0].children[1];
      // Antecedent: the range membership plus optional scalar conjuncts.
      std::string relation;
      std::vector<ScalarExpr> pre;
      bool ok = true;
      for (const Formula& c : ante) {
        if (c.kind == Formula::Kind::kMembership && c.var == var &&
            c.rel.kind == calculus::CalcRelKind::kBase && relation.empty()) {
          relation = c.rel.name;
          continue;
        }
        auto q = QualificationOf(c, var);
        if (!q.ok()) {
          ok = false;
          break;
        }
        pre.push_back(*std::move(q));
      }
      if (ok && !relation.empty()) {
        auto m = QualificationOf(consequent, var);
        if (m.ok()) {
          // keep tuple iff (C ⇒ M) = ¬C ∨ M.
          ScalarExpr qual = *std::move(m);
          if (!pre.empty()) {
            qual = ScalarExpr::Binary(ScalarOp::kOr,
                                      ScalarExpr::Not(ScalarExpr::And(pre)),
                                      std::move(qual));
          }
          qualifications_.emplace_back(relation, std::move(qual));
          compiled = true;
        }
      }
    }
    if (!compiled) unsupported_.push_back(rule.name);
  }
}

Result<algebra::Transaction> QueryModifier::Modify(
    const algebra::Transaction& txn) const {
  algebra::Transaction out = txn;
  for (algebra::Statement& stmt : out.program.statements) {
    if (stmt.kind != algebra::StatementKind::kInsert) continue;
    std::vector<ScalarExpr> quals;
    for (const auto& [relation, qual] : qualifications_) {
      if (relation == stmt.target) quals.push_back(qual);
    }
    if (quals.empty()) continue;
    stmt.expr = algebra::RelExpr::Select(ScalarExpr::And(std::move(quals)),
                                         stmt.expr);
  }
  return out;
}

Result<txn::TxnResult> QueryModifier::Execute(
    const algebra::Transaction& txn) {
  TXMOD_ASSIGN_OR_RETURN(algebra::Transaction modified, Modify(txn));
  return txn::ExecuteTransaction(modified, subsystem_->database());
}

}  // namespace txmod::baseline
