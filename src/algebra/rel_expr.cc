#include "src/algebra/rel_expr.h"

#include "src/common/str_util.h"

namespace txmod::algebra {

const char* RelRefKindToString(RelRefKind kind) {
  switch (kind) {
    case RelRefKind::kBase:
      return "base";
    case RelRefKind::kTemp:
      return "temp";
    case RelRefKind::kOld:
      return "old";
    case RelRefKind::kDeltaPlus:
      return "dplus";
    case RelRefKind::kDeltaMinus:
      return "dminus";
  }
  return "?";
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kCnt:
      return "cnt";
  }
  return "?";
}

// make_shared needs an accessible constructor; each builder allocates via a
// local struct that befriends the private default constructor by derivation.
RelExprPtr RelExpr::Ref(RelRefKind kind, std::string name) {
  struct Node : RelExpr {};
  auto n = std::make_shared<Node>();
  n->kind_ = RelExprKind::kRef;
  n->ref_kind_ = kind;
  n->rel_name_ = std::move(name);
  return n;
}

RelExprPtr RelExpr::Literal(std::vector<Tuple> tuples, int arity) {
  struct Node : RelExpr {};
  auto n = std::make_shared<Node>();
  n->kind_ = RelExprKind::kLiteral;
  n->literal_tuples_ = std::move(tuples);
  n->literal_arity_ = arity;
  return n;
}

RelExprPtr RelExpr::ParamLiteral(int tuple_count, int arity, int param_base) {
  std::vector<Tuple> placeholders;
  placeholders.reserve(static_cast<std::size_t>(tuple_count));
  for (int i = 0; i < tuple_count; ++i) {
    placeholders.push_back(
        Tuple(std::vector<Value>(static_cast<std::size_t>(arity))));
  }
  // A set would collapse the identical placeholder tuples; keep the count
  // explicit instead of relying on the vector (Relation dedup happens at
  // materialization, from the *bound* values).
  struct Node : RelExpr {};
  auto n = std::make_shared<Node>();
  n->kind_ = RelExprKind::kLiteral;
  n->literal_tuples_ = std::move(placeholders);
  n->literal_arity_ = arity;
  n->literal_param_base_ = param_base;
  return n;
}

RelExprPtr RelExpr::Select(ScalarExpr predicate, RelExprPtr input) {
  struct Node : RelExpr {};
  auto n = std::make_shared<Node>();
  n->kind_ = RelExprKind::kSelect;
  n->predicate_ = std::move(predicate);
  n->inputs_ = {std::move(input)};
  return n;
}

RelExprPtr RelExpr::Project(std::vector<ProjectionItem> items,
                            RelExprPtr input) {
  struct Node : RelExpr {};
  auto n = std::make_shared<Node>();
  n->kind_ = RelExprKind::kProject;
  n->projections_ = std::move(items);
  n->inputs_ = {std::move(input)};
  return n;
}

RelExprPtr RelExpr::ProjectAttrs(const std::vector<int>& attrs,
                                 RelExprPtr input) {
  std::vector<ProjectionItem> items;
  items.reserve(attrs.size());
  for (int a : attrs) {
    items.push_back(ProjectionItem{ScalarExpr::Attr(0, a), ""});
  }
  return Project(std::move(items), std::move(input));
}

#define TXMOD_DEFINE_BINARY(Name, Kind)                                  \
  RelExprPtr RelExpr::Name(RelExprPtr left, RelExprPtr right) {          \
    struct Node : RelExpr {};                                            \
    auto n = std::make_shared<Node>();                                   \
    n->kind_ = RelExprKind::Kind;                                        \
    n->inputs_ = {std::move(left), std::move(right)};                    \
    return n;                                                            \
  }

TXMOD_DEFINE_BINARY(Product, kProduct)
TXMOD_DEFINE_BINARY(Union, kUnion)
TXMOD_DEFINE_BINARY(Difference, kDifference)
TXMOD_DEFINE_BINARY(Intersect, kIntersect)
#undef TXMOD_DEFINE_BINARY

#define TXMOD_DEFINE_PRED_BINARY(Name, Kind)                             \
  RelExprPtr RelExpr::Name(ScalarExpr predicate, RelExprPtr left,        \
                           RelExprPtr right) {                           \
    struct Node : RelExpr {};                                            \
    auto n = std::make_shared<Node>();                                   \
    n->kind_ = RelExprKind::Kind;                                        \
    n->predicate_ = std::move(predicate);                                \
    n->inputs_ = {std::move(left), std::move(right)};                    \
    return n;                                                            \
  }

TXMOD_DEFINE_PRED_BINARY(Join, kJoin)
TXMOD_DEFINE_PRED_BINARY(SemiJoin, kSemiJoin)
TXMOD_DEFINE_PRED_BINARY(AntiJoin, kAntiJoin)
#undef TXMOD_DEFINE_PRED_BINARY

RelExprPtr RelExpr::Aggregate(AggFunc func, int attr, RelExprPtr input) {
  struct Node : RelExpr {};
  auto n = std::make_shared<Node>();
  n->kind_ = RelExprKind::kAggregate;
  n->agg_func_ = func;
  n->agg_attr_ = attr;
  n->inputs_ = {std::move(input)};
  return n;
}

RelExprPtr RelExpr::GroupAggregate(std::vector<int> group_by, AggFunc func,
                                   int attr, RelExprPtr input) {
  struct Node : RelExpr {};
  auto n = std::make_shared<Node>();
  n->kind_ = RelExprKind::kAggregate;
  n->agg_func_ = func;
  n->agg_attr_ = attr;
  n->group_by_ = std::move(group_by);
  n->inputs_ = {std::move(input)};
  return n;
}

void RelExpr::CollectRefs(
    std::vector<std::pair<RelRefKind, std::string>>* refs) const {
  if (kind_ == RelExprKind::kRef) {
    refs->emplace_back(ref_kind_, rel_name_);
  }
  for (const RelExprPtr& in : inputs_) in->CollectRefs(refs);
}

bool RelExpr::Equals(const RelExpr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case RelExprKind::kRef:
      if (ref_kind_ != other.ref_kind_ || rel_name_ != other.rel_name_) {
        return false;
      }
      break;
    case RelExprKind::kLiteral:
      if (literal_arity_ != other.literal_arity_ ||
          literal_param_base_ != other.literal_param_base_ ||
          literal_tuples_ != other.literal_tuples_) {
        return false;
      }
      break;
    case RelExprKind::kSelect:
    case RelExprKind::kJoin:
    case RelExprKind::kSemiJoin:
    case RelExprKind::kAntiJoin:
      if (!predicate_.Equals(other.predicate_)) return false;
      break;
    case RelExprKind::kProject:
      if (projections_.size() != other.projections_.size()) return false;
      for (std::size_t i = 0; i < projections_.size(); ++i) {
        if (!projections_[i].expr.Equals(other.projections_[i].expr)) {
          return false;
        }
      }
      break;
    case RelExprKind::kAggregate:
      if (agg_func_ != other.agg_func_ || agg_attr_ != other.agg_attr_ ||
          group_by_ != other.group_by_) {
        return false;
      }
      break;
    default:
      break;
  }
  if (inputs_.size() != other.inputs_.size()) return false;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (!inputs_[i]->Equals(*other.inputs_[i])) return false;
  }
  return true;
}

std::string RelExpr::ToString() const {
  switch (kind_) {
    case RelExprKind::kRef:
      switch (ref_kind_) {
        case RelRefKind::kBase:
        case RelRefKind::kTemp:
          return rel_name_;
        case RelRefKind::kOld:
          return StrCat("old(", rel_name_, ")");
        case RelRefKind::kDeltaPlus:
          return StrCat("dplus(", rel_name_, ")");
        case RelRefKind::kDeltaMinus:
          return StrCat("dminus(", rel_name_, ")");
      }
      return rel_name_;
    case RelExprKind::kLiteral: {
      std::vector<std::string> parts;
      parts.reserve(literal_tuples_.size());
      if (literal_param_base_ >= 0) {
        int slot = literal_param_base_;
        for (const Tuple& t : literal_tuples_) {
          std::vector<std::string> slots;
          slots.reserve(t.arity());
          for (std::size_t i = 0; i < t.arity(); ++i) {
            slots.push_back(StrCat("?", slot++));
          }
          parts.push_back(StrCat("(", txmod::Join(slots, ", "), ")"));
        }
      } else {
        for (const Tuple& t : literal_tuples_) parts.push_back(t.ToString());
      }
      return StrCat("{", txmod::Join(parts, ", "), "}");
    }
    case RelExprKind::kSelect:
      return StrCat("select[", predicate_.ToString(), "](",
                    left()->ToString(), ")");
    case RelExprKind::kProject: {
      std::vector<std::string> parts;
      parts.reserve(projections_.size());
      for (const ProjectionItem& item : projections_) {
        if (item.name.empty()) {
          parts.push_back(item.expr.ToString());
        } else {
          parts.push_back(StrCat(item.expr.ToString(), " as ", item.name));
        }
      }
      return StrCat("project[", txmod::Join(parts, ", "), "](", left()->ToString(),
                    ")");
    }
    case RelExprKind::kProduct:
      return StrCat("product(", left()->ToString(), ", ",
                    right()->ToString(), ")");
    case RelExprKind::kJoin:
      return StrCat("join[", predicate_.ToString(/*qualify_sides=*/true),
                    "](", left()->ToString(), ", ", right()->ToString(),
                    ")");
    case RelExprKind::kSemiJoin:
      return StrCat("semijoin[",
                    predicate_.ToString(/*qualify_sides=*/true), "](",
                    left()->ToString(), ", ", right()->ToString(), ")");
    case RelExprKind::kAntiJoin:
      return StrCat("antijoin[",
                    predicate_.ToString(/*qualify_sides=*/true), "](",
                    left()->ToString(), ", ", right()->ToString(), ")");
    case RelExprKind::kUnion:
      return StrCat("union(", left()->ToString(), ", ", right()->ToString(),
                    ")");
    case RelExprKind::kDifference:
      return StrCat("diff(", left()->ToString(), ", ", right()->ToString(),
                    ")");
    case RelExprKind::kIntersect:
      return StrCat("intersect(", left()->ToString(), ", ",
                    right()->ToString(), ")");
    case RelExprKind::kAggregate: {
      std::string inner = left()->ToString();
      std::string head = AggFuncToString(agg_func_);
      std::string args;
      if (!group_by_.empty()) {
        std::vector<std::string> gs;
        for (int g : group_by_) gs.push_back(StrCat("#", g));
        args = StrCat("group ", txmod::Join(gs, " "), "; ");
      }
      if (agg_func_ == AggFunc::kCnt) {
        if (args.empty()) return StrCat("cnt(", inner, ")");
        return StrCat("cnt[", args, "](", inner, ")");
      }
      return StrCat(head, "[", args, "#", agg_attr_, "](", inner, ")");
    }
  }
  return "?";
}

void CollectEquiPairs(const ScalarExpr& pred,
                      std::vector<std::pair<int, int>>* pairs) {
  if (pred.op() == ScalarOp::kAnd) {
    CollectEquiPairs(pred.children()[0], pairs);
    CollectEquiPairs(pred.children()[1], pairs);
    return;
  }
  if (pred.op() != ScalarOp::kEq) return;
  const ScalarExpr& a = pred.children()[0];
  const ScalarExpr& b = pred.children()[1];
  if (a.op() != ScalarOp::kAttrRef || b.op() != ScalarOp::kAttrRef) return;
  if (a.side() == 0 && b.side() == 1) {
    pairs->emplace_back(a.attr_index(), b.attr_index());
  } else if (a.side() == 1 && b.side() == 0) {
    pairs->emplace_back(b.attr_index(), a.attr_index());
  }
}

bool IsAttrProjectionOfRef(const RelExpr& e, std::vector<int>* attrs) {
  if (e.kind() != RelExprKind::kProject ||
      e.left()->kind() != RelExprKind::kRef) {
    return false;
  }
  attrs->clear();
  attrs->reserve(e.projections().size());
  for (const ProjectionItem& item : e.projections()) {
    if (item.expr.op() != ScalarOp::kAttrRef || item.expr.side() != 0) {
      return false;
    }
    attrs->push_back(item.expr.attr_index());
  }
  return !attrs->empty();
}

}  // namespace txmod::algebra
