#ifndef TXMOD_ALGEBRA_PHYSICAL_PLAN_H_
#define TXMOD_ALGEBRA_PHYSICAL_PLAN_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/algebra/eval_context.h"
#include "src/algebra/fingerprint.h"
#include "src/algebra/rel_expr.h"
#include "src/common/result.h"
#include "src/relational/relation.h"

namespace txmod::algebra {

/// Physical operator implementations a logical RelExpr node compiles to.
/// The compilation step (PhysicalPlan::Compile) chooses these once, in one
/// place; both execution engines — the serial pull-based pipeline and the
/// fragment-local parallel executor — then run the *same* operators.
enum class PhysOpKind {
  kScan,            // relation reference, resolved through the EvalContext
  kLiteral,         // explicit tuple list
  kSelect,          // streaming filter
  kProject,         // streaming projection
  kProduct,         // cartesian product (materialized right side)
  kHashJoin,        // join-like on equality conjuncts: build right, probe
                    // left; a declared index on the build side skips the
                    // build entirely
  kIndexLookupJoin, // join/semijoin whose probe side is a base relation
                    // and whose build side is differential-bounded: the
                    // small side drives lookups into the base relation's
                    // declared index, so the base side is never scanned
  kNestedLoopJoin,  // join-like without equality conjuncts
  kUnion,           // streamed concatenation (dedup at materialization)
  kHashSetOp,       // difference/intersect by membership in the
                    // materialized right side
  kIndexSetOp,      // difference/intersect against a pure attribute
                    // projection of an indexed relation: one index probe
                    // per left tuple, the projection never materializes
  kAggregate,       // scalar or grouped aggregation (pipeline breaker)
};

const char* PhysOpKindToString(PhysOpKind op);

/// One node of a compiled physical plan. `logical` points into the
/// RelExpr tree the plan was compiled from (predicates, projection items,
/// aggregate specs, and reference names are read from it); the plan —
/// or, for borrowing compiles, the caller — keeps that tree alive.
struct PhysicalNode {
  PhysOpKind op = PhysOpKind::kScan;
  const RelExpr* logical = nullptr;

  /// Equality-conjunct key attributes of join-like nodes, probe (left)
  /// and build (right) side, in predicate order.
  std::vector<int> left_keys;
  std::vector<int> right_keys;

  /// kIndexSetOp: the membership side — a projection of this reference
  /// onto these attributes.
  RelRefKind setop_ref_kind = RelRefKind::kBase;
  std::string setop_rel;
  std::vector<int> setop_attrs;

  std::vector<std::unique_ptr<PhysicalNode>> children;

  const PhysicalNode& child(std::size_t i) const { return *children[i]; }
};

/// A compiled physical plan: the operator tree plus the logical expression
/// it was compiled from. Compile once (at rule-definition time for
/// integrity checks, per statement otherwise), execute many times.
class PhysicalPlan {
 public:
  /// Borrowing compile: `expr` must outlive the plan.
  static Result<PhysicalPlan> Compile(const RelExpr& expr);
  /// Owning compile: the plan keeps the expression tree alive.
  static Result<PhysicalPlan> Compile(RelExprPtr expr);
  /// Owning compile of a canonical (parameterized) tree expecting
  /// `num_params` binding slots; Execute then requires a binding of at
  /// least that size.
  static Result<PhysicalPlan> Compile(RelExprPtr expr, int num_params);

  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;

  const PhysicalNode& root() const { return *root_; }

  /// Parameter slots the plan's canonical expression expects; 0 for plans
  /// compiled from plain trees.
  int num_params() const { return num_params_; }

  /// Serial execution: runs the plan as a pull-based cursor pipeline
  /// against the relations supplied by `ctx`, materializing only at
  /// pipeline breakers and the final result. See EvaluateRelExpr
  /// (evaluator.h) for the operator and stats contracts. `params` binds
  /// the plan's parameter slots; required (and length-checked) when
  /// num_params() > 0.
  Result<Relation> Execute(const EvalContext& ctx,
                           EvalStats* stats = nullptr,
                           const std::vector<Value>* params = nullptr) const;

  /// Human-readable operator-tree dump, one node per line, children
  /// indented. Tests pin plan choices against this.
  std::string Explain() const;

  /// An index this plan wants declared on a base relation so its chosen
  /// operators hit their fast paths: hash-join build sides, index-set-op
  /// membership sides, and index-lookup-join probe sides.
  struct IndexRequest {
    std::string relation;
    std::vector<int> attrs;
  };

  /// Every index request of this plan, in plan order. The integrity
  /// subsystem declares these at rule-definition time — index choice
  /// falls out of plan compilation, not hand-coded shape matching.
  std::vector<IndexRequest> IndexRequests() const;

 private:
  PhysicalPlan() = default;

  RelExprPtr owned_;  // null for borrowing compiles
  std::unique_ptr<PhysicalNode> root_;
  int num_params_ = 0;
};

/// Executes the single operator `node` over already-materialized inputs —
/// the fragment-local kernel of the parallel engine. Children of `node`
/// are NOT executed; the caller supplies their (per-fragment) results as
/// `left` and `right` (`right` is null for unary operators). Runs the
/// same cursor implementations as serial execution; join-like nodes build
/// a transient hash table over `right` (fragments carry no declared
/// indexes, so index variants fall back to their hash equivalents).
/// `params` binds parameter slots of canonical (shape-cached) plans.
/// Thread-safe for concurrent calls on disjoint outputs: inputs and
/// params are only read.
Result<Relation> ExecuteNodeLocal(const PhysicalNode& node,
                                  const Relation& left,
                                  const Relation* right,
                                  EvalStats* stats = nullptr,
                                  const std::vector<Value>* params = nullptr);

/// Morsel-granular form of ExecuteNodeLocal for the parallel runtime's
/// work-stealing phases. Prepare does the once-per-fragment work — output
/// schema resolution, build-side scan counting, and the transient hash
/// table over `right` for equality joins — and the returned kernel then
/// executes fixed-size runs ("morsels") of input-tuple pointers through
/// the same cursor implementations serial execution runs, so operator
/// semantics cannot diverge between morsel and whole-fragment execution.
///
/// RunMorsel is const and thread-safe for concurrent calls: morsels only
/// read the prepared state, and each call owns its output buffer and
/// EvalStats (per-worker counters — no shared counter to contend on or
/// false-share). Union nodes treat left- and right-side tuples
/// identically, so callers feed both sides' tuples as morsels; every
/// other operator morselizes the left (probe) side only, with `right`
/// borrowed for the whole phase. `node`, `right`, and `params` must
/// outlive the kernel; the tuples behind the pointers must stay alive and
/// unmodified until the phase ends.
class NodeLocalKernel {
 public:
  /// `left_schema` is the schema of the fragments whose tuples the
  /// morsels slice; build-side charges land in `stats` here, exactly
  /// once per fragment, matching ExecuteNodeLocal's accounting.
  static Result<NodeLocalKernel> Prepare(
      const PhysicalNode& node,
      std::shared_ptr<const RelationSchema> left_schema,
      const Relation* right, EvalStats* stats,
      const std::vector<Value>* params = nullptr);

  NodeLocalKernel(NodeLocalKernel&&) noexcept;
  NodeLocalKernel& operator=(NodeLocalKernel&&) noexcept;
  ~NodeLocalKernel();

  /// Executes the operator over the `count` tuples at `tuples`, appending
  /// every output row to `out` (duplicates included; the caller's merge
  /// into a set-semantics Relation dedups, so morsel boundaries and merge
  /// order cannot change the final state).
  Status RunMorsel(const Tuple* const* tuples, std::size_t count,
                   std::vector<Tuple>* out, EvalStats* stats) const;

  const std::shared_ptr<const RelationSchema>& output_schema() const;

 private:
  struct State;
  explicit NodeLocalKernel(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

/// Materializes a literal node (validates per-tuple arity, infers column
/// types). Shared by both engines. A canonical literal
/// (literal_param_base() >= 0) materializes from `params` instead of its
/// placeholder tuples; `params` must then cover its slots.
Result<Relation> MaterializeLiteral(const RelExpr& e,
                                    EvalStats* stats = nullptr,
                                    const std::vector<Value>* params = nullptr);

/// Partial state of a scalar aggregate, mergeable across fragments: each
/// node accumulates locally, the coordinator merges and finalizes.
struct AggPartial {
  int64_t count = 0;
  int64_t non_null = 0;
  int64_t isum = 0;
  double dsum = 0.0;
  bool any_double = false;
  bool saw_non_numeric = false;  // SUM/AVG over a non-numeric value
  std::optional<Value> min;
  std::optional<Value> max;

  /// Folds one attribute value in (pass func so SUM/AVG can flag
  /// non-numeric inputs; CNT callers use ObserveCount instead).
  void Observe(const Value& v, AggFunc func);
  void ObserveCount() { count += 1; }
  void Merge(const AggPartial& other);
};

/// Accumulates `node`'s scalar aggregate over one materialized input
/// (grouped aggregates are serial-only and rejected here).
Result<AggPartial> AggregateLocal(const PhysicalNode& node,
                                  const Relation& input,
                                  EvalStats* stats = nullptr);

/// A compiled plan bound to one statement's constants: the result of a
/// shaped cache lookup. `owned` always shares ownership of the plan, so
/// the plan stays alive for this execution even if a concurrent lookup
/// evicts it from the cache (or the cache chose not to retain it at all,
/// capacity 0). `params` is this statement's binding vector for the
/// plan's parameter slots.
struct BoundPlan {
  const PhysicalPlan* plan = nullptr;
  std::vector<Value> params;
  bool cache_hit = false;
  std::shared_ptr<const PhysicalPlan> owned;  // keeps `plan` alive
};

/// Finalizes a (merged) partial into the aggregate's result value.
Result<Value> FinalizeAggregate(const AggPartial& acc, AggFunc func);

/// The per-subsystem plan cache, with two keying disciplines:
///
///  * an *identity* side for definition-time integrity-check plans:
///    keyed by expression pointer, pinned (never evicted), populated once
///    per rule-set recompile. Entries own their expression trees
///    (RelExprPtr), so keys can never dangle or be reused while cached.
///    ExecuteTransaction consults it first, so integrity checks never
///    recompile — or even fingerprint — per transaction.
///
///  * a *shaped* side for ad-hoc statements: keyed by the structural
///    fingerprint (fingerprint.h), which canonicalizes constants into
///    parameter slots, so two statements differing only in literals hit
///    the same compiled plan under different binding vectors. Bounded by
///    `shape_capacity` with least-recently-used eviction, so millions of
///    distinct ad-hoc shapes cannot grow it without bound.
///
/// Concurrency: the shaped side is safe for concurrent lookup — an
/// internal mutex serializes its compile-on-miss, LRU bookkeeping, and
/// counters, and every BoundPlan shares ownership of its plan so eviction
/// by one session can never dangle another session's in-flight execution.
/// The pinned side is lock-free by construction: it is populated at
/// rule-definition time (single-threaded, before sessions run) and then
/// only read; Lookup() takes no lock. Rule definition/drop — which
/// rebuilds and moves the whole cache — must therefore be quiesced
/// against concurrent execution, the same contract the transaction
/// manager documents.
class PlanCache {
 public:
  /// The pinned (identity-side) plan for `expr`, compiling and inserting
  /// on first use.
  Result<const PhysicalPlan*> GetOrCompile(const RelExprPtr& expr);

  /// The pinned plan for `expr`, or nullptr (never compiles).
  const PhysicalPlan* Lookup(const RelExpr* expr) const;

  /// The shaped-side plan for `expr`'s structural fingerprint, bound to
  /// `expr`'s constants: fingerprints, then reuses the cached canonical
  /// plan (hit) or parameterizes + compiles + inserts (miss), evicting the
  /// least recently used shape beyond capacity. `stats` (optional)
  /// receives the hit/miss/eviction counts of this lookup.
  Result<BoundPlan> GetOrCompileShaped(const RelExpr& expr,
                                       EvalStats* stats = nullptr);

  /// Every pinned plan (index-request collection).
  std::vector<const PhysicalPlan*> Plans() const;

  std::size_t size() const { return plans_.size(); }
  std::size_t shape_size() const;
  void Clear();

  /// Drops every shaped entry (rule-set or physical-design change).
  void InvalidateShapes();

  /// Caps the shaped side; lowering below the current size evicts
  /// immediately. Capacity 0 disables shaped caching (every lookup
  /// compiles fresh and nothing is retained) — the oracle tests' fresh-
  /// compile-every-statement mode.
  void set_shape_capacity(std::size_t capacity);
  std::size_t shape_capacity() const;

  /// Cumulative shaped-side traffic since construction/Clear.
  uint64_t shape_hits() const;
  uint64_t shape_misses() const;
  uint64_t shape_evictions() const;

  /// Records a statement that compiled fresh without consulting the
  /// shaped side (a caller-implemented bypass of a disabled cache). Keeps
  /// shape_misses() an honest "statements that had to compile" total
  /// across engines whether they bypass or route capacity-0 lookups
  /// through GetOrCompileShaped.
  void CountBypassedMiss(EvalStats* stats);

 private:
  struct ShapedEntry {
    // Shared so a BoundPlan can outlive eviction (concurrent sessions).
    std::shared_ptr<const PhysicalPlan> plan;
    std::list<std::string>::iterator lru_pos;
  };

  void EvictOverCapacityLocked(EvalStats* stats);

  std::unordered_map<const RelExpr*, std::unique_ptr<PhysicalPlan>> plans_;

  // Guards every shaped_/lru_/counter access. Behind a unique_ptr so the
  // cache stays movable (the subsystem move-assigns a freshly built cache
  // on every rule recompile, which is quiesced against execution).
  std::unique_ptr<std::mutex> shape_mu_ = std::make_unique<std::mutex>();
  std::unordered_map<std::string, ShapedEntry> shaped_;
  std::list<std::string> lru_;  // front = most recently used
  std::size_t shape_capacity_ = kDefaultShapeCapacity;
  uint64_t shape_hits_ = 0;
  uint64_t shape_misses_ = 0;
  uint64_t shape_evictions_ = 0;

 public:
  static constexpr std::size_t kDefaultShapeCapacity = 1024;
};

}  // namespace txmod::algebra

#endif  // TXMOD_ALGEBRA_PHYSICAL_PLAN_H_
