#include "src/algebra/scalar_expr.h"

#include "src/common/str_util.h"

namespace txmod::algebra {

const char* ScalarOpToString(ScalarOp op) {
  switch (op) {
    case ScalarOp::kConst:
      return "const";
    case ScalarOp::kAttrRef:
      return "attr";
    case ScalarOp::kParam:
      return "param";
    case ScalarOp::kAdd:
      return "+";
    case ScalarOp::kSub:
      return "-";
    case ScalarOp::kMul:
      return "*";
    case ScalarOp::kDiv:
      return "/";
    case ScalarOp::kEq:
      return "=";
    case ScalarOp::kNe:
      return "!=";
    case ScalarOp::kLt:
      return "<";
    case ScalarOp::kLe:
      return "<=";
    case ScalarOp::kGt:
      return ">";
    case ScalarOp::kGe:
      return ">=";
    case ScalarOp::kAnd:
      return "and";
    case ScalarOp::kOr:
      return "or";
    case ScalarOp::kNot:
      return "not";
  }
  return "?";
}

ScalarExpr ScalarExpr::Const(Value v) {
  ScalarExpr e;
  e.op_ = ScalarOp::kConst;
  e.constant_ = std::move(v);
  return e;
}

ScalarExpr ScalarExpr::Param(int slot) {
  ScalarExpr e;
  e.op_ = ScalarOp::kParam;
  e.param_slot_ = slot;
  return e;
}

ScalarExpr ScalarExpr::Attr(int side, int index, std::string name) {
  ScalarExpr e;
  e.op_ = ScalarOp::kAttrRef;
  e.side_ = side;
  e.attr_index_ = index;
  e.attr_name_ = std::move(name);
  return e;
}

ScalarExpr ScalarExpr::Binary(ScalarOp op, ScalarExpr lhs, ScalarExpr rhs) {
  ScalarExpr e;
  e.op_ = op;
  e.children_.push_back(std::move(lhs));
  e.children_.push_back(std::move(rhs));
  return e;
}

ScalarExpr ScalarExpr::Not(ScalarExpr operand) {
  ScalarExpr e;
  e.op_ = ScalarOp::kNot;
  e.children_.push_back(std::move(operand));
  return e;
}

ScalarExpr ScalarExpr::And(std::vector<ScalarExpr> terms) {
  if (terms.empty()) return True();
  ScalarExpr acc = std::move(terms[0]);
  for (std::size_t i = 1; i < terms.size(); ++i) {
    acc = Binary(ScalarOp::kAnd, std::move(acc), std::move(terms[i]));
  }
  return acc;
}

ScalarExpr ScalarExpr::True() { return Const(Value::Int(1)); }
ScalarExpr ScalarExpr::False() { return Const(Value::Int(0)); }

bool ScalarExpr::IsConstTrue() const {
  return op_ == ScalarOp::kConst && constant_.is_int() &&
         constant_.as_int() != 0;
}
bool ScalarExpr::IsConstFalse() const {
  return op_ == ScalarOp::kConst && constant_.is_int() &&
         constant_.as_int() == 0;
}

namespace {

Result<Value> EvalArith(ScalarOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::InvalidArgument(
        StrCat("arithmetic requires numeric operands, got ", a.ToString(),
               " ", ScalarOpToString(op), " ", b.ToString()));
  }
  // Integer arithmetic stays integral (except division by zero -> error).
  if (a.is_int() && b.is_int()) {
    const int64_t x = a.as_int();
    const int64_t y = b.as_int();
    switch (op) {
      case ScalarOp::kAdd:
        return Value::Int(x + y);
      case ScalarOp::kSub:
        return Value::Int(x - y);
      case ScalarOp::kMul:
        return Value::Int(x * y);
      case ScalarOp::kDiv:
        if (y == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(x / y);
      default:
        break;
    }
  }
  const double x = a.is_int() ? static_cast<double>(a.as_int()) : a.as_double();
  const double y = b.is_int() ? static_cast<double>(b.as_int()) : b.as_double();
  switch (op) {
    case ScalarOp::kAdd:
      return Value::Double(x + y);
    case ScalarOp::kSub:
      return Value::Double(x - y);
    case ScalarOp::kMul:
      return Value::Double(x * y);
    case ScalarOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(x / y);
    default:
      return Status::Internal("EvalArith called with non-arithmetic op");
  }
}

bool EvalComparison(ScalarOp op, const Value& a, const Value& b) {
  using Ordering = Value::Ordering;
  const Ordering ord = Value::Compare(a, b);
  switch (op) {
    case ScalarOp::kEq:
      return ord == Ordering::kEqual;
    case ScalarOp::kNe:
      // a != b is the negation of a = b, *including* the null cases: two
      // incomparable values are considered unequal.
      return ord != Ordering::kEqual;
    case ScalarOp::kLt:
      return ord == Ordering::kLess;
    case ScalarOp::kLe:
      return ord == Ordering::kLess || ord == Ordering::kEqual;
    case ScalarOp::kGt:
      return ord == Ordering::kGreater;
    case ScalarOp::kGe:
      return ord == Ordering::kGreater || ord == Ordering::kEqual;
    default:
      return false;
  }
}

bool IsComparison(ScalarOp op) {
  switch (op) {
    case ScalarOp::kEq:
    case ScalarOp::kNe:
    case ScalarOp::kLt:
    case ScalarOp::kLe:
    case ScalarOp::kGt:
    case ScalarOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsConnective(ScalarOp op) {
  return op == ScalarOp::kAnd || op == ScalarOp::kOr || op == ScalarOp::kNot;
}

}  // namespace

Result<Value> ScalarExpr::EvalValue(const Tuple* left, const Tuple* right,
                                    const std::vector<Value>* params) const {
  switch (op_) {
    case ScalarOp::kConst:
      return constant_;
    case ScalarOp::kParam:
      if (params == nullptr ||
          param_slot_ < 0 || param_slot_ >= static_cast<int>(params->size())) {
        return Status::Internal(
            StrCat("parameter slot ?", param_slot_, " has no binding (",
                   params == nullptr ? 0 : params->size(), " bound)"));
      }
      return (*params)[static_cast<std::size_t>(param_slot_)];
    case ScalarOp::kAttrRef: {
      const Tuple* t = side_ == 0 ? left : right;
      if (t == nullptr) {
        return Status::Internal(
            StrCat("attribute reference to side ", side_, " without tuple"));
      }
      if (attr_index_ < 0 || attr_index_ >= static_cast<int>(t->arity())) {
        return Status::Internal(
            StrCat("attribute index ", attr_index_, " out of range for arity ",
                   t->arity()));
      }
      return t->at(attr_index_);
    }
    case ScalarOp::kAdd:
    case ScalarOp::kSub:
    case ScalarOp::kMul:
    case ScalarOp::kDiv: {
      TXMOD_ASSIGN_OR_RETURN(Value a,
                             children_[0].EvalValue(left, right, params));
      TXMOD_ASSIGN_OR_RETURN(Value b,
                             children_[1].EvalValue(left, right, params));
      return EvalArith(op_, a, b);
    }
    default: {
      // A predicate in value position (e.g. a projection of a condition)
      // materializes as 1/0.
      TXMOD_ASSIGN_OR_RETURN(bool b, EvalPredicate(left, right, params));
      return Value::Int(b ? 1 : 0);
    }
  }
}

Result<bool> ScalarExpr::EvalPredicate(const Tuple* left, const Tuple* right,
                                       const std::vector<Value>* params) const {
  if (IsComparison(op_)) {
    TXMOD_ASSIGN_OR_RETURN(Value a,
                           children_[0].EvalValue(left, right, params));
    TXMOD_ASSIGN_OR_RETURN(Value b,
                           children_[1].EvalValue(left, right, params));
    return EvalComparison(op_, a, b);
  }
  if (IsConnective(op_)) {
    if (op_ == ScalarOp::kNot) {
      TXMOD_ASSIGN_OR_RETURN(bool v,
                             children_[0].EvalPredicate(left, right, params));
      return !v;
    }
    TXMOD_ASSIGN_OR_RETURN(bool a,
                           children_[0].EvalPredicate(left, right, params));
    if (op_ == ScalarOp::kAnd && !a) return false;
    if (op_ == ScalarOp::kOr && a) return true;
    return children_[1].EvalPredicate(left, right, params);
  }
  // Value in predicate position: nonzero integers are true (used for the
  // constant true/false predicates).
  TXMOD_ASSIGN_OR_RETURN(Value v, EvalValue(left, right, params));
  if (v.is_null()) return false;
  if (v.is_int()) return v.as_int() != 0;
  if (v.is_double()) return v.as_double() != 0.0;
  return Status::InvalidArgument(
      StrCat("value ", v.ToString(), " used as a predicate"));
}

void ScalarExpr::CollectAttrRefs(
    std::vector<std::pair<int, int>>* refs) const {
  if (op_ == ScalarOp::kAttrRef) {
    refs->emplace_back(side_, attr_index_);
    return;
  }
  for (const ScalarExpr& c : children_) c.CollectAttrRefs(refs);
}

Status ScalarExpr::RemapAttrs(int side, const std::vector<int>& mapping) {
  if (op_ == ScalarOp::kAttrRef) {
    if (side_ != side) return Status::OK();
    if (attr_index_ < 0 || attr_index_ >= static_cast<int>(mapping.size())) {
      return Status::Internal(
          StrCat("cannot remap attribute index ", attr_index_));
    }
    attr_index_ = mapping[attr_index_];
    return Status::OK();
  }
  for (ScalarExpr& c : children_) {
    TXMOD_RETURN_IF_ERROR(c.RemapAttrs(side, mapping));
  }
  return Status::OK();
}

bool ScalarExpr::Equals(const ScalarExpr& other) const {
  if (op_ != other.op_) return false;
  switch (op_) {
    case ScalarOp::kConst:
      if (constant_ != other.constant_) return false;
      break;
    case ScalarOp::kAttrRef:
      if (side_ != other.side_ || attr_index_ != other.attr_index_) {
        return false;
      }
      break;
    case ScalarOp::kParam:
      if (param_slot_ != other.param_slot_) return false;
      break;
    default:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i].Equals(other.children_[i])) return false;
  }
  return true;
}

namespace {

// Precedence: or < and < not < comparison < add < mul < leaf.
int Precedence(ScalarOp op) {
  switch (op) {
    case ScalarOp::kOr:
      return 1;
    case ScalarOp::kAnd:
      return 2;
    case ScalarOp::kNot:
      return 3;
    case ScalarOp::kEq:
    case ScalarOp::kNe:
    case ScalarOp::kLt:
    case ScalarOp::kLe:
    case ScalarOp::kGt:
    case ScalarOp::kGe:
      return 4;
    case ScalarOp::kAdd:
    case ScalarOp::kSub:
      return 5;
    case ScalarOp::kMul:
    case ScalarOp::kDiv:
      return 6;
    default:
      return 7;
  }
}

}  // namespace

std::string ScalarExpr::ToStringPrec(int parent_prec,
                                     bool qualify_sides) const {
  std::string out;
  switch (op_) {
    case ScalarOp::kConst:
      return constant_.ToString();
    case ScalarOp::kParam:
      return StrCat("?", param_slot_);
    case ScalarOp::kAttrRef: {
      if (qualify_sides) {
        const char* prefix = side_ == 0 ? "l." : "r.";
        return attr_name_.empty() ? StrCat(prefix, attr_index_)
                                  : StrCat(prefix, attr_name_);
      }
      std::string base = attr_name_.empty()
                             ? StrCat("#", attr_index_)
                             : attr_name_;
      return side_ == 0 ? base : StrCat("r.", base);
    }
    case ScalarOp::kNot:
      out = StrCat("not ", children_[0].ToStringPrec(Precedence(op_),
                                                     qualify_sides));
      break;
    default:
      out = StrCat(children_[0].ToStringPrec(Precedence(op_), qualify_sides),
                   " ", ScalarOpToString(op_), " ",
                   children_[1].ToStringPrec(Precedence(op_) + 1,
                                             qualify_sides));
      break;
  }
  if (Precedence(op_) < parent_prec) return StrCat("(", out, ")");
  return out;
}

std::string ScalarExpr::ToString(bool qualify_sides) const {
  return ToStringPrec(0, qualify_sides);
}

}  // namespace txmod::algebra
