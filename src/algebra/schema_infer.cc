#include "src/algebra/schema_infer.h"

#include "src/common/str_util.h"

namespace txmod::algebra {

namespace {

AttrType ValueAttrType(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return AttrType::kInt;
    case ValueType::kDouble:
      return AttrType::kDouble;
    case ValueType::kString:
      return AttrType::kString;
    case ValueType::kNull:
      break;
  }
  return AttrType::kString;
}

std::vector<Attribute> ConcatAttrs(const RelationSchema& a,
                                   const RelationSchema& b) {
  std::vector<Attribute> attrs = a.attributes();
  attrs.insert(attrs.end(), b.attributes().begin(), b.attributes().end());
  return attrs;
}

}  // namespace

AttrType InferScalarType(const ScalarExpr& e, const RelationSchema& input,
                         const std::vector<Value>* params) {
  switch (e.op()) {
    case ScalarOp::kConst:
      return ValueAttrType(e.constant());
    case ScalarOp::kParam: {
      const int slot = e.param_slot();
      if (params != nullptr && slot >= 0 &&
          slot < static_cast<int>(params->size())) {
        return ValueAttrType((*params)[static_cast<std::size_t>(slot)]);
      }
      return AttrType::kInt;
    }
    case ScalarOp::kAttrRef: {
      const int i = e.attr_index();
      if (e.side() == 0 && i >= 0 && i < static_cast<int>(input.arity())) {
        return input.attribute(i).type;
      }
      return AttrType::kString;
    }
    case ScalarOp::kAdd:
    case ScalarOp::kSub:
    case ScalarOp::kMul:
    case ScalarOp::kDiv: {
      const AttrType a = InferScalarType(e.children()[0], input, params);
      const AttrType b = InferScalarType(e.children()[1], input, params);
      return (a == AttrType::kDouble || b == AttrType::kDouble)
                 ? AttrType::kDouble
                 : AttrType::kInt;
    }
    default:
      return AttrType::kInt;
  }
}

std::string ProjectionItemName(const ProjectionItem& item,
                               const RelationSchema& input, std::size_t i) {
  if (!item.name.empty()) return item.name;
  if (item.expr.op() == ScalarOp::kAttrRef && item.expr.side() == 0) {
    const int idx = item.expr.attr_index();
    if (idx >= 0 && idx < static_cast<int>(input.arity())) {
      return input.attribute(idx).name;
    }
  }
  return StrCat("c", i);
}

Result<RelationSchema> InferSchema(const RelExpr& expr,
                                   const SchemaResolver& resolver) {
  switch (expr.kind()) {
    case RelExprKind::kRef:
      return resolver(expr.ref_kind(), expr.rel_name());
    case RelExprKind::kLiteral: {
      std::vector<Attribute> attrs;
      for (int i = 0; i < expr.literal_arity(); ++i) {
        AttrType type = AttrType::kString;
        for (const Tuple& t : expr.literal_tuples()) {
          if (!t.at(i).is_null()) {
            type = ValueAttrType(t.at(i));
            break;
          }
        }
        attrs.push_back(Attribute{StrCat("c", i), type});
      }
      return RelationSchema("", std::move(attrs));
    }
    case RelExprKind::kSelect:
    case RelExprKind::kSemiJoin:
    case RelExprKind::kAntiJoin:
    case RelExprKind::kUnion:
    case RelExprKind::kDifference:
    case RelExprKind::kIntersect:
      return InferSchema(*expr.left(), resolver);
    case RelExprKind::kProject: {
      TXMOD_ASSIGN_OR_RETURN(RelationSchema in,
                             InferSchema(*expr.left(), resolver));
      std::vector<Attribute> attrs;
      for (std::size_t i = 0; i < expr.projections().size(); ++i) {
        attrs.push_back(
            Attribute{ProjectionItemName(expr.projections()[i], in, i),
                      InferScalarType(expr.projections()[i].expr, in)});
      }
      return RelationSchema("", std::move(attrs));
    }
    case RelExprKind::kProduct:
    case RelExprKind::kJoin: {
      TXMOD_ASSIGN_OR_RETURN(RelationSchema l,
                             InferSchema(*expr.left(), resolver));
      TXMOD_ASSIGN_OR_RETURN(RelationSchema r,
                             InferSchema(*expr.right(), resolver));
      return RelationSchema("", ConcatAttrs(l, r));
    }
    case RelExprKind::kAggregate: {
      TXMOD_ASSIGN_OR_RETURN(RelationSchema in,
                             InferSchema(*expr.left(), resolver));
      std::vector<Attribute> attrs;
      for (int g : expr.group_by()) {
        if (g < 0 || g >= static_cast<int>(in.arity())) {
          return Status::InvalidArgument("group-by attribute out of range");
        }
        attrs.push_back(in.attribute(g));
      }
      AttrType agg_type = AttrType::kInt;
      if (expr.agg_func() == AggFunc::kAvg) {
        agg_type = AttrType::kDouble;
      } else if (expr.agg_func() != AggFunc::kCnt) {
        const int a = expr.agg_attr();
        if (a < 0 || a >= static_cast<int>(in.arity())) {
          return Status::InvalidArgument("aggregate attribute out of range");
        }
        agg_type = in.attribute(a).type;
      }
      attrs.push_back(Attribute{AggFuncToString(expr.agg_func()), agg_type});
      return RelationSchema("", std::move(attrs));
    }
  }
  return Status::Internal("unknown RelExpr kind in InferSchema");
}

}  // namespace txmod::algebra
