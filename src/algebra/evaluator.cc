#include "src/algebra/evaluator.h"

#include "src/algebra/physical_plan.h"

namespace txmod::algebra {

Result<Relation> EvaluateRelExpr(const RelExpr& expr, const EvalContext& ctx,
                                 EvalStats* stats) {
  // One-shot path: compile, execute, discard. Callers that evaluate the
  // same expression repeatedly (the transaction executor running compiled
  // integrity checks) hold compiled plans in a PlanCache instead.
  TXMOD_ASSIGN_OR_RETURN(PhysicalPlan plan, PhysicalPlan::Compile(expr));
  return plan.Execute(ctx, stats);
}

}  // namespace txmod::algebra
