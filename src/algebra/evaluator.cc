#include "src/algebra/evaluator.h"

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/str_util.h"

namespace txmod::algebra {

namespace {

// ---------------------------------------------------------------------------
// Borrow-or-own handle: kRef inputs are borrowed from the context (no copy);
// computed inputs are owned by the handle.
// ---------------------------------------------------------------------------

class RelHandle {
 public:
  static RelHandle Borrowed(const Relation* rel) {
    RelHandle h;
    h.ptr_ = rel;
    return h;
  }
  static RelHandle Owned(Relation rel) {
    RelHandle h;
    h.owned_ = std::move(rel);
    h.ptr_ = &*h.owned_;
    return h;
  }
  RelHandle() = default;
  RelHandle(RelHandle&& other) noexcept { *this = std::move(other); }
  RelHandle& operator=(RelHandle&& other) noexcept {
    owned_ = std::move(other.owned_);
    ptr_ = owned_.has_value() ? &*owned_ : other.ptr_;
    return *this;
  }

  const Relation& get() const { return *ptr_; }

  /// Moves the relation out, copying when it was merely borrowed.
  Relation Take() && {
    if (owned_.has_value()) return *std::move(owned_);
    return *ptr_;  // deep copy
  }

 private:
  const Relation* ptr_ = nullptr;
  std::optional<Relation> owned_;
};

// ---------------------------------------------------------------------------
// Schema synthesis helpers.
// ---------------------------------------------------------------------------

std::shared_ptr<const RelationSchema> MakeSchema(
    std::vector<Attribute> attrs, std::string name = "") {
  return std::make_shared<const RelationSchema>(std::move(name),
                                                std::move(attrs));
}

AttrType ValueAttrType(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return AttrType::kInt;
    case ValueType::kDouble:
      return AttrType::kDouble;
    case ValueType::kString:
      return AttrType::kString;
    case ValueType::kNull:
      break;
  }
  return AttrType::kString;  // fallback for untyped (all-null) columns
}

// Best-effort static type of a scalar expression over `input` attributes.
AttrType InferExprType(const ScalarExpr& e, const RelationSchema& input) {
  switch (e.op()) {
    case ScalarOp::kConst:
      return ValueAttrType(e.constant());
    case ScalarOp::kAttrRef: {
      const int i = e.attr_index();
      if (i >= 0 && i < static_cast<int>(input.arity())) {
        return input.attribute(i).type;
      }
      return AttrType::kString;
    }
    case ScalarOp::kAdd:
    case ScalarOp::kSub:
    case ScalarOp::kMul:
    case ScalarOp::kDiv: {
      const AttrType a = InferExprType(e.children()[0], input);
      const AttrType b = InferExprType(e.children()[1], input);
      return (a == AttrType::kDouble || b == AttrType::kDouble)
                 ? AttrType::kDouble
                 : AttrType::kInt;
    }
    default:
      return AttrType::kInt;  // predicates materialize as 0/1
  }
}

std::string ProjectionName(const ProjectionItem& item,
                           const RelationSchema& input, std::size_t i) {
  if (!item.name.empty()) return item.name;
  if (item.expr.op() == ScalarOp::kAttrRef && item.expr.side() == 0) {
    const int idx = item.expr.attr_index();
    if (idx >= 0 && idx < static_cast<int>(input.arity())) {
      return input.attribute(idx).name;
    }
  }
  return StrCat("c", i);
}

std::vector<Attribute> ConcatAttrs(const RelationSchema& a,
                                   const RelationSchema& b) {
  std::vector<Attribute> attrs = a.attributes();
  attrs.insert(attrs.end(), b.attributes().begin(), b.attributes().end());
  return attrs;
}

// ---------------------------------------------------------------------------
// Hash-join support: extract equality conjuncts attr(0,i) = attr(1,j).
// ---------------------------------------------------------------------------

void CollectEquiPairs(const ScalarExpr& pred,
                      std::vector<std::pair<int, int>>* pairs) {
  if (pred.op() == ScalarOp::kAnd) {
    CollectEquiPairs(pred.children()[0], pairs);
    CollectEquiPairs(pred.children()[1], pairs);
    return;
  }
  if (pred.op() != ScalarOp::kEq) return;
  const ScalarExpr& a = pred.children()[0];
  const ScalarExpr& b = pred.children()[1];
  if (a.op() != ScalarOp::kAttrRef || b.op() != ScalarOp::kAttrRef) return;
  if (a.side() == 0 && b.side() == 1) {
    pairs->emplace_back(a.attr_index(), b.attr_index());
  } else if (a.side() == 1 && b.side() == 0) {
    pairs->emplace_back(b.attr_index(), a.attr_index());
  }
}

// Normalizes a key value so that hash identity agrees with predicate
// equality: ints widen to double (Compare coerces numerics).
Value NormalizeKeyValue(const Value& v) {
  if (v.is_int()) return Value::Double(static_cast<double>(v.as_int()));
  return v;
}

Tuple MakeKey(const Tuple& t, const std::vector<int>& attrs) {
  std::vector<Value> vs;
  vs.reserve(attrs.size());
  for (int a : attrs) vs.push_back(NormalizeKeyValue(t.at(a)));
  return Tuple(std::move(vs));
}

using HashTable = std::unordered_multimap<Tuple, const Tuple*, TupleHasher>;

// ---------------------------------------------------------------------------
// The evaluator proper.
// ---------------------------------------------------------------------------

class Evaluator {
 public:
  Evaluator(const EvalContext& ctx, EvalStats* stats)
      : ctx_(ctx), stats_(stats) {}

  Result<RelHandle> Eval(const RelExpr& e) {
    if (stats_ != nullptr) ++stats_->operators;
    switch (e.kind()) {
      case RelExprKind::kRef: {
        TXMOD_ASSIGN_OR_RETURN(const Relation* rel,
                               ctx_.Resolve(e.ref_kind(), e.rel_name()));
        return RelHandle::Borrowed(rel);
      }
      case RelExprKind::kLiteral:
        return EvalLiteral(e);
      case RelExprKind::kSelect:
        return EvalSelect(e);
      case RelExprKind::kProject:
        return EvalProject(e);
      case RelExprKind::kProduct:
        return EvalProduct(e);
      case RelExprKind::kJoin:
      case RelExprKind::kSemiJoin:
      case RelExprKind::kAntiJoin:
        return EvalJoinLike(e);
      case RelExprKind::kUnion:
      case RelExprKind::kDifference:
      case RelExprKind::kIntersect:
        return EvalSetOp(e);
      case RelExprKind::kAggregate:
        return EvalAggregate(e);
    }
    return Status::Internal("unknown RelExpr kind");
  }

 private:
  void CountScan(std::size_t n) {
    if (stats_ != nullptr) stats_->tuples_scanned += n;
  }
  void CountEmit(std::size_t n) {
    if (stats_ != nullptr) stats_->tuples_emitted += n;
  }

  Result<RelHandle> EvalLiteral(const RelExpr& e) {
    std::vector<Attribute> attrs;
    for (int i = 0; i < e.literal_arity(); ++i) {
      AttrType type = AttrType::kString;
      for (const Tuple& t : e.literal_tuples()) {
        if (!t.at(i).is_null()) {
          type = ValueAttrType(t.at(i));
          break;
        }
      }
      attrs.push_back(Attribute{StrCat("c", i), type});
    }
    Relation out(MakeSchema(std::move(attrs)));
    for (const Tuple& t : e.literal_tuples()) {
      if (static_cast<int>(t.arity()) != e.literal_arity()) {
        return Status::InvalidArgument(
            StrCat("literal tuple ", t.ToString(), " has arity ", t.arity(),
                   ", expected ", e.literal_arity()));
      }
      out.Insert(t);
    }
    CountEmit(out.size());
    return RelHandle::Owned(std::move(out));
  }

  Result<RelHandle> EvalSelect(const RelExpr& e) {
    TXMOD_ASSIGN_OR_RETURN(RelHandle in, Eval(*e.left()));
    const Relation& input = in.get();
    Relation out(input.schema_ptr());
    CountScan(input.size());
    for (const Tuple& t : input) {
      TXMOD_ASSIGN_OR_RETURN(bool keep,
                             e.predicate().EvalPredicate(&t, nullptr));
      if (keep) out.Insert(t);
    }
    CountEmit(out.size());
    return RelHandle::Owned(std::move(out));
  }

  Result<RelHandle> EvalProject(const RelExpr& e) {
    TXMOD_ASSIGN_OR_RETURN(RelHandle in, Eval(*e.left()));
    const Relation& input = in.get();
    const RelationSchema& in_schema = input.schema();
    std::vector<Attribute> attrs;
    for (std::size_t i = 0; i < e.projections().size(); ++i) {
      attrs.push_back(
          Attribute{ProjectionName(e.projections()[i], in_schema, i),
                    InferExprType(e.projections()[i].expr, in_schema)});
    }
    Relation out(MakeSchema(std::move(attrs)));
    CountScan(input.size());
    for (const Tuple& t : input) {
      std::vector<Value> values;
      values.reserve(e.projections().size());
      for (const ProjectionItem& item : e.projections()) {
        TXMOD_ASSIGN_OR_RETURN(Value v, item.expr.EvalValue(&t, nullptr));
        values.push_back(std::move(v));
      }
      out.Insert(Tuple(std::move(values)));
    }
    CountEmit(out.size());
    return RelHandle::Owned(std::move(out));
  }

  Result<RelHandle> EvalProduct(const RelExpr& e) {
    TXMOD_ASSIGN_OR_RETURN(RelHandle lh, Eval(*e.left()));
    TXMOD_ASSIGN_OR_RETURN(RelHandle rh, Eval(*e.right()));
    const Relation& l = lh.get();
    const Relation& r = rh.get();
    Relation out(MakeSchema(ConcatAttrs(l.schema(), r.schema())));
    CountScan(l.size() + r.size());
    for (const Tuple& lt : l) {
      for (const Tuple& rt : r) {
        out.Insert(Tuple::Concat(lt, rt));
      }
    }
    CountEmit(out.size());
    return RelHandle::Owned(std::move(out));
  }

  Result<RelHandle> EvalJoinLike(const RelExpr& e) {
    // Short-circuit on an empty right operand before touching the left
    // side: a join or semijoin with nothing to match is empty, and an
    // antijoin with nothing to exclude is the left side itself. This is
    // what makes differential checks (semijoins against dplus/dminus)
    // effectively free when the transaction did not touch the relation.
    TXMOD_ASSIGN_OR_RETURN(RelHandle rh, Eval(*e.right()));
    if (rh.get().empty()) {
      if (e.kind() == RelExprKind::kAntiJoin) return Eval(*e.left());
      if (e.kind() == RelExprKind::kSemiJoin) {
        TXMOD_ASSIGN_OR_RETURN(RelHandle lh, Eval(*e.left()));
        return RelHandle::Owned(Relation(lh.get().schema_ptr()));
      }
      // kJoin: empty output with the concatenated schema.
      TXMOD_ASSIGN_OR_RETURN(RelHandle lh, Eval(*e.left()));
      return RelHandle::Owned(Relation(
          MakeSchema(ConcatAttrs(lh.get().schema(), rh.get().schema()))));
    }
    TXMOD_ASSIGN_OR_RETURN(RelHandle lh, Eval(*e.left()));
    const Relation& l = lh.get();
    const Relation& r = rh.get();
    if (l.empty()) {
      if (e.kind() == RelExprKind::kJoin) {
        return RelHandle::Owned(
            Relation(MakeSchema(ConcatAttrs(l.schema(), r.schema()))));
      }
      return RelHandle::Owned(Relation(l.schema_ptr()));
    }
    CountScan(l.size() + r.size());

    std::vector<std::pair<int, int>> equi;
    CollectEquiPairs(e.predicate(), &equi);
    std::vector<int> lattrs, rattrs;
    for (const auto& [a, b] : equi) {
      lattrs.push_back(a);
      rattrs.push_back(b);
    }

    std::shared_ptr<const RelationSchema> out_schema;
    const bool is_join = e.kind() == RelExprKind::kJoin;
    if (is_join) {
      out_schema = MakeSchema(ConcatAttrs(l.schema(), r.schema()));
    } else {
      out_schema = l.schema_ptr();
    }
    Relation out(out_schema);

    auto emit = [&](const Tuple& lt, const Tuple* rt) {
      if (is_join) {
        out.Insert(Tuple::Concat(lt, *rt));
      } else {
        out.Insert(lt);
      }
    };

    if (!equi.empty()) {
      HashTable table;
      table.reserve(r.size());
      for (const Tuple& rt : r) {
        table.emplace(MakeKey(rt, rattrs), &rt);
      }
      for (const Tuple& lt : l) {
        const Tuple key = MakeKey(lt, lattrs);
        auto [begin, end] = table.equal_range(key);
        bool matched = false;
        for (auto it = begin; it != end; ++it) {
          TXMOD_ASSIGN_OR_RETURN(
              bool match, e.predicate().EvalPredicate(&lt, it->second));
          if (!match) continue;
          matched = true;
          if (e.kind() == RelExprKind::kJoin) {
            emit(lt, it->second);
          } else {
            break;  // semi/anti joins only need existence
          }
        }
        if (e.kind() == RelExprKind::kSemiJoin && matched) emit(lt, nullptr);
        if (e.kind() == RelExprKind::kAntiJoin && !matched) emit(lt, nullptr);
      }
    } else {
      for (const Tuple& lt : l) {
        bool matched = false;
        for (const Tuple& rt : r) {
          TXMOD_ASSIGN_OR_RETURN(bool match,
                                 e.predicate().EvalPredicate(&lt, &rt));
          if (!match) continue;
          matched = true;
          if (e.kind() == RelExprKind::kJoin) {
            emit(lt, &rt);
          } else {
            break;
          }
        }
        if (e.kind() == RelExprKind::kSemiJoin && matched) emit(lt, nullptr);
        if (e.kind() == RelExprKind::kAntiJoin && !matched) emit(lt, nullptr);
      }
    }
    CountEmit(out.size());
    return RelHandle::Owned(std::move(out));
  }

  Result<RelHandle> EvalSetOp(const RelExpr& e) {
    TXMOD_ASSIGN_OR_RETURN(RelHandle lh, Eval(*e.left()));
    TXMOD_ASSIGN_OR_RETURN(RelHandle rh, Eval(*e.right()));
    const Relation& l = lh.get();
    const Relation& r = rh.get();
    if (l.arity() != r.arity()) {
      return Status::InvalidArgument(
          StrCat("set operation over different arities: ", l.arity(),
                 " vs ", r.arity()));
    }
    // Difference/intersection against an empty right side need no scan.
    if (r.empty() && e.kind() == RelExprKind::kDifference) {
      return lh;
    }
    if (r.empty() && e.kind() == RelExprKind::kIntersect) {
      return RelHandle::Owned(Relation(l.schema_ptr()));
    }
    CountScan(l.size() + r.size());
    Relation out(l.schema_ptr());
    switch (e.kind()) {
      case RelExprKind::kUnion:
        for (const Tuple& t : l) out.Insert(t);
        for (const Tuple& t : r) out.Insert(t);
        break;
      case RelExprKind::kDifference:
        for (const Tuple& t : l) {
          if (!r.Contains(t)) out.Insert(t);
        }
        break;
      case RelExprKind::kIntersect:
        for (const Tuple& t : l) {
          if (r.Contains(t)) out.Insert(t);
        }
        break;
      default:
        return Status::Internal("EvalSetOp on non-set-op");
    }
    CountEmit(out.size());
    return RelHandle::Owned(std::move(out));
  }

  struct GroupAcc {
    int64_t count = 0;
    int64_t isum = 0;
    double dsum = 0.0;
    bool any_double = false;
    int64_t non_null = 0;
    std::optional<Value> min;
    std::optional<Value> max;
  };

  static Status Accumulate(GroupAcc* acc, const Value& v) {
    acc->count += 1;
    if (v.is_null()) return Status::OK();
    acc->non_null += 1;
    if (v.is_numeric()) {
      if (v.is_int()) {
        acc->isum += v.as_int();
        acc->dsum += static_cast<double>(v.as_int());
      } else {
        acc->any_double = true;
        acc->dsum += v.as_double();
      }
    }
    if (!acc->min.has_value() ||
        Value::Compare(v, *acc->min) == Value::Ordering::kLess) {
      acc->min = v;
    }
    if (!acc->max.has_value() ||
        Value::Compare(v, *acc->max) == Value::Ordering::kGreater) {
      acc->max = v;
    }
    return Status::OK();
  }

  static Result<Value> Finalize(const GroupAcc& acc, AggFunc func,
                                bool saw_non_numeric) {
    switch (func) {
      case AggFunc::kCnt:
        return Value::Int(acc.count);
      case AggFunc::kSum:
        if (saw_non_numeric) {
          return Status::InvalidArgument("SUM over non-numeric attribute");
        }
        return acc.any_double ? Value::Double(acc.dsum)
                              : Value::Int(acc.isum);
      case AggFunc::kAvg:
        if (saw_non_numeric) {
          return Status::InvalidArgument("AVG over non-numeric attribute");
        }
        if (acc.non_null == 0) return Value::Null();
        return Value::Double(acc.dsum / static_cast<double>(acc.non_null));
      case AggFunc::kMin:
        return acc.min.has_value() ? *acc.min : Value::Null();
      case AggFunc::kMax:
        return acc.max.has_value() ? *acc.max : Value::Null();
    }
    return Status::Internal("unknown aggregate function");
  }

  Result<RelHandle> EvalAggregate(const RelExpr& e) {
    TXMOD_ASSIGN_OR_RETURN(RelHandle in, Eval(*e.left()));
    const Relation& input = in.get();
    const RelationSchema& in_schema = input.schema();
    CountScan(input.size());

    const int attr = e.agg_attr();
    const bool needs_attr = e.agg_func() != AggFunc::kCnt;
    if (needs_attr &&
        (attr < 0 || attr >= static_cast<int>(in_schema.arity()))) {
      return Status::InvalidArgument(
          StrCat("aggregate attribute #", attr, " out of range for arity ",
                 in_schema.arity()));
    }

    // Output schema: group attrs then the aggregate column.
    std::vector<Attribute> attrs;
    for (int g : e.group_by()) {
      if (g < 0 || g >= static_cast<int>(in_schema.arity())) {
        return Status::InvalidArgument(
            StrCat("group-by attribute #", g, " out of range"));
      }
      attrs.push_back(in_schema.attribute(g));
    }
    AttrType agg_type = AttrType::kInt;
    switch (e.agg_func()) {
      case AggFunc::kCnt:
        agg_type = AttrType::kInt;
        break;
      case AggFunc::kAvg:
        agg_type = AttrType::kDouble;
        break;
      default:
        agg_type = needs_attr ? in_schema.attribute(attr).type
                              : AttrType::kInt;
        break;
    }
    attrs.push_back(Attribute{AggFuncToString(e.agg_func()), agg_type});
    Relation out(MakeSchema(std::move(attrs)));

    bool saw_non_numeric = false;
    auto observe = [&](GroupAcc* acc, const Tuple& t) -> Status {
      if (!needs_attr) {
        acc->count += 1;
        return Status::OK();
      }
      const Value& v = t.at(attr);
      if (!v.is_null() && !v.is_numeric() &&
          (e.agg_func() == AggFunc::kSum || e.agg_func() == AggFunc::kAvg)) {
        saw_non_numeric = true;
      }
      return Accumulate(acc, v);
    };

    if (e.group_by().empty()) {
      GroupAcc acc;
      for (const Tuple& t : input) {
        TXMOD_RETURN_IF_ERROR(observe(&acc, t));
      }
      TXMOD_ASSIGN_OR_RETURN(Value v,
                             Finalize(acc, e.agg_func(), saw_non_numeric));
      out.Insert(Tuple({std::move(v)}));
    } else {
      std::unordered_map<Tuple, GroupAcc, TupleHasher> groups;
      for (const Tuple& t : input) {
        std::vector<Value> key_vals;
        key_vals.reserve(e.group_by().size());
        for (int g : e.group_by()) key_vals.push_back(t.at(g));
        TXMOD_RETURN_IF_ERROR(
            observe(&groups[Tuple(std::move(key_vals))], t));
      }
      for (const auto& [key, acc] : groups) {
        TXMOD_ASSIGN_OR_RETURN(Value v,
                               Finalize(acc, e.agg_func(), saw_non_numeric));
        Tuple row = key;
        row.Append(std::move(v));
        out.Insert(std::move(row));
      }
    }
    CountEmit(out.size());
    return RelHandle::Owned(std::move(out));
  }

  const EvalContext& ctx_;
  EvalStats* stats_;
};

}  // namespace

Result<Relation> EvaluateRelExpr(const RelExpr& expr, const EvalContext& ctx,
                                 EvalStats* stats) {
  Evaluator ev(ctx, stats);
  TXMOD_ASSIGN_OR_RETURN(RelHandle h, ev.Eval(expr));
  return std::move(h).Take();
}

}  // namespace txmod::algebra
