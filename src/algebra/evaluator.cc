#include "src/algebra/evaluator.h"

#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/str_util.h"

namespace txmod::algebra {

namespace {

// ---------------------------------------------------------------------------
// Borrow-or-own handle: kRef inputs are borrowed from the context (no copy);
// computed inputs are owned by the handle.
// ---------------------------------------------------------------------------

class RelHandle {
 public:
  static RelHandle Borrowed(const Relation* rel) {
    RelHandle h;
    h.ptr_ = rel;
    return h;
  }
  static RelHandle Owned(Relation rel) {
    RelHandle h;
    h.owned_ = std::move(rel);
    h.ptr_ = &*h.owned_;
    return h;
  }
  RelHandle() = default;
  RelHandle(RelHandle&& other) noexcept { *this = std::move(other); }
  RelHandle& operator=(RelHandle&& other) noexcept {
    owned_ = std::move(other.owned_);
    ptr_ = owned_.has_value() ? &*owned_ : other.ptr_;
    return *this;
  }

  const Relation& get() const { return *ptr_; }

  /// Moves the relation out, copying when it was merely borrowed.
  Relation Take() && {
    if (owned_.has_value()) return *std::move(owned_);
    return *ptr_;  // deep copy
  }

 private:
  const Relation* ptr_ = nullptr;
  std::optional<Relation> owned_;
};

// ---------------------------------------------------------------------------
// Schema synthesis helpers.
// ---------------------------------------------------------------------------

std::shared_ptr<const RelationSchema> MakeSchema(
    std::vector<Attribute> attrs, std::string name = "") {
  return std::make_shared<const RelationSchema>(std::move(name),
                                                std::move(attrs));
}

AttrType ValueAttrType(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return AttrType::kInt;
    case ValueType::kDouble:
      return AttrType::kDouble;
    case ValueType::kString:
      return AttrType::kString;
    case ValueType::kNull:
      break;
  }
  return AttrType::kString;  // fallback for untyped (all-null) columns
}

// Best-effort static type of a scalar expression over `input` attributes.
AttrType InferExprType(const ScalarExpr& e, const RelationSchema& input) {
  switch (e.op()) {
    case ScalarOp::kConst:
      return ValueAttrType(e.constant());
    case ScalarOp::kAttrRef: {
      const int i = e.attr_index();
      if (i >= 0 && i < static_cast<int>(input.arity())) {
        return input.attribute(static_cast<std::size_t>(i)).type;
      }
      return AttrType::kString;
    }
    case ScalarOp::kAdd:
    case ScalarOp::kSub:
    case ScalarOp::kMul:
    case ScalarOp::kDiv: {
      const AttrType a = InferExprType(e.children()[0], input);
      const AttrType b = InferExprType(e.children()[1], input);
      return (a == AttrType::kDouble || b == AttrType::kDouble)
                 ? AttrType::kDouble
                 : AttrType::kInt;
    }
    default:
      return AttrType::kInt;  // predicates materialize as 0/1
  }
}

std::string ProjectionName(const ProjectionItem& item,
                           const RelationSchema& input, std::size_t i) {
  if (!item.name.empty()) return item.name;
  if (item.expr.op() == ScalarOp::kAttrRef && item.expr.side() == 0) {
    const int idx = item.expr.attr_index();
    if (idx >= 0 && idx < static_cast<int>(input.arity())) {
      return input.attribute(static_cast<std::size_t>(idx)).name;
    }
  }
  return StrCat("c", i);
}

std::vector<Attribute> ConcatAttrs(const RelationSchema& a,
                                   const RelationSchema& b) {
  std::vector<Attribute> attrs = a.attributes();
  attrs.insert(attrs.end(), b.attributes().begin(), b.attributes().end());
  return attrs;
}

void CountScan(EvalStats* stats, std::size_t n) {
  if (stats != nullptr) stats->tuples_scanned += n;
}
void CountEmit(EvalStats* stats, std::size_t n) {
  if (stats != nullptr) stats->tuples_emitted += n;
}

// ---------------------------------------------------------------------------
// TupleCursor: the pull-based pipeline. Next() yields a borrowed pointer
// that stays valid until the next call on the same cursor (operators with
// computed output own a scratch tuple they overwrite in place). nullptr
// means end-of-stream. Pipelines materialize only at breakers: hash-join
// build sides, set-operation right sides, product right sides, aggregate
// inputs that may carry duplicates, and the final result relation.
// ---------------------------------------------------------------------------

class TupleCursor {
 public:
  virtual ~TupleCursor() = default;
  virtual Result<const Tuple*> Next() = 0;
};

/// A cursor plus the statically known properties of its stream. `unique`
/// is true when the stream provably cannot yield the same tuple twice —
/// set semantics then need no dedup step downstream. Projections and
/// unions forfeit it; everything else preserves it.
struct Stream {
  std::unique_ptr<TupleCursor> cursor;
  std::shared_ptr<const RelationSchema> schema;
  bool unique = true;
};

class ScanCursor : public TupleCursor {
 public:
  explicit ScanCursor(RelHandle rel)
      : rel_(std::move(rel)),
        it_(rel_.get().begin()),
        end_(rel_.get().end()) {}

  Result<const Tuple*> Next() override {
    if (it_ == end_) return static_cast<const Tuple*>(nullptr);
    const Tuple* t = &*it_;
    ++it_;
    return t;
  }

 private:
  RelHandle rel_;
  Relation::ConstIterator it_;
  Relation::ConstIterator end_;
};

class EmptyCursor : public TupleCursor {
 public:
  Result<const Tuple*> Next() override {
    return static_cast<const Tuple*>(nullptr);
  }
};

class SelectCursor : public TupleCursor {
 public:
  SelectCursor(Stream child, const ScalarExpr* pred, EvalStats* stats)
      : child_(std::move(child)), pred_(pred), stats_(stats) {}

  Result<const Tuple*> Next() override {
    for (;;) {
      TXMOD_ASSIGN_OR_RETURN(const Tuple* t, child_.cursor->Next());
      if (t == nullptr) return t;
      CountScan(stats_, 1);
      TXMOD_ASSIGN_OR_RETURN(bool keep, pred_->EvalPredicate(t, nullptr));
      if (keep) {
        CountEmit(stats_, 1);
        return t;
      }
    }
  }

 private:
  Stream child_;
  const ScalarExpr* pred_;
  EvalStats* stats_;
};

class ProjectCursor : public TupleCursor {
 public:
  ProjectCursor(Stream child, const std::vector<ProjectionItem>* items,
                EvalStats* stats)
      : child_(std::move(child)),
        items_(items),
        stats_(stats),
        scratch_(std::vector<Value>(items->size())) {}

  Result<const Tuple*> Next() override {
    TXMOD_ASSIGN_OR_RETURN(const Tuple* t, child_.cursor->Next());
    if (t == nullptr) return t;
    CountScan(stats_, 1);
    for (std::size_t i = 0; i < items_->size(); ++i) {
      TXMOD_ASSIGN_OR_RETURN(Value v, (*items_)[i].expr.EvalValue(t, nullptr));
      scratch_.at(i) = std::move(v);
    }
    CountEmit(stats_, 1);
    return &scratch_;
  }

 private:
  Stream child_;
  const std::vector<ProjectionItem>* items_;
  EvalStats* stats_;
  Tuple scratch_;
};

/// Copies `src` into `dst` starting at `offset` (scratch concatenation for
/// products and joins — no fresh Tuple allocation per output row).
void FillScratch(Tuple* dst, const Tuple& src, std::size_t offset) {
  for (std::size_t i = 0; i < src.arity(); ++i) {
    dst->at(offset + i) = src.at(i);
  }
}

class ProductCursor : public TupleCursor {
 public:
  ProductCursor(Stream left, RelHandle right, std::size_t left_arity,
                std::size_t right_arity, EvalStats* stats)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_arity_(left_arity),
        stats_(stats),
        scratch_(std::vector<Value>(left_arity + right_arity)) {}

  Result<const Tuple*> Next() override {
    for (;;) {
      if (lt_ == nullptr || rit_ == right_.get().end()) {
        TXMOD_ASSIGN_OR_RETURN(lt_, left_.cursor->Next());
        if (lt_ == nullptr) return lt_;
        CountScan(stats_, 1);
        FillScratch(&scratch_, *lt_, 0);
        rit_ = right_.get().begin();
        if (rit_ == right_.get().end()) continue;  // empty right operand
      }
      FillScratch(&scratch_, *rit_, left_arity_);
      ++rit_;
      CountEmit(stats_, 1);
      return &scratch_;
    }
  }

 private:
  Stream left_;
  RelHandle right_;
  std::size_t left_arity_;
  EvalStats* stats_;
  Tuple scratch_;
  const Tuple* lt_ = nullptr;
  Relation::ConstIterator rit_;
};

/// Join / semijoin / antijoin over the equality conjuncts of the
/// predicate. The right (build) side is either a transient table built
/// once per evaluation, or — the differential-check fast path — a
/// persistent RelationIndex declared on a base relation, in which case
/// this cursor does no build work at all. Probing hashes the left tuple's
/// key attributes in place (EquiKeyHash): no per-probe Tuple allocation.
/// Candidates are verified against the full predicate, so hash collisions
/// (and the predicate's extra non-equality conjuncts) stay correct.
class HashJoinCursor : public TupleCursor {
 public:
  HashJoinCursor(RelExprKind kind, const ScalarExpr* pred, Stream left,
                 RelHandle right, const RelationIndex* index,
                 std::vector<int> lattrs, std::vector<int> rattrs,
                 std::size_t out_arity, EvalStats* stats)
      : kind_(kind),
        pred_(pred),
        left_(std::move(left)),
        right_(std::move(right)),
        index_(index),
        lattrs_(std::move(lattrs)),
        stats_(stats),
        scratch_(std::vector<Value>(out_arity)) {
    if (index_ == nullptr) {
      own_table_.reserve(right_.get().size());
      for (const Tuple& rt : right_.get()) {
        own_table_.emplace(EquiKeyHash(rt, rattrs), &rt);
      }
    }
  }

  Result<const Tuple*> Next() override {
    for (;;) {
      if (kind_ == RelExprKind::kJoin && lt_ != nullptr) {
        while (it_ != end_) {
          const Tuple* rt = it_->second;
          ++it_;
          TXMOD_ASSIGN_OR_RETURN(bool match, pred_->EvalPredicate(lt_, rt));
          if (match) {
            FillScratch(&scratch_, *rt, lt_->arity());
            CountEmit(stats_, 1);
            return &scratch_;
          }
        }
      }
      TXMOD_ASSIGN_OR_RETURN(lt_, left_.cursor->Next());
      if (lt_ == nullptr) return lt_;
      CountScan(stats_, 1);
      const std::size_t h = EquiKeyHash(*lt_, lattrs_);
      auto [begin, end] = index_ != nullptr
                              ? index_->Probe(h)
                              : std::as_const(own_table_).equal_range(h);
      if (kind_ == RelExprKind::kJoin) {
        it_ = begin;
        end_ = end;
        FillScratch(&scratch_, *lt_, 0);
        continue;
      }
      bool matched = false;
      for (auto it = begin; it != end; ++it) {
        TXMOD_ASSIGN_OR_RETURN(bool match,
                               pred_->EvalPredicate(lt_, it->second));
        if (match) {
          matched = true;
          break;
        }
      }
      if (matched == (kind_ == RelExprKind::kSemiJoin)) {
        CountEmit(stats_, 1);
        return lt_;
      }
    }
  }

 private:
  RelExprKind kind_;
  const ScalarExpr* pred_;
  Stream left_;
  RelHandle right_;
  const RelationIndex* index_;
  std::vector<int> lattrs_;
  EvalStats* stats_;
  RelationIndex::Map own_table_;
  Tuple scratch_;
  const Tuple* lt_ = nullptr;
  RelationIndex::Iterator it_;
  RelationIndex::Iterator end_;
};

/// Join-like fallback when the predicate has no equality conjunct: stream
/// the left side against the materialized right side.
class NestedJoinCursor : public TupleCursor {
 public:
  NestedJoinCursor(RelExprKind kind, const ScalarExpr* pred, Stream left,
                   RelHandle right, std::size_t out_arity, EvalStats* stats)
      : kind_(kind),
        pred_(pred),
        left_(std::move(left)),
        right_(std::move(right)),
        stats_(stats),
        scratch_(std::vector<Value>(out_arity)) {}

  Result<const Tuple*> Next() override {
    for (;;) {
      if (kind_ == RelExprKind::kJoin && lt_ != nullptr) {
        while (rit_ != right_.get().end()) {
          const Tuple* rt = &*rit_;
          ++rit_;
          TXMOD_ASSIGN_OR_RETURN(bool match, pred_->EvalPredicate(lt_, rt));
          if (match) {
            FillScratch(&scratch_, *rt, lt_->arity());
            CountEmit(stats_, 1);
            return &scratch_;
          }
        }
      }
      TXMOD_ASSIGN_OR_RETURN(lt_, left_.cursor->Next());
      if (lt_ == nullptr) return lt_;
      CountScan(stats_, 1);
      if (kind_ == RelExprKind::kJoin) {
        rit_ = right_.get().begin();
        FillScratch(&scratch_, *lt_, 0);
        continue;
      }
      bool matched = false;
      for (const Tuple& rt : right_.get()) {
        TXMOD_ASSIGN_OR_RETURN(bool match, pred_->EvalPredicate(lt_, &rt));
        if (match) {
          matched = true;
          break;
        }
      }
      if (matched == (kind_ == RelExprKind::kSemiJoin)) {
        CountEmit(stats_, 1);
        return lt_;
      }
    }
  }

 private:
  RelExprKind kind_;
  const ScalarExpr* pred_;
  Stream left_;
  RelHandle right_;
  EvalStats* stats_;
  Tuple scratch_;
  const Tuple* lt_ = nullptr;
  Relation::ConstIterator rit_;
};

class UnionCursor : public TupleCursor {
 public:
  UnionCursor(Stream left, Stream right, EvalStats* stats)
      : left_(std::move(left)), right_(std::move(right)), stats_(stats) {}

  Result<const Tuple*> Next() override {
    if (!left_done_) {
      TXMOD_ASSIGN_OR_RETURN(const Tuple* t, left_.cursor->Next());
      if (t != nullptr) {
        CountScan(stats_, 1);
        CountEmit(stats_, 1);
        return t;
      }
      left_done_ = true;
    }
    TXMOD_ASSIGN_OR_RETURN(const Tuple* t, right_.cursor->Next());
    if (t != nullptr) {
      CountScan(stats_, 1);
      CountEmit(stats_, 1);
    }
    return t;
  }

 private:
  Stream left_;
  Stream right_;
  EvalStats* stats_;
  bool left_done_ = false;
};

/// Difference (want_in = false) / intersection (want_in = true) against a
/// *projection of an indexed base relation*, without materializing the
/// projection: x is a member of project[attrs](R) iff some R-tuple carries
/// exactly x's values at `attrs`, which one probe of R's index answers.
/// This is the shape the translator emits for the paper's differential
/// referential checks — diff(project[ref](dplus(F)), project[key](K)) —
/// and is what turns their cost from O(|K|) into O(|dplus(F)|).
/// Membership is type-exact (set semantics), verified on each candidate;
/// KeyHash never separates identical values, so no member is missed.
class IndexedSetOpCursor : public TupleCursor {
 public:
  IndexedSetOpCursor(Stream left, const RelationIndex* index,
                     bool want_in, EvalStats* stats)
      : left_(std::move(left)),
        index_(index),
        want_in_(want_in),
        stats_(stats) {
    probe_attrs_.reserve(index_->attrs().size());
    for (std::size_t i = 0; i < index_->attrs().size(); ++i) {
      probe_attrs_.push_back(static_cast<int>(i));
    }
  }

  Result<const Tuple*> Next() override {
    for (;;) {
      TXMOD_ASSIGN_OR_RETURN(const Tuple* t, left_.cursor->Next());
      if (t == nullptr) return t;
      CountScan(stats_, 1);
      const std::size_t h = EquiKeyHash(*t, probe_attrs_);
      bool found = false;
      auto [begin, end] = index_->Probe(h);
      for (auto it = begin; it != end && !found; ++it) {
        const Tuple& candidate = *it->second;
        bool equal = true;
        for (std::size_t i = 0; i < index_->attrs().size(); ++i) {
          const std::size_t a =
              static_cast<std::size_t>(index_->attrs()[i]);
          if (!(candidate.at(a) == t->at(i))) {
            equal = false;
            break;
          }
        }
        found = equal;
      }
      if (found == want_in_) {
        CountEmit(stats_, 1);
        return t;
      }
    }
  }

 private:
  Stream left_;
  const RelationIndex* index_;
  bool want_in_;
  EvalStats* stats_;
  std::vector<int> probe_attrs_;
};

/// Difference (want_in = false) / intersection (want_in = true): stream
/// the left side, membership-test against the materialized right side.
class FilterSetOpCursor : public TupleCursor {
 public:
  FilterSetOpCursor(Stream left, RelHandle right, bool want_in,
                    EvalStats* stats)
      : left_(std::move(left)),
        right_(std::move(right)),
        want_in_(want_in),
        stats_(stats) {}

  Result<const Tuple*> Next() override {
    for (;;) {
      TXMOD_ASSIGN_OR_RETURN(const Tuple* t, left_.cursor->Next());
      if (t == nullptr) return t;
      CountScan(stats_, 1);
      if (right_.get().Contains(*t) == want_in_) {
        CountEmit(stats_, 1);
        return t;
      }
    }
  }

 private:
  Stream left_;
  RelHandle right_;
  bool want_in_;
  EvalStats* stats_;
};

// ---------------------------------------------------------------------------
// The evaluator proper: builds the cursor pipeline, materializing only at
// pipeline breakers and at the final result.
// ---------------------------------------------------------------------------

class Evaluator {
 public:
  Evaluator(const EvalContext& ctx, EvalStats* stats)
      : ctx_(ctx), stats_(stats) {}

  Result<Relation> Evaluate(const RelExpr& e) {
    // Nodes that are whole relations already (references) or inherently
    // eager (literals, aggregates) skip the cursor layer at the root.
    switch (e.kind()) {
      case RelExprKind::kRef:
      case RelExprKind::kLiteral:
      case RelExprKind::kAggregate: {
        TXMOD_ASSIGN_OR_RETURN(RelHandle h, Materialize(e));
        return std::move(h).Take();
      }
      default:
        break;
    }
    TXMOD_ASSIGN_OR_RETURN(Stream s, Open(e));
    return Drain(&s);
  }

 private:
  Result<Relation> Drain(Stream* s) {
    Relation out(s->schema);
    for (;;) {
      TXMOD_ASSIGN_OR_RETURN(const Tuple* t, s->cursor->Next());
      if (t == nullptr) break;
      out.Insert(*t);
    }
    return out;
  }

  /// A whole-relation view of `e`: borrowed for references, owned (and
  /// deduplicated) for everything else. Build sides of joins, products and
  /// set operations — the pipeline breakers — come through here.
  Result<RelHandle> Materialize(const RelExpr& e) {
    switch (e.kind()) {
      case RelExprKind::kRef: {
        if (stats_ != nullptr) ++stats_->operators;
        TXMOD_ASSIGN_OR_RETURN(const Relation* rel,
                               ctx_.Resolve(e.ref_kind(), e.rel_name()));
        return RelHandle::Borrowed(rel);
      }
      case RelExprKind::kLiteral: {
        if (stats_ != nullptr) ++stats_->operators;
        return EvalLiteral(e);
      }
      case RelExprKind::kAggregate: {
        if (stats_ != nullptr) ++stats_->operators;
        return EvalAggregate(e);
      }
      default: {
        TXMOD_ASSIGN_OR_RETURN(Stream s, Open(e));
        TXMOD_ASSIGN_OR_RETURN(Relation out, Drain(&s));
        return RelHandle::Owned(std::move(out));
      }
    }
  }

  Result<Stream> Open(const RelExpr& e) {
    switch (e.kind()) {
      case RelExprKind::kRef:
      case RelExprKind::kLiteral:
      case RelExprKind::kAggregate: {
        TXMOD_ASSIGN_OR_RETURN(RelHandle h, Materialize(e));
        Stream s;
        s.schema = h.get().schema_ptr();
        s.unique = true;
        s.cursor = std::make_unique<ScanCursor>(std::move(h));
        return s;
      }
      case RelExprKind::kSelect:
        return OpenSelect(e);
      case RelExprKind::kProject:
        return OpenProject(e);
      case RelExprKind::kProduct:
        return OpenProduct(e);
      case RelExprKind::kJoin:
      case RelExprKind::kSemiJoin:
      case RelExprKind::kAntiJoin:
        return OpenJoinLike(e);
      case RelExprKind::kUnion:
      case RelExprKind::kDifference:
      case RelExprKind::kIntersect:
        return OpenSetOp(e);
    }
    return Status::Internal("unknown RelExpr kind");
  }

  Result<Stream> OpenSelect(const RelExpr& e) {
    if (stats_ != nullptr) ++stats_->operators;
    TXMOD_ASSIGN_OR_RETURN(Stream in, Open(*e.left()));
    Stream s;
    s.schema = in.schema;
    s.unique = in.unique;
    s.cursor = std::make_unique<SelectCursor>(std::move(in), &e.predicate(),
                                              stats_);
    return s;
  }

  Result<Stream> OpenProject(const RelExpr& e) {
    if (stats_ != nullptr) ++stats_->operators;
    TXMOD_ASSIGN_OR_RETURN(Stream in, Open(*e.left()));
    std::vector<Attribute> attrs;
    attrs.reserve(e.projections().size());
    for (std::size_t i = 0; i < e.projections().size(); ++i) {
      attrs.push_back(
          Attribute{ProjectionName(e.projections()[i], *in.schema, i),
                    InferExprType(e.projections()[i].expr, *in.schema)});
    }
    Stream s;
    s.schema = MakeSchema(std::move(attrs));
    s.unique = false;  // distinct inputs may project to the same output
    s.cursor = std::make_unique<ProjectCursor>(std::move(in),
                                               &e.projections(), stats_);
    return s;
  }

  Result<Stream> OpenProduct(const RelExpr& e) {
    if (stats_ != nullptr) ++stats_->operators;
    TXMOD_ASSIGN_OR_RETURN(RelHandle right, Materialize(*e.right()));
    CountScan(stats_, right.get().size());  // build side is read once
    TXMOD_ASSIGN_OR_RETURN(Stream l, Open(*e.left()));
    const std::size_t larity = l.schema->arity();
    const std::size_t rarity = right.get().arity();
    Stream s;
    s.schema = MakeSchema(ConcatAttrs(*l.schema, right.get().schema()));
    s.unique = l.unique;  // the right side, a set, cannot repeat
    s.cursor = std::make_unique<ProductCursor>(std::move(l), std::move(right),
                                               larity, rarity, stats_);
    return s;
  }

  Result<Stream> OpenJoinLike(const RelExpr& e) {
    if (stats_ != nullptr) ++stats_->operators;
    std::vector<std::pair<int, int>> equi;
    CollectEquiPairs(e.predicate(), &equi);
    std::vector<int> lattrs, rattrs;
    lattrs.reserve(equi.size());
    rattrs.reserve(equi.size());
    for (const auto& [a, b] : equi) {
      lattrs.push_back(a);
      rattrs.push_back(b);
    }

    // The build side. A borrowed base relation with a declared index on
    // exactly the join's key attributes is probed in place: no scan, no
    // table build — this is what makes the compiled differential checks
    // cheap on every transaction after the first.
    TXMOD_ASSIGN_OR_RETURN(RelHandle right, Materialize(*e.right()));
    const Relation& r = right.get();
    const RelationIndex* index =
        equi.empty() ? nullptr : r.FindIndex(rattrs);

    const bool is_join = e.kind() == RelExprKind::kJoin;
    if (r.empty()) {
      // An antijoin with nothing to exclude is the left side itself; a
      // join or semijoin with nothing to match is empty. Either way the
      // left subtree is opened but never re-filtered — this is what makes
      // differential checks free when the transaction did not touch the
      // differential relation.
      TXMOD_ASSIGN_OR_RETURN(Stream l, Open(*e.left()));
      if (e.kind() == RelExprKind::kAntiJoin) return l;
      Stream s;
      s.schema = is_join ? MakeSchema(ConcatAttrs(*l.schema, r.schema()))
                         : l.schema;
      s.unique = true;
      s.cursor = std::make_unique<EmptyCursor>();
      return s;
    }

    TXMOD_ASSIGN_OR_RETURN(Stream l, Open(*e.left()));
    Stream s;
    s.schema = is_join ? MakeSchema(ConcatAttrs(*l.schema, r.schema()))
                       : l.schema;
    s.unique = l.unique;
    const std::size_t out_arity = s.schema->arity();
    if (!equi.empty()) {
      // A transient build scans the right side once; an index build side
      // is not scanned at all.
      if (index == nullptr) CountScan(stats_, r.size());
      s.cursor = std::make_unique<HashJoinCursor>(
          e.kind(), &e.predicate(), std::move(l), std::move(right), index,
          std::move(lattrs), std::move(rattrs), out_arity, stats_);
    } else {
      CountScan(stats_, r.size());
      s.cursor = std::make_unique<NestedJoinCursor>(
          e.kind(), &e.predicate(), std::move(l), std::move(right),
          out_arity, stats_);
    }
    return s;
  }

  Result<Stream> OpenSetOp(const RelExpr& e) {
    if (stats_ != nullptr) ++stats_->operators;
    if (e.kind() == RelExprKind::kUnion) {
      TXMOD_ASSIGN_OR_RETURN(Stream l, Open(*e.left()));
      TXMOD_ASSIGN_OR_RETURN(Stream r, Open(*e.right()));
      if (l.schema->arity() != r.schema->arity()) {
        return Status::InvalidArgument(
            StrCat("set operation over different arities: ",
                   l.schema->arity(), " vs ", r.schema->arity()));
      }
      Stream s;
      s.schema = l.schema;
      s.unique = false;  // the same tuple may arrive from both sides
      s.cursor = std::make_unique<UnionCursor>(std::move(l), std::move(r),
                                               stats_);
      return s;
    }
    // Indexed membership fast path: when the right side is a pure
    // attribute projection of a reference whose resolved relation carries
    // a declared index on exactly those attributes, the projection is
    // never materialized — each left tuple costs one index probe. Neither
    // the projection nor its input count as scanned.
    std::vector<int> proj_attrs;
    if (IsAttrProjectionOfRef(*e.right(), &proj_attrs)) {
      TXMOD_ASSIGN_OR_RETURN(
          const Relation* base,
          ctx_.Resolve(e.right()->left()->ref_kind(),
                       e.right()->left()->rel_name()));
      const RelationIndex* index = base->FindIndex(proj_attrs);
      if (index != nullptr) {
        TXMOD_ASSIGN_OR_RETURN(Stream l, Open(*e.left()));
        if (l.schema->arity() != proj_attrs.size()) {
          return Status::InvalidArgument(
              StrCat("set operation over different arities: ",
                     l.schema->arity(), " vs ", proj_attrs.size()));
        }
        Stream s;
        s.schema = l.schema;
        s.unique = l.unique;
        s.cursor = std::make_unique<IndexedSetOpCursor>(
            std::move(l), index,
            /*want_in=*/e.kind() == RelExprKind::kIntersect, stats_);
        return s;
      }
    }

    TXMOD_ASSIGN_OR_RETURN(RelHandle right, Materialize(*e.right()));
    TXMOD_ASSIGN_OR_RETURN(Stream l, Open(*e.left()));
    if (l.schema->arity() != right.get().arity()) {
      return Status::InvalidArgument(
          StrCat("set operation over different arities: ", l.schema->arity(),
                 " vs ", right.get().arity()));
    }
    if (right.get().empty()) {
      // Difference against nothing passes the left side through;
      // intersection with nothing is empty. No scans either way.
      if (e.kind() == RelExprKind::kDifference) return l;
      Stream s;
      s.schema = l.schema;
      s.unique = true;
      s.cursor = std::make_unique<EmptyCursor>();
      return s;
    }
    CountScan(stats_, right.get().size());
    Stream s;
    s.schema = l.schema;
    s.unique = l.unique;
    s.cursor = std::make_unique<FilterSetOpCursor>(
        std::move(l), std::move(right),
        /*want_in=*/e.kind() == RelExprKind::kIntersect, stats_);
    return s;
  }

  Result<RelHandle> EvalLiteral(const RelExpr& e) {
    // Every tuple's arity is validated before the schema-inference loop
    // below reads attribute i of arbitrary tuples: a short tuple used to
    // be an out-of-bounds read.
    for (const Tuple& t : e.literal_tuples()) {
      if (static_cast<int>(t.arity()) != e.literal_arity()) {
        return Status::InvalidArgument(
            StrCat("literal tuple ", t.ToString(), " has arity ", t.arity(),
                   ", expected ", e.literal_arity()));
      }
    }
    std::vector<Attribute> attrs;
    for (int i = 0; i < e.literal_arity(); ++i) {
      const std::size_t col = static_cast<std::size_t>(i);
      AttrType type = AttrType::kString;
      for (const Tuple& t : e.literal_tuples()) {
        if (!t.at(col).is_null()) {
          type = ValueAttrType(t.at(col));
          break;
        }
      }
      attrs.push_back(Attribute{StrCat("c", i), type});
    }
    Relation out(MakeSchema(std::move(attrs)));
    for (const Tuple& t : e.literal_tuples()) {
      out.Insert(t);
    }
    CountEmit(stats_, out.size());
    return RelHandle::Owned(std::move(out));
  }

  struct GroupAcc {
    int64_t count = 0;
    int64_t isum = 0;
    double dsum = 0.0;
    bool any_double = false;
    int64_t non_null = 0;
    std::optional<Value> min;
    std::optional<Value> max;
  };

  static Status Accumulate(GroupAcc* acc, const Value& v) {
    acc->count += 1;
    if (v.is_null()) return Status::OK();
    acc->non_null += 1;
    if (v.is_numeric()) {
      if (v.is_int()) {
        acc->isum += v.as_int();
        acc->dsum += static_cast<double>(v.as_int());
      } else {
        acc->any_double = true;
        acc->dsum += v.as_double();
      }
    }
    if (!acc->min.has_value() ||
        Value::Compare(v, *acc->min) == Value::Ordering::kLess) {
      acc->min = v;
    }
    if (!acc->max.has_value() ||
        Value::Compare(v, *acc->max) == Value::Ordering::kGreater) {
      acc->max = v;
    }
    return Status::OK();
  }

  static Result<Value> Finalize(const GroupAcc& acc, AggFunc func,
                                bool saw_non_numeric) {
    switch (func) {
      case AggFunc::kCnt:
        return Value::Int(acc.count);
      case AggFunc::kSum:
        if (saw_non_numeric) {
          return Status::InvalidArgument("SUM over non-numeric attribute");
        }
        return acc.any_double ? Value::Double(acc.dsum)
                              : Value::Int(acc.isum);
      case AggFunc::kAvg:
        if (saw_non_numeric) {
          return Status::InvalidArgument("AVG over non-numeric attribute");
        }
        if (acc.non_null == 0) return Value::Null();
        return Value::Double(acc.dsum / static_cast<double>(acc.non_null));
      case AggFunc::kMin:
        return acc.min.has_value() ? *acc.min : Value::Null();
      case AggFunc::kMax:
        return acc.max.has_value() ? *acc.max : Value::Null();
    }
    return Status::Internal("unknown aggregate function");
  }

  /// Aggregates are pipeline breakers: the whole input is consumed before
  /// the single output (or group rows) exist. A provably duplicate-free
  /// input streams straight into the accumulators; anything else (e.g. a
  /// projection) is materialized first, because relations are sets and
  /// CNT/SUM/AVG must not observe a tuple twice.
  Result<RelHandle> EvalAggregate(const RelExpr& e) {
    TXMOD_ASSIGN_OR_RETURN(Stream in, Open(*e.left()));
    const RelationSchema& in_schema = *in.schema;

    const int attr = e.agg_attr();
    const bool needs_attr = e.agg_func() != AggFunc::kCnt;
    if (needs_attr &&
        (attr < 0 || attr >= static_cast<int>(in_schema.arity()))) {
      return Status::InvalidArgument(
          StrCat("aggregate attribute #", attr, " out of range for arity ",
                 in_schema.arity()));
    }

    // Output schema: group attrs then the aggregate column.
    std::vector<Attribute> attrs;
    for (int g : e.group_by()) {
      if (g < 0 || g >= static_cast<int>(in_schema.arity())) {
        return Status::InvalidArgument(
            StrCat("group-by attribute #", g, " out of range"));
      }
      attrs.push_back(in_schema.attribute(static_cast<std::size_t>(g)));
    }
    AttrType agg_type = AttrType::kInt;
    switch (e.agg_func()) {
      case AggFunc::kCnt:
        agg_type = AttrType::kInt;
        break;
      case AggFunc::kAvg:
        agg_type = AttrType::kDouble;
        break;
      default:
        agg_type = needs_attr
                       ? in_schema.attribute(static_cast<std::size_t>(attr))
                             .type
                       : AttrType::kInt;
        break;
    }
    attrs.push_back(Attribute{AggFuncToString(e.agg_func()), agg_type});
    Relation out(MakeSchema(std::move(attrs)));

    bool saw_non_numeric = false;
    auto observe = [&](GroupAcc* acc, const Tuple& t) -> Status {
      if (!needs_attr) {
        acc->count += 1;
        return Status::OK();
      }
      const Value& v = t.at(static_cast<std::size_t>(attr));
      if (!v.is_null() && !v.is_numeric() &&
          (e.agg_func() == AggFunc::kSum || e.agg_func() == AggFunc::kAvg)) {
        saw_non_numeric = true;
      }
      return Accumulate(acc, v);
    };

    GroupAcc scalar_acc;
    std::unordered_map<Tuple, GroupAcc, TupleHasher> groups;
    const bool grouped = !e.group_by().empty();
    auto process = [&](const Tuple& t) -> Status {
      CountScan(stats_, 1);
      if (!grouped) return observe(&scalar_acc, t);
      std::vector<Value> key_vals;
      key_vals.reserve(e.group_by().size());
      for (int g : e.group_by()) {
        key_vals.push_back(t.at(static_cast<std::size_t>(g)));
      }
      return observe(&groups[Tuple(std::move(key_vals))], t);
    };

    if (in.unique) {
      for (;;) {
        TXMOD_ASSIGN_OR_RETURN(const Tuple* t, in.cursor->Next());
        if (t == nullptr) break;
        TXMOD_RETURN_IF_ERROR(process(*t));
      }
    } else {
      TXMOD_ASSIGN_OR_RETURN(Relation dedup, Drain(&in));
      for (const Tuple& t : dedup) {
        TXMOD_RETURN_IF_ERROR(process(t));
      }
    }

    if (!grouped) {
      TXMOD_ASSIGN_OR_RETURN(
          Value v, Finalize(scalar_acc, e.agg_func(), saw_non_numeric));
      out.Insert(Tuple({std::move(v)}));
    } else {
      for (const auto& [key, acc] : groups) {
        TXMOD_ASSIGN_OR_RETURN(Value v,
                               Finalize(acc, e.agg_func(), saw_non_numeric));
        Tuple row = key;
        row.Append(std::move(v));
        out.Insert(std::move(row));
      }
    }
    CountEmit(stats_, out.size());
    return RelHandle::Owned(std::move(out));
  }

  const EvalContext& ctx_;
  EvalStats* stats_;
};

}  // namespace

Result<Relation> EvaluateRelExpr(const RelExpr& expr, const EvalContext& ctx,
                                 EvalStats* stats) {
  Evaluator ev(ctx, stats);
  return ev.Evaluate(expr);
}

}  // namespace txmod::algebra
