#include "src/algebra/physical_plan.h"

#include <unordered_map>
#include <utility>

#include "src/algebra/schema_infer.h"
#include "src/common/str_util.h"

namespace txmod::algebra {

namespace {

// ---------------------------------------------------------------------------
// Borrow-or-own handle: kRef inputs are borrowed from the context (no copy);
// computed inputs are owned by the handle.
// ---------------------------------------------------------------------------

class RelHandle {
 public:
  static RelHandle Borrowed(const Relation* rel) {
    RelHandle h;
    h.ptr_ = rel;
    return h;
  }
  static RelHandle Owned(Relation rel) {
    RelHandle h;
    h.owned_ = std::move(rel);
    h.ptr_ = &*h.owned_;
    return h;
  }
  RelHandle() = default;
  RelHandle(RelHandle&& other) noexcept { *this = std::move(other); }
  RelHandle& operator=(RelHandle&& other) noexcept {
    owned_ = std::move(other.owned_);
    ptr_ = owned_.has_value() ? &*owned_ : other.ptr_;
    return *this;
  }

  const Relation& get() const { return *ptr_; }

  /// Moves the relation out, copying when it was merely borrowed.
  Relation Take() && {
    if (owned_.has_value()) return *std::move(owned_);
    return *ptr_;  // deep copy
  }

 private:
  const Relation* ptr_ = nullptr;
  std::optional<Relation> owned_;
};

// ---------------------------------------------------------------------------
// Schema synthesis helpers.
// ---------------------------------------------------------------------------

std::shared_ptr<const RelationSchema> MakeSchema(
    std::vector<Attribute> attrs, std::string name = "") {
  return std::make_shared<const RelationSchema>(std::move(name),
                                                std::move(attrs));
}

AttrType ValueAttrType(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return AttrType::kInt;
    case ValueType::kDouble:
      return AttrType::kDouble;
    case ValueType::kString:
      return AttrType::kString;
    case ValueType::kNull:
      break;
  }
  return AttrType::kString;  // fallback for untyped (all-null) columns
}

std::vector<Attribute> ConcatAttrs(const RelationSchema& a,
                                   const RelationSchema& b) {
  std::vector<Attribute> attrs = a.attributes();
  attrs.insert(attrs.end(), b.attributes().begin(), b.attributes().end());
  return attrs;
}

void CountScan(EvalStats* stats, std::size_t n) {
  if (stats != nullptr) stats->tuples_scanned += n;
}
void CountEmit(EvalStats* stats, std::size_t n) {
  if (stats != nullptr) stats->tuples_emitted += n;
}
void CountProbe(EvalStats* stats, std::size_t n) {
  if (stats != nullptr) stats->index_probes += n;
}
void CountOperator(EvalStats* stats) {
  if (stats != nullptr) ++stats->operators;
}

// ---------------------------------------------------------------------------
// TupleCursor: the pull-based pipeline. Next() yields a borrowed pointer
// that stays valid until the next call on the same cursor (operators with
// computed output own a scratch tuple they overwrite in place). nullptr
// means end-of-stream. Pipelines materialize only at breakers: hash-join
// build sides, set-operation right sides, product right sides, aggregate
// inputs that may carry duplicates, and the final result relation.
// ---------------------------------------------------------------------------

class TupleCursor {
 public:
  virtual ~TupleCursor() = default;
  virtual Result<const Tuple*> Next() = 0;
};

/// A cursor plus the statically known properties of its stream. `unique`
/// is true when the stream provably cannot yield the same tuple twice —
/// set semantics then need no dedup step downstream. Projections, unions
/// and index-lookup semijoins forfeit it; everything else preserves it.
struct Stream {
  std::unique_ptr<TupleCursor> cursor;
  std::shared_ptr<const RelationSchema> schema;
  bool unique = true;
};

class ScanCursor : public TupleCursor {
 public:
  explicit ScanCursor(RelHandle rel)
      : rel_(std::move(rel)),
        it_(rel_.get().begin()),
        end_(rel_.get().end()) {}

  Result<const Tuple*> Next() override {
    if (it_ == end_) return static_cast<const Tuple*>(nullptr);
    const Tuple* t = &*it_;
    ++it_;
    return t;
  }

 private:
  RelHandle rel_;
  Relation::ConstIterator it_;
  Relation::ConstIterator end_;
};

class EmptyCursor : public TupleCursor {
 public:
  Result<const Tuple*> Next() override {
    return static_cast<const Tuple*>(nullptr);
  }
};

/// Scans a run of tuple pointers — the morsel input stream of
/// NodeLocalKernel. The pointers alias tuples owned elsewhere (fragment
/// relations), which must stay alive and unmodified for the cursor's
/// lifetime.
class VectorScanCursor : public TupleCursor {
 public:
  VectorScanCursor(const Tuple* const* tuples, std::size_t count)
      : tuples_(tuples), count_(count) {}

  Result<const Tuple*> Next() override {
    if (i_ == count_) return static_cast<const Tuple*>(nullptr);
    return tuples_[i_++];
  }

 private:
  const Tuple* const* tuples_;
  std::size_t count_;
  std::size_t i_ = 0;
};

/// Re-yields one already-pulled tuple ahead of the rest of the stream:
/// the peek-then-continue pattern. The short-circuit joins peek their
/// differential-bounded side to decide whether the base side needs
/// resolving at all; when it does, the peeked tuple is handed back
/// through this wrapper so counting and results stay exact.
class PrependCursor : public TupleCursor {
 public:
  PrependCursor(Tuple first, std::unique_ptr<TupleCursor> rest)
      : first_(std::move(first)), rest_(std::move(rest)) {}

  Result<const Tuple*> Next() override {
    if (!first_done_) {
      first_done_ = true;
      return &first_;
    }
    return rest_->Next();
  }

 private:
  Tuple first_;
  std::unique_ptr<TupleCursor> rest_;
  bool first_done_ = false;
};

class SelectCursor : public TupleCursor {
 public:
  SelectCursor(Stream child, const ScalarExpr* pred, EvalStats* stats,
               const std::vector<Value>* params)
      : child_(std::move(child)), pred_(pred), stats_(stats),
        params_(params) {}

  Result<const Tuple*> Next() override {
    for (;;) {
      TXMOD_ASSIGN_OR_RETURN(const Tuple* t, child_.cursor->Next());
      if (t == nullptr) return t;
      CountScan(stats_, 1);
      TXMOD_ASSIGN_OR_RETURN(bool keep,
                             pred_->EvalPredicate(t, nullptr, params_));
      if (keep) {
        CountEmit(stats_, 1);
        return t;
      }
    }
  }

 private:
  Stream child_;
  const ScalarExpr* pred_;
  EvalStats* stats_;
  const std::vector<Value>* params_;
};

class ProjectCursor : public TupleCursor {
 public:
  ProjectCursor(Stream child, const std::vector<ProjectionItem>* items,
                EvalStats* stats, const std::vector<Value>* params)
      : child_(std::move(child)),
        items_(items),
        stats_(stats),
        params_(params),
        scratch_(std::vector<Value>(items->size())) {}

  Result<const Tuple*> Next() override {
    TXMOD_ASSIGN_OR_RETURN(const Tuple* t, child_.cursor->Next());
    if (t == nullptr) return t;
    CountScan(stats_, 1);
    for (std::size_t i = 0; i < items_->size(); ++i) {
      TXMOD_ASSIGN_OR_RETURN(
          Value v, (*items_)[i].expr.EvalValue(t, nullptr, params_));
      scratch_.at(i) = std::move(v);
    }
    CountEmit(stats_, 1);
    return &scratch_;
  }

 private:
  Stream child_;
  const std::vector<ProjectionItem>* items_;
  EvalStats* stats_;
  const std::vector<Value>* params_;
  Tuple scratch_;
};

/// Copies `src` into `dst` starting at `offset` (scratch concatenation for
/// products and joins — no fresh Tuple allocation per output row).
void FillScratch(Tuple* dst, const Tuple& src, std::size_t offset) {
  for (std::size_t i = 0; i < src.arity(); ++i) {
    dst->at(offset + i) = src.at(i);
  }
}

class ProductCursor : public TupleCursor {
 public:
  ProductCursor(Stream left, RelHandle right, std::size_t left_arity,
                std::size_t right_arity, EvalStats* stats)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_arity_(left_arity),
        stats_(stats),
        scratch_(std::vector<Value>(left_arity + right_arity)) {}

  Result<const Tuple*> Next() override {
    for (;;) {
      if (lt_ == nullptr || rit_ == right_.get().end()) {
        TXMOD_ASSIGN_OR_RETURN(lt_, left_.cursor->Next());
        if (lt_ == nullptr) return lt_;
        CountScan(stats_, 1);
        FillScratch(&scratch_, *lt_, 0);
        rit_ = right_.get().begin();
        if (rit_ == right_.get().end()) continue;  // empty right operand
      }
      FillScratch(&scratch_, *rit_, left_arity_);
      ++rit_;
      CountEmit(stats_, 1);
      return &scratch_;
    }
  }

 private:
  Stream left_;
  RelHandle right_;
  std::size_t left_arity_;
  EvalStats* stats_;
  Tuple scratch_;
  const Tuple* lt_ = nullptr;
  Relation::ConstIterator rit_;
};

/// Join / semijoin / antijoin over the equality conjuncts of the
/// predicate. The right (build) side is either a transient table built
/// once per evaluation, or — the differential-check fast path — an
/// overlay-aware view of the persistent indexes declared on a base
/// relation (RelationIndexView), in which case this cursor does no build
/// work at all. Probing hashes the left tuple's key attributes in place
/// (EquiKeyHash): no per-probe Tuple allocation. Candidates are verified
/// against the full predicate, so hash collisions (and the predicate's
/// extra non-equality conjuncts) stay correct.
class HashJoinCursor : public TupleCursor {
 public:
  /// `shared_table` (morsel execution): a table over the build side
  /// prepared once per fragment and shared, read-only, by every morsel's
  /// cursor — this cursor then does no build work, like the
  /// RelationIndexView fast path.
  HashJoinCursor(RelExprKind kind, const ScalarExpr* pred, Stream left,
                 RelHandle right, RelationIndexView view,
                 std::vector<int> lattrs, std::vector<int> rattrs,
                 std::size_t out_arity, EvalStats* stats,
                 const std::vector<Value>* params,
                 const RelationIndex::Map* shared_table = nullptr)
      : kind_(kind),
        pred_(pred),
        left_(std::move(left)),
        right_(std::move(right)),
        view_(std::move(view)),
        lattrs_(std::move(lattrs)),
        stats_(stats),
        params_(params),
        scratch_(std::vector<Value>(out_arity)) {
    if (shared_table != nullptr) {
      table_ = shared_table;
    } else if (!view_.valid()) {
      own_table_.reserve(right_.get().size());
      for (const Tuple& rt : right_.get()) {
        own_table_.emplace(EquiKeyHash(rt, rattrs), &rt);
      }
      table_ = &own_table_;
    }
  }

  Result<const Tuple*> Next() override {
    for (;;) {
      if (kind_ == RelExprKind::kJoin && lt_ != nullptr) {
        while (const Tuple* rt = NextCandidate()) {
          TXMOD_ASSIGN_OR_RETURN(bool match,
                                 pred_->EvalPredicate(lt_, rt, params_));
          if (match) {
            FillScratch(&scratch_, *rt, lt_->arity());
            CountEmit(stats_, 1);
            return &scratch_;
          }
        }
      }
      TXMOD_ASSIGN_OR_RETURN(lt_, left_.cursor->Next());
      if (lt_ == nullptr) return lt_;
      CountScan(stats_, 1);
      const std::size_t h = EquiKeyHash(*lt_, lattrs_);
      if (view_.valid()) {
        CountProbe(stats_, 1);
        cand_ = view_.Probe(h);
      } else {
        auto [begin, end] = table_->equal_range(h);
        it_ = begin;
        end_ = end;
      }
      if (kind_ == RelExprKind::kJoin) {
        FillScratch(&scratch_, *lt_, 0);
        continue;
      }
      bool matched = false;
      while (const Tuple* rt = NextCandidate()) {
        TXMOD_ASSIGN_OR_RETURN(bool match,
                               pred_->EvalPredicate(lt_, rt, params_));
        if (match) {
          matched = true;
          break;
        }
      }
      if (matched == (kind_ == RelExprKind::kSemiJoin)) {
        CountEmit(stats_, 1);
        return lt_;
      }
    }
  }

 private:
  const Tuple* NextCandidate() {
    if (view_.valid()) return cand_.Next();
    if (it_ == end_) return nullptr;
    const Tuple* t = it_->second;
    ++it_;
    return t;
  }

  RelExprKind kind_;
  const ScalarExpr* pred_;
  Stream left_;
  RelHandle right_;
  RelationIndexView view_;
  std::vector<int> lattrs_;
  EvalStats* stats_;
  const std::vector<Value>* params_;
  RelationIndex::Map own_table_;
  const RelationIndex::Map* table_ = nullptr;  // own_table_ or shared
  Tuple scratch_;
  const Tuple* lt_ = nullptr;
  RelationIndexView::Candidates cand_;
  RelationIndex::Iterator it_;
  RelationIndex::Iterator end_;
};

/// The index-lookup join: the small (differential-bounded) right side
/// drives lookups into a declared index on the left base relation, which
/// is never scanned. This inverts the probe direction of HashJoinCursor —
/// the shape the translator emits for delete-heavy referential checks,
/// semijoin[l.ref = r.key](F, dminus(K)), costs O(|dminus(K)|) probes
/// instead of O(|F|). Join output order stays (left, right); semijoin
/// emits left tuples and may emit one twice (set-dedup at the
/// materialization boundary), so the stream is not unique.
class IndexLookupJoinCursor : public TupleCursor {
 public:
  IndexLookupJoinCursor(RelExprKind kind, const ScalarExpr* pred,
                        RelationIndexView view, Stream right,
                        std::vector<int> rattrs, std::size_t left_arity,
                        std::size_t out_arity, EvalStats* stats,
                        const std::vector<Value>* params)
      : kind_(kind),
        pred_(pred),
        view_(std::move(view)),
        right_(std::move(right)),
        rattrs_(std::move(rattrs)),
        left_arity_(left_arity),
        stats_(stats),
        params_(params),
        scratch_(std::vector<Value>(out_arity)) {}

  Result<const Tuple*> Next() override {
    for (;;) {
      while (const Tuple* lt = cand_.Next()) {
        TXMOD_ASSIGN_OR_RETURN(bool match,
                               pred_->EvalPredicate(lt, rt_, params_));
        if (!match) continue;
        CountEmit(stats_, 1);
        if (kind_ == RelExprKind::kSemiJoin) return lt;
        FillScratch(&scratch_, *lt, 0);
        return &scratch_;
      }
      TXMOD_ASSIGN_OR_RETURN(rt_, right_.cursor->Next());
      if (rt_ == nullptr) return rt_;
      CountScan(stats_, 1);
      CountProbe(stats_, 1);
      cand_ = view_.Probe(EquiKeyHash(*rt_, rattrs_));
      if (kind_ == RelExprKind::kJoin) {
        // Pre-fill the right half of the output scratch for this probe's
        // candidates (harmlessly overwritten if none survive).
        FillScratch(&scratch_, *rt_, left_arity_);
      }
    }
  }

 private:
  RelExprKind kind_;
  const ScalarExpr* pred_;
  RelationIndexView view_;
  Stream right_;
  std::vector<int> rattrs_;
  std::size_t left_arity_;
  EvalStats* stats_;
  const std::vector<Value>* params_;
  Tuple scratch_;
  const Tuple* rt_ = nullptr;
  RelationIndexView::Candidates cand_;
};

/// Join-like fallback when the predicate has no equality conjunct: stream
/// the left side against the materialized right side.
class NestedJoinCursor : public TupleCursor {
 public:
  NestedJoinCursor(RelExprKind kind, const ScalarExpr* pred, Stream left,
                   RelHandle right, std::size_t out_arity, EvalStats* stats,
                   const std::vector<Value>* params)
      : kind_(kind),
        pred_(pred),
        left_(std::move(left)),
        right_(std::move(right)),
        stats_(stats),
        params_(params),
        scratch_(std::vector<Value>(out_arity)) {}

  Result<const Tuple*> Next() override {
    for (;;) {
      if (kind_ == RelExprKind::kJoin && lt_ != nullptr) {
        while (rit_ != right_.get().end()) {
          const Tuple* rt = &*rit_;
          ++rit_;
          TXMOD_ASSIGN_OR_RETURN(bool match,
                                 pred_->EvalPredicate(lt_, rt, params_));
          if (match) {
            FillScratch(&scratch_, *rt, lt_->arity());
            CountEmit(stats_, 1);
            return &scratch_;
          }
        }
      }
      TXMOD_ASSIGN_OR_RETURN(lt_, left_.cursor->Next());
      if (lt_ == nullptr) return lt_;
      CountScan(stats_, 1);
      if (kind_ == RelExprKind::kJoin) {
        rit_ = right_.get().begin();
        FillScratch(&scratch_, *lt_, 0);
        continue;
      }
      bool matched = false;
      for (const Tuple& rt : right_.get()) {
        TXMOD_ASSIGN_OR_RETURN(bool match,
                               pred_->EvalPredicate(lt_, &rt, params_));
        if (match) {
          matched = true;
          break;
        }
      }
      if (matched == (kind_ == RelExprKind::kSemiJoin)) {
        CountEmit(stats_, 1);
        return lt_;
      }
    }
  }

 private:
  RelExprKind kind_;
  const ScalarExpr* pred_;
  Stream left_;
  RelHandle right_;
  EvalStats* stats_;
  const std::vector<Value>* params_;
  Tuple scratch_;
  const Tuple* lt_ = nullptr;
  Relation::ConstIterator rit_;
};

class UnionCursor : public TupleCursor {
 public:
  UnionCursor(Stream left, Stream right, EvalStats* stats)
      : left_(std::move(left)), right_(std::move(right)), stats_(stats) {}

  Result<const Tuple*> Next() override {
    if (!left_done_) {
      TXMOD_ASSIGN_OR_RETURN(const Tuple* t, left_.cursor->Next());
      if (t != nullptr) {
        CountScan(stats_, 1);
        CountEmit(stats_, 1);
        return t;
      }
      left_done_ = true;
    }
    TXMOD_ASSIGN_OR_RETURN(const Tuple* t, right_.cursor->Next());
    if (t != nullptr) {
      CountScan(stats_, 1);
      CountEmit(stats_, 1);
    }
    return t;
  }

 private:
  Stream left_;
  Stream right_;
  EvalStats* stats_;
  bool left_done_ = false;
};

/// Difference (want_in = false) / intersection (want_in = true) against a
/// *projection of an indexed base relation*, without materializing the
/// projection: x is a member of project[attrs](R) iff some R-tuple carries
/// exactly x's values at `attrs`, which one probe of R's index answers.
/// This is the shape the translator emits for the paper's differential
/// referential checks — diff(project[ref](dplus(F)), project[key](K)) —
/// and is what turns their cost from O(|K|) into O(|dplus(F)|).
/// Membership is type-exact (set semantics), verified on each candidate;
/// KeyHash never separates identical values, so no member is missed.
class IndexedSetOpCursor : public TupleCursor {
 public:
  IndexedSetOpCursor(Stream left, RelationIndexView view, bool want_in,
                     EvalStats* stats)
      : left_(std::move(left)),
        view_(std::move(view)),
        want_in_(want_in),
        stats_(stats) {
    probe_attrs_.reserve(view_.attrs().size());
    for (std::size_t i = 0; i < view_.attrs().size(); ++i) {
      probe_attrs_.push_back(static_cast<int>(i));
    }
  }

  Result<const Tuple*> Next() override {
    for (;;) {
      TXMOD_ASSIGN_OR_RETURN(const Tuple* t, left_.cursor->Next());
      if (t == nullptr) return t;
      CountScan(stats_, 1);
      CountProbe(stats_, 1);
      const std::size_t h = EquiKeyHash(*t, probe_attrs_);
      bool found = false;
      RelationIndexView::Candidates cand = view_.Probe(h);
      while (const Tuple* c = cand.Next()) {
        bool equal = true;
        for (std::size_t i = 0; i < view_.attrs().size(); ++i) {
          const std::size_t a = static_cast<std::size_t>(view_.attrs()[i]);
          if (!(c->at(a) == t->at(i))) {
            equal = false;
            break;
          }
        }
        if (equal) {
          found = true;
          break;
        }
      }
      if (found == want_in_) {
        CountEmit(stats_, 1);
        return t;
      }
    }
  }

 private:
  Stream left_;
  RelationIndexView view_;
  bool want_in_;
  EvalStats* stats_;
  std::vector<int> probe_attrs_;
};

/// Difference (want_in = false) / intersection (want_in = true): stream
/// the left side, membership-test against the materialized right side.
class FilterSetOpCursor : public TupleCursor {
 public:
  FilterSetOpCursor(Stream left, RelHandle right, bool want_in,
                    EvalStats* stats)
      : left_(std::move(left)),
        right_(std::move(right)),
        want_in_(want_in),
        stats_(stats) {}

  Result<const Tuple*> Next() override {
    for (;;) {
      TXMOD_ASSIGN_OR_RETURN(const Tuple* t, left_.cursor->Next());
      if (t == nullptr) return t;
      CountScan(stats_, 1);
      if (right_.get().Contains(*t) == want_in_) {
        CountEmit(stats_, 1);
        return t;
      }
    }
  }

 private:
  Stream left_;
  RelHandle right_;
  bool want_in_;
  EvalStats* stats_;
};

Result<Relation> Drain(Stream* s) {
  Relation out(s->schema);
  for (;;) {
    TXMOD_ASSIGN_OR_RETURN(const Tuple* t, s->cursor->Next());
    if (t == nullptr) break;
    out.Insert(*t);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Compilation: logical RelExpr -> physical operator tree. All operator
// choice lives here; execution below only follows the chosen ops.
// ---------------------------------------------------------------------------

/// True when `e`'s result size is bounded by the transaction's
/// differentials (and literals), independent of base-relation sizes — the
/// compiled differential checks' "small side". Such a side may safely
/// drive an index-lookup join into a base relation.
bool DeltaBounded(const RelExpr& e) {
  switch (e.kind()) {
    case RelExprKind::kRef:
      return e.ref_kind() == RelRefKind::kDeltaPlus ||
             e.ref_kind() == RelRefKind::kDeltaMinus;
    case RelExprKind::kLiteral:
      return true;
    case RelExprKind::kAggregate:
      // A scalar aggregate is one tuple; grouped output is bounded by its
      // input.
      return e.group_by().empty() || DeltaBounded(*e.left());
    case RelExprKind::kSelect:
    case RelExprKind::kProject:
      return DeltaBounded(*e.left());
    case RelExprKind::kSemiJoin:
    case RelExprKind::kAntiJoin:
    case RelExprKind::kDifference:
    case RelExprKind::kIntersect:
      return DeltaBounded(*e.left());  // output is a subset of the left
    case RelExprKind::kUnion:
    case RelExprKind::kProduct:
    case RelExprKind::kJoin:
      return DeltaBounded(*e.left()) && DeltaBounded(*e.right());
  }
  return false;
}

std::unique_ptr<PhysicalNode> CompileNode(const RelExpr& e) {
  auto n = std::make_unique<PhysicalNode>();
  n->logical = &e;
  switch (e.kind()) {
    case RelExprKind::kRef:
      n->op = PhysOpKind::kScan;
      return n;
    case RelExprKind::kLiteral:
      n->op = PhysOpKind::kLiteral;
      return n;
    case RelExprKind::kSelect:
      n->op = PhysOpKind::kSelect;
      n->children.push_back(CompileNode(*e.left()));
      return n;
    case RelExprKind::kProject:
      n->op = PhysOpKind::kProject;
      n->children.push_back(CompileNode(*e.left()));
      return n;
    case RelExprKind::kProduct:
      n->op = PhysOpKind::kProduct;
      n->children.push_back(CompileNode(*e.left()));
      n->children.push_back(CompileNode(*e.right()));
      return n;
    case RelExprKind::kJoin:
    case RelExprKind::kSemiJoin:
    case RelExprKind::kAntiJoin: {
      std::vector<std::pair<int, int>> equi;
      CollectEquiPairs(e.predicate(), &equi);
      for (const auto& [a, b] : equi) {
        n->left_keys.push_back(a);
        n->right_keys.push_back(b);
      }
      n->children.push_back(CompileNode(*e.left()));
      n->children.push_back(CompileNode(*e.right()));
      if (equi.empty()) {
        n->op = PhysOpKind::kNestedLoopJoin;
      } else if (e.kind() != RelExprKind::kAntiJoin &&
                 e.left()->kind() == RelExprKind::kRef &&
                 e.left()->ref_kind() == RelRefKind::kBase &&
                 DeltaBounded(*e.right())) {
        // The delete-heavy differential shape: a large base relation
        // probed against a small differential side. Drive from the small
        // side through the base relation's index. (Antijoins must visit
        // every left tuple, so they gain nothing from this inversion.)
        n->op = PhysOpKind::kIndexLookupJoin;
      } else {
        n->op = PhysOpKind::kHashJoin;
      }
      return n;
    }
    case RelExprKind::kUnion:
      n->op = PhysOpKind::kUnion;
      n->children.push_back(CompileNode(*e.left()));
      n->children.push_back(CompileNode(*e.right()));
      return n;
    case RelExprKind::kDifference:
    case RelExprKind::kIntersect: {
      n->children.push_back(CompileNode(*e.left()));
      n->children.push_back(CompileNode(*e.right()));
      std::vector<int> attrs;
      if (IsAttrProjectionOfRef(*e.right(), &attrs)) {
        n->op = PhysOpKind::kIndexSetOp;
        n->setop_ref_kind = e.right()->left()->ref_kind();
        n->setop_rel = e.right()->left()->rel_name();
        n->setop_attrs = std::move(attrs);
      } else {
        n->op = PhysOpKind::kHashSetOp;
      }
      return n;
    }
    case RelExprKind::kAggregate:
      n->op = PhysOpKind::kAggregate;
      n->children.push_back(CompileNode(*e.left()));
      return n;
  }
  n->op = PhysOpKind::kScan;
  return n;
}

// ---------------------------------------------------------------------------
// Serial execution: the pull-based pipeline over a compiled plan.
// ---------------------------------------------------------------------------

class PlanExecutor {
 public:
  PlanExecutor(const EvalContext& ctx, EvalStats* stats,
               const std::vector<Value>* params)
      : ctx_(ctx), stats_(stats), params_(params) {}

  Result<Relation> Evaluate(const PhysicalNode& n) {
    // Nodes that are whole relations already (references) or inherently
    // eager (literals, aggregates) skip the cursor layer at the root.
    switch (n.op) {
      case PhysOpKind::kScan:
      case PhysOpKind::kLiteral:
      case PhysOpKind::kAggregate: {
        TXMOD_ASSIGN_OR_RETURN(RelHandle h, Materialize(n));
        return std::move(h).Take();
      }
      default:
        break;
    }
    TXMOD_ASSIGN_OR_RETURN(Stream s, Open(n));
    return Drain(&s);
  }

 private:
  /// A whole-relation view of `n`: borrowed for references, owned (and
  /// deduplicated) for everything else. Build sides of joins, products and
  /// set operations — the pipeline breakers — come through here.
  Result<RelHandle> Materialize(const PhysicalNode& n) {
    switch (n.op) {
      case PhysOpKind::kScan: {
        CountOperator(stats_);
        TXMOD_ASSIGN_OR_RETURN(
            const Relation* rel,
            ctx_.Resolve(n.logical->ref_kind(), n.logical->rel_name()));
        return RelHandle::Borrowed(rel);
      }
      case PhysOpKind::kLiteral: {
        CountOperator(stats_);
        TXMOD_ASSIGN_OR_RETURN(
            Relation out, MaterializeLiteral(*n.logical, stats_, params_));
        return RelHandle::Owned(std::move(out));
      }
      case PhysOpKind::kAggregate: {
        CountOperator(stats_);
        return EvalAggregate(n);
      }
      default: {
        TXMOD_ASSIGN_OR_RETURN(Stream s, Open(n));
        TXMOD_ASSIGN_OR_RETURN(Relation out, Drain(&s));
        return RelHandle::Owned(std::move(out));
      }
    }
  }

  Result<Stream> Open(const PhysicalNode& n) {
    switch (n.op) {
      case PhysOpKind::kScan:
      case PhysOpKind::kLiteral:
      case PhysOpKind::kAggregate: {
        TXMOD_ASSIGN_OR_RETURN(RelHandle h, Materialize(n));
        Stream s;
        s.schema = h.get().schema_ptr();
        s.unique = true;
        s.cursor = std::make_unique<ScanCursor>(std::move(h));
        return s;
      }
      case PhysOpKind::kSelect:
        return OpenSelect(n);
      case PhysOpKind::kProject:
        return OpenProject(n);
      case PhysOpKind::kProduct:
        return OpenProduct(n);
      case PhysOpKind::kHashJoin:
      case PhysOpKind::kNestedLoopJoin:
        return OpenJoinLike(n);
      case PhysOpKind::kIndexLookupJoin:
        return OpenIndexLookupJoin(n);
      case PhysOpKind::kUnion:
        return OpenUnion(n);
      case PhysOpKind::kHashSetOp:
      case PhysOpKind::kIndexSetOp:
        return OpenSetOp(n);
    }
    return Status::Internal("unknown physical operator");
  }

  Result<Stream> OpenSelect(const PhysicalNode& n) {
    CountOperator(stats_);
    TXMOD_ASSIGN_OR_RETURN(Stream in, Open(n.child(0)));
    Stream s;
    s.schema = in.schema;
    s.unique = in.unique;
    s.cursor = std::make_unique<SelectCursor>(
        std::move(in), &n.logical->predicate(), stats_, params_);
    return s;
  }

  Result<Stream> OpenProject(const PhysicalNode& n) {
    CountOperator(stats_);
    TXMOD_ASSIGN_OR_RETURN(Stream in, Open(n.child(0)));
    const std::vector<ProjectionItem>& items = n.logical->projections();
    std::vector<Attribute> attrs;
    attrs.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      attrs.push_back(
          Attribute{ProjectionItemName(items[i], *in.schema, i),
                    InferScalarType(items[i].expr, *in.schema, params_)});
    }
    Stream s;
    s.schema = MakeSchema(std::move(attrs));
    s.unique = false;  // distinct inputs may project to the same output
    s.cursor = std::make_unique<ProjectCursor>(std::move(in), &items, stats_,
                                               params_);
    return s;
  }

  Result<Stream> OpenProduct(const PhysicalNode& n) {
    CountOperator(stats_);
    TXMOD_ASSIGN_OR_RETURN(RelHandle right, Materialize(n.child(1)));
    CountScan(stats_, right.get().size());  // build side is read once
    TXMOD_ASSIGN_OR_RETURN(Stream l, Open(n.child(0)));
    const std::size_t larity = l.schema->arity();
    const std::size_t rarity = right.get().arity();
    Stream s;
    s.schema = MakeSchema(ConcatAttrs(*l.schema, right.get().schema()));
    s.unique = l.unique;  // the right side, a set, cannot repeat
    s.cursor = std::make_unique<ProductCursor>(std::move(l), std::move(right),
                                               larity, rarity, stats_);
    return s;
  }

  Result<Stream> OpenJoinLike(const PhysicalNode& n) {
    CountOperator(stats_);
    // The build side. A borrowed base relation with a declared index on
    // exactly the join's key attributes is probed in place: no scan, no
    // table build — this is what makes the compiled differential checks
    // cheap on every transaction after the first.
    TXMOD_ASSIGN_OR_RETURN(RelHandle right, Materialize(n.child(1)));
    return OpenJoinWithRight(n, std::move(right));
  }

  /// The rest of a join-like open, once the build side is in hand (the
  /// index-lookup fallback re-enters here with its already-peeked side).
  /// The caller has counted the operator.
  Result<Stream> OpenJoinWithRight(const PhysicalNode& n, RelHandle right) {
    const RelExpr& e = *n.logical;
    const Relation& r = right.get();
    const RelationIndexView view = n.right_keys.empty()
                                       ? RelationIndexView()
                                       : r.FindIndexView(n.right_keys);

    const bool is_join = e.kind() == RelExprKind::kJoin;
    if (r.empty()) {
      // An antijoin with nothing to exclude is the left side itself; a
      // join or semijoin with nothing to match is empty without reading
      // the left side at all — its schema is resolved without recording a
      // data read, which keeps optimistic read sets free of relations a
      // trivially-satisfied differential check never actually consulted.
      if (e.kind() == RelExprKind::kAntiJoin) return Open(n.child(0));
      TXMOD_ASSIGN_OR_RETURN(std::shared_ptr<const RelationSchema> lschema,
                             SubtreeSchema(n.child(0)));
      if (lschema != nullptr) {
        Stream s;
        s.schema = is_join ? MakeSchema(ConcatAttrs(*lschema, r.schema()))
                           : std::move(lschema);
        s.unique = true;
        s.cursor = std::make_unique<EmptyCursor>();
        return s;
      }
      // Schema inference could not type the subtree; open it (the
      // cursor below never pulls from it).
      TXMOD_ASSIGN_OR_RETURN(Stream l, Open(n.child(0)));
      Stream s;
      s.schema = is_join ? MakeSchema(ConcatAttrs(*l.schema, r.schema()))
                         : l.schema;
      s.unique = true;
      s.cursor = std::make_unique<EmptyCursor>();
      return s;
    }

    TXMOD_ASSIGN_OR_RETURN(Stream l, Open(n.child(0)));
    Stream s;
    s.schema = is_join ? MakeSchema(ConcatAttrs(*l.schema, r.schema()))
                       : l.schema;
    s.unique = l.unique;
    const std::size_t out_arity = s.schema->arity();
    if (!n.right_keys.empty()) {
      // A transient build scans the right side once; an index build side
      // is not scanned at all.
      if (!view.valid()) CountScan(stats_, r.size());
      s.cursor = std::make_unique<HashJoinCursor>(
          e.kind(), &e.predicate(), std::move(l), std::move(right), view,
          n.left_keys, n.right_keys, out_arity, stats_, params_);
    } else {
      CountScan(stats_, r.size());
      s.cursor = std::make_unique<NestedJoinCursor>(
          e.kind(), &e.predicate(), std::move(l), std::move(right),
          out_arity, stats_, params_);
    }
    return s;
  }

  Result<Stream> OpenIndexLookupJoin(const PhysicalNode& n) {
    const RelExpr& e = *n.logical;
    const bool is_join = e.kind() == RelExprKind::kJoin;
    // Peek the differential-bounded right side before touching the base
    // probe side: a rule check over an untouched differential then never
    // resolves the base relation at all — no scan, no index probe, and
    // (for optimistic sessions) no recorded read to conflict on.
    TXMOD_ASSIGN_OR_RETURN(Stream r, Open(n.child(1)));
    TXMOD_ASSIGN_OR_RETURN(const Tuple* first, r.cursor->Next());
    if (first == nullptr) {
      CountOperator(stats_);
      TXMOD_ASSIGN_OR_RETURN(
          const Relation* base,
          ctx_.ResolveSchemaOnly(e.left()->ref_kind(),
                                 e.left()->rel_name()));
      Stream s;
      s.schema = is_join
                     ? MakeSchema(ConcatAttrs(base->schema(), *r.schema))
                     : base->schema_ptr();
      s.unique = true;
      s.cursor = std::make_unique<EmptyCursor>();
      return s;
    }
    Tuple first_copy = *first;
    r.cursor = std::make_unique<PrependCursor>(std::move(first_copy),
                                               std::move(r.cursor));

    TXMOD_ASSIGN_OR_RETURN(
        const Relation* base,
        ctx_.Resolve(e.left()->ref_kind(), e.left()->rel_name()));
    RelationIndexView view = base->FindIndexView(n.left_keys);
    // Without a declared probe-side index the inversion has no advantage;
    // run the node as the plain hash join it would otherwise have been,
    // materializing the (already peeked) right side as its build.
    if (!view.valid()) {
      CountOperator(stats_);
      TXMOD_ASSIGN_OR_RETURN(Relation right_rel, Drain(&r));
      return OpenJoinWithRight(n, RelHandle::Owned(std::move(right_rel)));
    }

    CountOperator(stats_);
    Stream s;
    s.schema = is_join
                   ? MakeSchema(ConcatAttrs(base->schema(), *r.schema))
                   : base->schema_ptr();
    // A semijoin may surface the same base tuple for two different right
    // tuples; a join's output pairs repeat only if the right stream does.
    s.unique = is_join ? r.unique : false;
    const std::size_t out_arity = s.schema->arity();
    const std::size_t left_arity = base->arity();
    s.cursor = std::make_unique<IndexLookupJoinCursor>(
        e.kind(), &e.predicate(), std::move(view), std::move(r),
        n.right_keys, left_arity, out_arity, stats_, params_);
    return s;
  }

  Result<Stream> OpenUnion(const PhysicalNode& n) {
    CountOperator(stats_);
    TXMOD_ASSIGN_OR_RETURN(Stream l, Open(n.child(0)));
    TXMOD_ASSIGN_OR_RETURN(Stream r, Open(n.child(1)));
    if (l.schema->arity() != r.schema->arity()) {
      return Status::InvalidArgument(
          StrCat("set operation over different arities: ", l.schema->arity(),
                 " vs ", r.schema->arity()));
    }
    Stream s;
    s.schema = l.schema;
    s.unique = false;  // the same tuple may arrive from both sides
    s.cursor = std::make_unique<UnionCursor>(std::move(l), std::move(r),
                                             stats_);
    return s;
  }

  Result<Stream> OpenSetOp(const PhysicalNode& n) {
    const RelExpr& e = *n.logical;
    const bool want_in = e.kind() == RelExprKind::kIntersect;
    // Indexed membership fast path: when the right side is a pure
    // attribute projection of a reference whose resolved relation carries
    // a declared index on exactly those attributes, the projection is
    // never materialized — each left tuple costs one index probe. Neither
    // the projection nor its input count as scanned. The left side is
    // peeked first: an empty left (an untouched differential, the common
    // rule-check case) makes both diff and intersect empty without the
    // membership relation ever being resolved — so it is not recorded as
    // a read.
    if (n.op == PhysOpKind::kIndexSetOp) {
      TXMOD_ASSIGN_OR_RETURN(Stream l, Open(n.child(0)));
      if (l.schema->arity() != n.setop_attrs.size()) {
        return Status::InvalidArgument(
            StrCat("set operation over different arities: ",
                   l.schema->arity(), " vs ", n.setop_attrs.size()));
      }
      TXMOD_ASSIGN_OR_RETURN(const Tuple* first, l.cursor->Next());
      if (first == nullptr) {
        CountOperator(stats_);
        Stream s;
        s.schema = l.schema;
        s.unique = true;
        s.cursor = std::make_unique<EmptyCursor>();
        return s;
      }
      Tuple first_copy = *first;
      l.cursor = std::make_unique<PrependCursor>(std::move(first_copy),
                                                 std::move(l.cursor));
      TXMOD_ASSIGN_OR_RETURN(const Relation* base,
                             ctx_.Resolve(n.setop_ref_kind, n.setop_rel));
      RelationIndexView view = base->FindIndexView(n.setop_attrs);
      if (view.valid()) {
        CountOperator(stats_);
        Stream s;
        s.schema = l.schema;
        s.unique = l.unique;
        s.cursor = std::make_unique<IndexedSetOpCursor>(
            std::move(l), std::move(view), want_in, stats_);
        return s;
      }
      // No declared index after all: generic membership over the
      // already-open (peeked) left stream.
      CountOperator(stats_);
      TXMOD_ASSIGN_OR_RETURN(RelHandle right, Materialize(n.child(1)));
      return OpenSetOpWithInputs(std::move(l), std::move(right), want_in);
    }

    CountOperator(stats_);
    TXMOD_ASSIGN_OR_RETURN(RelHandle right, Materialize(n.child(1)));
    TXMOD_ASSIGN_OR_RETURN(Stream l, Open(n.child(0)));
    return OpenSetOpWithInputs(std::move(l), std::move(right), want_in);
  }

  Result<Stream> OpenSetOpWithInputs(Stream l, RelHandle right,
                                     bool want_in) {
    if (l.schema->arity() != right.get().arity()) {
      return Status::InvalidArgument(
          StrCat("set operation over different arities: ", l.schema->arity(),
                 " vs ", right.get().arity()));
    }
    if (right.get().empty()) {
      // Difference against nothing passes the left side through;
      // intersection with nothing is empty. No scans either way.
      if (!want_in) return l;
      Stream s;
      s.schema = l.schema;
      s.unique = true;
      s.cursor = std::make_unique<EmptyCursor>();
      return s;
    }
    CountScan(stats_, right.get().size());
    Stream s;
    s.schema = l.schema;
    s.unique = l.unique;
    s.cursor = std::make_unique<FilterSetOpCursor>(
        std::move(l), std::move(right), want_in, stats_);
    return s;
  }

  /// Static schema of the subtree under `n` without executing it and
  /// without recording data reads: a direct schema-only resolve for
  /// scans, logical-tree inference otherwise. Returns null (not an
  /// error) when inference cannot type the tree; the caller then falls
  /// back to opening the subtree.
  Result<std::shared_ptr<const RelationSchema>> SubtreeSchema(
      const PhysicalNode& n) {
    if (n.op == PhysOpKind::kScan) {
      TXMOD_ASSIGN_OR_RETURN(
          const Relation* rel,
          ctx_.ResolveSchemaOnly(n.logical->ref_kind(),
                                 n.logical->rel_name()));
      return rel->schema_ptr();
    }
    Result<RelationSchema> inferred = InferSchema(
        *n.logical,
        [this](RelRefKind kind,
               const std::string& name) -> Result<RelationSchema> {
          TXMOD_ASSIGN_OR_RETURN(const Relation* rel,
                                 ctx_.ResolveSchemaOnly(kind, name));
          return rel->schema();
        });
    if (!inferred.ok()) return std::shared_ptr<const RelationSchema>();
    return std::make_shared<const RelationSchema>(*std::move(inferred));
  }

  /// Aggregates are pipeline breakers: the whole input is consumed before
  /// the single output (or group rows) exist. A provably duplicate-free
  /// input streams straight into the accumulators; anything else (e.g. a
  /// projection) is materialized first, because relations are sets and
  /// CNT/SUM/AVG must not observe a tuple twice.
  Result<RelHandle> EvalAggregate(const PhysicalNode& n) {
    const RelExpr& e = *n.logical;
    TXMOD_ASSIGN_OR_RETURN(Stream in, Open(n.child(0)));
    const RelationSchema& in_schema = *in.schema;

    const int attr = e.agg_attr();
    const bool needs_attr = e.agg_func() != AggFunc::kCnt;
    if (needs_attr &&
        (attr < 0 || attr >= static_cast<int>(in_schema.arity()))) {
      return Status::InvalidArgument(
          StrCat("aggregate attribute #", attr, " out of range for arity ",
                 in_schema.arity()));
    }

    // Output schema: group attrs then the aggregate column.
    std::vector<Attribute> attrs;
    for (int g : e.group_by()) {
      if (g < 0 || g >= static_cast<int>(in_schema.arity())) {
        return Status::InvalidArgument(
            StrCat("group-by attribute #", g, " out of range"));
      }
      attrs.push_back(in_schema.attribute(static_cast<std::size_t>(g)));
    }
    AttrType agg_type = AttrType::kInt;
    switch (e.agg_func()) {
      case AggFunc::kCnt:
        agg_type = AttrType::kInt;
        break;
      case AggFunc::kAvg:
        agg_type = AttrType::kDouble;
        break;
      default:
        agg_type = needs_attr
                       ? in_schema.attribute(static_cast<std::size_t>(attr))
                             .type
                       : AttrType::kInt;
        break;
    }
    attrs.push_back(Attribute{AggFuncToString(e.agg_func()), agg_type});
    Relation out(MakeSchema(std::move(attrs)));

    auto observe = [&](AggPartial* acc, const Tuple& t) {
      if (!needs_attr) {
        acc->ObserveCount();
        return;
      }
      acc->Observe(t.at(static_cast<std::size_t>(attr)), e.agg_func());
    };

    AggPartial scalar_acc;
    std::unordered_map<Tuple, AggPartial, TupleHasher> groups;
    const bool grouped = !e.group_by().empty();
    auto process = [&](const Tuple& t) {
      CountScan(stats_, 1);
      if (!grouped) {
        observe(&scalar_acc, t);
        return;
      }
      std::vector<Value> key_vals;
      key_vals.reserve(e.group_by().size());
      for (int g : e.group_by()) {
        key_vals.push_back(t.at(static_cast<std::size_t>(g)));
      }
      observe(&groups[Tuple(std::move(key_vals))], t);
    };

    if (in.unique) {
      for (;;) {
        TXMOD_ASSIGN_OR_RETURN(const Tuple* t, in.cursor->Next());
        if (t == nullptr) break;
        process(*t);
      }
    } else {
      TXMOD_ASSIGN_OR_RETURN(Relation dedup, Drain(&in));
      for (const Tuple& t : dedup) {
        process(t);
      }
    }

    if (!grouped) {
      TXMOD_ASSIGN_OR_RETURN(Value v,
                             FinalizeAggregate(scalar_acc, e.agg_func()));
      out.Insert(Tuple({std::move(v)}));
    } else {
      for (const auto& [key, acc] : groups) {
        TXMOD_ASSIGN_OR_RETURN(Value v, FinalizeAggregate(acc, e.agg_func()));
        Tuple row = key;
        row.Append(std::move(v));
        out.Insert(std::move(row));
      }
    }
    CountEmit(stats_, out.size());
    return RelHandle::Owned(std::move(out));
  }

  const EvalContext& ctx_;
  EvalStats* stats_;
  const std::vector<Value>* params_;
};

// ---------------------------------------------------------------------------
// Explain.
// ---------------------------------------------------------------------------

std::string KeyPairs(const PhysicalNode& n) {
  std::vector<std::string> parts;
  parts.reserve(n.left_keys.size());
  for (std::size_t i = 0; i < n.left_keys.size(); ++i) {
    parts.push_back(StrCat(n.left_keys[i], "=", n.right_keys[i]));
  }
  return Join(parts, ",");
}

std::string AttrList(const std::vector<int>& attrs) {
  std::vector<std::string> parts;
  parts.reserve(attrs.size());
  for (int a : attrs) parts.push_back(StrCat(a));
  return Join(parts, ",");
}

const char* JoinKindName(const RelExpr& e) {
  switch (e.kind()) {
    case RelExprKind::kJoin:
      return "join";
    case RelExprKind::kSemiJoin:
      return "semijoin";
    case RelExprKind::kAntiJoin:
      return "antijoin";
    default:
      return "?";
  }
}

void ExplainNode(const PhysicalNode& n, int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  const RelExpr& e = *n.logical;
  switch (n.op) {
    case PhysOpKind::kScan:
      out->append(StrCat("scan[", RelRefKindToString(e.ref_kind()), " ",
                         e.rel_name(), "]"));
      break;
    case PhysOpKind::kLiteral:
      if (e.literal_param_base() >= 0 && !e.literal_tuples().empty()) {
        // Parameter-slot annotation: a canonical literal names the slot
        // range its values bind from, so Explain() shows what varies
        // between same-shape statements. (A zero-tuple literal binds no
        // slots — no range to print.)
        const int n_slots =
            static_cast<int>(e.literal_tuples().size()) * e.literal_arity();
        out->append(StrCat("literal[", e.literal_tuples().size(),
                           " tuples, params ?", e.literal_param_base(), "..?",
                           e.literal_param_base() + n_slots - 1, "]"));
      } else {
        out->append(StrCat("literal[", e.literal_tuples().size(),
                           " tuples]"));
      }
      break;
    case PhysOpKind::kSelect:
      out->append(StrCat("select[", e.predicate().ToString(), "]"));
      break;
    case PhysOpKind::kProject: {
      std::vector<std::string> items;
      for (const ProjectionItem& item : e.projections()) {
        items.push_back(item.name.empty() ? item.expr.ToString()
                                          : item.name);
      }
      out->append(StrCat("project[", Join(items, ","), "]"));
      break;
    }
    case PhysOpKind::kProduct:
      out->append("product");
      break;
    case PhysOpKind::kHashJoin:
      out->append(StrCat("hash_join[", JoinKindName(e), ", keys=(",
                         KeyPairs(n), ")]"));
      break;
    case PhysOpKind::kIndexLookupJoin:
      out->append(StrCat("index_lookup[", JoinKindName(e), ", probe=",
                         e.left()->rel_name(), "(", AttrList(n.left_keys),
                         "), keys=(", KeyPairs(n), ")]"));
      break;
    case PhysOpKind::kNestedLoopJoin:
      out->append(StrCat("nested_loop[", JoinKindName(e), "]"));
      break;
    case PhysOpKind::kUnion:
      out->append("union");
      break;
    case PhysOpKind::kHashSetOp:
      out->append(StrCat(
          "hash_set_op[",
          e.kind() == RelExprKind::kIntersect ? "intersect" : "diff", "]"));
      break;
    case PhysOpKind::kIndexSetOp:
      out->append(StrCat(
          "index_set_op[",
          e.kind() == RelExprKind::kIntersect ? "intersect" : "diff",
          ", member=", RelRefKindToString(n.setop_ref_kind), " ",
          n.setop_rel, "(", AttrList(n.setop_attrs), ")]"));
      break;
    case PhysOpKind::kAggregate:
      out->append(StrCat("aggregate[", AggFuncToString(e.agg_func()),
                         e.agg_func() == AggFunc::kCnt
                             ? std::string()
                             : StrCat(" #", e.agg_attr()),
                         "]"));
      break;
  }
  out->push_back('\n');
  // An index-lookup join never opens its probe-side child as an operator;
  // the scan line still prints so the shape stays readable.
  for (const auto& c : n.children) {
    ExplainNode(*c, depth + 1, out);
  }
}

void CollectIndexRequests(const PhysicalNode& n,
                          std::vector<PhysicalPlan::IndexRequest>* out) {
  switch (n.op) {
    case PhysOpKind::kHashJoin: {
      const RelExpr& right = *n.logical->right();
      if (right.kind() == RelExprKind::kRef &&
          right.ref_kind() == RelRefKind::kBase && !n.right_keys.empty()) {
        out->push_back({right.rel_name(), n.right_keys});
      }
      break;
    }
    case PhysOpKind::kIndexLookupJoin:
      out->push_back({n.logical->left()->rel_name(), n.left_keys});
      break;
    case PhysOpKind::kIndexSetOp:
      if (n.setop_ref_kind == RelRefKind::kBase) {
        out->push_back({n.setop_rel, n.setop_attrs});
      }
      break;
    default:
      break;
  }
  for (const auto& c : n.children) {
    CollectIndexRequests(*c, out);
  }
}

}  // namespace

const char* PhysOpKindToString(PhysOpKind op) {
  switch (op) {
    case PhysOpKind::kScan:
      return "scan";
    case PhysOpKind::kLiteral:
      return "literal";
    case PhysOpKind::kSelect:
      return "select";
    case PhysOpKind::kProject:
      return "project";
    case PhysOpKind::kProduct:
      return "product";
    case PhysOpKind::kHashJoin:
      return "hash_join";
    case PhysOpKind::kIndexLookupJoin:
      return "index_lookup_join";
    case PhysOpKind::kNestedLoopJoin:
      return "nested_loop_join";
    case PhysOpKind::kUnion:
      return "union";
    case PhysOpKind::kHashSetOp:
      return "hash_set_op";
    case PhysOpKind::kIndexSetOp:
      return "index_set_op";
    case PhysOpKind::kAggregate:
      return "aggregate";
  }
  return "?";
}

Result<PhysicalPlan> PhysicalPlan::Compile(const RelExpr& expr) {
  PhysicalPlan plan;
  plan.root_ = CompileNode(expr);
  return plan;
}

Result<PhysicalPlan> PhysicalPlan::Compile(RelExprPtr expr) {
  if (expr == nullptr) {
    return Status::InvalidArgument("cannot compile a null expression");
  }
  TXMOD_ASSIGN_OR_RETURN(PhysicalPlan plan, Compile(*expr));
  plan.owned_ = std::move(expr);
  return plan;
}

Result<PhysicalPlan> PhysicalPlan::Compile(RelExprPtr expr, int num_params) {
  TXMOD_ASSIGN_OR_RETURN(PhysicalPlan plan, Compile(std::move(expr)));
  plan.num_params_ = num_params;
  return plan;
}

Result<Relation> PhysicalPlan::Execute(const EvalContext& ctx,
                                       EvalStats* stats,
                                       const std::vector<Value>* params) const {
  if (num_params_ > 0 &&
      (params == nullptr ||
       params->size() < static_cast<std::size_t>(num_params_))) {
    return Status::Internal(
        StrCat("plan expects ", num_params_, " parameter(s), ",
               params == nullptr ? 0 : params->size(), " bound"));
  }
  PlanExecutor exec(ctx, stats, params);
  return exec.Evaluate(*root_);
}

std::string PhysicalPlan::Explain() const {
  std::string out;
  if (num_params_ > 0) out.append(StrCat("params: ", num_params_, "\n"));
  ExplainNode(*root_, 0, &out);
  return out;
}

std::vector<PhysicalPlan::IndexRequest> PhysicalPlan::IndexRequests() const {
  std::vector<IndexRequest> out;
  CollectIndexRequests(*root_, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Shared eager kernels: literals and fragment-local operator execution.
// ---------------------------------------------------------------------------

Result<Relation> MaterializeLiteral(const RelExpr& e, EvalStats* stats,
                                    const std::vector<Value>* params) {
  // A canonical literal reads its values out of the binding vector
  // (row-major from literal_param_base) instead of its placeholder
  // tuples, so one cached plan materializes every same-shape statement's
  // tuples. Types are inferred from the *bound* values, exactly as a
  // fresh compile of the statement would infer them from its constants.
  std::vector<Tuple> bound;
  if (e.literal_param_base() >= 0) {
    if (params == nullptr) {
      return Status::Internal(
          "parameterized literal evaluated without a binding");
    }
    const std::size_t arity = static_cast<std::size_t>(e.literal_arity());
    const std::size_t base = static_cast<std::size_t>(e.literal_param_base());
    const std::size_t needed = e.literal_tuples().size() * arity;
    if (params->size() < base + needed) {
      return Status::Internal(
          StrCat("parameterized literal needs slots ?", base, "..?",
                 base + needed - 1, ", ", params->size(), " bound"));
    }
    bound.reserve(e.literal_tuples().size());
    for (std::size_t i = 0; i < e.literal_tuples().size(); ++i) {
      std::vector<Value> row(params->begin() +
                                 static_cast<std::ptrdiff_t>(base + i * arity),
                             params->begin() +
                                 static_cast<std::ptrdiff_t>(base +
                                                             (i + 1) * arity));
      bound.push_back(Tuple(std::move(row)));
    }
  }
  const std::vector<Tuple>& tuples =
      e.literal_param_base() >= 0 ? bound : e.literal_tuples();
  // Every tuple's arity is validated before the schema-inference loop
  // below reads attribute i of arbitrary tuples: a short tuple used to
  // be an out-of-bounds read.
  for (const Tuple& t : tuples) {
    if (static_cast<int>(t.arity()) != e.literal_arity()) {
      return Status::InvalidArgument(
          StrCat("literal tuple ", t.ToString(), " has arity ", t.arity(),
                 ", expected ", e.literal_arity()));
    }
  }
  std::vector<Attribute> attrs;
  for (int i = 0; i < e.literal_arity(); ++i) {
    const std::size_t col = static_cast<std::size_t>(i);
    AttrType type = AttrType::kString;
    for (const Tuple& t : tuples) {
      if (!t.at(col).is_null()) {
        type = ValueAttrType(t.at(col));
        break;
      }
    }
    attrs.push_back(Attribute{StrCat("c", i), type});
  }
  Relation out(MakeSchema(std::move(attrs)));
  for (const Tuple& t : tuples) {
    out.Insert(t);
  }
  CountEmit(stats, out.size());
  return out;
}

Result<Relation> ExecuteNodeLocal(const PhysicalNode& n, const Relation& left,
                                  const Relation* right, EvalStats* stats,
                                  const std::vector<Value>* params) {
  const RelExpr& e = *n.logical;
  auto scan = [](const Relation& rel) {
    Stream s;
    s.schema = rel.schema_ptr();
    s.unique = true;
    s.cursor = std::make_unique<ScanCursor>(RelHandle::Borrowed(&rel));
    return s;
  };
  Stream s;
  switch (n.op) {
    case PhysOpKind::kSelect: {
      s.schema = left.schema_ptr();
      s.cursor = std::make_unique<SelectCursor>(scan(left), &e.predicate(),
                                                stats, params);
      break;
    }
    case PhysOpKind::kProject: {
      const std::vector<ProjectionItem>& items = e.projections();
      std::vector<Attribute> attrs;
      attrs.reserve(items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        attrs.push_back(Attribute{ProjectionItemName(items[i], left.schema(), i),
                                  InferScalarType(items[i].expr,
                                                  left.schema(), params)});
      }
      s.schema = MakeSchema(std::move(attrs));
      s.cursor = std::make_unique<ProjectCursor>(scan(left), &items, stats,
                                                 params);
      break;
    }
    case PhysOpKind::kProduct: {
      if (right == nullptr) return Status::Internal("product needs a right");
      s.schema = MakeSchema(ConcatAttrs(left.schema(), right->schema()));
      CountScan(stats, right->size());
      s.cursor = std::make_unique<ProductCursor>(
          scan(left), RelHandle::Borrowed(right), left.arity(),
          right->arity(), stats);
      break;
    }
    case PhysOpKind::kHashJoin:
    case PhysOpKind::kIndexLookupJoin:
    case PhysOpKind::kNestedLoopJoin: {
      if (right == nullptr) return Status::Internal("join needs a right");
      // Fragment-local inputs carry no declared indexes, so the hash
      // variant (transient build over the — small — right fragment) is the
      // local form of both kHashJoin and kIndexLookupJoin.
      const bool is_join = e.kind() == RelExprKind::kJoin;
      s.schema = is_join
                     ? MakeSchema(ConcatAttrs(left.schema(), right->schema()))
                     : left.schema_ptr();
      const std::size_t out_arity = s.schema->arity();
      CountScan(stats, right->size());
      if (!n.right_keys.empty()) {
        s.cursor = std::make_unique<HashJoinCursor>(
            e.kind(), &e.predicate(), scan(left), RelHandle::Borrowed(right),
            /*view=*/RelationIndexView(), n.left_keys, n.right_keys,
            out_arity, stats, params);
      } else {
        s.cursor = std::make_unique<NestedJoinCursor>(
            e.kind(), &e.predicate(), scan(left), RelHandle::Borrowed(right),
            out_arity, stats, params);
      }
      break;
    }
    case PhysOpKind::kUnion: {
      if (right == nullptr) return Status::Internal("union needs a right");
      if (left.arity() != right->arity()) {
        return Status::InvalidArgument(
            "set operation over different arities");
      }
      s.schema = left.schema_ptr();
      s.cursor = std::make_unique<UnionCursor>(scan(left), scan(*right),
                                               stats);
      break;
    }
    case PhysOpKind::kHashSetOp:
    case PhysOpKind::kIndexSetOp: {
      if (right == nullptr) return Status::Internal("set op needs a right");
      if (left.arity() != right->arity()) {
        return Status::InvalidArgument(
            "set operation over different arities");
      }
      s.schema = left.schema_ptr();
      CountScan(stats, right->size());
      s.cursor = std::make_unique<FilterSetOpCursor>(
          scan(left), RelHandle::Borrowed(right),
          /*want_in=*/e.kind() == RelExprKind::kIntersect, stats);
      break;
    }
    case PhysOpKind::kScan:
    case PhysOpKind::kLiteral:
    case PhysOpKind::kAggregate:
      return Status::Internal(
          StrCat(PhysOpKindToString(n.op),
                 " is not a fragment-local operator"));
  }
  return Drain(&s);
}

// ---------------------------------------------------------------------------
// Morsel-granular kernels (NodeLocalKernel): the per-fragment prepared
// state plus a per-morsel cursor run. The cursor choices mirror
// ExecuteNodeLocal exactly; only the left stream (a pointer slice instead
// of a fragment scan) and the hash-join build (shared across morsels
// instead of per call) differ.
// ---------------------------------------------------------------------------

struct NodeLocalKernel::State {
  const PhysicalNode* node = nullptr;
  std::shared_ptr<const RelationSchema> left_schema;
  std::shared_ptr<const RelationSchema> out_schema;
  const Relation* right = nullptr;
  const std::vector<Value>* params = nullptr;
  /// Equality joins: the build-side table, built once in Prepare and
  /// probed read-only by every morsel's cursor.
  RelationIndex::Map table;
  bool hash_join = false;
};

NodeLocalKernel::NodeLocalKernel(std::unique_ptr<State> state)
    : state_(std::move(state)) {}
NodeLocalKernel::NodeLocalKernel(NodeLocalKernel&&) noexcept = default;
NodeLocalKernel& NodeLocalKernel::operator=(NodeLocalKernel&&) noexcept =
    default;
NodeLocalKernel::~NodeLocalKernel() = default;

const std::shared_ptr<const RelationSchema>& NodeLocalKernel::output_schema()
    const {
  return state_->out_schema;
}

Result<NodeLocalKernel> NodeLocalKernel::Prepare(
    const PhysicalNode& node,
    std::shared_ptr<const RelationSchema> left_schema, const Relation* right,
    EvalStats* stats, const std::vector<Value>* params) {
  auto st = std::make_unique<State>();
  st->node = &node;
  st->left_schema = std::move(left_schema);
  st->right = right;
  st->params = params;
  const RelExpr& e = *node.logical;
  switch (node.op) {
    case PhysOpKind::kSelect:
      st->out_schema = st->left_schema;
      break;
    case PhysOpKind::kProject: {
      const std::vector<ProjectionItem>& items = e.projections();
      std::vector<Attribute> attrs;
      attrs.reserve(items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        attrs.push_back(
            Attribute{ProjectionItemName(items[i], *st->left_schema, i),
                      InferScalarType(items[i].expr, *st->left_schema,
                                      params)});
      }
      st->out_schema = MakeSchema(std::move(attrs));
      break;
    }
    case PhysOpKind::kHashJoin:
    case PhysOpKind::kIndexLookupJoin:
    case PhysOpKind::kNestedLoopJoin: {
      if (right == nullptr) return Status::Internal("join needs a right");
      st->out_schema =
          e.kind() == RelExprKind::kJoin
              ? MakeSchema(ConcatAttrs(*st->left_schema, right->schema()))
              : st->left_schema;
      CountScan(stats, right->size());
      if (!node.right_keys.empty()) {
        st->hash_join = true;
        st->table.reserve(right->size());
        for (const Tuple& rt : *right) {
          st->table.emplace(EquiKeyHash(rt, node.right_keys), &rt);
        }
      }
      break;
    }
    case PhysOpKind::kUnion: {
      if (right == nullptr) return Status::Internal("union needs a right");
      if (st->left_schema->arity() != right->arity()) {
        return Status::InvalidArgument(
            "set operation over different arities");
      }
      st->out_schema = st->left_schema;
      break;
    }
    case PhysOpKind::kHashSetOp:
    case PhysOpKind::kIndexSetOp: {
      if (right == nullptr) return Status::Internal("set op needs a right");
      if (st->left_schema->arity() != right->arity()) {
        return Status::InvalidArgument(
            "set operation over different arities");
      }
      st->out_schema = st->left_schema;
      CountScan(stats, right->size());
      break;
    }
    case PhysOpKind::kScan:
    case PhysOpKind::kLiteral:
    case PhysOpKind::kProduct:
    case PhysOpKind::kAggregate:
      return Status::Internal(
          StrCat(PhysOpKindToString(node.op),
                 " has no morsel-granular form"));
  }
  return NodeLocalKernel(std::move(st));
}

Status NodeLocalKernel::RunMorsel(const Tuple* const* tuples,
                                  std::size_t count, std::vector<Tuple>* out,
                                  EvalStats* stats) const {
  const State& st = *state_;
  const PhysicalNode& n = *st.node;
  const RelExpr& e = *n.logical;
  Stream left;
  left.schema = st.left_schema;
  left.cursor = std::make_unique<VectorScanCursor>(tuples, count);
  Stream s;
  s.schema = st.out_schema;
  switch (n.op) {
    case PhysOpKind::kSelect:
      s.cursor = std::make_unique<SelectCursor>(std::move(left),
                                                &e.predicate(), stats,
                                                st.params);
      break;
    case PhysOpKind::kProject:
      s.cursor = std::make_unique<ProjectCursor>(std::move(left),
                                                 &e.projections(), stats,
                                                 st.params);
      break;
    case PhysOpKind::kHashJoin:
    case PhysOpKind::kIndexLookupJoin:
    case PhysOpKind::kNestedLoopJoin:
      if (st.hash_join) {
        s.cursor = std::make_unique<HashJoinCursor>(
            e.kind(), &e.predicate(), std::move(left),
            RelHandle::Borrowed(st.right), /*view=*/RelationIndexView(),
            n.left_keys, n.right_keys, st.out_schema->arity(), stats,
            st.params, &st.table);
      } else {
        s.cursor = std::make_unique<NestedJoinCursor>(
            e.kind(), &e.predicate(), std::move(left),
            RelHandle::Borrowed(st.right), st.out_schema->arity(), stats,
            st.params);
      }
      break;
    case PhysOpKind::kUnion: {
      // Left- and right-side morsels pass through identically; the empty
      // second stream keeps UnionCursor's per-tuple counting intact.
      Stream none;
      none.schema = st.out_schema;
      none.cursor = std::make_unique<EmptyCursor>();
      s.cursor = std::make_unique<UnionCursor>(std::move(left),
                                               std::move(none), stats);
      break;
    }
    case PhysOpKind::kHashSetOp:
    case PhysOpKind::kIndexSetOp:
      s.cursor = std::make_unique<FilterSetOpCursor>(
          std::move(left), RelHandle::Borrowed(st.right),
          /*want_in=*/e.kind() == RelExprKind::kIntersect, stats);
      break;
    case PhysOpKind::kScan:
    case PhysOpKind::kLiteral:
    case PhysOpKind::kProduct:
    case PhysOpKind::kAggregate:
      return Status::Internal(
          StrCat(PhysOpKindToString(n.op),
                 " has no morsel-granular form"));
  }
  for (;;) {
    TXMOD_ASSIGN_OR_RETURN(const Tuple* t, s.cursor->Next());
    if (t == nullptr) break;
    out->push_back(*t);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Aggregate partials.
// ---------------------------------------------------------------------------

void AggPartial::Observe(const Value& v, AggFunc func) {
  count += 1;
  if (v.is_null()) return;
  non_null += 1;
  if (v.is_numeric()) {
    if (v.is_int()) {
      isum += v.as_int();
      dsum += static_cast<double>(v.as_int());
    } else {
      any_double = true;
      dsum += v.as_double();
    }
  } else if (func == AggFunc::kSum || func == AggFunc::kAvg) {
    saw_non_numeric = true;
  }
  if (!min.has_value() ||
      Value::Compare(v, *min) == Value::Ordering::kLess) {
    min = v;
  }
  if (!max.has_value() ||
      Value::Compare(v, *max) == Value::Ordering::kGreater) {
    max = v;
  }
}

void AggPartial::Merge(const AggPartial& other) {
  count += other.count;
  non_null += other.non_null;
  isum += other.isum;
  dsum += other.dsum;
  any_double = any_double || other.any_double;
  saw_non_numeric = saw_non_numeric || other.saw_non_numeric;
  if (other.min.has_value() &&
      (!min.has_value() ||
       Value::Compare(*other.min, *min) == Value::Ordering::kLess)) {
    min = other.min;
  }
  if (other.max.has_value() &&
      (!max.has_value() ||
       Value::Compare(*other.max, *max) == Value::Ordering::kGreater)) {
    max = other.max;
  }
}

Result<AggPartial> AggregateLocal(const PhysicalNode& n,
                                  const Relation& input, EvalStats* stats) {
  const RelExpr& e = *n.logical;
  if (!e.group_by().empty()) {
    return Status::Unimplemented(
        "grouped aggregates have no fragment-local form");
  }
  const int attr = e.agg_attr();
  const bool needs_attr = e.agg_func() != AggFunc::kCnt;
  if (needs_attr && (attr < 0 || attr >= static_cast<int>(input.arity()))) {
    return Status::InvalidArgument(
        StrCat("aggregate attribute #", attr, " out of range for arity ",
               input.arity()));
  }
  AggPartial acc;
  for (const Tuple& t : input) {
    CountScan(stats, 1);
    if (!needs_attr) {
      acc.ObserveCount();
      continue;
    }
    acc.Observe(t.at(static_cast<std::size_t>(attr)), e.agg_func());
  }
  return acc;
}

Result<Value> FinalizeAggregate(const AggPartial& acc, AggFunc func) {
  switch (func) {
    case AggFunc::kCnt:
      return Value::Int(acc.count);
    case AggFunc::kSum:
      if (acc.saw_non_numeric) {
        return Status::InvalidArgument("SUM over non-numeric attribute");
      }
      return acc.any_double ? Value::Double(acc.dsum) : Value::Int(acc.isum);
    case AggFunc::kAvg:
      if (acc.saw_non_numeric) {
        return Status::InvalidArgument("AVG over non-numeric attribute");
      }
      if (acc.non_null == 0) return Value::Null();
      return Value::Double(acc.dsum / static_cast<double>(acc.non_null));
    case AggFunc::kMin:
      return acc.min.has_value() ? *acc.min : Value::Null();
    case AggFunc::kMax:
      return acc.max.has_value() ? *acc.max : Value::Null();
  }
  return Status::Internal("unknown aggregate function");
}

// ---------------------------------------------------------------------------
// PlanCache.
// ---------------------------------------------------------------------------

Result<const PhysicalPlan*> PlanCache::GetOrCompile(const RelExprPtr& expr) {
  if (expr == nullptr) {
    return Status::InvalidArgument("cannot compile a null expression");
  }
  auto it = plans_.find(expr.get());
  if (it != plans_.end()) return it->second.get();
  TXMOD_ASSIGN_OR_RETURN(PhysicalPlan plan, PhysicalPlan::Compile(expr));
  auto owned = std::make_unique<PhysicalPlan>(std::move(plan));
  const PhysicalPlan* raw = owned.get();
  plans_.emplace(expr.get(), std::move(owned));
  return raw;
}

const PhysicalPlan* PlanCache::Lookup(const RelExpr* expr) const {
  auto it = plans_.find(expr);
  return it != plans_.end() ? it->second.get() : nullptr;
}

Result<BoundPlan> PlanCache::GetOrCompileShaped(const RelExpr& expr,
                                                EvalStats* stats) {
  ExprFingerprint fp = FingerprintExpr(expr);
  BoundPlan out;
  out.params = std::move(fp.params);

  {
    std::lock_guard<std::mutex> lock(*shape_mu_);
    auto it = shaped_.find(fp.shape);
    if (it != shaped_.end()) {
      ++shape_hits_;
      if (stats != nullptr) ++stats->plan_cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      out.owned = it->second.plan;  // survives concurrent eviction
      out.plan = out.owned.get();
      out.cache_hit = true;
      return out;
    }
    ++shape_misses_;
    if (stats != nullptr) ++stats->plan_cache_misses;
  }

  // Miss: canonicalize and compile once for this shape, outside the lock
  // (compilation is the expensive part; a duplicate concurrent compile of
  // the same shape is rare and harmless — the first inserter's entry is
  // kept, later compiles of the same shape just execute their own copy).
  // The canonical tree's own params are discarded — `out.params` (this
  // statement's constants) is the binding every execution supplies.
  ParameterizedExpr canonical = ParameterizeExpr(expr);
  TXMOD_ASSIGN_OR_RETURN(
      PhysicalPlan plan,
      PhysicalPlan::Compile(std::move(canonical.expr),
                            static_cast<int>(canonical.params.size())));
  out.owned = std::make_shared<const PhysicalPlan>(std::move(plan));
  out.plan = out.owned.get();

  std::lock_guard<std::mutex> lock(*shape_mu_);
  if (shape_capacity_ == 0) {
    return out;  // not retained; out.owned keeps it alive for this use
  }
  auto it = shaped_.find(fp.shape);
  if (it != shaped_.end()) {
    // A concurrent miss on the same shape inserted first; keep that entry
    // and just refresh its recency. Our compile still executes correctly.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return out;
  }
  lru_.push_front(fp.shape);
  ShapedEntry entry;
  entry.plan = out.owned;
  entry.lru_pos = lru_.begin();
  shaped_.emplace(std::move(fp.shape), std::move(entry));
  EvictOverCapacityLocked(stats);
  return out;
}

void PlanCache::EvictOverCapacityLocked(EvalStats* stats) {
  while (shaped_.size() > shape_capacity_ && !lru_.empty()) {
    // The newly inserted entry is at the LRU front and is never the one
    // evicted (capacity >= 1 here); evicted plans stay alive for any
    // execution still holding their BoundPlan::owned reference.
    shaped_.erase(lru_.back());
    lru_.pop_back();
    ++shape_evictions_;
    if (stats != nullptr) ++stats->plan_cache_evictions;
  }
}

void PlanCache::InvalidateShapes() {
  std::lock_guard<std::mutex> lock(*shape_mu_);
  shaped_.clear();
  lru_.clear();
}

void PlanCache::set_shape_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(*shape_mu_);
  shape_capacity_ = capacity;
  EvictOverCapacityLocked(nullptr);
}

std::size_t PlanCache::shape_size() const {
  std::lock_guard<std::mutex> lock(*shape_mu_);
  return shaped_.size();
}

std::size_t PlanCache::shape_capacity() const {
  std::lock_guard<std::mutex> lock(*shape_mu_);
  return shape_capacity_;
}

uint64_t PlanCache::shape_hits() const {
  std::lock_guard<std::mutex> lock(*shape_mu_);
  return shape_hits_;
}

uint64_t PlanCache::shape_misses() const {
  std::lock_guard<std::mutex> lock(*shape_mu_);
  return shape_misses_;
}

uint64_t PlanCache::shape_evictions() const {
  std::lock_guard<std::mutex> lock(*shape_mu_);
  return shape_evictions_;
}

void PlanCache::CountBypassedMiss(EvalStats* stats) {
  std::lock_guard<std::mutex> lock(*shape_mu_);
  ++shape_misses_;
  if (stats != nullptr) ++stats->plan_cache_misses;
}

void PlanCache::Clear() {
  plans_.clear();
  std::lock_guard<std::mutex> lock(*shape_mu_);
  shaped_.clear();
  lru_.clear();
  shape_hits_ = shape_misses_ = shape_evictions_ = 0;
}

std::vector<const PhysicalPlan*> PlanCache::Plans() const {
  std::vector<const PhysicalPlan*> out;
  out.reserve(plans_.size());
  for (const auto& [key, plan] : plans_) {
    out.push_back(plan.get());
  }
  return out;
}

}  // namespace txmod::algebra
