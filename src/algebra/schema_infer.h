#ifndef TXMOD_ALGEBRA_SCHEMA_INFER_H_
#define TXMOD_ALGEBRA_SCHEMA_INFER_H_

#include <functional>
#include <string>

#include "src/algebra/rel_expr.h"
#include "src/common/result.h"
#include "src/relational/schema.h"

namespace txmod::algebra {

/// Callback mapping a relation reference to its schema. Implementations:
/// the algebra parser (database schema + temporaries seen so far) and the
/// transaction executor (live relations).
using SchemaResolver =
    std::function<Result<RelationSchema>(RelRefKind, const std::string&)>;

/// Static output schema of `expr`: attribute names and (best-effort) types
/// of the materialized result. Intermediate results carry an empty relation
/// name. Fails when a referenced relation is unknown or attribute indices
/// are out of range.
Result<RelationSchema> InferSchema(const RelExpr& expr,
                                   const SchemaResolver& resolver);

/// Best-effort static type of scalar expression `e` whose side-0 attribute
/// references target `input` (predicates type as int 0/1). `params` types
/// kParam slots from their bound values (cached-plan execution); without a
/// binding they type as int.
AttrType InferScalarType(const ScalarExpr& e, const RelationSchema& input,
                         const std::vector<Value>* params = nullptr);

/// Output attribute name for projection item `item` at position `i`:
/// the explicit name, the referenced input attribute's name, or "c<i>".
std::string ProjectionItemName(const ProjectionItem& item,
                               const RelationSchema& input, std::size_t i);

}  // namespace txmod::algebra

#endif  // TXMOD_ALGEBRA_SCHEMA_INFER_H_
