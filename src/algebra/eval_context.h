#ifndef TXMOD_ALGEBRA_EVAL_CONTEXT_H_
#define TXMOD_ALGEBRA_EVAL_CONTEXT_H_

#include <cstdint>
#include <string>

#include "src/algebra/rel_expr.h"
#include "src/common/result.h"
#include "src/relational/relation.h"

namespace txmod::algebra {

/// Supplies relation states to the evaluator. Implemented by the
/// transaction executor (src/txn), which resolves base relations against
/// the current intermediate state D^{t,i}, temporaries against the
/// transaction-local environment, and the auxiliary relations old(R) /
/// dplus(R) / dminus(R) against its differential bookkeeping.
class EvalContext {
 public:
  virtual ~EvalContext() = default;

  /// The relation currently denoted by (kind, name); errors with kNotFound
  /// for unknown names, kFailedPrecondition for unsupported kinds.
  virtual Result<const Relation*> Resolve(RelRefKind kind,
                                          const std::string& name) const = 0;

  /// Like Resolve, but the caller promises to use only the relation's
  /// *schema*, never its tuples. The evaluator calls this on short-circuit
  /// paths — e.g. the base side of a join whose differential side turned
  /// out empty — where the result shape is still needed but no data
  /// dependency exists. Contexts that track data reads for optimistic
  /// conflict validation (TxnContext) override it to skip read recording;
  /// the default is a plain Resolve.
  virtual Result<const Relation*> ResolveSchemaOnly(
      RelRefKind kind, const std::string& name) const {
    return Resolve(kind, name);
  }
};

/// Work counters filled during evaluation; the bench harness and the
/// parallel cost model consume these.
struct EvalStats {
  uint64_t tuples_scanned = 0;   // tuples read from any input
  uint64_t tuples_emitted = 0;   // tuples produced by any operator
  uint64_t operators = 0;        // operator nodes evaluated
  uint64_t index_probes = 0;     // probes of declared relation indexes

  // Shape-keyed plan-cache traffic (PlanCache::GetOrCompileShaped): a hit
  // reuses a compiled plan under a fresh parameter binding, a miss
  // fingerprints + compiles, an eviction drops the least recently used
  // shape to the cache's capacity bound. Evaluation-work counters above
  // are independent of these — a cached and a fresh-compiled execution of
  // the same statement scan/emit/probe identically (pinned by
  // tests/plan_cache_test.cc).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_evictions = 0;

  void Add(const EvalStats& other) {
    tuples_scanned += other.tuples_scanned;
    tuples_emitted += other.tuples_emitted;
    operators += other.operators;
    index_probes += other.index_probes;
    plan_cache_hits += other.plan_cache_hits;
    plan_cache_misses += other.plan_cache_misses;
    plan_cache_evictions += other.plan_cache_evictions;
  }

  /// This stats record with the plan-cache counters zeroed: what the
  /// evaluation *work* was, independent of how plans were obtained.
  EvalStats WithoutCacheCounters() const {
    EvalStats out = *this;
    out.plan_cache_hits = 0;
    out.plan_cache_misses = 0;
    out.plan_cache_evictions = 0;
    return out;
  }
};

}  // namespace txmod::algebra

#endif  // TXMOD_ALGEBRA_EVAL_CONTEXT_H_
