#ifndef TXMOD_ALGEBRA_REL_EXPR_H_
#define TXMOD_ALGEBRA_REL_EXPR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/algebra/scalar_expr.h"
#include "src/relational/relation.h"

namespace txmod::algebra {

/// Node kinds of (extended) relational algebra expressions. The standard
/// algebra is extended — as in the paper's Section 2 and PRISMA's XRA —
/// with literal relations, semijoin/antijoin (used by the translator for
/// nested quantifications), and scalar/grouped aggregation.
enum class RelExprKind {
  kRef,         // base relation, temporary, or auxiliary relation
  kLiteral,     // explicit tuple list {(..), (..)}
  kSelect,      // select[pred](E)
  kProject,     // project[e1, e2, ...](E)
  kProduct,     // E1 x E2
  kJoin,        // join[pred](E1, E2)         (theta join)
  kSemiJoin,    // semijoin[pred](E1, E2)     (E1 tuples with a match)
  kAntiJoin,    // antijoin[pred](E1, E2)     (E1 tuples without a match)
  kUnion,       // E1 union E2
  kDifference,  // E1 - E2
  kIntersect,   // E1 intersect E2
  kAggregate,   // sum/avg/min/max[attr](E), cnt(E), optional group-by
};

/// Which relation a kRef node denotes. Besides base relations and program
/// temporaries, the evaluation context provides the paper's *auxiliary
/// relations* (Section 4.1): the pre-transaction state old(R) and the
/// transaction differentials dplus(R) (inserted) / dminus(R) (deleted).
enum class RelRefKind {
  kBase,
  kTemp,
  kOld,
  kDeltaPlus,
  kDeltaMinus,
};

const char* RelRefKindToString(RelRefKind kind);

/// Aggregate functions FA ∪ FC of CL (Definition 4.1).
enum class AggFunc { kSum, kAvg, kMin, kMax, kCnt };

const char* AggFuncToString(AggFunc f);

class RelExpr;
using RelExprPtr = std::shared_ptr<const RelExpr>;

/// One projection output: an expression plus an optional output name.
struct ProjectionItem {
  ScalarExpr expr;
  std::string name;  // empty: derived from expr when possible, else "c<i>"
};

/// An immutable relational algebra expression tree. Construct via the
/// static builders; share via RelExprPtr. Attribute references inside
/// predicates/projections are positional (side 0 = unary input or left
/// join input, side 1 = right join input).
class RelExpr {
 public:
  static RelExprPtr Ref(RelRefKind kind, std::string name);
  static RelExprPtr Base(std::string name) {
    return Ref(RelRefKind::kBase, std::move(name));
  }
  static RelExprPtr Temp(std::string name) {
    return Ref(RelRefKind::kTemp, std::move(name));
  }
  static RelExprPtr Old(std::string name) {
    return Ref(RelRefKind::kOld, std::move(name));
  }
  static RelExprPtr DeltaPlus(std::string name) {
    return Ref(RelRefKind::kDeltaPlus, std::move(name));
  }
  static RelExprPtr DeltaMinus(std::string name) {
    return Ref(RelRefKind::kDeltaMinus, std::move(name));
  }
  static RelExprPtr Literal(std::vector<Tuple> tuples, int arity);
  /// A canonicalized literal of `tuple_count` x `arity` parameter slots:
  /// value (i, j) binds to params[param_base + i*arity + j] at evaluation
  /// time. Produced by ParameterizeExpr (fingerprint.h); the placeholder
  /// tuples it carries are all-null and must never be read as values.
  static RelExprPtr ParamLiteral(int tuple_count, int arity, int param_base);
  static RelExprPtr Select(ScalarExpr predicate, RelExprPtr input);
  static RelExprPtr Project(std::vector<ProjectionItem> items,
                            RelExprPtr input);
  /// Convenience: projection onto attribute indices of the input.
  static RelExprPtr ProjectAttrs(const std::vector<int>& attrs,
                                 RelExprPtr input);
  static RelExprPtr Product(RelExprPtr left, RelExprPtr right);
  static RelExprPtr Join(ScalarExpr predicate, RelExprPtr left,
                         RelExprPtr right);
  static RelExprPtr SemiJoin(ScalarExpr predicate, RelExprPtr left,
                             RelExprPtr right);
  static RelExprPtr AntiJoin(ScalarExpr predicate, RelExprPtr left,
                             RelExprPtr right);
  static RelExprPtr Union(RelExprPtr left, RelExprPtr right);
  static RelExprPtr Difference(RelExprPtr left, RelExprPtr right);
  static RelExprPtr Intersect(RelExprPtr left, RelExprPtr right);
  /// Scalar aggregate: one output tuple. For kCnt, `attr` is ignored (-1).
  static RelExprPtr Aggregate(AggFunc func, int attr, RelExprPtr input);
  /// Grouped aggregate (extension; not used by the paper's CL).
  static RelExprPtr GroupAggregate(std::vector<int> group_by, AggFunc func,
                                   int attr, RelExprPtr input);

  RelExprKind kind() const { return kind_; }
  RelRefKind ref_kind() const { return ref_kind_; }
  const std::string& rel_name() const { return rel_name_; }
  const std::vector<Tuple>& literal_tuples() const { return literal_tuples_; }
  int literal_arity() const { return literal_arity_; }
  /// First parameter slot of a canonicalized literal, -1 for plain ones.
  int literal_param_base() const { return literal_param_base_; }
  const ScalarExpr& predicate() const { return predicate_; }
  const std::vector<ProjectionItem>& projections() const {
    return projections_;
  }
  AggFunc agg_func() const { return agg_func_; }
  int agg_attr() const { return agg_attr_; }
  const std::vector<int>& group_by() const { return group_by_; }

  const RelExprPtr& left() const { return inputs_[0]; }
  const RelExprPtr& right() const { return inputs_[1]; }
  const std::vector<RelExprPtr>& inputs() const { return inputs_; }

  /// Collects every relation referenced, with its reference kind.
  void CollectRefs(
      std::vector<std::pair<RelRefKind, std::string>>* refs) const;

  /// Structural equality (tests, optimizer).
  bool Equals(const RelExpr& other) const;

  /// Renders in the textual XRA syntax accepted by the algebra parser.
  std::string ToString() const;

 protected:
  RelExpr() = default;

 private:
  RelExprKind kind_ = RelExprKind::kRef;
  RelRefKind ref_kind_ = RelRefKind::kBase;
  std::string rel_name_;
  std::vector<Tuple> literal_tuples_;
  int literal_arity_ = 0;
  int literal_param_base_ = -1;
  ScalarExpr predicate_;
  std::vector<ProjectionItem> projections_;
  AggFunc agg_func_ = AggFunc::kCnt;
  int agg_attr_ = -1;
  std::vector<int> group_by_;
  std::vector<RelExprPtr> inputs_;
};

/// Collects the equality conjuncts `attr(0, i) = attr(1, j)` of a join
/// predicate as (left attr, right attr) pairs, in predicate order. The
/// evaluator keys hash joins on these; the integrity subsystem declares
/// relation indexes on the right-hand lists. Both must extract identically
/// — which is why this lives here and not in either of them.
void CollectEquiPairs(const ScalarExpr& pred,
                      std::vector<std::pair<int, int>>* pairs);

/// True when `e` has the shape project[a1, ..., ak](ref) with every
/// projection a plain side-0 attribute reference; fills `attrs` with the
/// referenced indices. The evaluator answers membership in this shape by
/// probing a relation index instead of materializing the projection, and
/// the integrity subsystem declares the matching index — both must agree
/// on the shape, which is why it lives here.
bool IsAttrProjectionOfRef(const RelExpr& e, std::vector<int>* attrs);

}  // namespace txmod::algebra

#endif  // TXMOD_ALGEBRA_REL_EXPR_H_
