#include "src/algebra/parser.h"

#include <optional>

#include "src/algebra/schema_infer.h"
#include "src/common/lexer.h"
#include "src/common/str_util.h"

namespace txmod::algebra {

namespace {

/// Recursive-descent parser over a token stream. Attribute references are
/// parsed with names (or explicit positions) and resolved against inferred
/// input schemas immediately after each operator's inputs are known.
class ParserImpl {
 public:
  ParserImpl(const std::string& text, const DatabaseSchema* db,
             std::map<std::string, RelationSchema>* temps)
      : text_(text), db_(db), temps_(temps) {}

  Status Init() {
    TXMOD_ASSIGN_OR_RETURN(tokens_, Tokenize(text_));
    return Status::OK();
  }

  Result<Program> ParseProgram() {
    Program program;
    SkipSemicolons();
    while (!Peek().IsOp(")") && Peek().kind != TokenKind::kEnd &&
           !Peek().IsKeyword("end")) {
      TXMOD_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      program.statements.push_back(std::move(stmt));
      if (!Peek().IsOp(";")) break;
      SkipSemicolons();
    }
    return program;
  }

  Result<Program> ParseProgramOnly() {
    TXMOD_ASSIGN_OR_RETURN(Program p, ParseProgram());
    TXMOD_RETURN_IF_ERROR(ExpectEnd());
    return p;
  }

  Result<Transaction> ParseTransaction() {
    Transaction txn;
    const bool bracketed = Peek().IsKeyword("begin");
    if (bracketed) Advance();
    TXMOD_ASSIGN_OR_RETURN(txn.program, ParseProgram());
    if (bracketed) {
      if (!Peek().IsKeyword("end")) {
        return Error("expected 'end' closing the transaction");
      }
      Advance();
      SkipSemicolons();
    }
    TXMOD_RETURN_IF_ERROR(ExpectEnd());
    return txn;
  }

  Result<RelExprPtr> ParseExpressionOnly() {
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr e, ParseRelExpr());
    TXMOD_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

 private:
  // --- token plumbing -----------------------------------------------------

  const Token& Peek(int ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrCat(message, " at ", DescribePosition(text_, Peek()),
               Peek().kind == TokenKind::kEnd
                   ? ""
                   : StrCat(" (near '", Peek().text, "')")));
  }

  Status ExpectOp(const char* op) {
    if (!Peek().IsOp(op)) return Error(StrCat("expected '", op, "'"));
    Advance();
    return Status::OK();
  }

  Status ExpectEnd() {
    if (Peek().kind != TokenKind::kEnd) return Error("unexpected input");
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument(
          StrCat("expected ", what, " at ", DescribePosition(text_, Peek())));
    }
    return Advance().text;
  }

  void SkipSemicolons() {
    while (Peek().IsOp(";")) Advance();
  }

  bool PeekKeyword(const char* kw, int ahead = 0) const {
    return Peek(ahead).IsKeyword(kw);
  }

  // --- schemas ------------------------------------------------------------

  SchemaResolver MakeResolver() const {
    return [this](RelRefKind kind,
                  const std::string& name) -> Result<RelationSchema> {
      if (kind == RelRefKind::kTemp) {
        auto it = temps_->find(name);
        if (it == temps_->end()) {
          return Status::NotFound(StrCat("unknown temporary ", name));
        }
        return it->second;
      }
      TXMOD_ASSIGN_OR_RETURN(const RelationSchema* s, db_->Find(name));
      return *s;
    };
  }

  Result<RelationSchema> SchemaOf(const RelExprPtr& e) const {
    return InferSchema(*e, MakeResolver());
  }

  // --- scalar expressions -------------------------------------------------
  //
  // Attribute references are parsed unresolved (side -1 for bare names)
  // and fixed up by ResolveScalar once input schemas are known.

  Result<ScalarExpr> ParseScalarOr() {
    TXMOD_ASSIGN_OR_RETURN(ScalarExpr lhs, ParseScalarAnd());
    while (PeekKeyword("or")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(ScalarExpr rhs, ParseScalarAnd());
      lhs = ScalarExpr::Binary(ScalarOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ScalarExpr> ParseScalarAnd() {
    TXMOD_ASSIGN_OR_RETURN(ScalarExpr lhs, ParseScalarNot());
    while (PeekKeyword("and")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(ScalarExpr rhs, ParseScalarNot());
      lhs = ScalarExpr::Binary(ScalarOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ScalarExpr> ParseScalarNot() {
    if (PeekKeyword("not")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(ScalarExpr inner, ParseScalarNot());
      return ScalarExpr::Not(std::move(inner));
    }
    return ParseScalarCmp();
  }

  Result<ScalarExpr> ParseScalarCmp() {
    TXMOD_ASSIGN_OR_RETURN(ScalarExpr lhs, ParseScalarSum());
    ScalarOp op;
    if (Peek().IsOp("=")) {
      op = ScalarOp::kEq;
    } else if (Peek().IsOp("!=") || Peek().IsOp("<>")) {
      op = ScalarOp::kNe;
    } else if (Peek().IsOp("<=")) {
      op = ScalarOp::kLe;
    } else if (Peek().IsOp("<")) {
      op = ScalarOp::kLt;
    } else if (Peek().IsOp(">=")) {
      op = ScalarOp::kGe;
    } else if (Peek().IsOp(">")) {
      op = ScalarOp::kGt;
    } else {
      return lhs;
    }
    Advance();
    TXMOD_ASSIGN_OR_RETURN(ScalarExpr rhs, ParseScalarSum());
    return ScalarExpr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<ScalarExpr> ParseScalarSum() {
    TXMOD_ASSIGN_OR_RETURN(ScalarExpr lhs, ParseScalarTerm());
    while (Peek().IsOp("+") || Peek().IsOp("-")) {
      const ScalarOp op =
          Peek().IsOp("+") ? ScalarOp::kAdd : ScalarOp::kSub;
      Advance();
      TXMOD_ASSIGN_OR_RETURN(ScalarExpr rhs, ParseScalarTerm());
      lhs = ScalarExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ScalarExpr> ParseScalarTerm() {
    TXMOD_ASSIGN_OR_RETURN(ScalarExpr lhs, ParseScalarFactor());
    while (Peek().IsOp("*") || Peek().IsOp("/")) {
      const ScalarOp op =
          Peek().IsOp("*") ? ScalarOp::kMul : ScalarOp::kDiv;
      Advance();
      TXMOD_ASSIGN_OR_RETURN(ScalarExpr rhs, ParseScalarFactor());
      lhs = ScalarExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ScalarExpr> ParseScalarFactor() {
    const Token& tok = Peek();
    if (tok.IsOp("(")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(ScalarExpr inner, ParseScalarOr());
      TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    if (tok.IsOp("-")) {  // unary minus on literals
      Advance();
      const Token& num = Peek();
      if (num.kind == TokenKind::kInt) {
        Advance();
        return ScalarExpr::Const(Value::Int(-num.int_value));
      }
      if (num.kind == TokenKind::kFloat) {
        Advance();
        return ScalarExpr::Const(Value::Double(-num.float_value));
      }
      return Error("expected numeric literal after unary '-'");
    }
    if (tok.kind == TokenKind::kInt) {
      Advance();
      return ScalarExpr::Const(Value::Int(tok.int_value));
    }
    if (tok.kind == TokenKind::kFloat) {
      Advance();
      return ScalarExpr::Const(Value::Double(tok.float_value));
    }
    if (tok.kind == TokenKind::kString) {
      Advance();
      return ScalarExpr::Const(Value::String(tok.string_value));
    }
    if (tok.IsOp("#")) {  // positional reference #i (unary side)
      Advance();
      if (Peek().kind != TokenKind::kInt) {
        return Error("expected attribute index after '#'");
      }
      const int idx = static_cast<int>(Advance().int_value);
      return ScalarExpr::Attr(0, idx);
    }
    if (tok.kind == TokenKind::kIdent) {
      if (tok.IsKeyword("null")) {
        Advance();
        return ScalarExpr::Const(Value::Null());
      }
      const std::string first = Advance().text;
      // l.x / r.x side-qualified references; l.0 positional.
      if ((AsciiToLower(first) == "l" || AsciiToLower(first) == "r") &&
          Peek().IsOp(".")) {
        const int side = AsciiToLower(first) == "l" ? 0 : 1;
        Advance();  // '.'
        if (Peek().kind == TokenKind::kInt) {
          return ScalarExpr::Attr(side,
                                  static_cast<int>(Advance().int_value));
        }
        TXMOD_ASSIGN_OR_RETURN(std::string name,
                               ExpectIdent("attribute name"));
        ScalarExpr e = ScalarExpr::Attr(side, -1, name);
        return e;
      }
      // Bare attribute name: side unresolved (-1) until schemas known.
      ScalarExpr e = ScalarExpr::Attr(-1, -1, first);
      return e;
    }
    return Error("expected scalar expression");
  }

  /// Resolves names/sides of attribute references in `e` against the input
  /// schema(s). `right` is null in unary contexts.
  Status ResolveScalar(ScalarExpr* e, const RelationSchema* left,
                       const RelationSchema* right) {
    if (e->op() == ScalarOp::kAttrRef) {
      // Explicit positional references: validate range, infer side 0 names.
      if (e->attr_index() >= 0) {
        const RelationSchema* s = e->side() == 1 ? right : left;
        if (s == nullptr) {
          return Status::InvalidArgument(
              "right-side attribute reference in unary context");
        }
        if (e->attr_index() >= static_cast<int>(s->arity())) {
          return Status::InvalidArgument(
              StrCat("attribute #", e->attr_index(),
                     " out of range (arity ", s->arity(), ")"));
        }
        return Status::OK();
      }
      const std::string& name = e->attr_name();
      const bool side_fixed = e->side() == 0 || e->side() == 1;
      if (side_fixed) {
        const RelationSchema* s = e->side() == 1 ? right : left;
        if (s == nullptr) {
          return Status::InvalidArgument(
              StrCat("attribute ", name, ": no such input side"));
        }
        Result<int> idx = s->AttributeIndex(name);
        if (!idx.ok()) return idx.status();
        e->set_attr_index(*idx);
        return Status::OK();
      }
      // Bare name: search left then right; ambiguity is an error.
      Result<int> li = left != nullptr
                           ? left->AttributeIndex(name)
                           : Result<int>(Status::NotFound("no left input"));
      Result<int> ri = right != nullptr
                           ? right->AttributeIndex(name)
                           : Result<int>(Status::NotFound("no right input"));
      if (li.ok() && ri.ok()) {
        return Status::InvalidArgument(
            StrCat("attribute ", name,
                   " is ambiguous; qualify with l. or r."));
      }
      if (li.ok()) {
        *e = ScalarExpr::Attr(0, *li, name);
        return Status::OK();
      }
      if (ri.ok()) {
        *e = ScalarExpr::Attr(1, *ri, name);
        return Status::OK();
      }
      return Status::NotFound(StrCat("unknown attribute ", name));
    }
    for (ScalarExpr& child : e->mutable_children()) {
      TXMOD_RETURN_IF_ERROR(ResolveScalar(&child, left, right));
    }
    return Status::OK();
  }

  // --- relational expressions ----------------------------------------------

  Result<RelExprPtr> ParseRelExpr() {
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr lhs, ParseRelDiff());
    while (PeekKeyword("union")) {
      // Function-style union(...) only occurs in primary position (handled
      // by ParseRelPrimary); after a left operand this is always infix,
      // even when the right operand is parenthesized.
      Advance();
      TXMOD_ASSIGN_OR_RETURN(RelExprPtr rhs, ParseRelDiff());
      TXMOD_RETURN_IF_ERROR(CheckSameArity(lhs, rhs, "union"));
      lhs = RelExpr::Union(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<RelExprPtr> ParseRelDiff() {
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr lhs, ParseRelIntersect());
    while (Peek().IsOp("-")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(RelExprPtr rhs, ParseRelIntersect());
      TXMOD_RETURN_IF_ERROR(CheckSameArity(lhs, rhs, "difference"));
      lhs = RelExpr::Difference(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<RelExprPtr> ParseRelIntersect() {
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr lhs, ParseRelPrimary());
    while (PeekKeyword("intersect")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(RelExprPtr rhs, ParseRelPrimary());
      TXMOD_RETURN_IF_ERROR(CheckSameArity(lhs, rhs, "intersect"));
      lhs = RelExpr::Intersect(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Status CheckSameArity(const RelExprPtr& l, const RelExprPtr& r,
                        const char* what) {
    TXMOD_ASSIGN_OR_RETURN(RelationSchema ls, SchemaOf(l));
    TXMOD_ASSIGN_OR_RETURN(RelationSchema rs, SchemaOf(r));
    if (ls.arity() != rs.arity()) {
      return Status::InvalidArgument(
          StrCat(what, " over different arities: ", ls.arity(), " vs ",
                 rs.arity()));
    }
    return Status::OK();
  }

  Result<RelExprPtr> ParseRelPrimary() {
    const Token& tok = Peek();
    if (tok.IsOp("(")) {
      Advance();
      TXMOD_ASSIGN_OR_RETURN(RelExprPtr inner, ParseRelExpr());
      TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    if (tok.IsOp("{")) return ParseLiteral();
    if (tok.kind != TokenKind::kIdent) {
      return Error("expected relational expression");
    }
    const std::string kw = AsciiToLower(tok.text);
    if (kw == "select") return ParseSelect();
    if (kw == "project") return ParseProject();
    if (kw == "join" || kw == "semijoin" || kw == "antijoin") {
      return ParseJoinLike(kw);
    }
    if (kw == "product" || kw == "union" || kw == "diff" ||
        kw == "intersect") {
      return ParseBinaryFunction(kw);
    }
    if (kw == "sum" || kw == "avg" || kw == "min" || kw == "max") {
      return ParseAggregate(kw);
    }
    if (kw == "cnt") return ParseCnt();
    if (kw == "old" || kw == "dplus" || kw == "dminus") {
      return ParseAuxRef(kw);
    }
    // Plain relation or temporary reference.
    Advance();
    const std::string name = tok.text;
    if (temps_->count(name) > 0) return RelExpr::Temp(name);
    if (db_->Contains(name)) return RelExpr::Base(name);
    return Status::NotFound(
        StrCat("unknown relation or temporary '", name, "' at ",
               DescribePosition(text_, tok)));
  }

  Result<RelExprPtr> ParseSelect() {
    Advance();  // select
    TXMOD_RETURN_IF_ERROR(ExpectOp("["));
    TXMOD_ASSIGN_OR_RETURN(ScalarExpr pred, ParseScalarOr());
    TXMOD_RETURN_IF_ERROR(ExpectOp("]"));
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr input, ParseRelExpr());
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    TXMOD_ASSIGN_OR_RETURN(RelationSchema schema, SchemaOf(input));
    TXMOD_RETURN_IF_ERROR(ResolveScalar(&pred, &schema, nullptr));
    return RelExpr::Select(std::move(pred), std::move(input));
  }

  Result<RelExprPtr> ParseProject() {
    Advance();  // project
    TXMOD_RETURN_IF_ERROR(ExpectOp("["));
    std::vector<ProjectionItem> items;
    while (true) {
      ProjectionItem item;
      TXMOD_ASSIGN_OR_RETURN(item.expr, ParseScalarOr());
      if (PeekKeyword("as")) {
        Advance();
        TXMOD_ASSIGN_OR_RETURN(item.name, ExpectIdent("projection name"));
      }
      items.push_back(std::move(item));
      if (!Peek().IsOp(",")) break;
      Advance();
    }
    TXMOD_RETURN_IF_ERROR(ExpectOp("]"));
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr input, ParseRelExpr());
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    TXMOD_ASSIGN_OR_RETURN(RelationSchema schema, SchemaOf(input));
    for (ProjectionItem& item : items) {
      TXMOD_RETURN_IF_ERROR(ResolveScalar(&item.expr, &schema, nullptr));
    }
    return RelExpr::Project(std::move(items), std::move(input));
  }

  Result<RelExprPtr> ParseJoinLike(const std::string& kw) {
    Advance();  // join/semijoin/antijoin
    TXMOD_RETURN_IF_ERROR(ExpectOp("["));
    TXMOD_ASSIGN_OR_RETURN(ScalarExpr pred, ParseScalarOr());
    TXMOD_RETURN_IF_ERROR(ExpectOp("]"));
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr left, ParseRelExpr());
    TXMOD_RETURN_IF_ERROR(ExpectOp(","));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr right, ParseRelExpr());
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    TXMOD_ASSIGN_OR_RETURN(RelationSchema ls, SchemaOf(left));
    TXMOD_ASSIGN_OR_RETURN(RelationSchema rs, SchemaOf(right));
    TXMOD_RETURN_IF_ERROR(ResolveScalar(&pred, &ls, &rs));
    if (kw == "join") {
      return RelExpr::Join(std::move(pred), std::move(left),
                           std::move(right));
    }
    if (kw == "semijoin") {
      return RelExpr::SemiJoin(std::move(pred), std::move(left),
                               std::move(right));
    }
    return RelExpr::AntiJoin(std::move(pred), std::move(left),
                             std::move(right));
  }

  Result<RelExprPtr> ParseBinaryFunction(const std::string& kw) {
    Advance();
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr left, ParseRelExpr());
    TXMOD_RETURN_IF_ERROR(ExpectOp(","));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr right, ParseRelExpr());
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    if (kw == "product") {
      return RelExpr::Product(std::move(left), std::move(right));
    }
    TXMOD_RETURN_IF_ERROR(CheckSameArity(left, right, kw.c_str()));
    if (kw == "union") {
      return RelExpr::Union(std::move(left), std::move(right));
    }
    if (kw == "diff") {
      return RelExpr::Difference(std::move(left), std::move(right));
    }
    return RelExpr::Intersect(std::move(left), std::move(right));
  }

  Result<RelExprPtr> ParseAggregate(const std::string& kw) {
    Advance();
    TXMOD_RETURN_IF_ERROR(ExpectOp("["));
    // Attribute: name, bare index, or #index; resolved after the input.
    std::string attr_name;
    int attr_index = -1;
    if (Peek().kind == TokenKind::kInt) {
      attr_index = static_cast<int>(Advance().int_value);
    } else if (Peek().IsOp("#")) {
      Advance();
      if (Peek().kind != TokenKind::kInt) {
        return Error("expected attribute index after '#'");
      }
      attr_index = static_cast<int>(Advance().int_value);
    } else {
      TXMOD_ASSIGN_OR_RETURN(attr_name, ExpectIdent("aggregate attribute"));
    }
    TXMOD_RETURN_IF_ERROR(ExpectOp("]"));
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr input, ParseRelExpr());
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    if (!attr_name.empty()) {
      TXMOD_ASSIGN_OR_RETURN(RelationSchema schema, SchemaOf(input));
      TXMOD_ASSIGN_OR_RETURN(attr_index, schema.AttributeIndex(attr_name));
    }
    AggFunc func = AggFunc::kSum;
    if (kw == "avg") func = AggFunc::kAvg;
    if (kw == "min") func = AggFunc::kMin;
    if (kw == "max") func = AggFunc::kMax;
    return RelExpr::Aggregate(func, attr_index, std::move(input));
  }

  Result<RelExprPtr> ParseCnt() {
    Advance();
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr input, ParseRelExpr());
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    return RelExpr::Aggregate(AggFunc::kCnt, -1, std::move(input));
  }

  Result<RelExprPtr> ParseAuxRef(const std::string& kw) {
    Advance();
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(std::string name, ExpectIdent("relation name"));
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    if (!db_->Contains(name)) {
      return Status::NotFound(
          StrCat("unknown relation ", name, " in ", kw, "(...)"));
    }
    if (kw == "old") return RelExpr::Old(name);
    if (kw == "dplus") return RelExpr::DeltaPlus(name);
    return RelExpr::DeltaMinus(name);
  }

  Result<Value> ParseLiteralValue() {
    const Token& tok = Peek();
    if (tok.IsOp("-")) {
      Advance();
      if (Peek().kind == TokenKind::kInt) {
        return Value::Int(-Advance().int_value);
      }
      if (Peek().kind == TokenKind::kFloat) {
        return Value::Double(-Advance().float_value);
      }
      return Error("expected number after '-'");
    }
    if (tok.kind == TokenKind::kInt) {
      return Value::Int(Advance().int_value);
    }
    if (tok.kind == TokenKind::kFloat) {
      return Value::Double(Advance().float_value);
    }
    if (tok.kind == TokenKind::kString) {
      return Value::String(Advance().string_value);
    }
    if (tok.IsKeyword("null")) {
      Advance();
      return Value::Null();
    }
    return Error("expected literal value");
  }

  Result<RelExprPtr> ParseLiteral() {
    TXMOD_RETURN_IF_ERROR(ExpectOp("{"));
    std::vector<Tuple> tuples;
    int arity = -1;
    while (true) {
      TXMOD_RETURN_IF_ERROR(ExpectOp("("));
      std::vector<Value> values;
      while (true) {
        TXMOD_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        values.push_back(std::move(v));
        if (!Peek().IsOp(",")) break;
        Advance();
      }
      TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
      if (arity < 0) {
        arity = static_cast<int>(values.size());
      } else if (arity != static_cast<int>(values.size())) {
        return Error("literal tuples have inconsistent arity");
      }
      tuples.emplace_back(std::move(values));
      if (!Peek().IsOp(",")) break;
      Advance();
    }
    TXMOD_RETURN_IF_ERROR(ExpectOp("}"));
    return RelExpr::Literal(std::move(tuples), arity);
  }

  // --- statements -----------------------------------------------------------

  Result<Statement> ParseStatement() {
    const Token& tok = Peek();
    if (tok.kind != TokenKind::kIdent) return Error("expected statement");
    const std::string kw = AsciiToLower(tok.text);
    if (kw == "insert" || kw == "delete") return ParseInsertDelete(kw);
    if (kw == "update") return ParseUpdate();
    if (kw == "alarm") return ParseAlarm();
    if (kw == "abort") return ParseAbort();
    // Assignment: IDENT ':=' relexpr.
    if (Peek(1).IsOp(":=")) return ParseAssign();
    return Error("expected statement (insert/delete/update/alarm/abort/:=)");
  }

  Result<Statement> ParseAssign() {
    TXMOD_ASSIGN_OR_RETURN(std::string name, ExpectIdent("temporary name"));
    if (db_->Contains(name)) {
      return Status::InvalidArgument(
          StrCat("cannot assign to base relation ", name,
                 "; use insert/delete/update"));
    }
    TXMOD_RETURN_IF_ERROR(ExpectOp(":="));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr e, ParseRelExpr());
    TXMOD_ASSIGN_OR_RETURN(RelationSchema schema, SchemaOf(e));
    (*temps_)[name] =
        RelationSchema(name, schema.attributes());
    return Statement::Assign(std::move(name), std::move(e));
  }

  Result<Statement> ParseInsertDelete(const std::string& kw) {
    Advance();
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(std::string rel, ExpectIdent("relation name"));
    TXMOD_ASSIGN_OR_RETURN(const RelationSchema* rel_schema,
                           db_->Find(rel));
    TXMOD_RETURN_IF_ERROR(ExpectOp(","));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr e, ParseRelExpr());
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    TXMOD_ASSIGN_OR_RETURN(RelationSchema es, SchemaOf(e));
    if (es.arity() != rel_schema->arity()) {
      return Status::InvalidArgument(
          StrCat(kw, " into ", rel, ": expression arity ", es.arity(),
                 " does not match relation arity ", rel_schema->arity()));
    }
    if (kw == "insert") return Statement::Insert(std::move(rel), std::move(e));
    return Statement::Delete(std::move(rel), std::move(e));
  }

  Result<Statement> ParseUpdate() {
    Advance();
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(std::string rel, ExpectIdent("relation name"));
    TXMOD_ASSIGN_OR_RETURN(const RelationSchema* schema, db_->Find(rel));
    TXMOD_RETURN_IF_ERROR(ExpectOp(","));
    TXMOD_ASSIGN_OR_RETURN(ScalarExpr pred, ParseScalarOr());
    TXMOD_RETURN_IF_ERROR(ResolveScalar(&pred, schema, nullptr));
    std::vector<UpdateSet> sets;
    while (Peek().IsOp(",")) {
      Advance();
      UpdateSet u;
      TXMOD_ASSIGN_OR_RETURN(u.attr_name, ExpectIdent("attribute name"));
      TXMOD_ASSIGN_OR_RETURN(u.attr, schema->AttributeIndex(u.attr_name));
      TXMOD_RETURN_IF_ERROR(ExpectOp(":="));
      TXMOD_ASSIGN_OR_RETURN(u.expr, ParseScalarOr());
      TXMOD_RETURN_IF_ERROR(ResolveScalar(&u.expr, schema, nullptr));
      sets.push_back(std::move(u));
    }
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    if (sets.empty()) {
      return Status::InvalidArgument(
          StrCat("update(", rel, ", ...) needs at least one assignment"));
    }
    return Statement::Update(std::move(rel), std::move(pred),
                             std::move(sets));
  }

  Result<Statement> ParseAlarm() {
    Advance();
    TXMOD_RETURN_IF_ERROR(ExpectOp("("));
    TXMOD_ASSIGN_OR_RETURN(RelExprPtr e, ParseRelExpr());
    std::string message;
    if (Peek().IsOp(",")) {
      Advance();
      if (Peek().kind != TokenKind::kString) {
        return Error("expected string message in alarm(...)");
      }
      message = Advance().string_value;
    }
    TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    return Statement::Alarm(std::move(e), std::move(message));
  }

  Result<Statement> ParseAbort() {
    Advance();
    std::string message;
    if (Peek().IsOp("(")) {
      Advance();
      if (Peek().kind == TokenKind::kString) {
        message = Advance().string_value;
      }
      TXMOD_RETURN_IF_ERROR(ExpectOp(")"));
    }
    return Statement::Abort(std::move(message));
  }

  const std::string& text_;
  const DatabaseSchema* db_;
  std::map<std::string, RelationSchema>* temps_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Program> AlgebraParser::ParseProgram(const std::string& text) {
  std::map<std::string, RelationSchema> temps = temp_schemas_;
  ParserImpl impl(text, db_schema_, &temps);
  TXMOD_RETURN_IF_ERROR(impl.Init());
  return impl.ParseProgramOnly();
}

Result<RelExprPtr> AlgebraParser::ParseExpression(const std::string& text) {
  std::map<std::string, RelationSchema> temps = temp_schemas_;
  ParserImpl impl(text, db_schema_, &temps);
  TXMOD_RETURN_IF_ERROR(impl.Init());
  return impl.ParseExpressionOnly();
}

Result<Transaction> AlgebraParser::ParseTransaction(const std::string& text) {
  std::map<std::string, RelationSchema> temps = temp_schemas_;
  ParserImpl impl(text, db_schema_, &temps);
  TXMOD_RETURN_IF_ERROR(impl.Init());
  return impl.ParseTransaction();
}

}  // namespace txmod::algebra
