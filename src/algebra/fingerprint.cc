#include "src/algebra/fingerprint.h"

#include <utility>

#include "src/common/str_util.h"

namespace txmod::algebra {

// Both walkers below implement ONE traversal contract, and must keep
// implementing it identically, or a cached canonical plan would be
// executed under a misaligned binding vector:
//
//   * RelExpr nodes pre-order; node payload (predicate / projection items
//     / literal values) before inputs, inputs left to right;
//   * ScalarExpr nodes pre-order, children left to right;
//   * literal tuples row-major, in stored order;
//   * every kConst and every literal value claims the next slot.
//
// tests/fingerprint_test.cc pins the contract: FingerprintExpr(e).params
// must equal ParameterizeExpr(e).params for randomized trees, and the
// canonical tree under that binding must evaluate exactly like `e`.
//
// The shape encoding is injective by construction — variable-length
// strings (relation names, attribute names, projection aliases) are
// length-prefixed, numbers are delimited by non-digits — so equal shapes
// cannot come from structurally different trees.

namespace {

void AppendString(const std::string& s, std::string* out) {
  out->append(StrCat(s.size(), ":"));
  out->append(s);
}

void FingerprintScalar(const ScalarExpr& e, std::string* shape,
                       std::vector<Value>* params) {
  switch (e.op()) {
    case ScalarOp::kConst:
      shape->push_back('?');
      params->push_back(e.constant());
      return;
    case ScalarOp::kParam:
      // Already canonical; keep the slot literal so re-fingerprinting a
      // canonical tree stays injective (and extracts nothing).
      shape->append(StrCat("p", e.param_slot()));
      return;
    case ScalarOp::kAttrRef:
      shape->append(StrCat("a", e.side(), ".", e.attr_index(), "."));
      AppendString(e.attr_name(), shape);
      return;
    default:
      break;
  }
  shape->append(StrCat("o", static_cast<int>(e.op()), "("));
  for (const ScalarExpr& c : e.children()) {
    FingerprintScalar(c, shape, params);
    shape->push_back(',');
  }
  shape->push_back(')');
}

void FingerprintNode(const RelExpr& e, std::string* shape,
                     std::vector<Value>* params) {
  switch (e.kind()) {
    case RelExprKind::kRef:
      shape->append(StrCat("R", static_cast<int>(e.ref_kind()), ":"));
      AppendString(e.rel_name(), shape);
      return;  // leaf
    case RelExprKind::kLiteral:
      shape->append(StrCat("L", e.literal_arity(), "x",
                           e.literal_tuples().size()));
      shape->append(e.literal_param_base() >= 0
                        ? StrCat("p", e.literal_param_base())
                        : "?");
      if (e.literal_param_base() < 0) {
        for (const Tuple& t : e.literal_tuples()) {
          for (std::size_t i = 0; i < t.arity(); ++i) {
            params->push_back(t.at(i));
          }
        }
      }
      return;  // leaf
    case RelExprKind::kSelect:
      shape->append("S[");
      FingerprintScalar(e.predicate(), shape, params);
      shape->push_back(']');
      break;
    case RelExprKind::kProject:
      shape->append("P[");
      for (const ProjectionItem& item : e.projections()) {
        FingerprintScalar(item.expr, shape, params);
        shape->push_back('n');
        AppendString(item.name, shape);
        shape->push_back(',');
      }
      shape->push_back(']');
      break;
    case RelExprKind::kProduct:
      shape->push_back('X');
      break;
    case RelExprKind::kJoin:
    case RelExprKind::kSemiJoin:
    case RelExprKind::kAntiJoin:
      shape->append(e.kind() == RelExprKind::kJoin
                        ? "J["
                        : e.kind() == RelExprKind::kSemiJoin ? "SJ[" : "AJ[");
      FingerprintScalar(e.predicate(), shape, params);
      shape->push_back(']');
      break;
    case RelExprKind::kUnion:
      shape->push_back('U');
      break;
    case RelExprKind::kDifference:
      shape->push_back('D');
      break;
    case RelExprKind::kIntersect:
      shape->push_back('N');
      break;
    case RelExprKind::kAggregate: {
      shape->append(StrCat("A", static_cast<int>(e.agg_func()), ",",
                           e.agg_attr(), ",g{"));
      for (int g : e.group_by()) shape->append(StrCat(g, ","));
      shape->append("}");
      break;
    }
  }
  shape->push_back('(');
  for (const RelExprPtr& in : e.inputs()) {
    FingerprintNode(*in, shape, params);
    shape->push_back(',');
  }
  shape->push_back(')');
}

ScalarExpr ParameterizeScalar(const ScalarExpr& e,
                              std::vector<Value>* params) {
  switch (e.op()) {
    case ScalarOp::kConst: {
      const int slot = static_cast<int>(params->size());
      params->push_back(e.constant());
      return ScalarExpr::Param(slot);
    }
    case ScalarOp::kParam:
    case ScalarOp::kAttrRef:
      return e;
    default:
      break;
  }
  ScalarExpr out = e;
  for (ScalarExpr& c : out.mutable_children()) {
    c = ParameterizeScalar(c, params);
  }
  return out;
}

RelExprPtr ParameterizeNode(const RelExpr& e, std::vector<Value>* params) {
  switch (e.kind()) {
    case RelExprKind::kRef:
      return RelExpr::Ref(e.ref_kind(), e.rel_name());
    case RelExprKind::kLiteral: {
      if (e.literal_param_base() >= 0) {
        return RelExpr::ParamLiteral(
            static_cast<int>(e.literal_tuples().size()), e.literal_arity(),
            e.literal_param_base());
      }
      const int base = static_cast<int>(params->size());
      for (const Tuple& t : e.literal_tuples()) {
        for (std::size_t i = 0; i < t.arity(); ++i) {
          params->push_back(t.at(i));
        }
      }
      return RelExpr::ParamLiteral(
          static_cast<int>(e.literal_tuples().size()), e.literal_arity(),
          base);
    }
    case RelExprKind::kSelect: {
      ScalarExpr pred = ParameterizeScalar(e.predicate(), params);
      return RelExpr::Select(std::move(pred),
                             ParameterizeNode(*e.left(), params));
    }
    case RelExprKind::kProject: {
      std::vector<ProjectionItem> items;
      items.reserve(e.projections().size());
      for (const ProjectionItem& item : e.projections()) {
        items.push_back(
            ProjectionItem{ParameterizeScalar(item.expr, params), item.name});
      }
      return RelExpr::Project(std::move(items),
                              ParameterizeNode(*e.left(), params));
    }
    case RelExprKind::kProduct: {
      // Children are sequenced through named locals everywhere below:
      // builder-argument evaluation order is unspecified, and the slot
      // contract requires left before right.
      RelExprPtr left = ParameterizeNode(*e.left(), params);
      RelExprPtr right = ParameterizeNode(*e.right(), params);
      return RelExpr::Product(std::move(left), std::move(right));
    }
    case RelExprKind::kJoin:
    case RelExprKind::kSemiJoin:
    case RelExprKind::kAntiJoin: {
      ScalarExpr pred = ParameterizeScalar(e.predicate(), params);
      RelExprPtr left = ParameterizeNode(*e.left(), params);
      RelExprPtr right = ParameterizeNode(*e.right(), params);
      if (e.kind() == RelExprKind::kJoin) {
        return RelExpr::Join(std::move(pred), std::move(left),
                             std::move(right));
      }
      if (e.kind() == RelExprKind::kSemiJoin) {
        return RelExpr::SemiJoin(std::move(pred), std::move(left),
                                 std::move(right));
      }
      return RelExpr::AntiJoin(std::move(pred), std::move(left),
                               std::move(right));
    }
    case RelExprKind::kUnion: {
      RelExprPtr left = ParameterizeNode(*e.left(), params);
      RelExprPtr right = ParameterizeNode(*e.right(), params);
      return RelExpr::Union(std::move(left), std::move(right));
    }
    case RelExprKind::kDifference: {
      RelExprPtr left = ParameterizeNode(*e.left(), params);
      RelExprPtr right = ParameterizeNode(*e.right(), params);
      return RelExpr::Difference(std::move(left), std::move(right));
    }
    case RelExprKind::kIntersect: {
      RelExprPtr left = ParameterizeNode(*e.left(), params);
      RelExprPtr right = ParameterizeNode(*e.right(), params);
      return RelExpr::Intersect(std::move(left), std::move(right));
    }
    case RelExprKind::kAggregate:
      if (e.group_by().empty()) {
        return RelExpr::Aggregate(e.agg_func(), e.agg_attr(),
                                  ParameterizeNode(*e.left(), params));
      }
      return RelExpr::GroupAggregate(e.group_by(), e.agg_func(), e.agg_attr(),
                                     ParameterizeNode(*e.left(), params));
  }
  return RelExpr::Ref(e.ref_kind(), e.rel_name());
}

}  // namespace

ExprFingerprint FingerprintExpr(const RelExpr& e) {
  ExprFingerprint fp;
  fp.shape.reserve(64);
  FingerprintNode(e, &fp.shape, &fp.params);
  return fp;
}

ParameterizedExpr ParameterizeExpr(const RelExpr& e) {
  ParameterizedExpr out;
  out.expr = ParameterizeNode(e, &out.params);
  return out;
}

}  // namespace txmod::algebra
