#ifndef TXMOD_ALGEBRA_FINGERPRINT_H_
#define TXMOD_ALGEBRA_FINGERPRINT_H_

#include <string>
#include <vector>

#include "src/algebra/rel_expr.h"
#include "src/relational/value.h"

namespace txmod::algebra {

/// Structural fingerprint of a RelExpr tree, canonicalizing literal
/// constants out into parameter slots: two expressions that differ only in
/// the constants they mention — `select[amount >= 5](fk_rel)` and
/// `select[amount >= 9](fk_rel)`, or two insert literals with different
/// tuples of the same count and arity — produce the *same* shape string
/// and different `params` vectors. Everything else that could change plan
/// choice or execution semantics (node kinds, reference kinds and names,
/// attribute indices and names, projection aliases, aggregate specs,
/// literal dimensions) is encoded into `shape`, so shape equality implies
/// structural equality modulo constants: a shape-keyed plan cache can
/// never produce a false hit. The paper's definition-time/enforcement-time
/// split (Section 6.2) extends this way to ad-hoc statements: analysis is
/// paid once per statement *shape*, not once per statement.
///
/// Slot order is the canonical traversal order (pre-order; predicates and
/// projection items before inputs; literal tuples row-major), shared with
/// ParameterizeExpr below — FingerprintExpr(e).params is exactly the
/// binding vector that evaluates ParameterizeExpr(e).expr to e's value.
struct ExprFingerprint {
  std::string shape;
  std::vector<Value> params;
};

ExprFingerprint FingerprintExpr(const RelExpr& e);

/// The canonical (parameterized) form of `e`: constants become
/// ScalarExpr kParam slots, literal relations become RelExpr::ParamLiteral
/// nodes, and `params` is the binding that makes the canonical tree
/// evaluate exactly like `e`. Compile the canonical tree once, execute it
/// under any same-shape statement's binding.
///
/// Input must be a plain (parser/translator-produced) tree; kParam nodes
/// already present are passed through untouched, so canonical trees are
/// not re-canonicalized.
struct ParameterizedExpr {
  RelExprPtr expr;
  std::vector<Value> params;
};

ParameterizedExpr ParameterizeExpr(const RelExpr& e);

}  // namespace txmod::algebra

#endif  // TXMOD_ALGEBRA_FINGERPRINT_H_
