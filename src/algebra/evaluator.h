#ifndef TXMOD_ALGEBRA_EVALUATOR_H_
#define TXMOD_ALGEBRA_EVALUATOR_H_

#include "src/algebra/eval_context.h"
#include "src/algebra/rel_expr.h"
#include "src/common/result.h"
#include "src/relational/relation.h"

namespace txmod::algebra {

/// Evaluates `expr` against the relations supplied by `ctx`, materializing
/// the result (operation-at-a-time evaluation, as in PRISMA/DB's XRA
/// engine). `stats` (optional) accumulates work counters.
///
/// Implementation notes:
///  * joins/semijoins/antijoins use a hash join on the equality conjuncts
///    of the predicate when present (numeric keys normalized to double so
///    hash matching agrees with predicate comparison), falling back to
///    nested loops;
///  * set operations (union/difference/intersect) use type-exact tuple
///    identity, matching Relation's set semantics;
///  * scalar aggregates produce a single one-attribute tuple; CNT of the
///    empty relation is 0, SUM of the empty relation is 0, AVG/MIN/MAX of
///    the empty relation are null.
Result<Relation> EvaluateRelExpr(const RelExpr& expr, const EvalContext& ctx,
                                 EvalStats* stats = nullptr);

}  // namespace txmod::algebra

#endif  // TXMOD_ALGEBRA_EVALUATOR_H_
