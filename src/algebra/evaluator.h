#ifndef TXMOD_ALGEBRA_EVALUATOR_H_
#define TXMOD_ALGEBRA_EVALUATOR_H_

#include "src/algebra/eval_context.h"
#include "src/algebra/rel_expr.h"
#include "src/common/result.h"
#include "src/relational/relation.h"

namespace txmod::algebra {

/// Evaluates `expr` against the relations supplied by `ctx` into a
/// materialized result: compiles a physical plan (physical_plan.h) and
/// executes it as a pull-based pipeline of tuple cursors. Selections,
/// projections, products and join probes stream tuples from their
/// children without building intermediate relations; only pipeline
/// breakers materialize (hash-join build sides, product and
/// difference/intersect right sides, aggregate inputs that may carry
/// duplicates, and the final result). `stats` (optional) accumulates work
/// counters. Repeated evaluations of the same expression should compile
/// once via PhysicalPlan / PlanCache instead of calling this per use.
///
/// Implementation notes:
///  * joins/semijoins/antijoins hash on the equality conjuncts of the
///    predicate when present (Value::KeyHash, which provably agrees with
///    predicate equality — see value.h), falling back to nested loops; a
///    base relation with a declared RelationIndex on exactly the join's
///    right-side key attributes is probed in place with no per-evaluation
///    build work at all;
///  * set operations (union/difference/intersect) use type-exact tuple
///    identity, matching Relation's set semantics;
///  * scalar aggregates produce a single one-attribute tuple; CNT of the
///    empty relation is 0, SUM of the empty relation is 0, AVG/MIN/MAX of
///    the empty relation are null.
///
/// Stats semantics (pinned by tests/evaluator_stats_test.cc): every
/// operator adds the tuples it reads from its inputs to `tuples_scanned`
/// (a materialized build side counts once, an indexed build side counts
/// zero) and the tuples it yields to `tuples_emitted` *before* any
/// downstream set-dedup.
Result<Relation> EvaluateRelExpr(const RelExpr& expr, const EvalContext& ctx,
                                 EvalStats* stats = nullptr);

}  // namespace txmod::algebra

#endif  // TXMOD_ALGEBRA_EVALUATOR_H_
