#ifndef TXMOD_ALGEBRA_SCALAR_EXPR_H_
#define TXMOD_ALGEBRA_SCALAR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/tuple.h"

namespace txmod::algebra {

/// Node kinds of scalar (tuple-level) expressions: the value functions FV,
/// value predicates PV, and connectives of CL (Definition 4.1), evaluated
/// over one tuple (selections, projections, update functions) or a pair of
/// tuples (join predicates).
enum class ScalarOp {
  // Leaves.
  kConst,
  kAttrRef,
  kParam,  // parameter slot ?i of a canonicalized (shape-cached) expression
  // Arithmetic (FV = {+, -, *, /}).
  kAdd,
  kSub,
  kMul,
  kDiv,
  // Comparisons (PV = {<, <=, =, !=, >=, >}).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // Connectives.
  kAnd,
  kOr,
  kNot,
};

const char* ScalarOpToString(ScalarOp op);

/// A scalar expression tree. Attribute references carry a side (0 = the
/// current/left tuple, 1 = the right tuple of a join predicate), a resolved
/// index, and optionally the attribute name they were written with (kept
/// for printing).
///
/// Evaluation semantics:
///  * arithmetic over nulls yields null; division by zero is an error;
///  * comparisons use Value::Compare (numeric coercion; any ordering
///    involving null is false; `=` on two nulls is true);
///  * and/or/not are strict two-valued once comparisons collapse to bool.
class ScalarExpr {
 public:
  ScalarExpr() : op_(ScalarOp::kConst), constant_(Value::Null()) {}

  static ScalarExpr Const(Value v);
  /// Parameter slot `slot`: evaluates to params[slot] of the binding
  /// vector supplied at evaluation time. Produced by ParameterizeExpr
  /// (fingerprint.h) when canonicalizing constants out of cached plans;
  /// never written by the parsers.
  static ScalarExpr Param(int slot);
  static ScalarExpr Attr(int side, int index, std::string name = "");
  static ScalarExpr Binary(ScalarOp op, ScalarExpr lhs, ScalarExpr rhs);
  static ScalarExpr Not(ScalarExpr operand);
  /// Conjunction of `terms`; empty list yields constant true.
  static ScalarExpr And(std::vector<ScalarExpr> terms);
  /// Constant true (internally: 1 = 1 is avoided; a dedicated constant).
  static ScalarExpr True();
  static ScalarExpr False();

  ScalarOp op() const { return op_; }
  const Value& constant() const { return constant_; }
  int side() const { return side_; }
  int param_slot() const { return param_slot_; }
  int attr_index() const { return attr_index_; }
  const std::string& attr_name() const { return attr_name_; }
  const std::vector<ScalarExpr>& children() const { return children_; }

  bool IsConstTrue() const;
  bool IsConstFalse() const;

  /// Sets the resolved index of a kAttrRef (name resolution pass).
  void set_attr_index(int index) { attr_index_ = index; }

  /// Mutable traversal used by resolution/rewriting passes.
  std::vector<ScalarExpr>& mutable_children() { return children_; }

  /// Evaluates a value-producing expression. `left` must be non-null;
  /// `right` may be null when no side-1 references occur. `params` binds
  /// kParam slots (canonicalized expressions); evaluating a kParam without
  /// a binding — or with a short one — is an error, so a cached plan can
  /// never silently read a stale constant.
  Result<Value> EvalValue(const Tuple* left, const Tuple* right,
                          const std::vector<Value>* params = nullptr) const;

  /// Evaluates a predicate; comparison/connective semantics above.
  Result<bool> EvalPredicate(const Tuple* left, const Tuple* right,
                             const std::vector<Value>* params = nullptr) const;

  /// Collects every attribute reference (side, index) in the tree.
  void CollectAttrRefs(std::vector<std::pair<int, int>>* refs) const;

  /// Remaps attribute indices: each kAttrRef with side `side` gets
  /// index = mapping[old index]. Out-of-range is an internal error.
  Status RemapAttrs(int side, const std::vector<int>& mapping);

  /// Structural equality (used by tests and the optimizer).
  bool Equals(const ScalarExpr& other) const;

  /// Renders the expression. In unary contexts side-0 refs print as their
  /// name (or #i); with `qualify_sides` (join predicates) side 0 prints as
  /// l.name / l.i and side 1 as r.name / r.i, so that printing
  /// round-trips through the parser even when both inputs share attribute
  /// names.
  std::string ToString(bool qualify_sides = false) const;

 private:
  ScalarOp op_;
  Value constant_;
  int side_ = 0;
  int param_slot_ = -1;
  int attr_index_ = -1;
  std::string attr_name_;
  std::vector<ScalarExpr> children_;

  std::string ToStringPrec(int parent_prec, bool qualify_sides) const;
};

}  // namespace txmod::algebra

#endif  // TXMOD_ALGEBRA_SCALAR_EXPR_H_
