#ifndef TXMOD_ALGEBRA_PARSER_H_
#define TXMOD_ALGEBRA_PARSER_H_

#include <map>
#include <string>

#include "src/algebra/statement.h"
#include "src/common/result.h"
#include "src/relational/schema.h"

namespace txmod::algebra {

/// Parser for the textual extended relational algebra (XRA) syntax. Used
/// for the THEN-actions of RL integrity rules, for examples, and by tests.
///
/// Expression grammar (keywords case-insensitive):
///
///   relexpr    := diffexpr ('union' diffexpr)*
///   diffexpr   := isectexpr ('-' isectexpr)*
///   isectexpr  := primary ('intersect' primary)*
///   primary    := 'select'   '[' pred ']' '(' relexpr ')'
///               | 'project'  '[' projitem {',' projitem} ']' '(' relexpr ')'
///               | 'join'     '[' pred ']' '(' relexpr ',' relexpr ')'
///               | 'semijoin' '[' pred ']' '(' relexpr ',' relexpr ')'
///               | 'antijoin' '[' pred ']' '(' relexpr ',' relexpr ')'
///               | 'product'  '(' relexpr ',' relexpr ')'
///               | 'union' | 'diff' | 'intersect'  '(' relexpr ',' relexpr ')'
///               | ('sum'|'avg'|'min'|'max') '[' attr ']' '(' relexpr ')'
///               | 'cnt' '(' relexpr ')'
///               | ('old'|'dplus'|'dminus') '(' name ')'
///               | '{' tuple {',' tuple} '}'
///               | name | '(' relexpr ')'
///   projitem   := scalar ['as' name]
///
/// Scalar expressions use the usual precedence (or < and < not <
/// comparison < +- < */). Attribute references: bare names in unary
/// contexts; `l.name` / `r.name` (or bare, when unambiguous) in join
/// predicates; positional `#i` (unary) and `l.i` / `r.i`.
///
/// Statement grammar:
///
///   program    := stmt {';' stmt} [';']
///   stmt       := name ':=' relexpr
///               | 'insert' '(' name ',' relexpr ')'
///               | 'delete' '(' name ',' relexpr ')'
///               | 'update' '(' name ',' pred ',' name ':=' scalar
///                              {',' name ':=' scalar} ')'
///               | 'alarm'  '(' relexpr [',' string] ')'
///               | 'abort'  ['(' string ')']
///
/// A transaction is a program optionally enclosed in `begin` ... `end`.
class AlgebraParser {
 public:
  /// `db_schema` must outlive the parser; it resolves base relation names
  /// and attribute names.
  explicit AlgebraParser(const DatabaseSchema* db_schema)
      : db_schema_(db_schema) {}

  /// Parses a statement sequence. Temporaries defined by `t := E` become
  /// visible to subsequent statements of the same program.
  Result<Program> ParseProgram(const std::string& text);

  /// Parses a single relational expression (no temporaries in scope unless
  /// pre-registered with RegisterTemp).
  Result<RelExprPtr> ParseExpression(const std::string& text);

  /// Parses a program optionally enclosed in begin/end brackets.
  Result<Transaction> ParseTransaction(const std::string& text);

  /// Pre-registers a temporary's schema (e.g. when parsing an expression
  /// that refers to a temp created elsewhere).
  void RegisterTemp(const std::string& name, RelationSchema schema) {
    temp_schemas_[name] = std::move(schema);
  }

 private:
  const DatabaseSchema* db_schema_;
  std::map<std::string, RelationSchema> temp_schemas_;
};

}  // namespace txmod::algebra

#endif  // TXMOD_ALGEBRA_PARSER_H_
