#include "src/algebra/statement.h"

#include "src/common/str_util.h"

namespace txmod::algebra {

const char* StatementKindToString(StatementKind kind) {
  switch (kind) {
    case StatementKind::kAssign:
      return "assign";
    case StatementKind::kInsert:
      return "insert";
    case StatementKind::kDelete:
      return "delete";
    case StatementKind::kUpdate:
      return "update";
    case StatementKind::kAlarm:
      return "alarm";
    case StatementKind::kAbort:
      return "abort";
  }
  return "?";
}

Statement Statement::Assign(std::string temp, RelExprPtr e) {
  Statement s;
  s.kind = StatementKind::kAssign;
  s.target = std::move(temp);
  s.expr = std::move(e);
  return s;
}

Statement Statement::Insert(std::string relation, RelExprPtr e) {
  Statement s;
  s.kind = StatementKind::kInsert;
  s.target = std::move(relation);
  s.expr = std::move(e);
  return s;
}

Statement Statement::Delete(std::string relation, RelExprPtr e) {
  Statement s;
  s.kind = StatementKind::kDelete;
  s.target = std::move(relation);
  s.expr = std::move(e);
  return s;
}

Statement Statement::Update(std::string relation, ScalarExpr predicate,
                            std::vector<UpdateSet> sets) {
  Statement s;
  s.kind = StatementKind::kUpdate;
  s.target = std::move(relation);
  s.predicate = std::move(predicate);
  s.sets = std::move(sets);
  return s;
}

Statement Statement::Alarm(RelExprPtr e, std::string message) {
  Statement s;
  s.kind = StatementKind::kAlarm;
  s.expr = std::move(e);
  s.message = std::move(message);
  return s;
}

Statement Statement::Abort(std::string message) {
  Statement s;
  s.kind = StatementKind::kAbort;
  s.message = std::move(message);
  return s;
}

std::string Statement::ToString() const {
  switch (kind) {
    case StatementKind::kAssign:
      return StrCat(target, " := ", expr->ToString());
    case StatementKind::kInsert:
      return StrCat("insert(", target, ", ", expr->ToString(), ")");
    case StatementKind::kDelete:
      return StrCat("delete(", target, ", ", expr->ToString(), ")");
    case StatementKind::kUpdate: {
      std::vector<std::string> parts;
      for (const UpdateSet& u : sets) {
        const std::string name =
            u.attr_name.empty() ? StrCat("#", u.attr) : u.attr_name;
        parts.push_back(StrCat(name, " := ", u.expr.ToString()));
      }
      return StrCat("update(", target, ", ", predicate.ToString(), ", ",
                    Join(parts, ", "), ")");
    }
    case StatementKind::kAlarm:
      if (message.empty()) return StrCat("alarm(", expr->ToString(), ")");
      return StrCat("alarm(", expr->ToString(), ", \"", message, "\")");
    case StatementKind::kAbort:
      if (message.empty()) return "abort";
      return StrCat("abort(\"", message, "\")");
  }
  return "?";
}

Program Program::Concat(Program a, Program b) {
  Program out;
  out.non_triggering = a.non_triggering && b.non_triggering;
  out.statements = std::move(a.statements);
  out.statements.insert(out.statements.end(),
                        std::make_move_iterator(b.statements.begin()),
                        std::make_move_iterator(b.statements.end()));
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Statement& s : statements) {
    out += s.ToString();
    out += ";\n";
  }
  return out;
}

std::string Transaction::ToString() const {
  std::string out = "begin\n";
  for (const Statement& s : program.statements) {
    out += "  ";
    out += s.ToString();
    out += ";\n";
  }
  out += "end\n";
  return out;
}

}  // namespace txmod::algebra
