#ifndef TXMOD_ALGEBRA_STATEMENT_H_
#define TXMOD_ALGEBRA_STATEMENT_H_

#include <string>
#include <vector>

#include "src/algebra/rel_expr.h"
#include "src/algebra/scalar_expr.h"

namespace txmod::algebra {

/// Kinds of extended relational algebra statements (Definition 2.4: the
/// extended algebra adds assignments, insert, delete, and update statements
/// to the standard algebra; Definition 5.1 adds the alarm statement used by
/// aborting integrity programs).
enum class StatementKind {
  kAssign,  // temp := E
  kInsert,  // insert(R, E)
  kDelete,  // delete(R, E)        (removes the tuples of E from R)
  kUpdate,  // update(R, pred, a1 := e1, ...)   (delete + insert semantics)
  kAlarm,   // alarm(E [, message])  aborts the transaction iff E non-empty
  kAbort,   // unconditional abort
};

const char* StatementKindToString(StatementKind kind);

/// One attribute assignment of an update statement.
struct UpdateSet {
  int attr = -1;          // target attribute index in the relation
  std::string attr_name;  // as written (printing)
  ScalarExpr expr;        // evaluated over the *old* tuple
};

/// A single extended relational algebra statement.
struct Statement {
  StatementKind kind = StatementKind::kAbort;
  std::string target;           // kAssign: temp name; kInsert/kDelete/kUpdate: relation
  RelExprPtr expr;              // kAssign/kInsert/kDelete source, kAlarm condition
  ScalarExpr predicate;         // kUpdate selection predicate
  std::vector<UpdateSet> sets;  // kUpdate assignments
  std::string message;          // kAlarm / kAbort reason text

  static Statement Assign(std::string temp, RelExprPtr e);
  static Statement Insert(std::string relation, RelExprPtr e);
  static Statement Delete(std::string relation, RelExprPtr e);
  static Statement Update(std::string relation, ScalarExpr predicate,
                          std::vector<UpdateSet> sets);
  static Statement Alarm(RelExprPtr e, std::string message = "");
  static Statement Abort(std::string message = "");

  /// True for statements that change base relations (used by trigger
  /// extraction, Algorithm 5.2).
  bool IsUpdateStatement() const {
    return kind == StatementKind::kInsert || kind == StatementKind::kDelete ||
           kind == StatementKind::kUpdate;
  }

  std::string ToString() const;
};

/// An extended relational algebra program P = a1; ...; an (Definition 2.4).
/// The paper's program concatenation operator ⊕ is Concat; the empty
/// program P_epsilon is a default-constructed Program.
///
/// `non_triggering` implements Definition 6.2: a program flagged
/// non-triggering is skipped by trigger extraction (GetTrigPX), which cuts
/// edges out of the triggering graph.
struct Program {
  std::vector<Statement> statements;
  bool non_triggering = false;

  bool empty() const { return statements.empty(); }

  /// The ⊕ operator. The result is non-triggering only if both parts are.
  static Program Concat(Program a, Program b);

  /// Renders one statement per line, ';'-terminated.
  std::string ToString() const;
};

/// A transaction: a program enclosed in transaction brackets (Definition
/// 2.6). The debracketing operator ↓ is `program`; bracketing ↑ is the
/// constructor.
struct Transaction {
  Program program;
  std::string label;  // optional, diagnostics only

  std::string ToString() const;
};

}  // namespace txmod::algebra

#endif  // TXMOD_ALGEBRA_STATEMENT_H_
