#ifndef TXMOD_RULES_RULE_H_
#define TXMOD_RULES_RULE_H_

#include <map>
#include <string>

#include "src/algebra/statement.h"
#include "src/calculus/analyzer.h"
#include "src/calculus/ast.h"
#include "src/rules/trigger.h"

namespace txmod::rules {

/// How a rule responds to a constraint violation.
enum class ActionKind {
  /// Aborting rule: the incorrect transaction is aborted (translated to an
  /// alarm program by TransR, Algorithm 5.5).
  kAbort,
  /// Compensating rule: the incorrect updates are compensated by the
  /// rule's extended relational algebra program (Example 4.2's R2).
  kCompensate,
};

/// An integrity rule (Definition 4.7):
///
///   WHEN ts IF NOT c THEN p
///
/// `triggers` is either written by the designer or generated from the
/// condition by GenTrigC (Section 5.3 recommends generation as less
/// error-prone). The condition is stored in analyzed form (resolved
/// attribute indices, per-variable ranges).
struct IntegrityRule {
  std::string name;

  TriggerSet triggers;
  bool triggers_were_generated = false;

  calculus::AnalyzedFormula condition;

  ActionKind action_kind = ActionKind::kAbort;
  /// Compensating action program; empty for aborting rules.
  algebra::Program action;
  /// Definition 6.2: a non-triggering action never triggers further rules.
  bool action_non_triggering = false;

  /// Original RL source text (diagnostics, catalogs).
  std::string source_text;

  /// Renders the rule in RL syntax.
  std::string ToString() const;
};

}  // namespace txmod::rules

#endif  // TXMOD_RULES_RULE_H_
