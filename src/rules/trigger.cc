#include "src/rules/trigger.h"

#include "src/common/str_util.h"

namespace txmod::rules {

const char* UpdateTypeToString(UpdateType type) {
  return type == UpdateType::kIns ? "INS" : "DEL";
}

std::string Trigger::ToString() const {
  return StrCat(UpdateTypeToString(type), "(", relation, ")");
}

void TriggerSet::UnionWith(const TriggerSet& other) {
  triggers_.insert(other.triggers_.begin(), other.triggers_.end());
}

bool TriggerSet::Intersects(const TriggerSet& other) const {
  for (const Trigger& t : triggers_) {
    if (other.Contains(t)) return true;
  }
  return false;
}

std::string TriggerSet::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(triggers_.size());
  for (const Trigger& t : triggers_) parts.push_back(t.ToString());
  return Join(parts, ", ");
}

TriggerSet GetTrigS(const algebra::Statement& stmt) {
  TriggerSet out;
  switch (stmt.kind) {
    case algebra::StatementKind::kInsert:
      out.Insert(Trigger{UpdateType::kIns, stmt.target});
      break;
    case algebra::StatementKind::kDelete:
      out.Insert(Trigger{UpdateType::kDel, stmt.target});
      break;
    case algebra::StatementKind::kUpdate:
      // Definition 4.5: an update is a combined delete and insert.
      out.Insert(Trigger{UpdateType::kIns, stmt.target});
      out.Insert(Trigger{UpdateType::kDel, stmt.target});
      break;
    default:
      break;  // assignments, alarms, aborts trigger nothing
  }
  return out;
}

TriggerSet GetTrigP(const algebra::Program& p) {
  TriggerSet out;
  for (const algebra::Statement& stmt : p.statements) {
    out.UnionWith(GetTrigS(stmt));
  }
  return out;
}

TriggerSet GetTrigPX(const algebra::Program& p) {
  if (p.non_triggering) return TriggerSet();
  return GetTrigP(p);
}

}  // namespace txmod::rules
