#ifndef TXMOD_RULES_RULE_PARSER_H_
#define TXMOD_RULES_RULE_PARSER_H_

#include <string>

#include "src/common/result.h"
#include "src/relational/schema.h"
#include "src/rules/rule.h"

namespace txmod::rules {

/// Parses one integrity rule in the RL language (Definition 4.7):
///
///   [WHEN trigger {',' trigger}]
///   IF NOT <CL formula>
///   THEN abort | [NONTRIGGERING] <XRA program>
///
///   trigger := ('INS' | 'DEL') '(' relation ')'
///
/// When the WHEN clause is omitted the trigger set is generated from the
/// condition with GenTrigC (Section 5.3). The condition is parsed with the
/// CL parser and analyzed against `schema`; a compensating THEN program is
/// parsed with the algebra parser. `name` is attached to the returned rule.
///
/// An explicit WHEN clause is taken as written — the paper allows designer
/// trigger sets for flexibility (Section 4), e.g. deliberately skipping
/// enforcement on update types the workload never performs. Use
/// core::ValidateRuleTriggers to diagnose explicit sets that miss triggers
/// GenTrigC would derive.
Result<IntegrityRule> ParseRule(const std::string& name,
                                const std::string& text,
                                const DatabaseSchema& schema);

}  // namespace txmod::rules

#endif  // TXMOD_RULES_RULE_PARSER_H_
