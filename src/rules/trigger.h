#ifndef TXMOD_RULES_TRIGGER_H_
#define TXMOD_RULES_TRIGGER_H_

#include <set>
#include <string>

#include "src/algebra/statement.h"

namespace txmod::rules {

/// Elementary update types U ∈ {INS, DEL} (Definition 4.5). An update
/// operation is modelled as the combination of a delete and an insert.
enum class UpdateType { kIns, kDel };

const char* UpdateTypeToString(UpdateType type);

/// A trigger specification U(R) (Definition 4.5).
struct Trigger {
  UpdateType type = UpdateType::kIns;
  std::string relation;

  bool operator==(const Trigger& other) const {
    return type == other.type && relation == other.relation;
  }
  bool operator<(const Trigger& other) const {
    if (relation != other.relation) return relation < other.relation;
    return type < other.type;
  }

  /// Renders as "INS(beer)".
  std::string ToString() const;
};

/// A trigger set specification (Definition 4.6): a set of triggers.
class TriggerSet {
 public:
  TriggerSet() = default;
  TriggerSet(std::initializer_list<Trigger> triggers)
      : triggers_(triggers) {}

  void Insert(Trigger t) { triggers_.insert(std::move(t)); }
  void UnionWith(const TriggerSet& other);

  bool Contains(const Trigger& t) const { return triggers_.count(t) > 0; }
  bool Intersects(const TriggerSet& other) const;
  bool empty() const { return triggers_.empty(); }
  std::size_t size() const { return triggers_.size(); }

  using ConstIterator = std::set<Trigger>::const_iterator;
  ConstIterator begin() const { return triggers_.begin(); }
  ConstIterator end() const { return triggers_.end(); }

  bool operator==(const TriggerSet& other) const {
    return triggers_ == other.triggers_;
  }

  /// Renders as "INS(beer), DEL(brewery)" (deterministic order).
  std::string ToString() const;

 private:
  std::set<Trigger> triggers_;
};

/// GetTrigS (Algorithm 5.2): the triggers of a single statement —
/// insert(R,E) yields {INS(R)}, delete(R,E) yields {DEL(R)}, update
/// yields {INS(R), DEL(R)}, all other statements yield ∅.
TriggerSet GetTrigS(const algebra::Statement& stmt);

/// GetTrigP (Algorithm 5.2): union of GetTrigS over the statements of `p`.
TriggerSet GetTrigP(const algebra::Program& p);

/// GetTrigPX (Definition 6.2): like GetTrigP, but a program declared
/// non-triggering contributes no triggers.
TriggerSet GetTrigPX(const algebra::Program& p);

}  // namespace txmod::rules

#endif  // TXMOD_RULES_TRIGGER_H_
