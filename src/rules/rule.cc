#include "src/rules/rule.h"

#include "src/common/str_util.h"

namespace txmod::rules {

std::string IntegrityRule::ToString() const {
  std::string out = StrCat("WHEN ", triggers.ToString(), "\n");
  out += StrCat("IF NOT ", condition.formula.ToString(), "\n");
  if (action_kind == ActionKind::kAbort) {
    out += "THEN abort\n";
  } else {
    out += "THEN ";
    if (action_non_triggering) out += "NONTRIGGERING ";
    // One statement per line, continuation lines indented for readability.
    std::vector<std::string> lines;
    lines.reserve(action.statements.size());
    for (const algebra::Statement& s : action.statements) {
      lines.push_back(StrCat(s.ToString(), ";"));
    }
    out += Join(lines, "\n     ");
    out += "\n";
  }
  return out;
}

}  // namespace txmod::rules
