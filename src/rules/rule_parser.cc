#include "src/rules/rule_parser.h"

#include <vector>

#include "src/algebra/parser.h"
#include "src/calculus/analyzer.h"
#include "src/calculus/parser.h"
#include "src/common/lexer.h"
#include "src/common/str_util.h"
#include "src/rules/trigger_gen.h"

namespace txmod::rules {

namespace {

/// Clause boundaries located in the token stream; the sub-languages are
/// re-parsed from the original text slices so each parser sees its own
/// grammar.
struct Clauses {
  bool has_when = false;
  std::string when_text;
  std::string condition_text;
  std::string action_text;
};

Result<Clauses> SplitClauses(const std::string& text) {
  TXMOD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  int when_pos = -1, if_pos = -1, not_pos = -1, then_pos = -1;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.IsKeyword("when") && when_pos < 0 && if_pos < 0) {
      when_pos = static_cast<int>(i);
    } else if (t.IsKeyword("if") && if_pos < 0) {
      if_pos = static_cast<int>(i);
    } else if (t.IsKeyword("not") && if_pos >= 0 && not_pos < 0 &&
               static_cast<int>(i) == if_pos + 1) {
      not_pos = static_cast<int>(i);
    } else if (t.IsKeyword("then") && if_pos >= 0 && then_pos < 0) {
      then_pos = static_cast<int>(i);
    }
  }
  if (if_pos < 0 || not_pos != if_pos + 1) {
    return Status::InvalidArgument(
        "integrity rule must contain an IF NOT clause (Definition 4.7)");
  }
  if (then_pos < 0) {
    return Status::InvalidArgument(
        "integrity rule must contain a THEN clause (Definition 4.7)");
  }
  if (when_pos >= 0 && when_pos > if_pos) {
    return Status::InvalidArgument("WHEN clause must precede IF NOT");
  }
  Clauses out;
  if (when_pos >= 0) {
    out.has_when = true;
    out.when_text =
        text.substr(tokens[when_pos + 1].position,
                    tokens[if_pos].position - tokens[when_pos + 1].position);
  }
  const int cond_begin = tokens[not_pos + 1].position;
  out.condition_text =
      text.substr(cond_begin, tokens[then_pos].position - cond_begin);
  out.action_text = text.substr(tokens[then_pos + 1].position);
  if (AsciiToLower(out.action_text).find_first_not_of(" \t\r\n") ==
      std::string::npos) {
    return Status::InvalidArgument("THEN clause must contain an action");
  }
  return out;
}

Result<TriggerSet> ParseWhenClause(const std::string& text) {
  TXMOD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TriggerSet out;
  std::size_t i = 0;
  while (tokens[i].kind != TokenKind::kEnd) {
    const Token& kw = tokens[i];
    UpdateType type;
    if (kw.IsKeyword("ins")) {
      type = UpdateType::kIns;
    } else if (kw.IsKeyword("del")) {
      type = UpdateType::kDel;
    } else {
      return Status::InvalidArgument(
          StrCat("expected INS or DEL in WHEN clause, got '", kw.text, "'"));
    }
    if (!tokens[i + 1].IsOp("(") ||
        tokens[i + 2].kind != TokenKind::kIdent ||
        !tokens[i + 3].IsOp(")")) {
      return Status::InvalidArgument(
          "trigger must have the form INS(relation) or DEL(relation)");
    }
    out.Insert(Trigger{type, tokens[i + 2].text});
    i += 4;
    if (tokens[i].IsOp(",")) {
      ++i;
      continue;
    }
    break;
  }
  if (tokens[i].kind != TokenKind::kEnd) {
    return Status::InvalidArgument("unexpected input after WHEN triggers");
  }
  if (out.empty()) {
    return Status::InvalidArgument("WHEN clause must list triggers");
  }
  return out;
}

}  // namespace

Result<IntegrityRule> ParseRule(const std::string& name,
                                const std::string& text,
                                const DatabaseSchema& schema) {
  TXMOD_ASSIGN_OR_RETURN(Clauses clauses, SplitClauses(text));

  IntegrityRule rule;
  rule.name = name;
  rule.source_text = text;

  // Condition: CL parse + semantic analysis.
  TXMOD_ASSIGN_OR_RETURN(calculus::Formula raw,
                         calculus::ParseFormula(clauses.condition_text));
  TXMOD_ASSIGN_OR_RETURN(rule.condition,
                         calculus::AnalyzeFormula(raw, schema));

  // Triggers: explicit WHEN or generated from the condition (Section 5.3).
  if (clauses.has_when) {
    TXMOD_ASSIGN_OR_RETURN(rule.triggers, ParseWhenClause(clauses.when_text));
    rule.triggers_were_generated = false;
  } else {
    rule.triggers = GenTrigC(rule.condition.formula);
    rule.triggers_were_generated = true;
    if (rule.triggers.empty()) {
      return Status::InvalidArgument(
          StrCat("rule ", name, ": no triggers could be generated from the "
                 "condition; specify a WHEN clause"));
    }
  }

  // Action: 'abort' or a compensating XRA program, optionally flagged
  // NONTRIGGERING (Definition 6.2).
  TXMOD_ASSIGN_OR_RETURN(std::vector<Token> action_tokens,
                         Tokenize(clauses.action_text));
  std::size_t start = 0;
  bool non_triggering = false;
  if (action_tokens[start].IsKeyword("nontriggering")) {
    non_triggering = true;
    ++start;
  }
  if (action_tokens[start].IsKeyword("abort") &&
      action_tokens[start + 1].kind == TokenKind::kEnd) {
    if (non_triggering) {
      return Status::InvalidArgument(
          "NONTRIGGERING applies to compensating programs; abort never "
          "triggers rules");
    }
    rule.action_kind = ActionKind::kAbort;
    return rule;
  }
  rule.action_kind = ActionKind::kCompensate;
  const std::string program_text =
      non_triggering
          ? clauses.action_text.substr(action_tokens[start].position)
          : clauses.action_text;
  algebra::AlgebraParser parser(&schema);
  TXMOD_ASSIGN_OR_RETURN(rule.action, parser.ParseProgram(program_text));
  if (rule.action.empty()) {
    return Status::InvalidArgument(
        StrCat("rule ", name, ": compensating action is empty"));
  }
  rule.action.non_triggering = non_triggering;
  rule.action_non_triggering = non_triggering;
  return rule;
}

}  // namespace txmod::rules
