#include "src/rules/trigger_gen.h"

#include <set>
#include <string>

namespace txmod::rules {

using calculus::CalcAgg;
using calculus::CalcRelKind;
using calculus::Formula;
using calculus::Term;

namespace {

using VarSet = std::set<std::string>;

// GenTrigT: triggers contributed by a term. Aggregates and counts over a
// base relation are sensitive to both INS and DEL. Recurses through
// arithmetic applications (see header).
void GenTrigT(const Term& t, TriggerSet* out) {
  switch (t.kind) {
    case Term::Kind::kAggregate:
      if (t.rel.kind == CalcRelKind::kBase) {
        out->Insert(Trigger{UpdateType::kIns, t.rel.name});
        out->Insert(Trigger{UpdateType::kDel, t.rel.name});
      }
      break;
    case Term::Kind::kArith:
      for (const Term& c : t.children) GenTrigT(c, out);
      break;
    default:
      break;
  }
}

// GenTrigA: triggers contributed by an atomic formula given the
// context-sensitive variable sets.
void GenTrigA(const Formula& f, const VarSet& vu, const VarSet& ve,
              TriggerSet* out) {
  switch (f.kind) {
    case Formula::Kind::kCompare:
      for (const Term& t : f.terms) GenTrigT(t, out);
      break;
    case Formula::Kind::kMembership:
      if (f.rel.kind != CalcRelKind::kBase) break;  // auxiliary: no trigger
      if (vu.count(f.var) > 0) {
        out->Insert(Trigger{UpdateType::kIns, f.rel.name});
      } else if (ve.count(f.var) > 0) {
        out->Insert(Trigger{UpdateType::kDel, f.rel.name});
      }
      break;
    case Formula::Kind::kTupleEq:
      break;  // no relation mentioned
    default:
      break;
  }
}

void GenTrigW(const Formula& f, VarSet vu, VarSet ve, TriggerSet* out);

// GenTrigN: the negated-context traversal. Quantifier roles swap
// (a ∀ under negation behaves existentially and vice versa); negation
// returns to the positive traversal; the implication antecedent is
// positive in negated context.
void GenTrigN(const Formula& f, VarSet vu, VarSet ve, TriggerSet* out) {
  switch (f.kind) {
    case Formula::Kind::kForall:
      ve.insert(f.var);
      GenTrigN(f.children[0], std::move(vu), std::move(ve), out);
      return;
    case Formula::Kind::kExists:
      vu.insert(f.var);
      GenTrigN(f.children[0], std::move(vu), std::move(ve), out);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      GenTrigN(f.children[0], vu, ve, out);
      GenTrigN(f.children[1], std::move(vu), std::move(ve), out);
      return;
    case Formula::Kind::kImplies:
      GenTrigW(f.children[0], vu, ve, out);
      GenTrigN(f.children[1], std::move(vu), std::move(ve), out);
      return;
    case Formula::Kind::kNot:
      GenTrigW(f.children[0], std::move(vu), std::move(ve), out);
      return;
    default:
      GenTrigA(f, vu, ve, out);
      return;
  }
}

// GenTrigW: the positive-context traversal (the paper's GenTrigW).
void GenTrigW(const Formula& f, VarSet vu, VarSet ve, TriggerSet* out) {
  switch (f.kind) {
    case Formula::Kind::kForall:
      vu.insert(f.var);
      GenTrigW(f.children[0], std::move(vu), std::move(ve), out);
      return;
    case Formula::Kind::kExists:
      ve.insert(f.var);
      GenTrigW(f.children[0], std::move(vu), std::move(ve), out);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      GenTrigW(f.children[0], vu, ve, out);
      GenTrigW(f.children[1], std::move(vu), std::move(ve), out);
      return;
    case Formula::Kind::kImplies:
      GenTrigN(f.children[0], vu, ve, out);
      GenTrigW(f.children[1], std::move(vu), std::move(ve), out);
      return;
    case Formula::Kind::kNot:
      GenTrigN(f.children[0], std::move(vu), std::move(ve), out);
      return;
    default:
      GenTrigA(f, vu, ve, out);
      return;
  }
}

}  // namespace

TriggerSet GenTrigC(const Formula& condition) {
  TriggerSet out;
  GenTrigW(condition, {}, {}, &out);
  return out;
}

}  // namespace txmod::rules
