#ifndef TXMOD_RULES_TRIGGER_GEN_H_
#define TXMOD_RULES_TRIGGER_GEN_H_

#include "src/calculus/ast.h"
#include "src/rules/trigger.h"

namespace txmod::rules {

/// GenTrigC (Algorithm 5.7): derives the trigger set of an integrity rule
/// from its CL condition by a polarity-tracking traversal.
///
/// The traversal carries the sets V_u / V_e of universally / existentially
/// quantified variables *as seen from the current context*: inside an odd
/// number of negations (GenTrigN in the paper) the roles swap, as does the
/// treatment of the implication antecedent. At the atoms:
///   * a membership x ∈ R with x universal in context yields INS(R) —
///     a new tuple must satisfy the surrounding condition;
///   * a membership x ∈ R with x existential yields DEL(R) — removing a
///     potential witness may falsify the condition;
///   * an aggregate or count application over R yields {INS(R), DEL(R)} —
///     both kinds of update change the aggregate's value.
///
/// Deviations from the paper's figure, both documented here deliberately:
///   * GenTrigT recurses through arithmetic function applications so that
///     aggregates nested in FV terms (e.g. sum(R,a) + sum(S,b) < c) are
///     found; the paper's figure defines GenTrigT on flat terms only.
///   * References to auxiliary relations (old/dplus/dminus) yield no
///     triggers: the pre-transaction state cannot be changed by the
///     transaction being analyzed.
TriggerSet GenTrigC(const calculus::Formula& condition);

}  // namespace txmod::rules

#endif  // TXMOD_RULES_TRIGGER_GEN_H_
