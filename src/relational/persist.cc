#include "src/relational/persist.h"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/str_util.h"

namespace txmod {

namespace {

constexpr char kMagic[] = "txmod-checkpoint";
constexpr int kVersion = 1;

}  // namespace

std::string EncodeValueText(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return StrCat("i:", v.as_int());
    case ValueType::kDouble: {
      // Hex float representation: lossless round trip.
      char buf[64];
      std::snprintf(buf, sizeof(buf), "d:%a", v.as_double());
      return buf;
    }
    case ValueType::kString: {
      std::string out = "s:\"";
      for (char c : v.as_string()) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
      }
      out += '"';
      return out;
    }
  }
  return "null";
}

Result<Value> DecodeValueText(const std::string& text) {
  if (text == "null") return Value::Null();
  // The i:/d: paths must be strict: a checksum passes on the whole line,
  // so a corrupted-but-plausible payload ("i:12junk", an out-of-range
  // digit string) would otherwise decode to a *wrong value* instead of
  // an error — silent corruption past a passing checksum. strtoll/strtod
  // report overflow only via errno (the return saturates), and trailing
  // bytes only via the end pointer; both are checked.
  if (text.rfind("i:", 0) == 0) {
    const char* payload = text.c_str() + 2;
    // strtoll/strtod skip leading whitespace; the encoder never emits
    // any, so "i: 1" is corruption too.
    if (std::isspace(static_cast<unsigned char>(payload[0]))) {
      return Status::InvalidArgument(
          StrCat("malformed int encoding: ", text));
    }
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(payload, &end, 10);
    if (end == payload || *end != '\0') {
      return Status::InvalidArgument(
          StrCat("malformed int encoding: ", text));
    }
    if (errno == ERANGE) {
      return Status::InvalidArgument(
          StrCat("int encoding out of range (does not fit int64): ", text));
    }
    return Value::Int(v);
  }
  if (text.rfind("d:", 0) == 0) {
    const char* payload = text.c_str() + 2;
    if (std::isspace(static_cast<unsigned char>(payload[0]))) {
      return Status::InvalidArgument(
          StrCat("malformed double encoding: ", text));
    }
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(payload, &end);
    if (end == payload || *end != '\0') {
      return Status::InvalidArgument(
          StrCat("malformed double encoding: ", text));
    }
    // Overflow saturates to +-HUGE_VAL with ERANGE set. Underflow also
    // sets ERANGE but yields an exactly-representable 0/denormal — the
    // encoder's hex-float output round-trips denormals exactly, so only
    // the saturating case is corruption.
    if (errno == ERANGE && std::fabs(v) == HUGE_VAL) {
      return Status::InvalidArgument(
          StrCat("double encoding out of range: ", text));
    }
    return Value::Double(v);
  }
  if (text.rfind("s:\"", 0) == 0 && text.size() >= 4 && text.back() == '"') {
    std::string out;
    for (std::size_t i = 3; i + 1 < text.size(); ++i) {
      if (text[i] == '\\' && i + 2 < text.size()) {
        ++i;
        switch (text[i]) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            out += text[i];
        }
      } else {
        out += text[i];
      }
    }
    return Value::String(std::move(out));
  }
  return Status::InvalidArgument(StrCat("bad value encoding: ", text));
}

/// Spaces inside quoted strings are part of the value; a simple state
/// machine tracks quoting.
std::vector<std::string> SplitEncodedValues(const std::string& line) {
  std::vector<std::string> out;
  std::string current;
  bool in_string = false;
  bool escaped = false;
  for (char c : line) {
    if (in_string) {
      current += c;
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      current += c;
      continue;
    }
    if (c == ' ') {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
      continue;
    }
    current += c;
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

namespace {

Result<AttrType> DecodeAttrType(const std::string& name) {
  if (name == "int") return AttrType::kInt;
  if (name == "double") return AttrType::kDouble;
  if (name == "string") return AttrType::kString;
  return Status::InvalidArgument(StrCat("unknown attribute type ", name));
}

}  // namespace

Status SaveDatabase(const Database& db, std::ostream& out) {
  out << kMagic << " " << kVersion << "\n";
  out << "time " << db.logical_time() << "\n";
  for (const std::string& name : db.RelationNames()) {
    const Relation* rel = *db.Find(name);
    const RelationSchema& schema = rel->schema();
    out << "relation " << name << " " << schema.arity() << "\n";
    for (const Attribute& attr : schema.attributes()) {
      out << "attr " << attr.name << " " << AttrTypeToString(attr.type)
          << "\n";
    }
    for (const Tuple& t : rel->SortedTuples()) {
      out << "tuple";
      for (const Value& v : t.values()) out << " " << EncodeValueText(v);
      out << "\n";
    }
    out << "end\n";
  }
  if (!out.good()) return Status::Internal("write failed");
  return Status::OK();
}

Status SaveDatabaseToFile(const Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument(StrCat("cannot open ", path,
                                          " for writing"));
  }
  return SaveDatabase(db, out);
}

Status CheckpointDatabaseToFile(const Database& db, const std::string& path,
                                Vfs* vfs) {
  if (vfs == nullptr) vfs = Vfs::Default();
  const std::string tmp = StrCat(path, ".tmp");
  std::ostringstream buffer;
  TXMOD_RETURN_IF_ERROR(SaveDatabase(db, buffer));
  TXMOD_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, vfs->OpenTrunc(tmp));
  TXMOD_RETURN_IF_ERROR(WriteFullyTo(file.get(), buffer.str(), "checkpoint"));
  // Flush the temp file's bytes to stable storage before the rename makes
  // it visible under the checkpoint name: rename-before-durable could
  // expose a checkpoint whose content a crash then loses.
  TXMOD_RETURN_IF_ERROR(file->Sync());
  file.reset();
  TXMOD_RETURN_IF_ERROR(vfs->Rename(tmp, path));
  // The rename only becomes durable with the directory entry; without
  // this, a later durable WAL truncation could outlive a lost rename and
  // recovery would pair the OLD checkpoint with an EMPTY log.
  return vfs->SyncParentDirectory(path);
}

Status FsyncParentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(StrCat("cannot open directory ", dir));
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) return Status::Internal(StrCat("fsync of ", dir, " failed"));
  return Status::OK();
}

Result<Database> LoadDatabase(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty checkpoint");
  }
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kMagic) {
      return Status::InvalidArgument("not a txmod checkpoint");
    }
    if (version != kVersion) {
      return Status::InvalidArgument(
          StrCat("unsupported checkpoint version ", version));
    }
  }
  Database db;
  uint64_t logical_time = 0;
  // The relation under construction. Built as a locally-owned state and
  // adopted wholesale at "end": the loader is logically a bulk writer of
  // fresh states and must never reach for Database::FindMutable — the
  // un-sharing path (overlay or clone) exists for mutating *shared*
  // states, which a loader has no business triggering.
  std::shared_ptr<Relation> current;
  std::string current_name;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "time") {
      fields >> logical_time;
    } else if (keyword == "relation") {
      std::string name;
      int arity = 0;
      fields >> name >> arity;
      std::vector<Attribute> attrs;
      attrs.reserve(arity);
      for (int i = 0; i < arity; ++i) {
        if (!std::getline(in, line)) {
          return Status::InvalidArgument("truncated attribute list");
        }
        ++line_number;
        std::istringstream attr_fields(line);
        std::string attr_kw, attr_name, attr_type;
        attr_fields >> attr_kw >> attr_name >> attr_type;
        if (attr_kw != "attr") {
          return Status::InvalidArgument(
              StrCat("expected attr at line ", line_number));
        }
        TXMOD_ASSIGN_OR_RETURN(AttrType type, DecodeAttrType(attr_type));
        attrs.push_back(Attribute{attr_name, type});
      }
      TXMOD_RETURN_IF_ERROR(
          db.CreateRelation(RelationSchema(name, std::move(attrs))));
      TXMOD_ASSIGN_OR_RETURN(const Relation* created, db.Find(name));
      current = std::make_shared<Relation>(created->schema_ptr());
      current_name = name;
    } else if (keyword == "tuple") {
      if (current == nullptr) {
        return Status::InvalidArgument(
            StrCat("tuple outside a relation at line ", line_number));
      }
      std::string rest;
      std::getline(fields, rest);
      std::vector<Value> values;
      for (const std::string& enc : SplitEncodedValues(rest)) {
        TXMOD_ASSIGN_OR_RETURN(Value v, DecodeValueText(enc));
        values.push_back(std::move(v));
      }
      Tuple tuple(std::move(values));
      TXMOD_RETURN_IF_ERROR(current->schema().CheckTuple(tuple));
      current->Insert(current->schema().CoerceTuple(std::move(tuple)));
    } else if (keyword == "end") {
      if (current != nullptr) {
        db.AdoptRelation(current_name, std::move(current));
        current = nullptr;
      }
    } else {
      return Status::InvalidArgument(
          StrCat("unknown keyword '", keyword, "' at line ", line_number));
    }
  }
  // A truncated checkpoint may end mid-relation; adopt what was read so
  // the loaded prefix is still visible (recovery validates separately).
  if (current != nullptr) db.AdoptRelation(current_name, std::move(current));
  while (db.logical_time() < logical_time) db.AdvanceTime();
  return db;
}

Result<Database> LoadDatabaseFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open ", path));
  }
  return LoadDatabase(in);
}

}  // namespace txmod
