#include "src/relational/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/str_util.h"
#include "src/relational/persist.h"

namespace txmod {

namespace {

constexpr char kWalHeader[] = "txmod-wal 1";

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = UINT64_C(14695981039346656037);
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= UINT64_C(1099511628211);
  }
  return h;
}

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Serializes the record body (everything the checksum covers).
std::string EncodeRecordBody(const WalRecord& rec) {
  std::string out = StrCat("txn ", rec.version, "\n");
  for (const WalDelta& delta : rec.deltas) {
    out += StrCat("rel ", delta.relation, "\n");
    for (const Tuple& t : delta.plus) {
      out += "+";
      for (const Value& v : t.values()) out += StrCat(" ", EncodeValueText(v));
      out += "\n";
    }
    for (const Tuple& t : delta.minus) {
      out += "-";
      for (const Value& v : t.values()) out += StrCat(" ", EncodeValueText(v));
      out += "\n";
    }
  }
  return out;
}

Status WriteFully(int fd, const std::string& buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("WAL write failed: ",
                                     std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<Tuple> DecodeTupleLine(const std::string& rest) {
  std::vector<Value> values;
  for (const std::string& enc : SplitEncodedValues(rest)) {
    TXMOD_ASSIGN_OR_RETURN(Value v, DecodeValueText(enc));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

}  // namespace

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path) {
  WriteAheadLog log(path);
  log.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log.fd_ < 0) {
    return Status::InvalidArgument(StrCat("cannot open WAL ", path, ": ",
                                          std::strerror(errno)));
  }
  const off_t size = ::lseek(log.fd_, 0, SEEK_END);
  if (size == 0) {
    TXMOD_RETURN_IF_ERROR(WriteFully(log.fd_, StrCat(kWalHeader, "\n")));
    // A freshly created file only survives a crash once its directory
    // entry is durable; without this, every fsync'd commit could vanish
    // with the whole file (recovery reads a missing WAL as empty).
    TXMOD_RETURN_IF_ERROR(FsyncParentDirectory(path));
  } else {
    // Verify this really is a WAL before appending to it.
    std::ifstream in(path);
    std::string first;
    if (!std::getline(in, first) || first != kWalHeader) {
      return Status::InvalidArgument(StrCat(path, " is not a txmod WAL"));
    }
  }
  return log;
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      appended_lsn_(other.appended_lsn_.load()),
      sync_mu_(std::move(other.sync_mu_)),
      sync_cv_(std::move(other.sync_cv_)),
      durable_lsn_guarded_(other.durable_lsn_guarded_),
      sync_in_progress_(other.sync_in_progress_),
      fsync_count_(other.fsync_count_.load()),
      sync_requests_(other.sync_requests_.load()),
      broken_(other.broken_.load()) {
  other.fd_ = -1;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> WriteAheadLog::Append(const WalRecord& rec) {
  const std::string body = EncodeRecordBody(rec);
  const std::string full =
      StrCat(body, "commit ", rec.version, " ", HexU64(Fnv1a(body)), "\n");
  std::lock_guard<std::mutex> lock(append_mu_);
  if (broken_.load()) {
    return Status::Internal(StrCat("WAL ", path_, " failed previously"));
  }
  const off_t pre_size = ::lseek(fd_, 0, SEEK_END);
  const Status written = WriteFully(fd_, full);
  if (!written.ok()) {
    // Un-tear: a partial record left at the tail would make every later
    // durable record unreachable to recovery (which stops at the first
    // invalid record). If even the truncate fails, poison the log — no
    // further append may land after a tear.
    if (pre_size < 0 || ::ftruncate(fd_, pre_size) != 0) {
      broken_.store(true);
    }
    return written;
  }
  return appended_lsn_.fetch_add(1) + 1;
}

Status WriteAheadLog::Sync(uint64_t lsn) {
  sync_requests_.fetch_add(1);
  std::unique_lock<std::mutex> lock(*sync_mu_);
  while (durable_lsn_guarded_ < lsn) {
    if (broken_.load()) {
      // A previous fsync failed. The kernel may have dropped the dirty
      // pages while marking them clean (the classic fsync-failure trap),
      // so a retried fsync would "succeed" without making the lost
      // records durable — never report durability after a failure.
      return Status::Internal(StrCat("WAL ", path_, " failed previously"));
    }
    if (sync_in_progress_) {
      // Another committer is the fsync leader; its fsync may already
      // cover our record. Wait and re-check.
      sync_cv_->wait(lock);
      continue;
    }
    // Become the leader. Capture the append horizon BEFORE the fsync:
    // everything appended before the fsync call is covered by it, and
    // records appended during the fsync will be claimed by the next
    // leader.
    sync_in_progress_ = true;
    const uint64_t target = appended_lsn_.load();
    lock.unlock();
    const bool ok = ::fsync(fd_) == 0;
    lock.lock();
    sync_in_progress_ = false;
    if (!ok) {
      broken_.store(true);
      sync_cv_->notify_all();
      return Status::Internal(StrCat("fsync of WAL ", path_, " failed"));
    }
    fsync_count_.fetch_add(1);
    if (target > durable_lsn_guarded_) durable_lsn_guarded_ = target;
    sync_cv_->notify_all();
  }
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  std::lock_guard<std::mutex> append_lock(append_mu_);
  std::lock_guard<std::mutex> sync_lock(*sync_mu_);
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal(StrCat("ftruncate of WAL ", path_, " failed"));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::Internal(StrCat("lseek of WAL ", path_, " failed"));
  }
  TXMOD_RETURN_IF_ERROR(WriteFully(fd_, StrCat(kWalHeader, "\n")));
  if (::fsync(fd_) != 0) {
    return Status::Internal(StrCat("fsync of WAL ", path_, " failed"));
  }
  // LSNs stay monotonic; everything appended so far is durably gone, so
  // the durable horizon catches up to the append horizon.
  durable_lsn_guarded_ = appended_lsn_.load();
  return Status::OK();
}

uint64_t WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lock(*sync_mu_);
  return durable_lsn_guarded_;
}

Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       WalReplayStats* stats) {
  std::vector<WalRecord> out;
  std::ifstream in(path);
  if (!in.is_open()) return out;  // no WAL: empty log

  auto drop_tail = [&](const std::string& why) {
    if (stats != nullptr) {
      stats->tail_dropped = true;
      stats->tail_error = why;
    }
  };

  std::string line;
  if (!std::getline(in, line)) return out;  // zero bytes: empty log
  if (line != kWalHeader) {
    // A crash can tear even the header write. A strict prefix of the
    // header with nothing after it is such a torn tail — an empty log;
    // anything else is genuinely not a WAL.
    const std::string header(kWalHeader);
    std::string rest;
    if (header.rfind(line, 0) == 0 && !std::getline(in, rest)) {
      drop_tail("truncated WAL header");
      return out;
    }
    return Status::InvalidArgument(StrCat(path, " is not a txmod WAL"));
  }

  // Scan records. `body` accumulates the exact bytes the checksum covers;
  // any structural surprise, checksum mismatch, or EOF mid-record drops
  // the tail (a torn append) and returns the valid prefix.
  WalRecord current;
  WalDelta* delta = nullptr;
  std::string body;
  bool in_record = false;
  while (std::getline(in, line)) {
    if (!in_record) {
      if (line.empty()) continue;
      if (line.rfind("txn ", 0) != 0) {
        drop_tail(StrCat("expected 'txn', found '", line, "'"));
        return out;
      }
      current = WalRecord{};
      delta = nullptr;
      current.version = std::strtoull(line.c_str() + 4, nullptr, 10);
      body = StrCat(line, "\n");
      in_record = true;
      continue;
    }
    if (line.rfind("commit ", 0) == 0) {
      std::istringstream fields(line);
      std::string kw, checksum;
      uint64_t version = 0;
      fields >> kw >> version >> checksum;
      if (version != current.version || checksum != HexU64(Fnv1a(body))) {
        drop_tail(StrCat("bad commit line for version ", current.version));
        return out;
      }
      out.push_back(std::move(current));
      if (stats != nullptr) ++stats->records_read;
      in_record = false;
      continue;
    }
    if (line.rfind("rel ", 0) == 0) {
      current.deltas.push_back(WalDelta{line.substr(4), {}, {}});
      delta = &current.deltas.back();
    } else if ((line.rfind("+ ", 0) == 0 || line == "+" ||
                line.rfind("- ", 0) == 0 || line == "-") &&
               delta != nullptr) {
      const bool plus = line[0] == '+';
      Result<Tuple> tuple =
          DecodeTupleLine(line.size() > 1 ? line.substr(2) : "");
      if (!tuple.ok()) {
        drop_tail(StrCat("bad tuple line: ", tuple.status().message()));
        return out;
      }
      (plus ? delta->plus : delta->minus).push_back(std::move(*tuple));
    } else {
      drop_tail(StrCat("unexpected line '", line, "'"));
      return out;
    }
    body += StrCat(line, "\n");
  }
  if (in_record) drop_tail("record truncated at end of file");
  return out;
}

Status ApplyWalRecord(const WalRecord& rec, Database* db,
                      WalReplayStats* stats) {
  if (rec.version <= db->logical_time()) {
    // Already covered by the checkpoint (a crash between checkpoint
    // rename and WAL truncation leaves such records behind; they are
    // harmless by design).
    if (stats != nullptr) ++stats->records_skipped;
    return Status::OK();
  }
  if (rec.version != db->logical_time() + 1) {
    return Status::InvalidArgument(
        StrCat("WAL record version ", rec.version, " does not follow ",
               "database time ", db->logical_time()));
  }
  for (const WalDelta& delta : rec.deltas) {
    TXMOD_ASSIGN_OR_RETURN(Relation * rel, db->FindMutable(delta.relation));
    for (const Tuple& t : delta.minus) {
      TXMOD_RETURN_IF_ERROR(rel->schema().CheckTuple(t));
      rel->Erase(rel->schema().CoerceTuple(t));
    }
    for (const Tuple& t : delta.plus) {
      TXMOD_RETURN_IF_ERROR(rel->schema().CheckTuple(t));
      rel->Insert(rel->schema().CoerceTuple(t));
    }
  }
  db->AdvanceTime();
  return Status::OK();
}

Result<Database> RecoverDatabase(const std::string& checkpoint_path,
                                 const std::string& wal_path,
                                 WalReplayStats* stats) {
  TXMOD_ASSIGN_OR_RETURN(Database db,
                         LoadDatabaseFromFile(checkpoint_path));
  TXMOD_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                         ReadWal(wal_path, stats));
  for (const WalRecord& rec : records) {
    TXMOD_RETURN_IF_ERROR(ApplyWalRecord(rec, &db, stats));
  }
  return db;
}

}  // namespace txmod
