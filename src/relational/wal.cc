#include "src/relational/wal.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/str_util.h"
#include "src/relational/persist.h"

namespace txmod {

namespace {

constexpr char kWalHeader[] = "txmod-wal 1";

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = UINT64_C(14695981039346656037);
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= UINT64_C(1099511628211);
  }
  return h;
}

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Serializes the record body (everything the checksum covers).
std::string EncodeRecordBody(const WalRecord& rec) {
  std::string out = StrCat("txn ", rec.version, "\n");
  for (const WalDelta& delta : rec.deltas) {
    out += StrCat("rel ", delta.relation, "\n");
    for (const Tuple& t : delta.plus) {
      out += "+";
      for (const Value& v : t.values()) out += StrCat(" ", EncodeValueText(v));
      out += "\n";
    }
    for (const Tuple& t : delta.minus) {
      out += "-";
      for (const Value& v : t.values()) out += StrCat(" ", EncodeValueText(v));
      out += "\n";
    }
  }
  return out;
}

Result<Tuple> DecodeTupleLine(const std::string& rest) {
  std::vector<Value> values;
  for (const std::string& enc : SplitEncodedValues(rest)) {
    TXMOD_ASSIGN_OR_RETURN(Value v, DecodeValueText(enc));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

}  // namespace

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path, Vfs* vfs) {
  if (vfs == nullptr) vfs = Vfs::Default();
  WriteAheadLog log(path, vfs);
  TXMOD_ASSIGN_OR_RETURN(log.file_, vfs->OpenAppend(path));
  TXMOD_ASSIGN_OR_RETURN(const uint64_t size, log.file_->Size());
  if (size == 0) {
    TXMOD_RETURN_IF_ERROR(
        WriteFullyTo(log.file_.get(), StrCat(kWalHeader, "\n"), "WAL header"));
    // Make the header durable NOW: a recovered log whose header is still
    // in the page cache reads as not-a-WAL after a crash. This also
    // makes Open a durability probe — reopening onto storage whose
    // fsyncs still fail reports the failure here instead of after the
    // next commit was already accepted.
    TXMOD_RETURN_IF_ERROR(log.file_->Sync());
    // A freshly created file only survives a crash once its directory
    // entry is durable; without this, every fsync'd commit could vanish
    // with the whole file (recovery reads a missing WAL as empty).
    TXMOD_RETURN_IF_ERROR(vfs->SyncParentDirectory(path));
  } else {
    // Verify this really is a WAL before appending to it.
    std::ifstream in(path);
    std::string first;
    if (!std::getline(in, first) || first != kWalHeader) {
      return Status::InvalidArgument(StrCat(path, " is not a txmod WAL"));
    }
  }
  return log;
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      vfs_(other.vfs_),
      file_(std::move(other.file_)),
      appended_lsn_(other.appended_lsn_.load()),
      sync_mu_(std::move(other.sync_mu_)),
      sync_cv_(std::move(other.sync_cv_)),
      durable_lsn_guarded_(other.durable_lsn_guarded_),
      sync_in_progress_(other.sync_in_progress_),
      fsync_count_(other.fsync_count_.load()),
      sync_requests_(other.sync_requests_.load()),
      broken_(other.broken_.load()),
      broken_cause_guarded_(std::move(other.broken_cause_guarded_)) {}

WriteAheadLog::~WriteAheadLog() = default;

void WriteAheadLog::MarkBroken(const std::string& cause) {
  std::lock_guard<std::mutex> lock(*sync_mu_);
  if (!broken_.load()) broken_cause_guarded_ = cause;
  broken_.store(true);
  sync_cv_->notify_all();
}

Status WriteAheadLog::BrokenStatusLocked() const {
  return Status::Unavailable(StrCat("WAL ", path_,
                                    " is poisoned by an earlier failure: ",
                                    broken_cause_guarded_));
}

bool WriteAheadLog::broken(std::string* cause) const {
  std::lock_guard<std::mutex> lock(*sync_mu_);
  if (cause != nullptr) *cause = broken_cause_guarded_;
  return broken_.load();
}

Result<uint64_t> WriteAheadLog::Append(const WalRecord& rec) {
  const std::string body = EncodeRecordBody(rec);
  const std::string full =
      StrCat(body, "commit ", rec.version, " ", HexU64(Fnv1a(body)), "\n");
  std::lock_guard<std::mutex> lock(append_mu_);
  if (broken_.load()) {
    std::lock_guard<std::mutex> sync_lock(*sync_mu_);
    return BrokenStatusLocked();
  }
  Result<uint64_t> pre_size = file_->Size();
  if (!pre_size.ok()) return pre_size.status();
  const Status written = WriteFullyTo(file_.get(), full, "WAL");
  if (!written.ok()) {
    // Un-tear: a partial record left at the tail would make every later
    // durable record unreachable to recovery (which stops at the first
    // invalid record). If even the truncate fails, poison the log — no
    // further append may land after a tear.
    if (!file_->Truncate(*pre_size).ok()) {
      MarkBroken(StrCat("un-truncatable torn append (", written.message(),
                        ")"));
    }
    return written;
  }
  return appended_lsn_.fetch_add(1) + 1;
}

Status WriteAheadLog::Sync(uint64_t lsn) {
  sync_requests_.fetch_add(1);
  std::unique_lock<std::mutex> lock(*sync_mu_);
  while (durable_lsn_guarded_ < lsn) {
    if (broken_.load()) {
      // A previous fsync failed. The kernel may have dropped the dirty
      // pages while marking them clean (the classic fsync-failure trap),
      // so a retried fsync would "succeed" without making the lost
      // records durable — never report durability after a failure.
      return BrokenStatusLocked();
    }
    if (sync_in_progress_) {
      // Another committer is the fsync leader; its fsync may already
      // cover our record. Wait and re-check.
      sync_cv_->wait(lock);
      continue;
    }
    // Become the leader. Capture the append horizon BEFORE the fsync:
    // everything appended before the fsync call is covered by it, and
    // records appended during the fsync will be claimed by the next
    // leader.
    sync_in_progress_ = true;
    const uint64_t target = appended_lsn_.load();
    lock.unlock();
    const Status synced = file_->Sync();
    lock.lock();
    sync_in_progress_ = false;
    if (!synced.ok()) {
      if (!broken_.load()) broken_cause_guarded_ = synced.message();
      broken_.store(true);
      sync_cv_->notify_all();
      return synced;
    }
    fsync_count_.fetch_add(1);
    if (target > durable_lsn_guarded_) durable_lsn_guarded_ = target;
    sync_cv_->notify_all();
  }
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  std::lock_guard<std::mutex> append_lock(append_mu_);
  std::unique_lock<std::mutex> sync_lock(*sync_mu_);
  if (broken_.load()) return BrokenStatusLocked();
  TXMOD_RETURN_IF_ERROR(file_->Truncate(0));
  // From here on the file is headerless: any failure before the header
  // is back and durable leaves a log recovery cannot even open, so it
  // poisons — writers must not pile records onto a broken prefix.
  auto poison = [&](const Status& why) {
    if (!broken_.load()) broken_cause_guarded_ = why.message();
    broken_.store(true);
    sync_cv_->notify_all();
    return why;
  };
  const Status header =
      WriteFullyTo(file_.get(), StrCat(kWalHeader, "\n"), "WAL header");
  if (!header.ok()) return poison(header);
  const Status synced = file_->Sync();
  if (!synced.ok()) return poison(synced);
  // The truncate rewrote the file in place (same directory entry), but a
  // metadata journal may still order it after a pending rename of the
  // sibling checkpoint — sync the directory so checkpoint + empty log
  // become durable together.
  const Status dir = vfs_->SyncParentDirectory(path_);
  if (!dir.ok()) return poison(dir);
  // LSNs stay monotonic; everything appended so far is durably gone, so
  // the durable horizon catches up to the append horizon.
  durable_lsn_guarded_ = appended_lsn_.load();
  return Status::OK();
}

uint64_t WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lock(*sync_mu_);
  return durable_lsn_guarded_;
}

Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       WalReplayStats* stats) {
  std::vector<WalRecord> out;
  std::ifstream in(path);
  if (!in.is_open()) return out;  // no WAL: empty log

  auto drop_tail = [&](const std::string& why) {
    if (stats != nullptr) {
      stats->tail_dropped = true;
      stats->tail_error = why;
    }
  };

  std::string line;
  if (!std::getline(in, line)) return out;  // zero bytes: empty log
  if (line != kWalHeader) {
    // A crash can tear even the header write. A strict prefix of the
    // header with nothing after it is such a torn tail — an empty log;
    // anything else is genuinely not a WAL.
    const std::string header(kWalHeader);
    std::string rest;
    if (header.rfind(line, 0) == 0 && !std::getline(in, rest)) {
      drop_tail("truncated WAL header");
      return out;
    }
    return Status::InvalidArgument(StrCat(path, " is not a txmod WAL"));
  }

  // Scan records. `body` accumulates the exact bytes the checksum covers;
  // any structural surprise, checksum mismatch, or EOF mid-record drops
  // the tail (a torn append) and returns the valid prefix.
  WalRecord current;
  WalDelta* delta = nullptr;
  std::string body;
  bool in_record = false;
  while (std::getline(in, line)) {
    if (!in_record) {
      if (line.empty()) continue;
      if (line.rfind("txn ", 0) != 0) {
        drop_tail(StrCat("expected 'txn', found '", line, "'"));
        return out;
      }
      current = WalRecord{};
      delta = nullptr;
      current.version = std::strtoull(line.c_str() + 4, nullptr, 10);
      body = StrCat(line, "\n");
      in_record = true;
      continue;
    }
    if (line.rfind("commit ", 0) == 0) {
      std::istringstream fields(line);
      std::string kw, checksum;
      uint64_t version = 0;
      fields >> kw >> version >> checksum;
      if (version != current.version || checksum != HexU64(Fnv1a(body))) {
        drop_tail(StrCat("bad commit line for version ", current.version));
        return out;
      }
      out.push_back(std::move(current));
      if (stats != nullptr) ++stats->records_read;
      in_record = false;
      continue;
    }
    if (line.rfind("rel ", 0) == 0) {
      current.deltas.push_back(WalDelta{line.substr(4), {}, {}});
      delta = &current.deltas.back();
    } else if ((line.rfind("+ ", 0) == 0 || line == "+" ||
                line.rfind("- ", 0) == 0 || line == "-") &&
               delta != nullptr) {
      const bool plus = line[0] == '+';
      Result<Tuple> tuple =
          DecodeTupleLine(line.size() > 1 ? line.substr(2) : "");
      if (!tuple.ok()) {
        drop_tail(StrCat("bad tuple line: ", tuple.status().message()));
        return out;
      }
      (plus ? delta->plus : delta->minus).push_back(std::move(*tuple));
    } else {
      drop_tail(StrCat("unexpected line '", line, "'"));
      return out;
    }
    body += StrCat(line, "\n");
  }
  if (in_record) drop_tail("record truncated at end of file");
  return out;
}

Status ApplyWalRecord(const WalRecord& rec, Database* db,
                      WalReplayStats* stats) {
  if (rec.version <= db->logical_time()) {
    // Already covered by the checkpoint (a crash between checkpoint
    // rename and WAL truncation leaves such records behind; they are
    // harmless by design).
    if (stats != nullptr) ++stats->records_skipped;
    return Status::OK();
  }
  if (rec.version != db->logical_time() + 1) {
    return Status::InvalidArgument(
        StrCat("WAL record version ", rec.version, " does not follow ",
               "database time ", db->logical_time()));
  }
  for (const WalDelta& delta : rec.deltas) {
    TXMOD_ASSIGN_OR_RETURN(Relation * rel, db->FindMutable(delta.relation));
    for (const Tuple& t : delta.minus) {
      TXMOD_RETURN_IF_ERROR(rel->schema().CheckTuple(t));
      rel->Erase(rel->schema().CoerceTuple(t));
    }
    for (const Tuple& t : delta.plus) {
      TXMOD_RETURN_IF_ERROR(rel->schema().CheckTuple(t));
      rel->Insert(rel->schema().CoerceTuple(t));
    }
  }
  db->AdvanceTime();
  return Status::OK();
}

Result<Database> RecoverDatabase(const std::string& checkpoint_path,
                                 const std::string& wal_path,
                                 WalReplayStats* stats) {
  TXMOD_ASSIGN_OR_RETURN(Database db,
                         LoadDatabaseFromFile(checkpoint_path));
  TXMOD_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                         ReadWal(wal_path, stats));
  for (const WalRecord& rec : records) {
    TXMOD_RETURN_IF_ERROR(ApplyWalRecord(rec, &db, stats));
  }
  return db;
}

}  // namespace txmod
