#include "src/relational/wal.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "src/common/str_util.h"
#include "src/relational/persist.h"

namespace txmod {

namespace {

constexpr char kWalHeader[] = "txmod-wal 1";
// Stem of the v2 shard-stream header: "txmod-wal 2 shard <k>/<n>".
constexpr char kWalShardHeaderStem[] = "txmod-wal 2 shard ";
// Highest shard index probed when discovering an existing sharded log.
// Only the FIRST readable shard header is needed (it declares n), and
// streams are created in index order, so this is a robustness bound for
// half-created or half-removed logs, not a shard-count limit.
constexpr uint32_t kMaxProbeShards = ShardedWal::kMaxProbeShards;

std::string ShardHeaderLine(uint32_t shard, uint32_t shard_count) {
  return StrCat(kWalShardHeaderStem, shard, "/", shard_count);
}

/// Parses a WAL header line: v1, or v2 with a shard identity.
bool ParseWalHeader(const std::string& line, WalShardInfo* info) {
  if (line == kWalHeader) {
    *info = WalShardInfo{};
    return true;
  }
  const std::string stem(kWalShardHeaderStem);
  if (line.rfind(stem, 0) != 0) return false;
  const std::string rest = line.substr(stem.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= rest.size()) {
    return false;
  }
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (i == slash) continue;
    if (!std::isdigit(static_cast<unsigned char>(rest[i]))) return false;
  }
  // Same strtoull hygiene as the value codec: overflow saturates to
  // ULLONG_MAX with only errno to tell — an absurd digit string must
  // read as "not a header", not as a huge shard count. The digits-only
  // scan above already guarantees full consumption.
  errno = 0;
  const uint64_t k = std::strtoull(rest.substr(0, slash).c_str(), nullptr, 10);
  const uint64_t n = std::strtoull(rest.substr(slash + 1).c_str(), nullptr, 10);
  if (errno == ERANGE) return false;
  if (n < 2 || n > kMaxProbeShards || k >= n) return false;
  info->sharded = true;
  info->shard = static_cast<uint32_t>(k);
  info->shard_count = static_cast<uint32_t>(n);
  return true;
}

/// True when `line` is a strict prefix of some header the writer could
/// have been writing when the crash hit — the torn-header heuristic.
bool PlausibleTornHeader(const std::string& line) {
  const std::string v1(kWalHeader);
  if (v1.rfind(line, 0) == 0) return true;  // prefix of the v1 header
  const std::string stem(kWalShardHeaderStem);
  if (stem.rfind(line, 0) == 0) return true;  // prefix of the v2 stem
  if (line.rfind(stem, 0) != 0) return false;
  // Stem plus a partial "<k>/<n>": digits with at most one slash.
  bool slash = false;
  for (std::size_t i = stem.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '/') {
      if (slash) return false;
      slash = true;
    } else if (!std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = UINT64_C(14695981039346656037);
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= UINT64_C(1099511628211);
  }
  return h;
}

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Serializes the record body (everything the checksum covers). The
/// "parts" suffix is written only for multi-shard fan-outs, so
/// single-part records stay byte-identical to the v1 format.
std::string EncodeRecordBody(const WalRecord& rec) {
  std::string out =
      rec.parts > 1 ? StrCat("txn ", rec.version, " parts ", rec.parts, "\n")
                    : StrCat("txn ", rec.version, "\n");
  for (const WalDelta& delta : rec.deltas) {
    out += StrCat("rel ", delta.relation, "\n");
    for (const Tuple& t : delta.plus) {
      out += "+";
      for (const Value& v : t.values()) out += StrCat(" ", EncodeValueText(v));
      out += "\n";
    }
    for (const Tuple& t : delta.minus) {
      out += "-";
      for (const Value& v : t.values()) out += StrCat(" ", EncodeValueText(v));
      out += "\n";
    }
  }
  return out;
}

Result<Tuple> DecodeTupleLine(const std::string& rest) {
  std::vector<Value> values;
  for (const std::string& enc : SplitEncodedValues(rest)) {
    TXMOD_ASSIGN_OR_RETURN(Value v, DecodeValueText(enc));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

}  // namespace

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path, Vfs* vfs) {
  return OpenWithHeader(path, kWalHeader, vfs);
}

Result<WriteAheadLog> WriteAheadLog::OpenShard(const std::string& path,
                                               uint32_t shard,
                                               uint32_t shard_count,
                                               Vfs* vfs) {
  if (shard_count < 2 || shard >= shard_count) {
    return Status::InvalidArgument(
        StrCat("bad shard identity ", shard, "/", shard_count));
  }
  return OpenWithHeader(path, ShardHeaderLine(shard, shard_count), vfs);
}

Result<WriteAheadLog> WriteAheadLog::OpenWithHeader(const std::string& path,
                                                    std::string header,
                                                    Vfs* vfs) {
  if (vfs == nullptr) vfs = Vfs::Default();
  WriteAheadLog log(path, vfs);
  log.header_ = std::move(header);
  TXMOD_ASSIGN_OR_RETURN(log.file_, vfs->OpenAppend(path));
  TXMOD_ASSIGN_OR_RETURN(const uint64_t size, log.file_->Size());
  if (size == 0) {
    TXMOD_RETURN_IF_ERROR(WriteFullyTo(
        log.file_.get(), StrCat(log.header_, "\n"), "WAL header"));
    // Make the header durable NOW: a recovered log whose header is still
    // in the page cache reads as not-a-WAL after a crash. This also
    // makes Open a durability probe — reopening onto storage whose
    // fsyncs still fail reports the failure here instead of after the
    // next commit was already accepted.
    TXMOD_RETURN_IF_ERROR(log.file_->Sync());
    // A freshly created file only survives a crash once its directory
    // entry is durable; without this, every fsync'd commit could vanish
    // with the whole file (recovery reads a missing WAL as empty).
    TXMOD_RETURN_IF_ERROR(vfs->SyncParentDirectory(path));
  } else {
    // Verify this really is the WAL stream we expect before appending to
    // it — a shard file with a different declared identity must never be
    // silently adopted (its records would stitch under the wrong count).
    std::ifstream in(path);
    std::string first;
    if (!std::getline(in, first)) {
      return Status::InvalidArgument(StrCat(path, " is not a txmod WAL"));
    }
    if (first != log.header_) {
      WalShardInfo declared;
      if (ParseWalHeader(first, &declared)) {
        return Status::InvalidArgument(
            StrCat(path, " declares '", first, "' but '", log.header_,
                   "' was expected"));
      }
      return Status::InvalidArgument(StrCat(path, " is not a txmod WAL"));
    }
  }
  return log;
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      header_(std::move(other.header_)),
      vfs_(other.vfs_),
      file_(std::move(other.file_)),
      appended_lsn_(other.appended_lsn_.load()),
      sync_mu_(std::move(other.sync_mu_)),
      sync_cv_(std::move(other.sync_cv_)),
      durable_lsn_guarded_(other.durable_lsn_guarded_),
      sync_in_progress_(other.sync_in_progress_),
      fsync_count_(other.fsync_count_.load()),
      sync_requests_(other.sync_requests_.load()),
      broken_(other.broken_.load()),
      broken_cause_guarded_(std::move(other.broken_cause_guarded_)) {}

WriteAheadLog::~WriteAheadLog() = default;

void WriteAheadLog::MarkBroken(const std::string& cause) {
  std::lock_guard<std::mutex> lock(*sync_mu_);
  if (!broken_.load()) broken_cause_guarded_ = cause;
  broken_.store(true);
  sync_cv_->notify_all();
}

Status WriteAheadLog::BrokenStatusLocked() const {
  return Status::Unavailable(StrCat("WAL ", path_,
                                    " is poisoned by an earlier failure: ",
                                    broken_cause_guarded_));
}

bool WriteAheadLog::broken(std::string* cause) const {
  std::lock_guard<std::mutex> lock(*sync_mu_);
  if (cause != nullptr) *cause = broken_cause_guarded_;
  return broken_.load();
}

Result<uint64_t> WriteAheadLog::Append(const WalRecord& rec) {
  const std::string body = EncodeRecordBody(rec);
  const std::string full =
      StrCat(body, "commit ", rec.version, " ", HexU64(Fnv1a(body)), "\n");
  std::lock_guard<std::mutex> lock(append_mu_);
  if (broken_.load()) {
    std::lock_guard<std::mutex> sync_lock(*sync_mu_);
    return BrokenStatusLocked();
  }
  Result<uint64_t> pre_size = file_->Size();
  if (!pre_size.ok()) return pre_size.status();
  const Status written = WriteFullyTo(file_.get(), full, "WAL");
  if (!written.ok()) {
    // Un-tear: a partial record left at the tail would make every later
    // durable record unreachable to recovery (which stops at the first
    // invalid record). If even the truncate fails, poison the log — no
    // further append may land after a tear.
    if (!file_->Truncate(*pre_size).ok()) {
      MarkBroken(StrCat("un-truncatable torn append (", written.message(),
                        ")"));
    }
    return written;
  }
  return appended_lsn_.fetch_add(1) + 1;
}

Status WriteAheadLog::Sync(uint64_t lsn) {
  sync_requests_.fetch_add(1);
  std::unique_lock<std::mutex> lock(*sync_mu_);
  while (durable_lsn_guarded_ < lsn) {
    if (broken_.load()) {
      // A previous fsync failed. The kernel may have dropped the dirty
      // pages while marking them clean (the classic fsync-failure trap),
      // so a retried fsync would "succeed" without making the lost
      // records durable — never report durability after a failure.
      return BrokenStatusLocked();
    }
    if (sync_in_progress_) {
      // Another committer is the fsync leader; its fsync may already
      // cover our record. Wait and re-check.
      sync_cv_->wait(lock);
      continue;
    }
    // Become the leader. Capture the append horizon BEFORE the fsync:
    // everything appended before the fsync call is covered by it, and
    // records appended during the fsync will be claimed by the next
    // leader.
    sync_in_progress_ = true;
    const uint64_t target = appended_lsn_.load();
    lock.unlock();
    const Status synced = file_->Sync();
    lock.lock();
    sync_in_progress_ = false;
    if (!synced.ok()) {
      if (!broken_.load()) broken_cause_guarded_ = synced.message();
      broken_.store(true);
      sync_cv_->notify_all();
      return synced;
    }
    fsync_count_.fetch_add(1);
    if (target > durable_lsn_guarded_) durable_lsn_guarded_ = target;
    sync_cv_->notify_all();
  }
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  std::lock_guard<std::mutex> append_lock(append_mu_);
  std::unique_lock<std::mutex> sync_lock(*sync_mu_);
  if (broken_.load()) return BrokenStatusLocked();
  TXMOD_RETURN_IF_ERROR(file_->Truncate(0));
  // From here on the file is headerless: any failure before the header
  // is back and durable leaves a log recovery cannot even open, so it
  // poisons — writers must not pile records onto a broken prefix.
  auto poison = [&](const Status& why) {
    if (!broken_.load()) broken_cause_guarded_ = why.message();
    broken_.store(true);
    sync_cv_->notify_all();
    return why;
  };
  const Status header =
      WriteFullyTo(file_.get(), StrCat(header_, "\n"), "WAL header");
  if (!header.ok()) return poison(header);
  const Status synced = file_->Sync();
  if (!synced.ok()) return poison(synced);
  // The truncate rewrote the file in place (same directory entry), but a
  // metadata journal may still order it after a pending rename of the
  // sibling checkpoint — sync the directory so checkpoint + empty log
  // become durable together.
  const Status dir = vfs_->SyncParentDirectory(path_);
  if (!dir.ok()) return poison(dir);
  // LSNs stay monotonic; everything appended so far is durably gone, so
  // the durable horizon catches up to the append horizon.
  durable_lsn_guarded_ = appended_lsn_.load();
  return Status::OK();
}

uint64_t WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lock(*sync_mu_);
  return durable_lsn_guarded_;
}

Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       WalReplayStats* stats,
                                       WalShardInfo* info) {
  std::vector<WalRecord> out;
  std::ifstream in(path);
  if (!in.is_open()) return out;  // no WAL: empty log

  auto drop_tail = [&](const std::string& why) {
    if (stats != nullptr) {
      stats->tail_dropped = true;
      stats->tail_error = why;
    }
  };

  std::string line;
  if (!std::getline(in, line)) return out;  // zero bytes: empty log
  WalShardInfo header_info;
  if (ParseWalHeader(line, &header_info)) {
    if (info != nullptr) *info = header_info;
  } else {
    // A crash can tear even the header write. A strict prefix of a
    // possible header with nothing after it is such a torn tail — an
    // empty log; anything else is genuinely not a WAL.
    std::string rest;
    if (PlausibleTornHeader(line) && !std::getline(in, rest)) {
      drop_tail("truncated WAL header");
      return out;
    }
    return Status::InvalidArgument(StrCat(path, " is not a txmod WAL"));
  }

  // Scan records. `body` accumulates the exact bytes the checksum covers;
  // any structural surprise, checksum mismatch, or EOF mid-record drops
  // the tail (a torn append) and returns the valid prefix.
  WalRecord current;
  WalDelta* delta = nullptr;
  std::string body;
  bool in_record = false;
  while (std::getline(in, line)) {
    if (!in_record) {
      if (line.empty()) continue;
      if (line.rfind("txn ", 0) != 0) {
        drop_tail(StrCat("expected 'txn', found '", line, "'"));
        return out;
      }
      current = WalRecord{};
      delta = nullptr;
      {
        // "txn <version>" or "txn <version> parts <m>" (fan-out part).
        std::istringstream fields(line);
        std::string kw, parts_kw;
        fields >> kw >> current.version;
        if (fields >> parts_kw) {
          uint64_t m = 0;
          if (parts_kw != "parts" || !(fields >> m) || m < 2) {
            drop_tail(StrCat("bad txn line '", line, "'"));
            return out;
          }
          current.parts = static_cast<uint32_t>(m);
        }
      }
      body = StrCat(line, "\n");
      in_record = true;
      continue;
    }
    if (line.rfind("commit ", 0) == 0) {
      std::istringstream fields(line);
      std::string kw, checksum;
      uint64_t version = 0;
      fields >> kw >> version >> checksum;
      if (version != current.version || checksum != HexU64(Fnv1a(body))) {
        drop_tail(StrCat("bad commit line for version ", current.version));
        return out;
      }
      out.push_back(std::move(current));
      if (stats != nullptr) ++stats->records_read;
      in_record = false;
      continue;
    }
    if (line.rfind("rel ", 0) == 0) {
      current.deltas.push_back(WalDelta{line.substr(4), {}, {}});
      delta = &current.deltas.back();
    } else if ((line.rfind("+ ", 0) == 0 || line == "+" ||
                line.rfind("- ", 0) == 0 || line == "-") &&
               delta != nullptr) {
      const bool plus = line[0] == '+';
      Result<Tuple> tuple =
          DecodeTupleLine(line.size() > 1 ? line.substr(2) : "");
      if (!tuple.ok()) {
        drop_tail(StrCat("bad tuple line: ", tuple.status().message()));
        return out;
      }
      (plus ? delta->plus : delta->minus).push_back(std::move(*tuple));
    } else {
      drop_tail(StrCat("unexpected line '", line, "'"));
      return out;
    }
    body += StrCat(line, "\n");
  }
  if (in_record) drop_tail("record truncated at end of file");
  return out;
}

// ---------------------------------------------------------------------------
// ShardedWal.
// ---------------------------------------------------------------------------

namespace {

/// Per-stream torn-tail repair: when `stream_path` ends in a torn or
/// corrupt record, rewrites the valid prefix into a temp stream (opened
/// by `open_fresh`, which supplies the right header) and renames it into
/// place. Appending after a tear would make every later record on the
/// stream unreachable to recovery, which stops at the first invalid one.
template <typename OpenFresh>
Status RepairStreamIfTorn(const std::string& stream_path, Vfs* vfs,
                          OpenFresh&& open_fresh) {
  WalReplayStats replay;
  Result<std::vector<WalRecord>> valid = ReadWal(stream_path, &replay);
  if (!valid.ok()) return valid.status();
  if (!replay.tail_dropped) return Status::OK();
  const std::string tmp = StrCat(stream_path, ".repair");
  // A crash during a previous repair can leave a stale (possibly itself
  // torn) .repair file; appending to it would corrupt the repaired
  // stream or brick startup. Start from nothing.
  TXMOD_RETURN_IF_ERROR(vfs->Remove(tmp));
  {
    TXMOD_ASSIGN_OR_RETURN(WriteAheadLog fresh, open_fresh(tmp));
    for (const WalRecord& rec : *valid) {
      TXMOD_RETURN_IF_ERROR(fresh.Append(rec).status());
    }
    TXMOD_RETURN_IF_ERROR(fresh.Sync(fresh.appended_lsn()));
  }
  TXMOD_RETURN_IF_ERROR(vfs->Rename(tmp, stream_path));
  return vfs->SyncParentDirectory(stream_path);
}

}  // namespace

std::string ShardedWal::ShardPath(const std::string& path, uint32_t shard) {
  return StrCat(path, ".shard", shard);
}

uint32_t ShardedWal::ShardOf(const std::string& relation,
                             uint32_t shard_count) {
  if (shard_count < 2) return 0;
  return static_cast<uint32_t>(Fnv1a(relation) % shard_count);
}

Result<uint32_t> ShardedWal::DiscoverShardCount(const std::string& path) {
  // Only the first readable shard header is needed — every stream of one
  // log declares the same n, and streams are created in index order.
  for (uint32_t k = 0; k < kMaxProbeShards; ++k) {
    std::ifstream in(ShardPath(path, k));
    if (!in.is_open()) continue;
    std::string first;
    if (!std::getline(in, first)) continue;  // empty or torn: keep probing
    WalShardInfo declared;
    if (ParseWalHeader(first, &declared) && declared.sharded) {
      return declared.shard_count;
    }
  }
  return static_cast<uint32_t>(0);  // no sharded layout on disk
}

Result<std::unique_ptr<ShardedWal>> ShardedWal::Open(const std::string& path,
                                                     uint32_t shard_count,
                                                     Vfs* vfs) {
  if (vfs == nullptr) vfs = Vfs::Default();
  // Clamp to the probe bound: discovery, reopen-wipe, and header
  // validation all probe at most kMaxProbeShards streams, so a larger
  // layout could be written but never fully read back.
  uint32_t n = std::min(std::max<uint32_t>(1, shard_count), kMaxProbeShards);
  // An existing sharded layout wins over the configured count: adopting
  // a different n would scramble the routing the on-disk records were
  // written under. (A legacy v1 file alone does not constrain n — it
  // stays behind as the read-only prefix stream when n >= 2.)
  TXMOD_ASSIGN_OR_RETURN(const uint32_t on_disk, DiscoverShardCount(path));
  if (on_disk > 0) n = on_disk;
  std::unique_ptr<ShardedWal> log(new ShardedWal(path, n, vfs));
  if (n == 1) {
    TXMOD_RETURN_IF_ERROR(RepairStreamIfTorn(
        path, vfs, [&](const std::string& p) {
          return WriteAheadLog::Open(p, vfs);
        }));
    TXMOD_ASSIGN_OR_RETURN(WriteAheadLog stream,
                           WriteAheadLog::Open(path, vfs));
    log->shards_.push_back(std::move(stream));
    return log;
  }
  log->shards_.reserve(n);
  for (uint32_t k = 0; k < n; ++k) {
    const std::string sp = ShardPath(path, k);
    TXMOD_RETURN_IF_ERROR(RepairStreamIfTorn(
        sp, vfs, [&](const std::string& p) {
          return WriteAheadLog::OpenShard(p, k, n, vfs);
        }));
    TXMOD_ASSIGN_OR_RETURN(WriteAheadLog stream,
                           WriteAheadLog::OpenShard(sp, k, n, vfs));
    log->shards_.push_back(std::move(stream));
  }
  return log;
}

Result<std::vector<ShardedWal::Position>> ShardedWal::AppendCommit(
    const WalRecord& rec) {
  std::vector<Position> out;
  if (shard_count_ == 1) {
    TXMOD_ASSIGN_OR_RETURN(const uint64_t lsn, shards_[0].Append(rec));
    out.push_back(Position{0, lsn});
    return out;
  }
  // Route deltas to their shards; every part carries the shared version
  // and the declared fan-out width m, the stitching key of recovery.
  std::map<uint32_t, WalRecord> parts;
  for (const WalDelta& delta : rec.deltas) {
    parts[ShardOf(delta.relation, shard_count_)].deltas.push_back(delta);
  }
  const uint32_t m = static_cast<uint32_t>(parts.size());
  out.reserve(m);
  for (auto& [shard, part] : parts) {
    part.version = rec.version;
    part.parts = m;
    TXMOD_ASSIGN_OR_RETURN(const uint64_t lsn, shards_[shard].Append(part));
    out.push_back(Position{shard, lsn});
  }
  return out;
}

Status ShardedWal::SyncPositions(const std::vector<Position>& positions) {
  for (const Position& pos : positions) {
    TXMOD_RETURN_IF_ERROR(shards_[pos.shard].Sync(pos.lsn));
  }
  return Status::OK();
}

Status ShardedWal::Truncate() {
  for (WriteAheadLog& stream : shards_) {
    TXMOD_RETURN_IF_ERROR(stream.Truncate());
  }
  if (sharded()) {
    // A legacy pre-shard file may still linger as the prefix stream; the
    // checkpoint covers its records now, so drop it. (Remove is
    // idempotent — OK when it was never there.)
    TXMOD_RETURN_IF_ERROR(vfs_->Remove(path_));
    TXMOD_RETURN_IF_ERROR(vfs_->SyncParentDirectory(path_));
  }
  return Status::OK();
}

bool ShardedWal::broken(std::string* cause) const {
  for (const WriteAheadLog& stream : shards_) {
    if (stream.broken(cause)) return true;
  }
  if (cause != nullptr) cause->clear();
  return false;
}

uint64_t ShardedWal::fsync_count() const {
  uint64_t total = 0;
  for (const WriteAheadLog& s : shards_) total += s.fsync_count();
  return total;
}

uint64_t ShardedWal::sync_requests() const {
  uint64_t total = 0;
  for (const WriteAheadLog& s : shards_) total += s.sync_requests();
  return total;
}

uint64_t ShardedWal::appended_parts() const {
  uint64_t total = 0;
  for (const WriteAheadLog& s : shards_) total += s.appended_lsn();
  return total;
}

Result<std::vector<WalRecord>> ReadShardedWal(const std::string& path,
                                              WalReplayStats* stats,
                                              uint64_t checkpoint_time) {
  auto drop_tail = [&](const std::string& why) {
    if (stats != nullptr) {
      stats->tail_dropped = true;
      if (stats->tail_error.empty()) stats->tail_error = why;
    }
  };

  // The legacy stream (a v1 file at `path` itself): the low prefix of a
  // log that adopted sharding mid-life, or the whole log when unsharded.
  WalReplayStats legacy_stats;
  TXMOD_ASSIGN_OR_RETURN(std::vector<WalRecord> out,
                         ReadWal(path, &legacy_stats));
  if (legacy_stats.tail_dropped) {
    drop_tail(StrCat("legacy stream: ", legacy_stats.tail_error));
  }

  // Shard streams: collect per-version parts.
  std::map<uint64_t, std::vector<WalRecord>> by_version;
  for (uint32_t k = 0; k < kMaxProbeShards; ++k) {
    const std::string sp = ShardedWal::ShardPath(path, k);
    {
      std::ifstream probe(sp);
      if (!probe.is_open()) continue;
    }
    WalReplayStats shard_stats;
    TXMOD_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                           ReadWal(sp, &shard_stats));
    if (shard_stats.tail_dropped) {
      drop_tail(StrCat("shard ", k, ": ", shard_stats.tail_error));
    }
    for (WalRecord& rec : records) {
      by_version[rec.version].push_back(std::move(rec));
    }
  }

  // All-or-nothing reassembly cut: the first version whose fan-out is
  // incomplete; everything at or above it is dropped after sorting.
  uint64_t cut = UINT64_MAX;
  if (!by_version.empty()) {
    std::set<uint64_t> legacy_versions;
    for (const WalRecord& rec : out) legacy_versions.insert(rec.version);

    // Reassemble each version from its fan-out parts. All-or-nothing: a
    // version whose declared part count is not fully present (a crash
    // between shard appends) cuts the sequence — it and everything above
    // it are dropped, because commit acknowledgement is contiguous (no
    // commit is acked while an earlier version is not durable).
    for (auto& [version, parts] : by_version) {
      if (version >= cut) break;
      if (legacy_versions.count(version) > 0) continue;  // standalone wins
      const uint32_t declared = parts.front().parts;
      bool consistent = parts.size() == declared;
      for (const WalRecord& part : parts) {
        consistent = consistent && part.parts == declared;
      }
      // An incomplete fan-out at or below the checkpoint is not a cut:
      // a partially-failed multi-stream truncate can wipe some parts of
      // a checkpoint-covered version; replay skips it regardless.
      if (!consistent && version > checkpoint_time) {
        cut = version;
        drop_tail(StrCat("incomplete fan-out for version ", version, " (",
                         parts.size(), " of ", declared, " parts)"));
        break;
      }
      WalRecord whole;
      whole.version = version;
      for (WalRecord& part : parts) {
        for (WalDelta& delta : part.deltas) {
          whole.deltas.push_back(std::move(delta));
        }
      }
      out.push_back(std::move(whole));
    }
  }

  // Commit order is decided under the manager's commit lock, but records
  // are appended outside it (the pipelined commit path), so even a
  // single stream may hold versions out of file order. Version order is
  // the replay order.
  std::stable_sort(out.begin(), out.end(),
                   [](const WalRecord& a, const WalRecord& b) {
                     return a.version < b.version;
                   });
  while (!out.empty() && out.back().version >= cut) {
    out.pop_back();
  }
  // Contiguity above the checkpoint: a version gap means some commit's
  // record (or whole fan-out) vanished; nothing above the gap was
  // ackable — commit acknowledgement waits for every earlier version to
  // be durable — so drop it. Records at or below `checkpoint_time` are
  // exempt: the checkpoint covers them, replay skips them, and a
  // partially-failed multi-stream truncate legitimately leaves them
  // behind with gaps among themselves and below the live tail.
  uint64_t prev = checkpoint_time;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].version <= checkpoint_time) continue;
    if (out[i].version != prev + 1) {
      drop_tail(StrCat("version gap after ", prev));
      out.resize(i);
      break;
    }
    prev = out[i].version;
  }

  if (stats != nullptr) stats->records_read += out.size();
  return out;
}

Status ApplyWalRecord(const WalRecord& rec, Database* db,
                      WalReplayStats* stats) {
  if (rec.version <= db->logical_time()) {
    // Already covered by the checkpoint (a crash between checkpoint
    // rename and WAL truncation leaves such records behind; they are
    // harmless by design).
    if (stats != nullptr) ++stats->records_skipped;
    return Status::OK();
  }
  if (rec.version != db->logical_time() + 1) {
    return Status::InvalidArgument(
        StrCat("WAL record version ", rec.version, " does not follow ",
               "database time ", db->logical_time()));
  }
  for (const WalDelta& delta : rec.deltas) {
    TXMOD_ASSIGN_OR_RETURN(Relation * rel, db->FindMutable(delta.relation));
    for (const Tuple& t : delta.minus) {
      TXMOD_RETURN_IF_ERROR(rel->schema().CheckTuple(t));
      rel->Erase(rel->schema().CoerceTuple(t));
    }
    for (const Tuple& t : delta.plus) {
      TXMOD_RETURN_IF_ERROR(rel->schema().CheckTuple(t));
      rel->Insert(rel->schema().CoerceTuple(t));
    }
  }
  db->AdvanceTime();
  return Status::OK();
}

Result<Database> RecoverDatabase(const std::string& checkpoint_path,
                                 const std::string& wal_path,
                                 WalReplayStats* stats) {
  TXMOD_ASSIGN_OR_RETURN(Database db,
                         LoadDatabaseFromFile(checkpoint_path));
  TXMOD_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                         ReadShardedWal(wal_path, stats, db.logical_time()));
  for (const WalRecord& rec : records) {
    TXMOD_RETURN_IF_ERROR(ApplyWalRecord(rec, &db, stats));
  }
  return db;
}

}  // namespace txmod
