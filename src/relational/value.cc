#include "src/relational/value.h"

#include <cmath>
#include <cstdio>

#include "src/common/hash.h"
#include "src/common/str_util.h"

namespace txmod {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Result<double> Value::NumericAsDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(as_int());
    case ValueType::kDouble:
      return as_double();
    default:
      return Status::InvalidArgument(
          StrCat("numeric value required, got ", ValueTypeToString(type())));
  }
}

bool Value::Less(const Value& a, const Value& b) {
  if (a.type() != b.type()) return a.type() < b.type();
  switch (a.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return a.as_int() < b.as_int();
    case ValueType::kDouble:
      return a.as_double() < b.as_double();
    case ValueType::kString:
      return a.as_string() < b.as_string();
  }
  return false;
}

std::size_t Value::Hash() const {
  std::size_t seed = static_cast<std::size_t>(type());
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      HashCombineValue(&seed, as_int());
      break;
    case ValueType::kDouble:
      HashCombineValue(&seed, as_double());
      break;
    case ValueType::kString:
      HashCombineValue(&seed, as_string());
      break;
  }
  return seed;
}

namespace {

// 2^63 as a double; the smallest power of two above any int64.
constexpr double kTwoPow63 = 9223372036854775808.0;

/// Exact mathematical comparison of an int64 against a double, without
/// widening the integer to double (which rounds above 2^53).
Value::Ordering CompareIntDouble(int64_t i, double d) {
  if (std::isnan(d)) return Value::Ordering::kIncomparable;
  if (d >= kTwoPow63) return Value::Ordering::kLess;    // d > INT64_MAX
  if (d < -kTwoPow63) return Value::Ordering::kGreater;  // d < INT64_MIN
  // d is in [-2^63, 2^63): its truncation fits int64 exactly, and when
  // |d| >= 2^53 the double is integral, so the fraction below is zero.
  const int64_t whole = static_cast<int64_t>(d);
  if (i < whole) return Value::Ordering::kLess;
  if (i > whole) return Value::Ordering::kGreater;
  const double frac = d - static_cast<double>(whole);
  if (frac > 0) return Value::Ordering::kLess;
  if (frac < 0) return Value::Ordering::kGreater;
  return Value::Ordering::kEqual;
}

}  // namespace

std::size_t Value::KeyHash() const {
  if (is_double()) {
    const double d = as_double();
    // A double holding an exactly-representable integer (including -0.0)
    // hashes as that integer, so KeyHash agrees with Compare equality:
    // the only cross-type equal pair is Int(i) == Double(double(i)) with
    // the conversion exact, and both sides then hash the int form.
    if (d >= -kTwoPow63 && d < kTwoPow63) {
      const int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) return Value::Int(i).Hash();
    }
  }
  return Hash();
}

Value::Ordering Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return Ordering::kEqual;
  if (a.is_null() || b.is_null()) return Ordering::kIncomparable;
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) {
      if (a.as_int() < b.as_int()) return Ordering::kLess;
      if (a.as_int() > b.as_int()) return Ordering::kGreater;
      return Ordering::kEqual;
    }
    if (a.is_int()) return CompareIntDouble(a.as_int(), b.as_double());
    if (b.is_int()) {
      const Ordering ord = CompareIntDouble(b.as_int(), a.as_double());
      if (ord == Ordering::kLess) return Ordering::kGreater;
      if (ord == Ordering::kGreater) return Ordering::kLess;
      return ord;
    }
    const double x = a.as_double();
    const double y = b.as_double();
    if (std::isnan(x) || std::isnan(y)) return Ordering::kIncomparable;
    if (x < y) return Ordering::kLess;
    if (x > y) return Ordering::kGreater;
    return Ordering::kEqual;
  }
  if (a.is_string() && b.is_string()) {
    const int c = a.as_string().compare(b.as_string());
    if (c < 0) return Ordering::kLess;
    if (c > 0) return Ordering::kGreater;
    return Ordering::kEqual;
  }
  return Ordering::kIncomparable;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      std::string s(buf);
      // Make sure a double is visibly a double ("6" -> "6.0").
      if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
      return s;
    }
    case ValueType::kString:
      return StrCat("\"", as_string(), "\"");
  }
  return "?";
}

}  // namespace txmod
