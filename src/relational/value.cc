#include "src/relational/value.h"

#include <cmath>
#include <cstdio>

#include "src/common/hash.h"
#include "src/common/str_util.h"

namespace txmod {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Result<double> Value::NumericAsDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(as_int());
    case ValueType::kDouble:
      return as_double();
    default:
      return Status::InvalidArgument(
          StrCat("numeric value required, got ", ValueTypeToString(type())));
  }
}

bool Value::Less(const Value& a, const Value& b) {
  if (a.type() != b.type()) return a.type() < b.type();
  switch (a.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return a.as_int() < b.as_int();
    case ValueType::kDouble:
      return a.as_double() < b.as_double();
    case ValueType::kString:
      return a.as_string() < b.as_string();
  }
  return false;
}

std::size_t Value::Hash() const {
  std::size_t seed = static_cast<std::size_t>(type());
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      HashCombineValue(&seed, as_int());
      break;
    case ValueType::kDouble:
      HashCombineValue(&seed, as_double());
      break;
    case ValueType::kString:
      HashCombineValue(&seed, as_string());
      break;
  }
  return seed;
}

Value::Ordering Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return Ordering::kEqual;
  if (a.is_null() || b.is_null()) return Ordering::kIncomparable;
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.is_int() ? static_cast<double>(a.as_int())
                                : a.as_double();
    const double y = b.is_int() ? static_cast<double>(b.as_int())
                                : b.as_double();
    if (x < y) return Ordering::kLess;
    if (x > y) return Ordering::kGreater;
    return Ordering::kEqual;
  }
  if (a.is_string() && b.is_string()) {
    const int c = a.as_string().compare(b.as_string());
    if (c < 0) return Ordering::kLess;
    if (c > 0) return Ordering::kGreater;
    return Ordering::kEqual;
  }
  return Ordering::kIncomparable;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      std::string s(buf);
      // Make sure a double is visibly a double ("6" -> "6.0").
      if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
      return s;
    }
    case ValueType::kString:
      return StrCat("\"", as_string(), "\"");
  }
  return "?";
}

}  // namespace txmod
