#ifndef TXMOD_RELATIONAL_PERSIST_H_
#define TXMOD_RELATIONAL_PERSIST_H_

#include <iosfwd>
#include <string>

#include "src/common/result.h"
#include "src/relational/database.h"

namespace txmod {

/// Checkpointing for the main-memory store. PRISMA/DB kept all data in
/// memory and persisted via checkpoints; this module provides the same
/// facility with a line-oriented, human-readable text format:
///
///   txmod-checkpoint 1
///   time <logical-time>
///   relation <name> <arity>
///   attr <name> <int|double|string>      (arity times)
///   tuple <v1> <v2> ...                  (one line per tuple)
///   end
///   ...
///
/// Values are rendered as: `null`, `i:<digits>`, `d:<repr>` (hex float,
/// lossless round trip), `s:<quoted>` (C-style escapes). The format is a
/// checkpoint of committed state — transaction-local structures
/// (differentials, temporaries) are never persisted, matching the model:
/// only pre-/post-transaction states exist outside a transaction.
Status SaveDatabase(const Database& db, std::ostream& out);
Status SaveDatabaseToFile(const Database& db, const std::string& path);

/// Restores a checkpoint into a fresh Database (schema included).
Result<Database> LoadDatabase(std::istream& in);
Result<Database> LoadDatabaseFromFile(const std::string& path);

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_PERSIST_H_
