#ifndef TXMOD_RELATIONAL_PERSIST_H_
#define TXMOD_RELATIONAL_PERSIST_H_

#include <iosfwd>
#include <string>

#include "src/common/result.h"
#include "src/common/vfs.h"
#include "src/relational/database.h"

namespace txmod {

/// Checkpointing for the main-memory store. PRISMA/DB kept all data in
/// memory and persisted via checkpoints; this module provides the same
/// facility with a line-oriented, human-readable text format:
///
///   txmod-checkpoint 1
///   time <logical-time>
///   relation <name> <arity>
///   attr <name> <int|double|string>      (arity times)
///   tuple <v1> <v2> ...                  (one line per tuple)
///   end
///   ...
///
/// Values are rendered as: `null`, `i:<digits>`, `d:<repr>` (hex float,
/// lossless round trip), `s:<quoted>` (C-style escapes). The format is a
/// checkpoint of committed state — transaction-local structures
/// (differentials, temporaries) are never persisted, matching the model:
/// only pre-/post-transaction states exist outside a transaction.
Status SaveDatabase(const Database& db, std::ostream& out);
Status SaveDatabaseToFile(const Database& db, const std::string& path);

/// Crash-safe checkpoint: writes to `path`.tmp, flushes to stable storage
/// (fsync), atomically renames over `path`, then fsyncs the parent
/// directory so the rename itself is durable. A crash at any point
/// leaves either the old checkpoint or the new one, never a torn file —
/// the property the WAL recovery path (wal.h) builds on (in particular,
/// checkpoint-then-truncate-WAL must never observe the truncation
/// durable while the rename is not). All writes/fsyncs/renames go
/// through `vfs` (nullptr = the real POSIX environment).
Status CheckpointDatabaseToFile(const Database& db, const std::string& path,
                                Vfs* vfs = nullptr);

/// Fsyncs the directory containing `path` (making a rename of `path`
/// durable). Exposed for the WAL's own rename-based repair.
Status FsyncParentDirectory(const std::string& path);

/// Restores a checkpoint into a fresh Database (schema included).
Result<Database> LoadDatabase(std::istream& in);
Result<Database> LoadDatabaseFromFile(const std::string& path);

/// The value codec behind the checkpoint format, shared with the
/// write-ahead log (wal.h): `null`, `i:<digits>`, `d:<hex-float>`
/// (lossless), `s:"<escaped>"`. SplitEncodedValues tokenizes one
/// space-separated line of encodings (spaces inside quoted strings are
/// preserved).
std::string EncodeValueText(const Value& v);
Result<Value> DecodeValueText(const std::string& text);
std::vector<std::string> SplitEncodedValues(const std::string& line);

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_PERSIST_H_
