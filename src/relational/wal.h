#ifndef TXMOD_RELATIONAL_WAL_H_
#define TXMOD_RELATIONAL_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/vfs.h"
#include "src/relational/database.h"

namespace txmod {

/// One committed transaction's net changes to one relation, as logged.
struct WalDelta {
  std::string relation;
  std::vector<Tuple> plus;   // tuples the transaction inserted (net)
  std::vector<Tuple> minus;  // tuples the transaction deleted (net)
};

/// One write-ahead log record: the differential of a single committed
/// transaction, stamped with the logical time it installed. Records are
/// appended in commit (version) order; replaying them over a checkpoint
/// of time t applies exactly the committed suffix t+1, t+2, ....
struct WalRecord {
  uint64_t version = 0;
  std::vector<WalDelta> deltas;
};

/// A differential write-ahead log with group commit.
///
/// PRISMA/DB persisted full-state checkpoints; the WAL closes the gap
/// between checkpoints: the transaction modification machinery already
/// computes per-relation dplus/dminus differentials, and those are
/// precisely what must be durable for a committed transaction — so the
/// log appends one checksummed record of net differentials per commit.
///
/// On-disk format (line-oriented, values via persist.h's codec):
///
///   txmod-wal 1
///   txn <version>
///   rel <name>
///   + <v1> <v2> ...                  (one line per inserted tuple)
///   - <v1> <v2> ...                  (one line per deleted tuple)
///   commit <version> <fnv1a-64 hex of the record body>
///
/// A record is valid only when its `commit` line is present, names the
/// same version, and its checksum matches the body ("txn" line through
/// the last delta line, inclusive). Recovery (ReadWal) applies records
/// in order and stops at the first invalid one — a torn append, a
/// truncated tail, or bit rot — restoring exactly the durable committed
/// prefix.
///
/// Durability and group commit: Append buffers nothing — the record hits
/// the OS with one write() — but it is only *durable* after Sync(lsn)
/// returns. Sync batches concurrent committers: one caller becomes the
/// fsync leader while the others wait; a single fsync covers every
/// record appended before it, so N concurrent commits cost far fewer
/// than N fsyncs (fsync_count() / appended_lsn() measures the batching).
///
/// Thread safety: Append and Sync are safe to call concurrently from any
/// number of threads. Callers that need records in version order (the
/// transaction manager) serialize Append themselves, under the same lock
/// that orders commits.
class WriteAheadLog {
 public:
  /// Opens `path` for appending, creating it (with the header line) when
  /// absent or empty. Refuses files that do not start with the header.
  /// All writes/fsyncs go through `vfs` (nullptr = the real POSIX
  /// environment); reads stay on the plain filesystem.
  static Result<WriteAheadLog> Open(const std::string& path,
                                    Vfs* vfs = nullptr);

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&&) = delete;
  ~WriteAheadLog();

  /// Appends one record (a single write() of the serialized form) and
  /// returns its log sequence number.
  Result<uint64_t> Append(const WalRecord& rec);

  /// Blocks until every record up to `lsn` is durable (fsync'd),
  /// batching with concurrent callers (group commit).
  Status Sync(uint64_t lsn);

  /// Empties the log (checkpoint + truncate): everything logged so far
  /// is covered by the new checkpoint. Re-writes the header. The caller
  /// must ensure no concurrent Append.
  Status Truncate();

  const std::string& path() const { return path_; }
  uint64_t appended_lsn() const { return appended_lsn_.load(); }
  uint64_t durable_lsn() const;
  /// Physical fsync calls issued; with group commit this is <= the
  /// number of Sync requests (often far fewer under concurrency).
  uint64_t fsync_count() const { return fsync_count_.load(); }
  uint64_t sync_requests() const { return sync_requests_.load(); }

  /// True once the log is poisoned (see broken_ below); `cause` (when
  /// non-null) receives the original failure message.
  bool broken(std::string* cause = nullptr) const;

 private:
  WriteAheadLog(std::string path, Vfs* vfs)
      : path_(std::move(path)), vfs_(vfs) {}

  /// Poisons the log, recording the first cause. Must NOT hold sync_mu_.
  void MarkBroken(const std::string& cause);
  /// The canonical poisoned-log error: Unavailable, naming the original
  /// cause. Requires sync_mu_.
  Status BrokenStatusLocked() const;

  std::string path_;
  Vfs* vfs_ = nullptr;
  std::unique_ptr<VfsFile> file_;

  std::mutex append_mu_;  // serializes write() calls
  std::atomic<uint64_t> appended_lsn_{0};

  // Group-commit state. `sync_mu_` is behind a unique_ptr only to keep
  // the type movable for the Open factory; after construction the object
  // stays put.
  std::unique_ptr<std::mutex> sync_mu_ = std::make_unique<std::mutex>();
  std::unique_ptr<std::condition_variable> sync_cv_ =
      std::make_unique<std::condition_variable>();
  uint64_t durable_lsn_guarded_ = 0;
  bool sync_in_progress_ = false;
  std::atomic<uint64_t> fsync_count_{0};
  std::atomic<uint64_t> sync_requests_{0};
  // Poisoned after a failed fsync or an un-truncatable torn append:
  // every later Append/Sync fails with Unavailable instead of reporting
  // durability the kernel can no longer provide. The first failure
  // message is kept (broken_cause_guarded_, under sync_mu_) so every
  // later error names the original cause.
  std::atomic<bool> broken_{false};
  std::string broken_cause_guarded_;
};

/// Outcome details of a WAL read/recovery.
struct WalReplayStats {
  uint64_t records_read = 0;     // valid records returned/applied
  uint64_t records_skipped = 0;  // already covered by the checkpoint
  bool tail_dropped = false;     // a truncated/corrupt tail was discarded
  std::string tail_error;        // what was wrong with it
};

/// Reads every valid record of `path`, in order, stopping cleanly at the
/// first truncated or corrupt record (`stats->tail_dropped`). A missing
/// file reads as an empty log.
Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       WalReplayStats* stats = nullptr);

/// Applies one record to `db`. Records at or below the database's
/// logical time are skipped (already covered by the checkpoint); a
/// record more than one step ahead is a sequencing error. Advances the
/// database's logical time on apply.
Status ApplyWalRecord(const WalRecord& rec, Database* db,
                      WalReplayStats* stats = nullptr);

/// Crash recovery: loads the checkpoint at `checkpoint_path` and replays
/// every valid WAL record on top, restoring exactly the durable
/// committed prefix. A missing WAL file means the checkpoint alone is
/// the state.
Result<Database> RecoverDatabase(const std::string& checkpoint_path,
                                 const std::string& wal_path,
                                 WalReplayStats* stats = nullptr);

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_WAL_H_
