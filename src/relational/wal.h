#ifndef TXMOD_RELATIONAL_WAL_H_
#define TXMOD_RELATIONAL_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/vfs.h"
#include "src/relational/database.h"

namespace txmod {

/// One committed transaction's net changes to one relation, as logged.
struct WalDelta {
  std::string relation;
  std::vector<Tuple> plus;   // tuples the transaction inserted (net)
  std::vector<Tuple> minus;  // tuples the transaction deleted (net)
};

/// One write-ahead log record: the differential of a single committed
/// transaction, stamped with the logical time it installed. Records are
/// appended in commit (version) order; replaying them over a checkpoint
/// of time t applies exactly the committed suffix t+1, t+2, ....
///
/// Sharded logs fan one commit out into up to `parts` records — one per
/// shard its deltas route to — every part carrying the same version and
/// the same declared part count (the shared commit-LSN header). Recovery
/// reassembles a version only when all of its declared parts are
/// present; a partial fan-out (crash between shard appends) is dropped
/// together with everything after it. parts == 1 encodes exactly as the
/// pre-shard v1 format.
struct WalRecord {
  uint64_t version = 0;
  uint32_t parts = 1;
  std::vector<WalDelta> deltas;
};

/// A differential write-ahead log with group commit.
///
/// PRISMA/DB persisted full-state checkpoints; the WAL closes the gap
/// between checkpoints: the transaction modification machinery already
/// computes per-relation dplus/dminus differentials, and those are
/// precisely what must be durable for a committed transaction — so the
/// log appends one checksummed record of net differentials per commit.
///
/// On-disk format (line-oriented, values via persist.h's codec):
///
///   txmod-wal 1                      (or: txmod-wal 2 shard <k>/<n>)
///   txn <version>                    (or: txn <version> parts <m>)
///   rel <name>
///   + <v1> <v2> ...                  (one line per inserted tuple)
///   - <v1> <v2> ...                  (one line per deleted tuple)
///   commit <version> <fnv1a-64 hex of the record body>
///
/// Format versions: "txmod-wal 1" is the single-stream format; a
/// "txmod-wal 2 shard <k>/<n>" header marks one stream of an n-way
/// sharded log (see ShardedWal below). Record bodies are identical in
/// both; the only v2 record addition is the optional "parts <m>" suffix
/// on the txn line, written when a commit fans out across m > 1 shards.
/// A v1 reader would reject such a line's checksum context, so the
/// format version is bumped; v2 readers accept v1 files unchanged.
///
/// A record is valid only when its `commit` line is present, names the
/// same version, and its checksum matches the body ("txn" line through
/// the last delta line, inclusive). Recovery (ReadWal) applies records
/// in order and stops at the first invalid one — a torn append, a
/// truncated tail, or bit rot — restoring exactly the durable committed
/// prefix.
///
/// Durability and group commit: Append buffers nothing — the record hits
/// the OS with one write() — but it is only *durable* after Sync(lsn)
/// returns. Sync batches concurrent committers: one caller becomes the
/// fsync leader while the others wait; a single fsync covers every
/// record appended before it, so N concurrent commits cost far fewer
/// than N fsyncs (fsync_count() / appended_lsn() measures the batching).
///
/// Thread safety: Append and Sync are safe to call concurrently from any
/// number of threads. Callers that need records in version order (the
/// transaction manager) serialize Append themselves, under the same lock
/// that orders commits.
class WriteAheadLog {
 public:
  /// Opens `path` for appending, creating it (with the v1 header line)
  /// when absent or empty. Refuses files that do not start with the
  /// header. All writes/fsyncs go through `vfs` (nullptr = the real
  /// POSIX environment); reads stay on the plain filesystem.
  static Result<WriteAheadLog> Open(const std::string& path,
                                    Vfs* vfs = nullptr);

  /// Opens one stream of an `shard_count`-way sharded log (v2 shard
  /// header "txmod-wal 2 shard <shard>/<shard_count>"). Refuses files
  /// whose header declares a different shard identity — the caller
  /// (ShardedWal::Open) adopts the on-disk count before calling this.
  static Result<WriteAheadLog> OpenShard(const std::string& path,
                                         uint32_t shard,
                                         uint32_t shard_count,
                                         Vfs* vfs = nullptr);

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&&) = delete;
  ~WriteAheadLog();

  /// Appends one record (a single write() of the serialized form) and
  /// returns its log sequence number.
  Result<uint64_t> Append(const WalRecord& rec);

  /// Blocks until every record up to `lsn` is durable (fsync'd),
  /// batching with concurrent callers (group commit).
  Status Sync(uint64_t lsn);

  /// Empties the log (checkpoint + truncate): everything logged so far
  /// is covered by the new checkpoint. Re-writes the header. The caller
  /// must ensure no concurrent Append.
  Status Truncate();

  const std::string& path() const { return path_; }
  uint64_t appended_lsn() const { return appended_lsn_.load(); }
  uint64_t durable_lsn() const;
  /// Physical fsync calls issued; with group commit this is <= the
  /// number of Sync requests (often far fewer under concurrency).
  uint64_t fsync_count() const { return fsync_count_.load(); }
  uint64_t sync_requests() const { return sync_requests_.load(); }

  /// True once the log is poisoned (see broken_ below); `cause` (when
  /// non-null) receives the original failure message.
  bool broken(std::string* cause = nullptr) const;

 private:
  WriteAheadLog(std::string path, Vfs* vfs)
      : path_(std::move(path)), vfs_(vfs) {}

  /// Shared Open machinery: `header` is the exact first line the file
  /// must carry (written when creating, verified when reopening).
  static Result<WriteAheadLog> OpenWithHeader(const std::string& path,
                                              std::string header, Vfs* vfs);

  /// Poisons the log, recording the first cause. Must NOT hold sync_mu_.
  void MarkBroken(const std::string& cause);
  /// The canonical poisoned-log error: Unavailable, naming the original
  /// cause. Requires sync_mu_.
  Status BrokenStatusLocked() const;

  std::string path_;
  std::string header_;
  Vfs* vfs_ = nullptr;
  std::unique_ptr<VfsFile> file_;

  std::mutex append_mu_;  // serializes write() calls
  std::atomic<uint64_t> appended_lsn_{0};

  // Group-commit state. `sync_mu_` is behind a unique_ptr only to keep
  // the type movable for the Open factory; after construction the object
  // stays put.
  std::unique_ptr<std::mutex> sync_mu_ = std::make_unique<std::mutex>();
  std::unique_ptr<std::condition_variable> sync_cv_ =
      std::make_unique<std::condition_variable>();
  uint64_t durable_lsn_guarded_ = 0;
  bool sync_in_progress_ = false;
  std::atomic<uint64_t> fsync_count_{0};
  std::atomic<uint64_t> sync_requests_{0};
  // Poisoned after a failed fsync or an un-truncatable torn append:
  // every later Append/Sync fails with Unavailable instead of reporting
  // durability the kernel can no longer provide. The first failure
  // message is kept (broken_cause_guarded_, under sync_mu_) so every
  // later error names the original cause.
  std::atomic<bool> broken_{false};
  std::string broken_cause_guarded_;
};

/// A write-ahead log sharded into N independent append streams.
///
/// Stasis's logger decouples log append, flush, and truncation points so
/// committers stop convoying on one stream; this is that shape over the
/// differential WAL. Deltas are routed by relation-name hash
/// (ShardOf), so one commit touches only the shards its relations map
/// to: AppendCommit splits the record into per-shard parts (each
/// carrying the shared version and the declared part count — the
/// commit-LSN header) and Sync batches per shard with independent
/// group-commit fsync leaders. Disjoint-shard commits never share an
/// append mutex or an fsync.
///
/// On-disk layout: shard k of n lives at `<path>.shard<k>` with header
/// "txmod-wal 2 shard <k>/<n>". shard_count == 1 is special-cased to a
/// single v1-format file at `path` itself — byte-for-byte the pre-shard
/// format, so existing logs reopen unchanged.
///
/// Reopen compatibility: Open adopts the shard count it finds on disk
/// (the configured count applies only to logs that do not exist yet) —
/// a mismatch between configuration and disk is resolved in favor of
/// the disk, never by scrambling the routing of existing records. A
/// pre-shard v1 log at `path` reopened under a sharded configuration is
/// kept as a read-only prefix stream: recovery stitches it in below the
/// shard records, and the next checkpoint (Truncate) removes it.
///
/// Torn tails: Open repairs each stream independently (rewriting the
/// valid prefix via temp + rename), so a tear on one shard never blocks
/// appends to it or hides later records on other shards.
///
/// Poisoning is log-wide: a failed fsync on ANY shard leaves the commit
/// horizon unknowable for the whole log, so broken() reports the first
/// per-shard failure and the transaction manager degrades as a unit.
class ShardedWal {
 public:
  /// Opens (creating) the log rooted at `path` with `shard_count`
  /// streams; an existing log's on-disk count wins over the argument.
  static Result<std::unique_ptr<ShardedWal>> Open(const std::string& path,
                                                  uint32_t shard_count,
                                                  Vfs* vfs = nullptr);

  /// One appended part's position: which shard, and the LSN to Sync to.
  struct Position {
    uint32_t shard = 0;
    uint64_t lsn = 0;
  };

  /// Splits `rec` into per-shard parts by relation-name hash and appends
  /// each (setting the parts count on every one). Returns the positions
  /// for SyncPositions. A failure may leave a partial fan-out behind —
  /// recovery treats the version as absent (all-or-nothing stitching) —
  /// and the caller must not report the commit durable.
  Result<std::vector<Position>> AppendCommit(const WalRecord& rec);

  /// Group-commit durability for one commit's fan-out: waits until every
  /// appended part is fsync'd, shard by shard (each shard batches with
  /// its own concurrent committers).
  Status SyncPositions(const std::vector<Position>& positions);

  /// Empties every stream (checkpoint + truncate) and removes a legacy
  /// pre-shard file when one is still lingering as the prefix stream.
  Status Truncate();

  /// True when any shard is poisoned; `cause` receives the first
  /// per-shard failure message.
  bool broken(std::string* cause = nullptr) const;

  uint32_t shard_count() const { return shard_count_; }
  bool sharded() const { return shard_count_ > 1; }
  const std::string& path() const { return path_; }

  /// Aggregated across shards.
  uint64_t fsync_count() const;
  uint64_t sync_requests() const;
  uint64_t appended_parts() const;

  /// Direct stream access (tests/diagnostics). k < shard_count().
  const WriteAheadLog* shard(uint32_t k) const { return &shards_[k]; }

  /// Upper bound on the shard count probed for on disk (discovery scans
  /// `<path>.shard0` .. `<path>.shard63`); also the maximum accepted
  /// configuration.
  static constexpr uint32_t kMaxProbeShards = 64;

  /// `<path>.shard<k>` — where stream k of a sharded log lives.
  static std::string ShardPath(const std::string& path, uint32_t shard);
  /// The routing function: FNV-1a(relation) % shard_count. Stable across
  /// runs and processes by construction (no seed, no pointer hashing) —
  /// recovery does not depend on it, but stable routing keeps every
  /// relation's records on one stream, which is what makes a single
  /// shard's prefix self-consistent per relation.
  static uint32_t ShardOf(const std::string& relation, uint32_t shard_count);
  /// The shard count an existing log at `path` declares: n from the
  /// first readable shard header, 0 when no sharded layout exists on
  /// disk (no log at all, or only a legacy v1 file — which does not
  /// constrain the count; see the reopen-compatibility note above).
  static Result<uint32_t> DiscoverShardCount(const std::string& path);

 private:
  ShardedWal(std::string path, uint32_t shard_count, Vfs* vfs)
      : path_(std::move(path)), shard_count_(shard_count), vfs_(vfs) {}

  std::string path_;
  uint32_t shard_count_ = 1;
  Vfs* vfs_ = nullptr;
  std::vector<WriteAheadLog> shards_;  // size 1 (at path_) when unsharded
};

/// Outcome details of a WAL read/recovery.
struct WalReplayStats {
  uint64_t records_read = 0;     // valid records returned/applied
  uint64_t records_skipped = 0;  // already covered by the checkpoint
  bool tail_dropped = false;     // a truncated/corrupt tail was discarded
  std::string tail_error;        // what was wrong with it
};

/// The shard identity a WAL file's header declares.
struct WalShardInfo {
  bool sharded = false;     // v2 shard header present
  uint32_t shard = 0;       // k of "shard k/n"
  uint32_t shard_count = 1;  // n (1 for a legacy v1 file)
};

/// Reads every valid record of `path`, in order, stopping cleanly at the
/// first truncated or corrupt record (`stats->tail_dropped`). A missing
/// file reads as an empty log. Accepts v1 and v2-shard headers; `info`
/// (when non-null) receives the header's shard identity.
Result<std::vector<WalRecord>> ReadWal(const std::string& path,
                                       WalReplayStats* stats = nullptr,
                                       WalShardInfo* info = nullptr);

/// Reads a possibly-sharded log rooted at `path` and stitches the
/// streams back into one commit-version-ordered sequence: a legacy v1
/// file at `path` contributes the low prefix, shard streams contribute
/// parts that are reassembled per version, and the sequence is cut at
/// the first version that is missing or incomplete (partial fan-out) —
/// everything at or above the cut is dropped (`stats->tail_dropped`),
/// preserving the exact-durable-prefix property shard by shard.
///
/// `checkpoint_time` anchors the contiguity cut: records at or below it
/// are already covered by the checkpoint (a crash or truncate fault
/// between checkpoint rename and WAL truncation can leave them behind on
/// a subset of streams, with gaps where other streams did truncate), so
/// they are returned for skip accounting but exempt from the gap check;
/// the replayable sequence above it must start at `checkpoint_time + 1`
/// and be contiguous.
Result<std::vector<WalRecord>> ReadShardedWal(const std::string& path,
                                              WalReplayStats* stats = nullptr,
                                              uint64_t checkpoint_time = 0);

/// Applies one record to `db`. Records at or below the database's
/// logical time are skipped (already covered by the checkpoint); a
/// record more than one step ahead is a sequencing error. Advances the
/// database's logical time on apply.
Status ApplyWalRecord(const WalRecord& rec, Database* db,
                      WalReplayStats* stats = nullptr);

/// Crash recovery: loads the checkpoint at `checkpoint_path` and replays
/// every valid WAL record on top — stitching sharded logs back into
/// commit-version order via ReadShardedWal — restoring exactly the
/// durable committed prefix. A missing WAL file means the checkpoint
/// alone is the state.
Result<Database> RecoverDatabase(const std::string& checkpoint_path,
                                 const std::string& wal_path,
                                 WalReplayStats* stats = nullptr);

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_WAL_H_
