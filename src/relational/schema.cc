#include "src/relational/schema.h"

#include "src/common/str_util.h"

namespace txmod {

const char* AttrTypeToString(AttrType type) {
  switch (type) {
    case AttrType::kInt:
      return "int";
    case AttrType::kDouble:
      return "double";
    case AttrType::kString:
      return "string";
  }
  return "unknown";
}

Result<int> RelationSchema::AttributeIndex(const std::string& name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound(
      StrCat("relation ", name_, " has no attribute ", name));
}

namespace {

bool TypeAccepts(AttrType attr, const Value& v) {
  if (v.is_null()) return true;
  switch (attr) {
    case AttrType::kInt:
      return v.is_int();
    case AttrType::kDouble:
      return v.is_numeric();
    case AttrType::kString:
      return v.is_string();
  }
  return false;
}

}  // namespace

Status RelationSchema::CheckTuple(const Tuple& tuple) const {
  if (tuple.arity() != arity()) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", tuple.arity(), " does not match schema ",
               name_, " arity ", arity()));
  }
  for (std::size_t i = 0; i < arity(); ++i) {
    if (!TypeAccepts(attributes_[i].type, tuple.at(i))) {
      return Status::InvalidArgument(
          StrCat("attribute ", attributes_[i].name, " of ", name_,
                 " expects ", AttrTypeToString(attributes_[i].type), ", got ",
                 ValueTypeToString(tuple.at(i).type()), " in ",
                 tuple.ToString()));
    }
  }
  return Status::OK();
}

Tuple RelationSchema::CoerceTuple(Tuple tuple) const {
  for (std::size_t i = 0; i < arity() && i < tuple.arity(); ++i) {
    if (attributes_[i].type == AttrType::kDouble && tuple.at(i).is_int()) {
      tuple.at(i) = Value::Double(static_cast<double>(tuple.at(i).as_int()));
    }
  }
  return tuple;
}

std::string RelationSchema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size());
  for (const Attribute& a : attributes_) {
    parts.push_back(StrCat(a.name, ": ", AttrTypeToString(a.type)));
  }
  return StrCat(name_, "(", Join(parts, ", "), ")");
}

Status DatabaseSchema::AddRelation(RelationSchema schema) {
  if (schema.name().empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (Contains(schema.name())) {
    return Status::AlreadyExists(
        StrCat("relation ", schema.name(), " already defined"));
  }
  index_[schema.name()] = relations_.size();
  relations_.push_back(std::move(schema));
  return Status::OK();
}

Result<const RelationSchema*> DatabaseSchema::Find(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(StrCat("relation ", name, " not in schema"));
  }
  return &relations_[it->second];
}

bool DatabaseSchema::Contains(const std::string& name) const {
  return index_.find(name) != index_.end();
}

}  // namespace txmod
