#ifndef TXMOD_RELATIONAL_DATABASE_H_
#define TXMOD_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/relational/relation.h"
#include "src/relational/schema.h"

namespace txmod {

/// A database state D = {R1, ..., Rn} of a database schema (Definition
/// 2.2), together with its logical time t (Definition 2.3). Transactions
/// advance logical time by exactly one on commit (single-step transitions);
/// an aborted transaction leaves both state and time unchanged.
///
/// Snapshot facility: relations are held behind shared pointers, so
/// copying a Database — Clone(), the copy constructor, or assignment —
/// is O(#relations) and *shares* every relation state with the source.
/// Value semantics are preserved by FindMutable: the first mutable
/// access to a shared relation un-shares it privately first — by default
/// an O(1) overlay over the immutable shared base (mutations then cost
/// O(|delta|)); with overlays disabled, an O(|R|) clone that re-declares
/// the equi-key indexes plain Relation copies drop. This is what gives
/// concurrent sessions a stable committed snapshot D^t to read while
/// writers build differentials: a snapshot is just a Clone() of the
/// committed database, and neither side's mutations are ever visible to
/// the other.
///
/// Ownership discipline (the race-freedom argument): every Database
/// instance tracks which relation states it exclusively owns — those it
/// created or cloned itself and has never shared out. Copying a Database
/// marks every state shared on BOTH sides, and a shared state is
/// immutable forever after: FindMutable never mutates one, it clones
/// first. Deliberately NOT shared_ptr::use_count() — observing a
/// refcount drop to 1 via its relaxed load would not establish a
/// happens-before edge with the releasing thread's prior reads, so
/// mutating "because the count says we are alone" is a data race
/// (ThreadSanitizer-verified). The owned-set is per-instance state,
/// touched only by this instance's single thread (or under the
/// transaction manager's commit lock).
///
/// Thread safety: a Database object is single-threaded, but Database
/// objects sharing relation states may be used from different threads as
/// long as snapshot creation (copying) is not concurrent with mutation
/// of the source — the transaction manager serializes Begin() against
/// commit application for exactly this reason.
class Database {
 public:
  Database() = default;
  /// Copying shares every relation state and renders them immutable on
  /// both sides (each side clones on its next write).
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates an empty relation for `schema`. Names must be unique.
  Status CreateRelation(RelationSchema schema);

  Result<const Relation*> Find(const std::string& name) const;

  /// Mutable access that never leaks mutation into other holders. While
  /// the relation state is shared with another Database (an outstanding
  /// snapshot), the first mutable access un-shares it:
  ///
  ///   * overlay mode (default): an O(1) overlay state is layered over
  ///     the shared base (Relation::MakeOverlay) — mutation cost becomes
  ///     O(|delta|), with declared indexes mirrored so compiled checks
  ///     stay on their probe paths via FindIndexView;
  ///   * clone mode (set_overlay_enabled(false)): the state is cloned
  ///     O(|R|) — including re-declaring its indexes — the pre-overlay
  ///     behavior, kept as the oracle baseline.
  Result<Relation*> FindMutable(const std::string& name);

  /// Chooses between overlay and clone un-sharing in FindMutable. The
  /// flag is copied by Clone()/copies, so snapshots inherit the mode.
  void set_overlay_enabled(bool enabled) { overlay_enabled_ = enabled; }
  bool overlay_enabled() const { return overlay_enabled_; }

  bool Contains(const std::string& name) const {
    return relations_.find(name) != relations_.end();
  }

  const DatabaseSchema& schema() const { return schema_; }

  /// Names in deterministic (sorted) order.
  std::vector<std::string> RelationNames() const;

  uint64_t logical_time() const { return logical_time_; }
  void AdvanceTime() { ++logical_time_; }
  /// Steps time back one transition — only for un-installing the newest
  /// commit when its log record turned out not to be durable (the
  /// transaction manager's WAL-failure unwind).
  void RewindTime() { --logical_time_; }

  /// A copy with full value semantics. O(#relations) thanks to
  /// copy-on-write sharing: relation payloads are copied lazily, on first
  /// mutable access by whichever side writes first. This is the snapshot
  /// primitive: `Database snap = committed.Clone()` pins the committed
  /// state D^t for as long as `snap` lives.
  Database Clone() const;

  /// Transfers out a relation state this instance exclusively owns (see
  /// the ownership discipline above), removing the entry — this database
  /// no longer resolves `name` afterwards. Returns null when the state
  /// is shared or unknown. Together with AdoptRelation this is the
  /// transaction manager's swap-in commit fast path: a session that
  /// cloned a relation privately and ran against the current committed
  /// version hands its post-state over by pointer, not by copy.
  std::shared_ptr<Relation> TakeOwnedRelation(const std::string& name);

  /// Installs `rel` as `name`'s state and takes exclusive ownership. The
  /// caller must guarantee no other Database still shares `rel` (pairs
  /// with TakeOwnedRelation, whose owned-set proof supplies exactly
  /// that). The relation must exist in the schema already.
  void AdoptRelation(const std::string& name, std::shared_ptr<Relation> rel);

  /// True when both databases hold the same relations with the same
  /// tuples. Logical time is deliberately NOT part of the default
  /// comparison — two states reached by different transaction histories
  /// (e.g. a recovered database vs. the live one it mirrors, or a serial
  /// replay vs. a concurrent execution) compare equal when their contents
  /// agree. Pass `compare_time = true` to additionally require equal
  /// logical times. (Clone() always copies the time; SameState ignoring
  /// it by default is the documented asymmetry.)
  bool SameState(const Database& other, bool compare_time = false) const;

 private:
  DatabaseSchema schema_;
  // Shared relation states: the copy-on-write substrate.
  std::map<std::string, std::shared_ptr<Relation>> relations_;
  // Names whose state this instance exclusively owns (created or cloned
  // here, never shared out). Mutable: copying a const source must strip
  // the source's ownership too, or it would keep mutating state the copy
  // now reads.
  mutable std::set<std::string> owned_;
  uint64_t logical_time_ = 0;
  bool overlay_enabled_ = true;
};

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_DATABASE_H_
