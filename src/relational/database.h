#ifndef TXMOD_RELATIONAL_DATABASE_H_
#define TXMOD_RELATIONAL_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/relational/relation.h"
#include "src/relational/schema.h"

namespace txmod {

/// A database state D = {R1, ..., Rn} of a database schema (Definition
/// 2.2), together with its logical time t (Definition 2.3). Transactions
/// advance logical time by exactly one on commit (single-step transitions);
/// an aborted transaction leaves both state and time unchanged.
class Database {
 public:
  /// Creates an empty relation for `schema`. Names must be unique.
  Status CreateRelation(RelationSchema schema);

  Result<const Relation*> Find(const std::string& name) const;
  Result<Relation*> FindMutable(const std::string& name);

  bool Contains(const std::string& name) const {
    return relations_.find(name) != relations_.end();
  }

  const DatabaseSchema& schema() const { return schema_; }

  /// Names in deterministic (sorted) order.
  std::vector<std::string> RelationNames() const;

  uint64_t logical_time() const { return logical_time_; }
  void AdvanceTime() { ++logical_time_; }

  /// Deep copy of the full state (property tests, post-hoc baseline).
  Database Clone() const;

  /// True when both databases hold the same relations with the same tuples.
  bool SameState(const Database& other) const;

 private:
  DatabaseSchema schema_;
  std::map<std::string, Relation> relations_;
  uint64_t logical_time_ = 0;
};

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_DATABASE_H_
