#ifndef TXMOD_RELATIONAL_VALUE_H_
#define TXMOD_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/result.h"

namespace txmod {

/// Runtime type of a Value. The paper's attribute domains (Definition 2.1)
/// are modelled by three scalar domains plus the distinguished null value
/// used by compensating actions (Example 4.2 inserts (name, null, null)).
enum class ValueType {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

const char* ValueTypeToString(ValueType type);

/// A single attribute value: null, 64-bit integer, double, or string.
///
/// Two notions of comparison coexist, deliberately:
///  * *Identity* (`operator==`, `Hash`, `Less`) is type-exact and total; it
///    defines set membership of tuples (Definition 2.1 treats relations as
///    sets) and must be consistent with hashing, so Int(1) != Double(1.0).
///  * *Predicate comparison* (`Compare`) implements the CL value predicates
///    {<, <=, =, !=, >=, >} with numeric coercion between kInt and kDouble,
///    and three-valued-logic-style null handling collapsed to `false`
///    (any comparison involving null is false, except equality when both
///    sides are null).
class Value {
 public:
  /// Constructs the null value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  ValueType type() const {
    return static_cast<ValueType>(rep_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Value accessors; calling the wrong one is a programming error.
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Numeric value widened to double; error if not numeric.
  Result<double> NumericAsDouble() const;

  /// Type-exact identity (set semantics); consistent with Hash().
  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order over (type tag, value); used for deterministic output.
  static bool Less(const Value& a, const Value& b);

  std::size_t Hash() const;

  /// Hash consistent with *predicate* equality instead of identity:
  /// KeyHash(a) == KeyHash(b) whenever Compare(a, b) == kEqual. Achieved by
  /// canonicalizing a kDouble that holds an exactly-representable integer
  /// (including -0.0) to the kInt hash of that integer, so Int(1) and
  /// Double(1.0) collide while Int(2^53) and Int(2^53 + 1) do not. Join
  /// hash tables and relation equi-key indexes key on this.
  std::size_t KeyHash() const;

  /// Predicate comparison per the CL semantics described above. Returns
  /// -1 / 0 / +1 when comparable; kIncomparable when a null is involved in
  /// an ordering, the types cannot be coerced (string vs numeric), or a
  /// NaN is involved. Numeric comparison is *exact*: int/int compares as
  /// int64 and int/double compares without widening the integer to double,
  /// so values above 2^53 are never conflated. This keeps predicate
  /// equality in provable agreement with KeyHash().
  enum class Ordering { kLess, kEqual, kGreater, kIncomparable };
  static Ordering Compare(const Value& a, const Value& b);

  /// Renders the value: null, 42, 3.5, "text".
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

struct ValueHasher {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_VALUE_H_
