#include "src/relational/database.h"

#include "src/common/str_util.h"

namespace txmod {

Status Database::CreateRelation(RelationSchema schema) {
  const std::string name = schema.name();
  TXMOD_RETURN_IF_ERROR(schema_.AddRelation(schema));
  auto shared = std::make_shared<const RelationSchema>(std::move(schema));
  relations_.emplace(name, Relation(std::move(shared)));
  return Status::OK();
}

Result<const Relation*> Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation ", name, " does not exist"));
  }
  return &it->second;
}

Result<Relation*> Database::FindMutable(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation ", name, " does not exist"));
  }
  return &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

Database Database::Clone() const {
  return *this;  // All members are value types; map copy is a deep copy.
}

bool Database::SameState(const Database& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  for (const auto& [name, rel] : relations_) {
    auto it = other.relations_.find(name);
    if (it == other.relations_.end()) return false;
    if (!rel.SameTuples(it->second)) return false;
  }
  return true;
}

}  // namespace txmod
