#include "src/relational/database.h"

#include "src/common/str_util.h"

namespace txmod {

Database::Database(const Database& other)
    : schema_(other.schema_),
      relations_(other.relations_),
      logical_time_(other.logical_time_),
      overlay_enabled_(other.overlay_enabled_) {
  // Every state is now shared: neither side may mutate one in place.
  other.owned_.clear();
}

Database& Database::operator=(const Database& other) {
  if (this != &other) {
    schema_ = other.schema_;
    relations_ = other.relations_;
    logical_time_ = other.logical_time_;
    overlay_enabled_ = other.overlay_enabled_;
    owned_.clear();
    other.owned_.clear();
  }
  return *this;
}

Status Database::CreateRelation(RelationSchema schema) {
  const std::string name = schema.name();
  TXMOD_RETURN_IF_ERROR(schema_.AddRelation(schema));
  auto shared = std::make_shared<const RelationSchema>(std::move(schema));
  relations_.emplace(name, std::make_shared<Relation>(std::move(shared)));
  owned_.insert(name);
  return Status::OK();
}

Result<const Relation*> Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation ", name, " does not exist"));
  }
  return it->second.get();
}

Result<Relation*> Database::FindMutable(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation ", name, " does not exist"));
  }
  std::shared_ptr<Relation>& slot = it->second;
  if (owned_.find(name) == owned_.end()) {
    // This state is (or once was) shared with a snapshot — shared states
    // are immutable, so un-share before handing out mutable access.
    if (overlay_enabled_) {
      // O(1) in the relation size: layer a private overlay over the
      // shared base. Declared indexes are mirrored (empty) so compiled
      // checks keep probing via FindIndexView.
      auto owned = std::make_shared<Relation>(
          Relation::MakeOverlay(std::shared_ptr<const Relation>(slot)));
      slot = std::move(owned);
      ++CowStats::overlays_created;
      // Depth backstop for writers that never run the commit-path
      // compaction (e.g. the serial engine mutating a master that gets
      // snapshotted repeatedly): bound read amplification.
      if (slot->overlay_depth() > 40) slot->CollapseOverlay();
    } else {
      // O(|R|) copy-on-write clone, re-declaring the indexes the plain
      // Relation copy drops — the pre-overlay baseline. A source that is
      // itself an overlay chain is flattened so the clone is a plain
      // self-contained state.
      auto owned = std::make_shared<Relation>(*slot);
      owned->CollapseOverlay();
      for (const std::vector<int>& attrs : slot->DeclaredIndexes()) {
        owned->IndexOn(attrs);
      }
      ++CowStats::relation_clones;
      CowStats::cloned_tuples += slot->size();
      slot = std::move(owned);
    }
    owned_.insert(name);
  }
  return slot.get();
}

std::shared_ptr<Relation> Database::TakeOwnedRelation(
    const std::string& name) {
  auto owned_it = owned_.find(name);
  if (owned_it == owned_.end()) return nullptr;
  auto it = relations_.find(name);
  if (it == relations_.end()) return nullptr;
  std::shared_ptr<Relation> out = std::move(it->second);
  relations_.erase(it);
  owned_.erase(owned_it);
  return out;
}

void Database::AdoptRelation(const std::string& name,
                             std::shared_ptr<Relation> rel) {
  relations_[name] = std::move(rel);
  owned_.insert(name);
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

Database Database::Clone() const {
  return *this;  // Shares relation states; FindMutable un-shares on write.
}

bool Database::SameState(const Database& other, bool compare_time) const {
  if (compare_time && logical_time_ != other.logical_time_) return false;
  if (relations_.size() != other.relations_.size()) return false;
  for (const auto& [name, rel] : relations_) {
    auto it = other.relations_.find(name);
    if (it == other.relations_.end()) return false;
    if (!rel->SameTuples(*it->second)) return false;
  }
  return true;
}

}  // namespace txmod
