#include "src/relational/relation.h"

#include <algorithm>

#include "src/common/str_util.h"

namespace txmod {

void RelationIndex::Remove(const Tuple* t) {
  auto [begin, end] = map_.equal_range(EquiKeyHash(*t, attrs_));
  for (auto it = begin; it != end; ++it) {
    if (it->second == t) {
      map_.erase(it);
      return;
    }
  }
}

void RelationIndex::Rebuild(
    const std::unordered_set<Tuple, TupleHasher>& tuples) {
  map_.clear();
  map_.reserve(tuples.size());
  for (const Tuple& t : tuples) Add(&t);
}

bool Relation::Insert(Tuple t) {
  auto [it, inserted] = tuples_.insert(std::move(t));
  if (inserted) {
    for (const auto& index : indexes_) index->Add(&*it);
  }
  return inserted;
}

bool Relation::Erase(const Tuple& t) {
  auto it = tuples_.find(t);
  if (it == tuples_.end()) return false;
  for (const auto& index : indexes_) index->Remove(&*it);
  tuples_.erase(it);
  return true;
}

void Relation::Clear() {
  tuples_.clear();
  for (const auto& index : indexes_) index->map_.clear();
}

const RelationIndex* Relation::IndexOn(std::vector<int> attrs) {
  if (attrs.empty() || schema_ == nullptr) return nullptr;
  for (const int a : attrs) {
    if (a < 0 || a >= static_cast<int>(arity())) return nullptr;
  }
  if (const RelationIndex* existing = FindIndex(attrs)) return existing;
  auto index = std::make_unique<RelationIndex>(std::move(attrs));
  index->Rebuild(tuples_);
  indexes_.push_back(std::move(index));
  return indexes_.back().get();
}

const RelationIndex* Relation::FindIndex(
    const std::vector<int>& attrs) const {
  for (const auto& index : indexes_) {
    if (index->attrs() == attrs) return index.get();
  }
  return nullptr;
}

std::vector<std::vector<int>> Relation::DeclaredIndexes() const {
  std::vector<std::vector<int>> out;
  out.reserve(indexes_.size());
  for (const auto& index : indexes_) out.push_back(index->attrs());
  return out;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end(), Tuple::Less);
  return out;
}

bool Relation::SameTuples(const Relation& other) const {
  if (size() != other.size()) return false;
  for (const Tuple& t : tuples_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

std::string Relation::ToString(std::size_t max_tuples) const {
  std::vector<std::string> parts;
  const std::vector<Tuple> sorted = SortedTuples();
  for (std::size_t i = 0; i < sorted.size() && i < max_tuples; ++i) {
    parts.push_back(sorted[i].ToString());
  }
  std::string body = Join(parts, ", ");
  if (sorted.size() > max_tuples) {
    body += StrCat(", ... (", sorted.size() - max_tuples, " more)");
  }
  return StrCat(schema_ ? name() : std::string("?"), "{", body, "}");
}

}  // namespace txmod
