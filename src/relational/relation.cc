#include "src/relational/relation.h"

#include <algorithm>

#include "src/common/str_util.h"

namespace txmod {

std::atomic<uint64_t> CowStats::relation_clones{0};
std::atomic<uint64_t> CowStats::cloned_tuples{0};
std::atomic<uint64_t> CowStats::overlays_created{0};
std::atomic<uint64_t> CowStats::overlay_merges{0};
std::atomic<uint64_t> CowStats::overlay_collapses{0};

void CowStats::Reset() {
  relation_clones.store(0);
  cloned_tuples.store(0);
  overlays_created.store(0);
  overlay_merges.store(0);
  overlay_collapses.store(0);
}

void RelationIndex::Remove(const Tuple* t) {
  auto [begin, end] = map_.equal_range(EquiKeyHash(*t, attrs_));
  for (auto it = begin; it != end; ++it) {
    if (it->second == t) {
      map_.erase(it);
      return;
    }
  }
}

void RelationIndex::Rebuild(
    const std::unordered_set<Tuple, TupleHasher>& tuples) {
  map_.clear();
  map_.reserve(tuples.size());
  for (const Tuple& t : tuples) Add(&t);
}

// ---------------------------------------------------------------------------
// RelationIndexView.
// ---------------------------------------------------------------------------

RelationIndexView::Candidates RelationIndexView::Probe(
    std::size_t key_hash) const {
  Candidates c;
  c.view_ = this;
  c.hash_ = key_hash;
  c.level_ = 0;
  if (!levels_.empty() && levels_[0].index != nullptr) {
    std::tie(c.it_, c.end_) = levels_[0].index->Probe(key_hash);
  }
  return c;
}

const Tuple* RelationIndexView::Candidates::Next() {
  if (view_ == nullptr) return nullptr;
  for (;;) {
    while (it_ != end_) {
      const Tuple* t = it_->second;
      ++it_;
      if (!view_->Shadowed(level_, *t)) return t;
    }
    ++level_;
    if (level_ >= view_->levels_.size()) return nullptr;
    const RelationIndex* index = view_->levels_[level_].index;
    if (index == nullptr) {
      it_ = RelationIndex::Iterator{};
      end_ = it_;
      continue;
    }
    std::tie(it_, end_) = index->Probe(hash_);
  }
}

bool RelationIndexView::Shadowed(std::size_t level, const Tuple& t) const {
  for (std::size_t i = 0; i < level; ++i) {
    const auto* minus = levels_[i].minus;
    if (minus != nullptr && !minus->empty() && minus->count(t) > 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Relation.
// ---------------------------------------------------------------------------

Relation Relation::MakeOverlay(std::shared_ptr<const Relation> base) {
  Relation overlay(base->schema_ptr());
  // Mirror the base's declared attribute lists as empty local indexes so
  // FindIndexView can compose the chain. Building is O(#indexes), never
  // O(|base|): the mirrors cover only this level's future inserts.
  for (std::vector<int>& attrs : base->DeclaredIndexes()) {
    overlay.indexes_.push_back(
        std::make_unique<RelationIndex>(std::move(attrs)));
  }
  overlay.base_ = std::move(base);
  return overlay;
}

bool Relation::Insert(Tuple t) {
  if (base_ != nullptr) {
    if (tuples_.count(t) > 0) return false;  // visible via a local insert
    auto mit = minus_.find(t);
    if (mit != minus_.end()) {
      // Resurrect a base tuple this level deleted: un-shadow it.
      minus_.erase(mit);
      return true;
    }
    if (base_->Contains(t)) return false;  // visible through the base
  }
  auto [it, inserted] = tuples_.insert(std::move(t));
  if (inserted) {
    for (const auto& index : indexes_) index->Add(&*it);
  }
  return inserted;
}

bool Relation::Erase(const Tuple& t) {
  auto it = tuples_.find(t);
  if (it != tuples_.end()) {
    for (const auto& index : indexes_) index->Remove(&*it);
    tuples_.erase(it);
    if (base_ != nullptr && minus_.count(t) == 0 && base_->Contains(t)) {
      // Merged levels may hold a tuple both locally and in the base
      // chain; keep it invisible after the local removal.
      minus_.insert(t);
    }
    return true;
  }
  if (base_ != nullptr && minus_.count(t) == 0 && base_->Contains(t)) {
    minus_.insert(t);
    return true;
  }
  return false;
}

void Relation::Clear() {
  tuples_.clear();
  minus_.clear();
  base_.reset();
  for (const auto& index : indexes_) index->map_.clear();
}

const RelationIndex* Relation::IndexOn(std::vector<int> attrs) {
  if (attrs.empty() || schema_ == nullptr) return nullptr;
  for (const int a : attrs) {
    if (a < 0 || a >= static_cast<int>(arity())) return nullptr;
  }
  // The returned index must cover the whole visible contents (a mirrored
  // overlay index covers only local inserts); flatten first so the build
  // below sees every tuple. Definition-time only — FindIndex/FindIndexView
  // never reach here.
  if (base_ != nullptr) CollapseOverlay();
  if (const RelationIndex* existing = FindLocalIndex(attrs)) return existing;
  auto index = std::make_unique<RelationIndex>(std::move(attrs));
  index->Rebuild(tuples_);
  indexes_.push_back(std::move(index));
  return indexes_.back().get();
}

const RelationIndex* Relation::FindIndex(
    const std::vector<int>& attrs) const {
  // A raw per-level index cannot answer membership over an overlay chain
  // (it misses base tuples and deleted ones); overlay callers must go
  // through FindIndexView.
  if (base_ != nullptr) return nullptr;
  return FindLocalIndex(attrs);
}

const RelationIndex* Relation::FindLocalIndex(
    const std::vector<int>& attrs) const {
  for (const auto& index : indexes_) {
    if (index->attrs() == attrs) return index.get();
  }
  return nullptr;
}

RelationIndexView Relation::FindIndexView(
    const std::vector<int>& attrs) const {
  RelationIndexView view;
  for (const Relation* level = this; level != nullptr;
       level = level->base_.get()) {
    const RelationIndex* index = level->FindLocalIndex(attrs);
    if (index == nullptr && !level->tuples_.empty()) {
      return RelationIndexView();  // a populated level lacks the index
    }
    view.levels_.push_back(RelationIndexView::Level{index, &level->minus_});
    if (index != nullptr && view.attrs_ == nullptr) {
      view.attrs_ = &index->attrs();
    }
  }
  if (view.attrs_ == nullptr) return RelationIndexView();  // undeclared
  return view;
}

std::vector<std::vector<int>> Relation::DeclaredIndexes() const {
  std::vector<std::vector<int>> out;
  out.reserve(indexes_.size());
  for (const auto& index : indexes_) out.push_back(index->attrs());
  return out;
}

std::size_t Relation::overlay_depth() const {
  std::size_t depth = 0;
  for (const Relation* r = base_.get(); r != nullptr; r = r->base_.get()) {
    ++depth;
  }
  return depth;
}

std::size_t Relation::overlay_weight() const {
  std::size_t weight = 0;
  for (const Relation* r = this; r->base_ != nullptr; r = r->base_.get()) {
    weight += r->delta_weight();
  }
  return weight;
}

std::size_t Relation::flat_size() const {
  const Relation* r = this;
  while (r->base_ != nullptr) r = r->base_.get();
  return r->tuples_.size();
}

void Relation::CollapseOverlay() {
  if (base_ == nullptr) return;
  std::unordered_set<Tuple, TupleHasher> flat;
  flat.reserve(size());
  for (const Tuple& t : *this) flat.insert(t);
  tuples_ = std::move(flat);
  minus_.clear();
  base_.reset();
  for (const auto& index : indexes_) index->Rebuild(tuples_);
  ++CowStats::overlay_collapses;
}

bool Relation::MergeOverlayLevel() {
  if (base_ == nullptr || base_->base_ == nullptr) return false;
  const Relation& b = *base_;
  // Combined level over b's base:  plus = (b.plus ∖ minus) ∪ plus,
  // minus' = b.minus ∪ (minus ∖ b.plus).  b itself is only read — it may
  // still be pinned by outstanding snapshots.
  std::unordered_set<Tuple, TupleHasher> plus;
  plus.reserve(b.tuples_.size() + tuples_.size());
  for (const Tuple& t : b.tuples_) {
    if (minus_.count(t) == 0) plus.insert(t);
  }
  for (const Tuple& t : tuples_) plus.insert(t);
  std::unordered_set<Tuple, TupleHasher> minus = b.minus_;
  for (const Tuple& t : minus_) {
    if (b.tuples_.count(t) == 0) minus.insert(t);
  }
  std::shared_ptr<const Relation> next = b.base_;
  tuples_ = std::move(plus);
  minus_ = std::move(minus);
  base_ = std::move(next);  // drops the reference to b last
  for (const auto& index : indexes_) index->Rebuild(tuples_);
  ++CowStats::overlay_merges;
  return true;
}

void Relation::CompactOverlay() {
  // Geometric merging: absorb the base level while this level is at
  // least as heavy — the binary-counter argument bounds total merge work
  // at O(log) per changed tuple and keeps chain depth logarithmic in the
  // delta volume since the last collapse.
  while (base_ != nullptr && base_->base_ != nullptr &&
         delta_weight() >= base_->delta_weight()) {
    MergeOverlayLevel();
  }
  if (base_ == nullptr) return;
  // Large-delta case: once the accumulated overlay rivals the flat base,
  // a collapse costs O(|R|) against ≥ |R|/2 delta work already paid —
  // amortized constant — and restores flat-state read speed. The depth
  // bound is a backstop for non-geometric chains (e.g. serial engines
  // that never commit through the manager).
  constexpr std::size_t kCollapseMinWeight = 64;
  constexpr std::size_t kMaxOverlayDepth = 40;
  const std::size_t threshold =
      std::max<std::size_t>(kCollapseMinWeight, flat_size() / 2);
  if (overlay_weight() >= threshold || overlay_depth() > kMaxOverlayDepth) {
    CollapseOverlay();
  }
}

void Relation::ConstIterator::Settle() {
  while (level_ != nullptr) {
    if (it_ == level_->tuples_.end()) {
      level_ = level_->base_.get();
      if (level_ != nullptr) it_ = level_->tuples_.begin();
      continue;
    }
    if (level_ == top_ || !ShadowedAboveCurrent()) return;
    ++it_;
  }
}

bool Relation::ConstIterator::ShadowedAboveCurrent() const {
  for (const Relation* r = top_; r != level_; r = r->base_.get()) {
    if (!r->minus_.empty() && r->minus_.count(*it_) > 0) return true;
  }
  return false;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out;
  out.reserve(size());
  for (const Tuple& t : *this) out.push_back(t);
  std::sort(out.begin(), out.end(), Tuple::Less);
  return out;
}

bool Relation::SameTuples(const Relation& other) const {
  if (size() != other.size()) return false;
  for (const Tuple& t : *this) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

std::string Relation::ToString(std::size_t max_tuples) const {
  std::vector<std::string> parts;
  const std::vector<Tuple> sorted = SortedTuples();
  for (std::size_t i = 0; i < sorted.size() && i < max_tuples; ++i) {
    parts.push_back(sorted[i].ToString());
  }
  std::string body = Join(parts, ", ");
  if (sorted.size() > max_tuples) {
    body += StrCat(", ... (", sorted.size() - max_tuples, " more)");
  }
  return StrCat(schema_ ? name() : std::string("?"), "{", body, "}");
}

}  // namespace txmod
