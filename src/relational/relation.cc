#include "src/relational/relation.h"

#include <algorithm>

#include "src/common/str_util.h"

namespace txmod {

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end(), Tuple::Less);
  return out;
}

bool Relation::SameTuples(const Relation& other) const {
  if (size() != other.size()) return false;
  for (const Tuple& t : tuples_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

std::string Relation::ToString(std::size_t max_tuples) const {
  std::vector<std::string> parts;
  const std::vector<Tuple> sorted = SortedTuples();
  for (std::size_t i = 0; i < sorted.size() && i < max_tuples; ++i) {
    parts.push_back(sorted[i].ToString());
  }
  std::string body = Join(parts, ", ");
  if (sorted.size() > max_tuples) {
    body += StrCat(", ... (", sorted.size() - max_tuples, " more)");
  }
  return StrCat(schema_ ? name() : std::string("?"), "{", body, "}");
}

}  // namespace txmod
