#ifndef TXMOD_RELATIONAL_RELATION_H_
#define TXMOD_RELATIONAL_RELATION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/relational/schema.h"
#include "src/relational/tuple.h"

namespace txmod {

/// A persistent equi-key lookup index on one attribute list of a Relation:
/// EquiKeyHash(tuple, attrs) -> tuple node. Buckets are *candidate* sets —
/// the hash is predicate-equality consistent (Value::KeyHash), and the
/// evaluator re-verifies its join predicate on every candidate, so hash
/// collisions cost time, never correctness.
///
/// Indexes are declared once (Relation::IndexOn, typically at rule
/// definition time by the integrity subsystem) and then maintained
/// incrementally by Relation::Insert/Erase/Clear. That is what lets the
/// compiled differential checks probe the same base relation transaction
/// after transaction without rebuilding a hash table per evaluation.
class RelationIndex {
 public:
  using Map = std::unordered_multimap<std::size_t, const Tuple*>;
  using Iterator = Map::const_iterator;

  explicit RelationIndex(std::vector<int> attrs) : attrs_(std::move(attrs)) {}

  const std::vector<int>& attrs() const { return attrs_; }
  std::size_t size() const { return map_.size(); }

  /// Candidates whose key hashes to `key_hash` (computed by the caller via
  /// EquiKeyHash over the *probe* side's attribute list).
  std::pair<Iterator, Iterator> Probe(std::size_t key_hash) const {
    return map_.equal_range(key_hash);
  }

 private:
  friend class Relation;

  void Add(const Tuple* t) { map_.emplace(EquiKeyHash(*t, attrs_), t); }
  void Remove(const Tuple* t);
  void Rebuild(const std::unordered_set<Tuple, TupleHasher>& tuples);

  std::vector<int> attrs_;
  Map map_;
};

/// A relation state R: a *set* of tuples of dom(R) (Definition 2.1).
///
/// PRISMA/DB was a main-memory system; a Relation is simply an in-memory
/// hash set keyed by tuple identity, which gives O(1) membership for the
/// set operations (difference, intersection) that integrity checking leans
/// on. Iteration order is unspecified; use SortedTuples() for deterministic
/// output.
///
/// Index semantics: declared indexes (IndexOn) hold pointers into the
/// tuple set, so *copies drop them* — a copy has no indexes until IndexOn
/// is called on it again (the IntegritySubsystem re-declares on every
/// Recompile; FindIndex never builds). Moves keep indexes: unordered_set
/// nodes keep their addresses across a move. Mutation through
/// Insert/Erase/Clear keeps every declared index coherent. Not
/// thread-safe: one writer / no concurrent readers, like every other
/// mutation of this class.
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::shared_ptr<const RelationSchema> schema)
      : schema_(std::move(schema)) {}

  Relation(const Relation& other)
      : schema_(other.schema_), tuples_(other.tuples_) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      schema_ = other.schema_;
      tuples_ = other.tuples_;
      indexes_.clear();
    }
    return *this;
  }
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const RelationSchema& schema() const { return *schema_; }
  std::shared_ptr<const RelationSchema> schema_ptr() const { return schema_; }
  const std::string& name() const { return schema_->name(); }
  std::size_t arity() const { return schema_->arity(); }

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }

  /// Inserts `t`; returns true when the tuple was not present before.
  /// The tuple must already be schema-checked / coerced by the caller.
  bool Insert(Tuple t);

  /// Removes `t`; returns true when the tuple was present.
  bool Erase(const Tuple& t);

  void Clear();

  /// Declares (and immediately builds) a persistent equi-key index on
  /// `attrs`; returns the existing one when already declared. Returns
  /// nullptr when `attrs` is empty or out of range for the schema.
  const RelationIndex* IndexOn(std::vector<int> attrs);

  /// The declared index on exactly `attrs`, or nullptr. Never builds one:
  /// ad-hoc queries must not leave permanent index maintenance costs
  /// behind, so only explicitly declared indexes are ever used.
  const RelationIndex* FindIndex(const std::vector<int>& attrs) const;

  std::size_t index_count() const { return indexes_.size(); }

  /// Attribute lists of every declared index, in declaration order. This
  /// is what lets a copy-on-write clone (Database::FindMutable) re-declare
  /// the indexes that the plain copy constructor drops.
  std::vector<std::vector<int>> DeclaredIndexes() const;

  using ConstIterator = std::unordered_set<Tuple, TupleHasher>::const_iterator;
  ConstIterator begin() const { return tuples_.begin(); }
  ConstIterator end() const { return tuples_.end(); }

  /// Tuples in lexicographic order (deterministic; for printing and tests).
  std::vector<Tuple> SortedTuples() const;

  /// Set equality (schema name is not part of equality; contents are).
  bool SameTuples(const Relation& other) const;

  /// Renders as name{(..),(..)} in sorted order; long relations elided.
  std::string ToString(std::size_t max_tuples = 16) const;

 private:
  std::shared_ptr<const RelationSchema> schema_;
  std::unordered_set<Tuple, TupleHasher> tuples_;
  std::vector<std::unique_ptr<RelationIndex>> indexes_;
};

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_RELATION_H_
