#ifndef TXMOD_RELATIONAL_RELATION_H_
#define TXMOD_RELATIONAL_RELATION_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/relational/schema.h"
#include "src/relational/tuple.h"

namespace txmod {

/// A relation state R: a *set* of tuples of dom(R) (Definition 2.1).
///
/// PRISMA/DB was a main-memory system; a Relation is simply an in-memory
/// hash set keyed by tuple identity, which gives O(1) membership for the
/// set operations (difference, intersection) that integrity checking leans
/// on. Iteration order is unspecified; use SortedTuples() for deterministic
/// output.
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::shared_ptr<const RelationSchema> schema)
      : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return *schema_; }
  std::shared_ptr<const RelationSchema> schema_ptr() const { return schema_; }
  const std::string& name() const { return schema_->name(); }
  std::size_t arity() const { return schema_->arity(); }

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }

  /// Inserts `t`; returns true when the tuple was not present before.
  /// The tuple must already be schema-checked / coerced by the caller.
  bool Insert(Tuple t) { return tuples_.insert(std::move(t)).second; }

  /// Removes `t`; returns true when the tuple was present.
  bool Erase(const Tuple& t) { return tuples_.erase(t) > 0; }

  void Clear() { tuples_.clear(); }

  using ConstIterator = std::unordered_set<Tuple, TupleHasher>::const_iterator;
  ConstIterator begin() const { return tuples_.begin(); }
  ConstIterator end() const { return tuples_.end(); }

  /// Tuples in lexicographic order (deterministic; for printing and tests).
  std::vector<Tuple> SortedTuples() const;

  /// Set equality (schema name is not part of equality; contents are).
  bool SameTuples(const Relation& other) const;

  /// Renders as name{(..),(..)} in sorted order; long relations elided.
  std::string ToString(std::size_t max_tuples = 16) const;

 private:
  std::shared_ptr<const RelationSchema> schema_;
  std::unordered_set<Tuple, TupleHasher> tuples_;
};

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_RELATION_H_
