#ifndef TXMOD_RELATIONAL_RELATION_H_
#define TXMOD_RELATIONAL_RELATION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/relational/schema.h"
#include "src/relational/tuple.h"

namespace txmod {

class Relation;

/// Process-wide instrumentation of the copy-on-write / overlay machinery
/// (monotonic atomic counters; Reset() for tests and benchmarks). These
/// exist so tests can *prove* cost claims — "checkpointing never copied a
/// relation", "a session's first write did not scan the base" — instead of
/// timing them.
struct CowStats {
  /// O(|R|) relation clones performed by Database::FindMutable when
  /// overlay execution is disabled (or a caller copies explicitly through
  /// the clone path), and the tuples those clones copied.
  static std::atomic<uint64_t> relation_clones;
  static std::atomic<uint64_t> cloned_tuples;
  /// O(1) overlay layerings handed out by Database::FindMutable.
  static std::atomic<uint64_t> overlays_created;
  /// Overlay maintenance: level merges (amortized-geometric) and
  /// collapses to a flat state (the large-delta case).
  static std::atomic<uint64_t> overlay_merges;
  static std::atomic<uint64_t> overlay_collapses;

  static void Reset();
};

/// A persistent equi-key lookup index on one attribute list of a Relation:
/// EquiKeyHash(tuple, attrs) -> tuple node. Buckets are *candidate* sets —
/// the hash is predicate-equality consistent (Value::KeyHash), and the
/// evaluator re-verifies its join predicate on every candidate, so hash
/// collisions cost time, never correctness.
///
/// Indexes are declared once (Relation::IndexOn, typically at rule
/// definition time by the integrity subsystem) and then maintained
/// incrementally by Relation::Insert/Erase/Clear. That is what lets the
/// compiled differential checks probe the same base relation transaction
/// after transaction without rebuilding a hash table per evaluation.
///
/// An index covers exactly one level of a relation state: a flat state's
/// whole tuple set, or one overlay level's local inserts. Probing an
/// overlay chain goes through RelationIndexView, which composes the
/// per-level indexes and filters deleted tuples.
class RelationIndex {
 public:
  using Map = std::unordered_multimap<std::size_t, const Tuple*>;
  using Iterator = Map::const_iterator;

  explicit RelationIndex(std::vector<int> attrs) : attrs_(std::move(attrs)) {}

  const std::vector<int>& attrs() const { return attrs_; }
  std::size_t size() const { return map_.size(); }

  /// Candidates whose key hashes to `key_hash` (computed by the caller via
  /// EquiKeyHash over the *probe* side's attribute list).
  std::pair<Iterator, Iterator> Probe(std::size_t key_hash) const {
    return map_.equal_range(key_hash);
  }

 private:
  friend class Relation;

  void Add(const Tuple* t) { map_.emplace(EquiKeyHash(*t, attrs_), t); }
  void Remove(const Tuple* t);
  void Rebuild(const std::unordered_set<Tuple, TupleHasher>& tuples);

  std::vector<int> attrs_;
  Map map_;
};

/// An overlay-aware probe view over one declared index attribute list of a
/// relation state: the composition of the per-level RelationIndexes of the
/// state's overlay chain. Probing yields every *visible* candidate —
/// inserts of outer levels first, then base candidates that no outer
/// level's deleted-set shadows — so the evaluator's index paths see
/// base ∪ plus ∖ minus without materializing anything.
///
/// Obtained from Relation::FindIndexView. A default-constructed (or
/// failed-lookup) view is !valid(); callers fall back to their scan/build
/// path exactly as they do for an undeclared index. The view borrows the
/// relation's levels: it is valid only while the relation (and the
/// snapshot chain it layers over) is alive and unmodified — the same
/// single-evaluation lifetime every cursor already assumes.
class RelationIndexView {
 public:
  RelationIndexView() = default;

  bool valid() const { return attrs_ != nullptr; }
  const std::vector<int>& attrs() const { return *attrs_; }

  /// A pull stream of visible candidates for one probe.
  class Candidates {
   public:
    Candidates() = default;

    /// The next visible candidate, or nullptr when exhausted.
    const Tuple* Next();

   private:
    friend class RelationIndexView;

    const RelationIndexView* view_ = nullptr;
    std::size_t hash_ = 0;
    std::size_t level_ = 0;
    RelationIndex::Iterator it_{};
    RelationIndex::Iterator end_{};
  };

  Candidates Probe(std::size_t key_hash) const;

 private:
  friend class Relation;

  struct Level {
    const RelationIndex* index;  // null only when the level has no tuples
    const std::unordered_set<Tuple, TupleHasher>* minus;
  };

  /// True when a level *outside* `level` (index < level; outermost first)
  /// deleted `t`.
  bool Shadowed(std::size_t level, const Tuple& t) const;

  std::vector<Level> levels_;  // outermost (most recent writes) first
  const std::vector<int>* attrs_ = nullptr;
};

/// A relation state R: a *set* of tuples of dom(R) (Definition 2.1).
///
/// PRISMA/DB was a main-memory system; a Relation is simply an in-memory
/// hash set keyed by tuple identity, which gives O(1) membership for the
/// set operations (difference, intersection) that integrity checking leans
/// on. Iteration order is unspecified; use SortedTuples() for deterministic
/// output.
///
/// Overlay states: a Relation may layer local inserts (`tuples_`, the plus
/// set) and deletes (`minus_`) over an immutable shared base state
/// (MakeOverlay) — the visible contents are base ∪ plus ∖ minus, and every
/// read (Contains, size, iteration, index views) sees exactly that without
/// materializing. This is what makes a transaction session's first write
/// to a relation O(1) instead of an O(|R|) copy-on-write clone: mutation
/// cost is O(|delta|), the transaction-modification bound the paper's
/// integrity checking is built around. Invariants maintained by
/// Insert/Erase (and restored by level merges): minus ⊆ visible(base), and
/// plus is disjoint from visible(base) ∖ minus. Overlay levels are
/// immutable once shared (the Database ownership discipline); only the
/// outermost level of an exclusively-owned state is ever mutated, so
/// concurrent readers of shared inner levels are safe.
///
/// Index semantics: declared indexes (IndexOn) hold pointers into the
/// level-local tuple set, so *copies drop them* — a copy has no indexes
/// until IndexOn is called on it again (the IntegritySubsystem re-declares
/// on every Recompile; FindIndex never builds). Moves keep indexes:
/// unordered_set nodes keep their addresses across a move. An overlay
/// mirrors its base's declared attribute lists as (initially empty)
/// local indexes at creation, so FindIndexView can compose the chain.
/// Mutation through Insert/Erase/Clear keeps every declared index
/// coherent. Not thread-safe: one writer / no concurrent readers, like
/// every other mutation of this class.
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::shared_ptr<const RelationSchema> schema)
      : schema_(std::move(schema)) {}

  Relation(const Relation& other)
      : schema_(other.schema_),
        tuples_(other.tuples_),
        minus_(other.minus_),
        base_(other.base_) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      schema_ = other.schema_;
      tuples_ = other.tuples_;
      minus_ = other.minus_;
      base_ = other.base_;
      indexes_.clear();
    }
    return *this;
  }
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// An O(#declared indexes) overlay state over `base`: initially equal to
  /// *base, mutations stay local (plus/minus sets), `base` is never
  /// touched. The caller promises `base` is immutable for the overlay's
  /// lifetime (the Database ownership discipline supplies exactly that).
  static Relation MakeOverlay(std::shared_ptr<const Relation> base);

  const RelationSchema& schema() const { return *schema_; }
  std::shared_ptr<const RelationSchema> schema_ptr() const { return schema_; }
  const std::string& name() const { return schema_->name(); }
  std::size_t arity() const { return schema_->arity(); }

  std::size_t size() const {
    // Invariants make the arithmetic exact: every minus entry shadows a
    // distinct visible base tuple, every plus entry is otherwise unseen.
    if (base_ == nullptr) return tuples_.size();
    return base_->size() + tuples_.size() - minus_.size();
  }
  bool empty() const {
    return base_ == nullptr ? tuples_.empty() : size() == 0;
  }

  bool Contains(const Tuple& t) const {
    if (tuples_.count(t) > 0) return true;
    return base_ != nullptr && minus_.count(t) == 0 && base_->Contains(t);
  }

  /// The stored node equal to `t`, or nullptr when not visible. The
  /// returned pointer is stable while the relation (and its overlay
  /// chain) lives and is not mutated — unordered_set nodes keep their
  /// addresses even across container moves, which is what lets the
  /// transaction manager key its validation index by tuple node.
  const Tuple* FindTuple(const Tuple& t) const {
    auto it = tuples_.find(t);
    if (it != tuples_.end()) return &*it;
    if (base_ != nullptr && minus_.count(t) == 0) return base_->FindTuple(t);
    return nullptr;
  }

  /// Inserts `t`; returns true when the tuple was not visible before.
  /// The tuple must already be schema-checked / coerced by the caller.
  bool Insert(Tuple t);

  /// Removes `t` from the visible contents; returns true when present.
  bool Erase(const Tuple& t);

  void Clear();

  /// Declares (and immediately builds) a persistent equi-key index on
  /// `attrs`; returns the existing one when already declared. Returns
  /// nullptr when `attrs` is empty or out of range for the schema. On an
  /// overlay state the chain is collapsed flat first (rule definition is
  /// rare and quiesced; an index declared only over local inserts would
  /// silently miss base tuples).
  const RelationIndex* IndexOn(std::vector<int> attrs);

  /// The declared index on exactly `attrs`, or nullptr. Never builds one:
  /// ad-hoc queries must not leave permanent index maintenance costs
  /// behind, so only explicitly declared indexes are ever used. On an
  /// overlay state this is always nullptr — a raw per-level index cannot
  /// answer membership over the chain; use FindIndexView.
  const RelationIndex* FindIndex(const std::vector<int>& attrs) const;

  /// The overlay-aware probe view on `attrs`: valid when every level that
  /// holds tuples declares the index (overlays mirror declarations, so
  /// chains over an indexed base qualify). For flat states this is
  /// equivalent to FindIndex. An invalid view means "no usable index" —
  /// callers fall back exactly as for FindIndex == nullptr.
  RelationIndexView FindIndexView(const std::vector<int>& attrs) const;

  std::size_t index_count() const { return indexes_.size(); }

  /// Attribute lists of every declared index, in declaration order. This
  /// is what lets a copy-on-write clone or overlay (Database::FindMutable)
  /// re-declare the indexes that the plain copy constructor drops.
  std::vector<std::vector<int>> DeclaredIndexes() const;

  // -------------------------------------------------------------------
  // Overlay introspection and maintenance. Mutators may only be called
  // on an exclusively-owned state (they rewrite the outermost level and
  // re-point its base; inner levels are read, never written).
  // -------------------------------------------------------------------

  bool is_overlay() const { return base_ != nullptr; }

  /// Number of overlay levels above the flat base (0 for a flat state).
  std::size_t overlay_depth() const;

  /// This level's local delta size: |plus| + |minus|.
  std::size_t delta_weight() const { return tuples_.size() + minus_.size(); }

  /// Cumulative delta weight across every overlay level of the chain.
  std::size_t overlay_weight() const;

  /// Tuple count of the innermost flat level (== size() when flat).
  std::size_t flat_size() const;

  /// Flattens the chain into a single owned level (large-delta commit
  /// case). Declared indexes are rebuilt over the flat set. No-op when
  /// already flat.
  void CollapseOverlay();

  /// Merges this level with its immediate base *level* (not the flat
  /// base): O(delta weights of the two levels), the base level itself is
  /// only read. Returns false when there is no overlay base level.
  bool MergeOverlayLevel();

  /// Post-commit compaction policy: geometrically merge overlay levels
  /// (amortized O(log) merges per changed tuple), then collapse flat once
  /// the cumulative delta reaches a fraction of the flat base — the
  /// small-delta/large-delta split of the commit path.
  void CompactOverlay();

  /// Forward iteration over the visible contents: each level's local
  /// inserts, outermost level first, skipping tuples deleted by an outer
  /// level. O(overlay depth) per step in the worst case; empty minus sets
  /// (the insert-only common case) cost one branch per level.
  class ConstIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Tuple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Tuple*;
    using reference = const Tuple&;

    ConstIterator() = default;

    const Tuple& operator*() const { return *it_; }
    const Tuple* operator->() const { return &*it_; }

    ConstIterator& operator++() {
      ++it_;
      Settle();
      return *this;
    }

    bool operator==(const ConstIterator& other) const {
      return level_ == other.level_ &&
             (level_ == nullptr || it_ == other.it_);
    }
    bool operator!=(const ConstIterator& other) const {
      return !(*this == other);
    }

   private:
    friend class Relation;

    ConstIterator(const Relation* top, const Relation* level,
                  std::unordered_set<Tuple, TupleHasher>::const_iterator it)
        : top_(top), level_(level), it_(it) {
      Settle();
    }

    void Settle();
    bool ShadowedAboveCurrent() const;

    const Relation* top_ = nullptr;
    const Relation* level_ = nullptr;  // null == end
    std::unordered_set<Tuple, TupleHasher>::const_iterator it_{};
  };

  ConstIterator begin() const {
    return ConstIterator(this, this, tuples_.begin());
  }
  ConstIterator end() const { return ConstIterator(); }

  /// Tuples in lexicographic order (deterministic; for printing and tests).
  std::vector<Tuple> SortedTuples() const;

  /// Set equality (schema name is not part of equality; contents are).
  bool SameTuples(const Relation& other) const;

  /// Renders as name{(..),(..)} in sorted order; long relations elided.
  std::string ToString(std::size_t max_tuples = 16) const;

 private:
  /// This level's own declared index on `attrs` (ignores the chain).
  const RelationIndex* FindLocalIndex(const std::vector<int>& attrs) const;

  std::shared_ptr<const RelationSchema> schema_;
  // The level-local tuple set: the whole contents of a flat state, the
  // plus (insert) set of an overlay level.
  std::unordered_set<Tuple, TupleHasher> tuples_;
  // Overlay state. minus_ holds base tuples this level deleted; base_ is
  // the immutable shared state underneath (null == flat).
  std::unordered_set<Tuple, TupleHasher> minus_;
  std::shared_ptr<const Relation> base_;
  std::vector<std::unique_ptr<RelationIndex>> indexes_;
};

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_RELATION_H_
