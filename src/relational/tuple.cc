#include "src/relational/tuple.h"

#include "src/common/hash.h"
#include "src/common/str_util.h"

namespace txmod {

Tuple Tuple::Concat(const Tuple& a, const Tuple& b) {
  std::vector<Value> values;
  values.reserve(a.arity() + b.arity());
  values.insert(values.end(), a.values().begin(), a.values().end());
  values.insert(values.end(), b.values().begin(), b.values().end());
  return Tuple(std::move(values));
}

bool Tuple::Less(const Tuple& a, const Tuple& b) {
  const std::size_t n = std::min(a.arity(), b.arity());
  for (std::size_t i = 0; i < n; ++i) {
    if (Value::Less(a.at(i), b.at(i))) return true;
    if (Value::Less(b.at(i), a.at(i))) return false;
  }
  return a.arity() < b.arity();
}

std::size_t Tuple::Hash() const {
  std::size_t seed = values_.size();
  for (const Value& v : values_) {
    HashCombine(&seed, v.Hash());
  }
  return seed;
}

std::size_t EquiKeyHash(const Tuple& t, const std::vector<int>& attrs) {
  std::size_t seed = attrs.size();
  for (const int a : attrs) {
    HashCombine(&seed, t.at(static_cast<std::size_t>(a)).KeyHash());
  }
  return seed;
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return StrCat("(", Join(parts, ", "), ")");
}

}  // namespace txmod
