#ifndef TXMOD_RELATIONAL_TUPLE_H_
#define TXMOD_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/relational/value.h"

namespace txmod {

/// An element of dom(R) = dom(A1) x ... x dom(An) (Definition 2.1): a fixed
/// arity sequence of values. Tuples are plain values; identity follows
/// Value::operator== (type-exact), which defines set membership in Relation.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  std::size_t arity() const { return values_.size(); }
  const Value& at(std::size_t i) const { return values_[i]; }
  Value& at(std::size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation of two tuples (used by products and joins).
  static Tuple Concat(const Tuple& a, const Tuple& b);

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// Lexicographic order via Value::Less; deterministic output only.
  static bool Less(const Tuple& a, const Tuple& b);

  std::size_t Hash() const;

  /// Renders as (v1, v2, ...).
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHasher {
  std::size_t operator()(const Tuple& t) const { return t.Hash(); }
};

/// Hash of the sub-tuple `(t[attrs[0]], t[attrs[1]], ...)` built from
/// Value::KeyHash, i.e. consistent with predicate equality rather than
/// identity. Join hash tables and relation equi-key indexes key on this
/// (with the equality predicate re-verified on each candidate), so the
/// only requirement is: predicate-equal keys always collide. No Tuple is
/// allocated — this is the hot path of every equi-join probe.
std::size_t EquiKeyHash(const Tuple& t, const std::vector<int>& attrs);

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_TUPLE_H_
