#ifndef TXMOD_RELATIONAL_SCHEMA_H_
#define TXMOD_RELATIONAL_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/tuple.h"

namespace txmod {

/// Attribute domain. Matches ValueType minus null: every attribute is
/// nullable (the paper's model has no NOT NULL; non-nullity is expressible
/// as a domain constraint in CL).
enum class AttrType {
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

const char* AttrTypeToString(AttrType type);

/// A named, typed attribute Ai with domain dom(Ai) (Definition 2.1).
struct Attribute {
  std::string name;
  AttrType type;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// A relation schema R: relation name plus attribute list (Definition 2.1).
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<Attribute> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  std::size_t arity() const { return attributes_.size(); }

  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }

  /// Index of the attribute called `name`, or kNotFound.
  Result<int> AttributeIndex(const std::string& name) const;

  /// Verifies arity and per-attribute types of `tuple`. kInt values are
  /// accepted in kDouble attributes (widening); null is accepted anywhere.
  Status CheckTuple(const Tuple& tuple) const;

  /// Coerces kInt values in kDouble positions; assumes CheckTuple passed.
  Tuple CoerceTuple(Tuple tuple) const;

  bool operator==(const RelationSchema& other) const {
    return name_ == other.name_ && attributes_ == other.attributes_;
  }

  /// Renders as name(attr1: type1, attr2: type2, ...).
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
};

/// A database schema D = {R1, ..., Rn} (Definition 2.2). Relation names are
/// unique; lookup is by name. Iteration order is the insertion order (kept
/// for deterministic catalogs and printing).
class DatabaseSchema {
 public:
  Status AddRelation(RelationSchema schema);

  /// Schema of relation `name`, or kNotFound.
  Result<const RelationSchema*> Find(const std::string& name) const;

  bool Contains(const std::string& name) const;

  const std::vector<RelationSchema>& relations() const { return relations_; }

 private:
  std::vector<RelationSchema> relations_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace txmod

#endif  // TXMOD_RELATIONAL_SCHEMA_H_
