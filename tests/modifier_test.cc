#include "gtest/gtest.h"
#include "src/algebra/parser.h"
#include "src/core/modifier.h"
#include "src/core/subsystem.h"
#include "src/core/triggering_graph.h"
#include "tests/test_util.h"

namespace txmod::core {
namespace {

using algebra::AlgebraParser;
using algebra::Transaction;
using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::MakeBeerDatabase;

class ModifierTest : public ::testing::Test {
 protected:
  ModifierTest() : db_(MakeBeerDatabase()) {}

  IntegritySubsystem MakeSubsystem(OptimizationLevel level) {
    SubsystemOptions options;
    options.optimization = level;
    return IntegritySubsystem(&db_, options);
  }

  Transaction ParseTxn(const std::string& text) {
    AlgebraParser parser(&db_.schema());
    auto t = parser.ParseTransaction(text);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? *t : Transaction{};
  }

  Database db_;
};

// --- Example 5.1: the paper's worked example -------------------------------

TEST_F(ModifierTest, Example51ModifiedTransactionMatchesPaper) {
  // Basic technique (Section 5): no differential optimization.
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kNone);
  TXMOD_ASSERT_OK(ics.DefineRule(
      "R1",
      "WHEN INS(beer) "
      "IF NOT forall x (x in beer implies x.alcohol >= 0) "
      "THEN abort"));
  TXMOD_ASSERT_OK(ics.DefineRule(
      "R2",
      "WHEN INS(beer), DEL(brewery) "
      "IF NOT forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name)) "
      "THEN temp := project[brewery](beer) - project[name](brewery); "
      "     insert(brewery, project[brewery, null, null](temp))"));

  Transaction txn = ParseTxn(
      "begin "
      "insert(beer, {(\"exportgold\", \"stout\", \"guineken\", 6.0)}); "
      "end");
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));

  // The paper's modified transaction: original insert, then the domain
  // alarm, then the compensating statements for referential integrity.
  EXPECT_EQ(modified.ToString(),
            "begin\n"
            "  insert(beer, {(\"exportgold\", \"stout\", \"guineken\", "
            "6.0)});\n"
            "  alarm(select[not alcohol >= 0](beer), "
            "\"integrity violation: rule R1\");\n"
            "  temp := diff(project[brewery](beer), project[name](brewery));\n"
            "  insert(brewery, project[brewery, null, null](temp));\n"
            "end\n");
}

TEST_F(ModifierTest, Example51ExecutionCompensates) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kNone);
  TXMOD_ASSERT_OK(ics.DefineRule(
      "R1",
      "WHEN INS(beer) IF NOT forall x (x in beer implies x.alcohol >= 0) "
      "THEN abort"));
  TXMOD_ASSERT_OK(ics.DefineRule(
      "R2",
      "WHEN INS(beer), DEL(brewery) "
      "IF NOT forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name)) "
      "THEN temp := project[brewery](beer) - project[name](brewery); "
      "     insert(brewery, project[brewery, null, null](temp))"));

  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics.ExecuteText("insert(beer, {(\"exportgold\", \"stout\", "
                      "\"guineken\", 6.0)});"));
  EXPECT_TRUE(r.committed);
  // The compensating action inserted the unknown brewery with nulls.
  const Relation* brewery = *db_.Find("brewery");
  EXPECT_TRUE(brewery->Contains(
      Tuple({Value::String("guineken"), Value::Null(), Value::Null()})));
}

TEST_F(ModifierTest, Example51NegativeAlcoholAborts) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kNone);
  TXMOD_ASSERT_OK(ics.DefineRule(
      "R1",
      "WHEN INS(beer) IF NOT forall x (x in beer implies x.alcohol >= 0) "
      "THEN abort"));
  Database before = db_.Clone();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics.ExecuteText("insert(beer, {(\"bad\", \"stout\", \"g\", -2.0)});"));
  EXPECT_FALSE(r.committed);
  EXPECT_TRUE(db_.SameState(before));
}

// --- modification mechanics --------------------------------------------------

TEST_F(ModifierTest, TransactionWithoutUpdatesIsUnchanged) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  Transaction txn = ParseTxn("t := project[name](beer); alarm(t);");
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));
  EXPECT_EQ(modified.program.statements.size(),
            txn.program.statements.size());
}

TEST_F(ModifierTest, OnlyTriggeredRulesAreAppended) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "beer_domain", "forall x (x in beer implies x.alcohol >= 0)"));
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "brewery_country",
      "forall x (x in brewery implies x.country != \"\")"));
  Transaction txn =
      ParseTxn("insert(brewery, {(\"a\", \"b\", \"c\")});");
  ModifyStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn, &stats));
  // Only the brewery rule fires: 1 original + 1 alarm.
  EXPECT_EQ(stats.programs_appended, 1);
  ASSERT_EQ(modified.program.statements.size(), 2u);
}

TEST_F(ModifierTest, RecursiveTriggeringReachesFixpoint) {
  // audit-chain: inserting into beer triggers a compensating rule that
  // inserts into brewery, which triggers an aborting check on brewery.
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineRule(
      "fix_refint",
      "WHEN INS(beer) "
      "IF NOT forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name)) "
      "THEN temp := project[brewery](beer) - project[name](brewery); "
      "     insert(brewery, project[brewery, null, null](temp))"));
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "brewery_named", "forall x (x in brewery implies x.name != \"\")"));

  Transaction txn = ParseTxn(
      "insert(beer, {(\"a\", \"ale\", \"somewhere\", 5.0)});");
  ModifyStats stats;
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn, &stats));
  // Round 1 appends fix_refint's program (insert into brewery); round 2
  // appends the brewery_named check, which triggers nothing further.
  EXPECT_EQ(stats.rounds, 2);
  EXPECT_EQ(stats.programs_appended, 2);
  TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult r, ics.Execute(txn));
  EXPECT_TRUE(r.committed);
}

TEST_F(ModifierTest, DynamicPathProducesSameProgramAsStaticPath) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  TXMOD_ASSERT_OK(ics.DefineRule(
      "refint",
      "IF NOT forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name)) THEN abort"));
  Transaction txn = ParseTxn(
      "insert(beer, {(\"a\", \"ale\", \"somewhere\", 5.0)});");
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction via_static, ics.Modify(txn));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Transaction via_dynamic,
      ModifyTransactionDynamic(txn, ics.rules(), db_.schema(),
                               OptimizationLevel::kDifferential));
  EXPECT_EQ(via_static.ToString(), via_dynamic.ToString());
}

// --- triggering graph and cycle handling -----------------------------------

TEST_F(ModifierTest, CyclicRuleSetIsRejectedAtDefinitionTime) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  // Rule A: inserting into beer inserts into brewery; Rule B: inserting
  // into brewery inserts into beer. A -> B -> A.
  TXMOD_ASSERT_OK(ics.DefineRule(
      "A",
      "WHEN INS(beer) IF NOT cnt(brewery) >= 0 "
      "THEN insert(brewery, {(\"x\", \"y\", \"z\")})"));
  Status st = ics.DefineRule(
      "B",
      "WHEN INS(brewery) IF NOT cnt(beer) >= 0 "
      "THEN insert(beer, {(\"x\", \"y\", \"z\", 1.0)})");
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // The rejected rule is not in the catalog; the subsystem still works.
  EXPECT_EQ(ics.rules().size(), 1u);
}

TEST_F(ModifierTest, NonTriggeringActionCutsTheCycle) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineRule(
      "A",
      "WHEN INS(beer) IF NOT cnt(brewery) >= 0 "
      "THEN insert(brewery, {(\"x\", \"y\", \"z\")})"));
  // Declaring B's action non-triggering removes the B -> A edge
  // (Definition 6.2), making the graph acyclic.
  TXMOD_ASSERT_OK(ics.DefineRule(
      "B",
      "WHEN INS(brewery) IF NOT cnt(beer) >= 0 "
      "THEN NONTRIGGERING insert(beer, {(\"x\", \"y\", \"z\", 1.0)})"));
  EXPECT_FALSE(ics.graph().HasCycle());
}

TEST_F(ModifierTest, SelfTriggeringRuleIsRejected) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  Status st = ics.DefineRule(
      "self",
      "WHEN INS(brewery) IF NOT cnt(brewery) >= 0 "
      "THEN insert(brewery, {(\"x\", \"y\", \"z\")})");
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ModifierTest, DepthCapCatchesRuntimeNontermination) {
  // With cycle rejection off, the modifier's depth cap is the safety net.
  SubsystemOptions options;
  options.optimization = OptimizationLevel::kDifferential;
  options.reject_cyclic_rule_sets = false;
  options.modifier.max_depth = 8;
  IntegritySubsystem ics(&db_, options);
  TXMOD_ASSERT_OK(ics.DefineRule(
      "self",
      "WHEN INS(brewery) IF NOT cnt(brewery) >= 0 "
      "THEN insert(brewery, {(\"x\", \"y\", \"z\")})"));
  Transaction txn = ParseTxn("insert(brewery, {(\"a\", \"b\", \"c\")});");
  Result<Transaction> modified = ics.Modify(txn);
  ASSERT_FALSE(modified.ok());
  EXPECT_EQ(modified.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ModifierTest, TriggeringGraphStructure) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineRule(
      "compensate",
      "WHEN INS(beer) "
      "IF NOT forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name)) "
      "THEN insert(brewery, project[brewery, null, null]("
      "project[brewery](beer) - project[name](brewery)))"));
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "brewery_named", "forall x (x in brewery implies x.name != \"\")"));
  const TriggeringGraph& g = ics.graph();
  ASSERT_EQ(g.size(), 2u);
  // compensate (inserts into brewery) -> brewery_named; no other edges.
  EXPECT_EQ(g.adjacency()[0], std::vector<int>{1});
  EXPECT_TRUE(g.adjacency()[1].empty());
  // Dot output mentions both rules.
  const std::string dot = g.ToDot();
  EXPECT_NE(dot.find("compensate"), std::string::npos);
  EXPECT_NE(dot.find("brewery_named"), std::string::npos);
}

// --- immediate vs deferred check placement (design-space ablation) ---------

TEST_F(ModifierTest, ImmediatePlacementInterleavesChecks) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  Transaction txn = ParseTxn(
      "insert(beer, {(\"a\", \"t\", \"b\", 1.0)}); "
      "insert(beer, {(\"b\", \"t\", \"b\", 2.0)});");
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Transaction immediate,
      ModifyTransactionImmediate(txn, ics.compiled()));
  // insert, check, insert, check — not insert, insert, check.
  ASSERT_EQ(immediate.program.statements.size(), 4u);
  EXPECT_EQ(immediate.program.statements[0].kind,
            algebra::StatementKind::kInsert);
  EXPECT_EQ(immediate.program.statements[1].kind,
            algebra::StatementKind::kAlarm);
  EXPECT_EQ(immediate.program.statements[2].kind,
            algebra::StatementKind::kInsert);
  EXPECT_EQ(immediate.program.statements[3].kind,
            algebra::StatementKind::kAlarm);
}

TEST_F(ModifierTest, DeferredCommitsSelfRepairingTxnImmediateAborts) {
  // The semantic difference, demonstrated: delete a referenced brewery,
  // then re-insert it. The post-state satisfies referential integrity —
  // the paper's deferred semantics (intermediate states have no
  // semantics, Definition 2.6) commits; immediate placement aborts at
  // the delete.
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  AddBeer(&db_, "pils", "lager", "heineken", 5.0);
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  Transaction txn = ParseTxn(
      "delete(brewery, select[name = \"heineken\"](brewery)); "
      "insert(brewery, {(\"heineken\", \"amsterdam\", \"nl\")});");

  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction deferred, ics.Modify(txn));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Transaction immediate,
      ModifyTransactionImmediate(txn, ics.compiled()));

  Database db1 = db_.Clone();
  TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult deferred_r,
                             txn::ExecuteTransaction(deferred, &db1));
  EXPECT_TRUE(deferred_r.committed);

  Database db2 = db_.Clone();
  TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult immediate_r,
                             txn::ExecuteTransaction(immediate, &db2));
  EXPECT_FALSE(immediate_r.committed);
  EXPECT_TRUE(db2.SameState(db_));  // atomicity still holds
}

TEST_F(ModifierTest, ImmediateAbortsAtFirstOffendingStatement) {
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  Transaction txn = ParseTxn(
      "insert(beer, {(\"bad\", \"t\", \"b\", -1.0)}); "
      "insert(beer, {(\"later\", \"t\", \"b\", 1.0)});");
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Transaction immediate,
      ModifyTransactionImmediate(txn, ics.compiled()));
  TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult r,
                             txn::ExecuteTransaction(immediate, &db_));
  EXPECT_FALSE(r.committed);
  // Aborted on the check right after the first insert: statement index 1.
  EXPECT_EQ(r.aborting_statement, 1);
  // Deferred placement executes everything first and aborts at the end.
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction deferred, ics.Modify(txn));
  TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult r2,
                             txn::ExecuteTransaction(deferred, &db_));
  EXPECT_FALSE(r2.committed);
  EXPECT_EQ(r2.aborting_statement, 2);
}

// --- differential enforcement end-to-end ------------------------------------

TEST_F(ModifierTest, DifferentialEnforcementDetectsViolations) {
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  AddBeer(&db_, "pils", "lager", "heineken", 5.0);
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  // Valid insert commits.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult ok_r,
      ics.ExecuteText(
          "insert(beer, {(\"more\", \"ale\", \"heineken\", 6.0)});"));
  EXPECT_TRUE(ok_r.committed);
  // Orphan insert aborts.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult bad_r,
      ics.ExecuteText(
          "insert(beer, {(\"bad\", \"ale\", \"nowhere\", 6.0)});"));
  EXPECT_FALSE(bad_r.committed);
  // Deleting a referenced brewery aborts (the dminus part).
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult del_r,
      ics.ExecuteText(
          "delete(brewery, select[name = \"heineken\"](brewery));"));
  EXPECT_FALSE(del_r.committed);
  // Deleting beers first, then the brewery, commits (checked post-state).
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult both_r,
      ics.ExecuteText("delete(beer, beer); "
                      "delete(brewery, select[name = \"heineken\"]("
                      "brewery));"));
  EXPECT_TRUE(both_r.committed);
}

TEST_F(ModifierTest, UpdateStatementsTriggerBothParts) {
  AddBrewery(&db_, "heineken", "amsterdam", "nl");
  AddBeer(&db_, "pils", "lager", "heineken", 5.0);
  IntegritySubsystem ics = MakeSubsystem(OptimizationLevel::kDifferential);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  // Updating the FK to an unknown brewery must abort.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics.ExecuteText(
          "update(beer, name = \"pils\", brewery := \"unknown\");"));
  EXPECT_FALSE(r.committed);
  // Updating alcohol keeps the FK valid and commits.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r2,
      ics.ExecuteText(
          "update(beer, name = \"pils\", alcohol := alcohol + 0.5);"));
  EXPECT_TRUE(r2.committed);
}

}  // namespace
}  // namespace txmod::core
