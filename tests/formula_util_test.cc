#include "gtest/gtest.h"
#include "src/calculus/parser.h"
#include "src/core/formula_util.h"
#include "tests/test_util.h"

namespace txmod::core {
namespace {

using calculus::Formula;

Formula Parse(const std::string& text) {
  auto f = calculus::ParseFormula(text);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return f.ok() ? *f : Formula{};
}

TEST(FormulaUtilTest, FlattenAndPreservesOrder) {
  Formula f = Parse("cnt(a) > 0 and cnt(b) > 0 and cnt(c) > 0");
  std::vector<Formula> conjuncts;
  FlattenAnd(f, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0].terms[0].rel.name, "a");
  EXPECT_EQ(conjuncts[1].terms[0].rel.name, "b");
  EXPECT_EQ(conjuncts[2].terms[0].rel.name, "c");
}

TEST(FormulaUtilTest, BuildAndInvertsFlatten) {
  Formula f = Parse("cnt(a) > 0 and (cnt(b) > 0 and cnt(c) > 0)");
  std::vector<Formula> conjuncts;
  FlattenAnd(f, &conjuncts);
  Formula rebuilt = BuildAnd(conjuncts);
  std::vector<Formula> again;
  FlattenAnd(rebuilt, &again);
  ASSERT_EQ(again.size(), conjuncts.size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_TRUE(again[i].Equals(conjuncts[i]));
  }
}

TEST(FormulaUtilTest, CollectFreeVars) {
  // Inside the quantifier body, x is bound at the top but y.b is free in
  // the inner subformula.
  Formula f = Parse("forall x (x in r implies x.a >= 0)");
  std::set<std::string> free;
  CollectFreeVars(f, &free);
  EXPECT_TRUE(free.empty());  // closed
  CollectFreeVars(f.children[0], &free);
  EXPECT_EQ(free, (std::set<std::string>{"x"}));
}

TEST(FormulaUtilTest, Predicates) {
  EXPECT_TRUE(ContainsQuantifier(Parse("forall x (x in r implies 1 = 1)")));
  EXPECT_FALSE(ContainsQuantifier(Parse("cnt(r) > 0")));
  EXPECT_TRUE(ContainsMembership(Parse("forall x (x in r implies 1 = 1)")));
  EXPECT_FALSE(ContainsMembership(Parse("cnt(r) > 0")));
  EXPECT_TRUE(ContainsAggregate(Parse("cnt(r) > 0")));
  EXPECT_TRUE(ContainsAggregate(Parse("sum(r, a) + 1 > 0")));  // nested
  EXPECT_FALSE(
      ContainsAggregate(Parse("forall x (x in r implies x.a > 0)")));
  EXPECT_TRUE(ContainsAuxRef(
      Parse("forall x (x in old(r) implies x.a > 0)")));
  EXPECT_TRUE(ContainsAuxRef(Parse("cnt(dplus(r)) > 0")));
  EXPECT_FALSE(ContainsAuxRef(Parse("cnt(r) > 0")));
  EXPECT_TRUE(IsScalarFormula(Parse("1 = 1 and 2 > 1")));
  EXPECT_FALSE(IsScalarFormula(Parse("exists x (x in r and 1 = 1)")));
}

TEST(FormulaUtilTest, RenameVarRenamesBindingsAndUses) {
  Formula f = Parse(
      "forall y (y in r implies exists z (z in s and y.a = z.b))");
  Formula renamed = RenameVar(f, "y", "w");
  EXPECT_EQ(renamed.ToString(),
            "forall w (w in r implies exists z (z in s and w.a = z.b))");
  // Renaming an absent variable is a no-op.
  Formula same = RenameVar(f, "q", "w");
  EXPECT_TRUE(same.Equals(f));
}

TEST(FormulaUtilTest, RenameVarTouchesTupleEquality) {
  Formula f = Parse("forall x, y (x in r and y in r implies x = y)");
  Formula renamed = RenameVar(f, "y", "z");
  EXPECT_EQ(renamed.ToString(),
            "forall x (forall z (x in r and z in r implies x = z))");
}

}  // namespace
}  // namespace txmod::core
