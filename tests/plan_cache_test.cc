// Cache-coherence oracle for shape-keyed plan caching: a randomized
// key/fk workload executed with the shaped plan cache enabled must be
// *indistinguishable* — transaction outcomes, final database states, and
// per-operator EvalStats (minus the cache counters themselves) — from a
// fresh-compile-every-statement execution, through both the serial and
// the parallel engine. Also pinned here: LRU eviction under a tiny
// capacity stays coherent, defining/dropping a rule invalidates the
// shaped cache, and a newly declared index is picked up by an
// already-cached plan without any recompilation (plans resolve indexes at
// execution time, so index declaration needs no invalidation hook).

#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "bench/workload.h"
#include "src/algebra/parser.h"
#include "src/common/str_util.h"
#include "src/core/subsystem.h"
#include "src/parallel/executor.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

using algebra::EvalStats;
using algebra::Transaction;
using core::IntegritySubsystem;
using core::SubsystemOptions;

void ExpectSameWork(const EvalStats& a, const EvalStats& b,
                    const std::string& trace) {
  SCOPED_TRACE(trace);
  const EvalStats wa = a.WithoutCacheCounters();
  const EvalStats wb = b.WithoutCacheCounters();
  EXPECT_EQ(wa.tuples_scanned, wb.tuples_scanned);
  EXPECT_EQ(wa.tuples_emitted, wb.tuples_emitted);
  EXPECT_EQ(wa.operators, wb.operators);
  EXPECT_EQ(wa.index_probes, wb.index_probes);
}

/// One engine instance under test: its own database copy (so indexes are
/// declared identically), its own subsystem with the given ad-hoc plan
/// capacity.
struct SerialEngine {
  Database db;
  IntegritySubsystem ics;

  SerialEngine(int keys, int fks, std::size_t capacity)
      : db(bench::MakeKeyFkDatabase(keys, fks)),
        ics(&db, [capacity] {
          SubsystemOptions o;
          o.adhoc_plan_capacity = capacity;
          return o;
        }()) {
    bench::AddUnreferencedKeys(&db, 20);
    TXMOD_EXPECT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
    TXMOD_EXPECT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  }
};

/// A deterministic stream of transactions mixing a handful of statement
/// *shapes* with per-step constants, so the cache sees repeated shapes
/// (hits) and the workload hits both commit and abort paths.
std::vector<std::string> MakeWorkload(int steps, int keys, unsigned seed) {
  std::mt19937 rng(seed);
  auto pick = [&](int n) {
    return static_cast<int>(rng() % static_cast<unsigned>(n));
  };
  int next_id = 3'000'000;
  std::vector<std::string> out;
  for (int step = 0; step < steps; ++step) {
    switch (pick(6)) {
      case 0:  // valid fk insert (shape repeats, constants differ)
        out.push_back(StrCat("insert(fk_rel, {(", next_id++, ", \"k",
                             pick(keys), "\", 2.5)});"));
        break;
      case 1:  // orphan fk insert: aborts on refint
        out.push_back(StrCat("insert(fk_rel, {(", next_id++,
                             ", \"orphan", pick(100), "\", 1.0)});"));
        break;
      case 2:  // delete fk tuples by selection
        out.push_back(StrCat("delete(fk_rel, select[ref = \"k", pick(keys),
                             "\"](fk_rel));"));
        break;
      case 3:  // delete a (possibly referenced) key: may abort
        out.push_back(StrCat("delete(key_rel, select[key = \"",
                             pick(3) == 0 ? "x" : "k", pick(keys),
                             "\"](key_rel));"));
        break;
      case 4:  // temp + aggregate-flavored multi-statement transaction
        out.push_back(StrCat(
            "tmp := select[amount > ", pick(8),
            "](fk_rel); delete(fk_rel, tmp); insert(fk_rel, {(", next_id++,
            ", \"k", pick(keys), "\", ", pick(5), ".5)});"));
        break;
      default:  // negative amount: aborts on domain
        out.push_back(StrCat("insert(fk_rel, {(", next_id++, ", \"k",
                             pick(keys), "\", -", 1 + pick(9), ".0)});"));
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Serial engine: cached vs canonical-one-shot vs plain fresh compile.
// ---------------------------------------------------------------------------

TEST(PlanCacheCoherenceTest, SerialCachedMatchesFreshCompile) {
  const int keys = 40, fks = 300;
  SerialEngine cached(keys, fks, algebra::PlanCache::kDefaultShapeCapacity);
  SerialEngine uncached(keys, fks, 0);  // canonical path, nothing retained
  SerialEngine fresh(keys, fks, algebra::PlanCache::kDefaultShapeCapacity);

  algebra::AlgebraParser parser(&cached.db.schema());
  const std::vector<std::string> workload = MakeWorkload(60, keys, 7u);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const std::string trace = StrCat("step ", i, ": ", workload[i]);
    SCOPED_TRACE(trace);
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction txn,
                               parser.ParseTransaction(workload[i]));

    TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult r_cached,
                               cached.ics.Execute(txn));
    TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult r_uncached,
                               uncached.ics.Execute(txn));
    // Reference mode: the same modified program, executed without any
    // plan cache at all (per-statement one-shot compiles of the original
    // trees).
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, fresh.ics.Modify(txn));
    TXMOD_ASSERT_OK_AND_ASSIGN(
        txn::TxnResult r_fresh,
        txn::ExecuteTransaction(modified, &fresh.db, nullptr));

    EXPECT_EQ(r_cached.committed, r_fresh.committed);
    EXPECT_EQ(r_cached.abort_reason, r_fresh.abort_reason);
    EXPECT_EQ(r_cached.aborting_statement, r_fresh.aborting_statement);
    EXPECT_EQ(r_cached.tuples_inserted, r_fresh.tuples_inserted);
    EXPECT_EQ(r_cached.tuples_deleted, r_fresh.tuples_deleted);
    ExpectSameWork(r_cached.stats, r_fresh.stats, "cached vs fresh");

    EXPECT_EQ(r_uncached.committed, r_fresh.committed);
    ExpectSameWork(r_uncached.stats, r_fresh.stats, "capacity-0 vs fresh");

    EXPECT_TRUE(cached.db.SameState(fresh.db));
    EXPECT_TRUE(uncached.db.SameState(fresh.db));
  }

  // The workload repeats shapes, so the cache must actually have hit —
  // otherwise this test compared nothing.
  EXPECT_GT(cached.ics.plan_cache().shape_hits(), 0u);
  EXPECT_GT(cached.ics.plan_cache().shape_size(), 0u);
  EXPECT_EQ(uncached.ics.plan_cache().shape_size(), 0u);
}

// ---------------------------------------------------------------------------
// Eviction: a capacity of 2 under many more live shapes keeps evicting
// and recompiling, and stays coherent with the fresh engine.
// ---------------------------------------------------------------------------

TEST(PlanCacheCoherenceTest, TinyCapacityEvictsAndStaysCoherent) {
  const int keys = 30, fks = 200;
  SerialEngine tiny(keys, fks, 2);
  SerialEngine fresh(keys, fks, algebra::PlanCache::kDefaultShapeCapacity);

  algebra::AlgebraParser parser(&tiny.db.schema());
  const std::vector<std::string> workload = MakeWorkload(60, keys, 11u);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    SCOPED_TRACE(StrCat("step ", i, ": ", workload[i]));
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction txn,
                               parser.ParseTransaction(workload[i]));
    TXMOD_ASSERT_OK_AND_ASSIGN(txn::TxnResult r_tiny, tiny.ics.Execute(txn));
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, fresh.ics.Modify(txn));
    TXMOD_ASSERT_OK_AND_ASSIGN(
        txn::TxnResult r_fresh,
        txn::ExecuteTransaction(modified, &fresh.db, nullptr));
    EXPECT_EQ(r_tiny.committed, r_fresh.committed);
    ExpectSameWork(r_tiny.stats, r_fresh.stats, "tiny-capacity vs fresh");
    EXPECT_TRUE(tiny.db.SameState(fresh.db));
  }
  EXPECT_GT(tiny.ics.plan_cache().shape_evictions(), 0u);
  EXPECT_LE(tiny.ics.plan_cache().shape_size(), 2u);
}

// ---------------------------------------------------------------------------
// Parallel engine: a warm per-executor cache across many transactions vs
// the reference mode (capacity 0: one-shot compiles), every node count,
// threads on and off.
// ---------------------------------------------------------------------------

struct ParallelParam {
  int nodes;
  bool use_threads;
};

class ParallelPlanCacheTest : public ::testing::TestWithParam<ParallelParam> {
};

TEST_P(ParallelPlanCacheTest, WarmCacheMatchesReferenceMode) {
  const int keys = 30, fks = 200;
  Database db = bench::MakeKeyFkDatabase(keys, fks);
  bench::AddUnreferencedKeys(&db, 20);
  IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));

  const std::map<std::string, parallel::FragmentationScheme> schemes = {
      {"fk_rel", parallel::FragmentationScheme{
                     parallel::FragmentationKind::kHash, 1}},
      {"key_rel", parallel::FragmentationScheme{
                      parallel::FragmentationKind::kHash, 0}}};
  TXMOD_ASSERT_OK_AND_ASSIGN(
      parallel::ParallelDatabase pdb_cached,
      parallel::ParallelDatabase::Partition(db, schemes, GetParam().nodes));
  TXMOD_ASSERT_OK_AND_ASSIGN(
      parallel::ParallelDatabase pdb_ref,
      parallel::ParallelDatabase::Partition(db, schemes, GetParam().nodes));

  parallel::ParallelOptions cached_options;
  cached_options.use_threads = GetParam().use_threads;
  parallel::ParallelExecutor exec_cached(&pdb_cached, cached_options);

  parallel::ParallelOptions ref_options;
  ref_options.use_threads = GetParam().use_threads;
  ref_options.plan_cache_capacity = 0;
  parallel::ParallelExecutor exec_ref(&pdb_ref, ref_options);

  algebra::AlgebraParser parser(&db.schema());
  const std::vector<std::string> workload = MakeWorkload(40, keys, 23u);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    SCOPED_TRACE(StrCat("step ", i, ": ", workload[i]));
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction txn,
                               parser.ParseTransaction(workload[i]));
    TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));
    TXMOD_ASSERT_OK_AND_ASSIGN(parallel::ParallelTxnResult r_cached,
                               exec_cached.Execute(modified));
    TXMOD_ASSERT_OK_AND_ASSIGN(parallel::ParallelTxnResult r_ref,
                               exec_ref.Execute(modified));
    EXPECT_EQ(r_cached.committed, r_ref.committed);
    EXPECT_EQ(r_cached.abort_reason, r_ref.abort_reason);
    ExpectSameWork(r_cached.eval_stats, r_ref.eval_stats,
                   "warm parallel vs reference parallel");
    EXPECT_TRUE(pdb_cached.Merge().SameState(pdb_ref.Merge()));
  }

  // Acceptance: the parallel executor no longer compiles per statement
  // execution — repeated shapes across this 40-transaction stream hit.
  EXPECT_GT(exec_cached.plan_cache().shape_hits(), 0u);
  EXPECT_GT(exec_cached.plan_cache().shape_misses(), 0u);
  EXPECT_LT(exec_cached.plan_cache().shape_misses(),
            exec_cached.plan_cache().shape_hits());
  EXPECT_EQ(exec_ref.plan_cache().shape_size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Nodes, ParallelPlanCacheTest,
    ::testing::Values(ParallelParam{1, false}, ParallelParam{2, false},
                      ParallelParam{4, false}, ParallelParam{2, true},
                      ParallelParam{4, true}));

// ---------------------------------------------------------------------------
// Invalidation: rule definition/drop rebuilds the cache (shaped entries
// included); index declaration is picked up by cached plans with no
// recompile.
// ---------------------------------------------------------------------------

TEST(PlanCacheInvalidationTest, DefineAndDropRuleInvalidateShapedEntries) {
  Database db = bench::MakeKeyFkDatabase(10, 50);
  IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint("domain", bench::DomainConstraint()));

  auto run = [&](const std::string& text) {
    auto r = ics.ExecuteText(text);
    TXMOD_EXPECT_OK(r.status());
    return *r;
  };

  const std::string stmt =
      "insert(fk_rel, {(4000001, \"k1\", 2.0)});";
  txn::TxnResult r1 = run(stmt);
  EXPECT_EQ(r1.stats.plan_cache_misses, 1u);
  EXPECT_EQ(r1.stats.plan_cache_hits, 0u);
  txn::TxnResult r2 = run("insert(fk_rel, {(4000002, \"k2\", 3.0)});");
  EXPECT_EQ(r2.stats.plan_cache_hits, 1u);
  EXPECT_EQ(r2.stats.plan_cache_misses, 0u);

  // Defining a rule rebuilds the plan cache: the old shaped entry must be
  // gone (a stale plan could otherwise outlive rule-driven environment
  // changes), so the next execution is a miss again.
  TXMOD_ASSERT_OK(ics.DefineConstraint("refint", bench::RefIntConstraint()));
  EXPECT_EQ(ics.plan_cache().shape_size(), 0u);
  txn::TxnResult r3 = run("insert(fk_rel, {(4000003, \"k3\", 4.0)});");
  EXPECT_EQ(r3.stats.plan_cache_misses, 1u);
  EXPECT_EQ(r3.stats.plan_cache_hits, 0u);

  // And the new rule is enforced on statements matching the cached shape:
  // an orphan insert of the *same shape* as the cached plan must abort.
  auto orphan = ics.ExecuteText(
      "insert(fk_rel, {(4000004, \"nowhere\", 4.0)});");
  TXMOD_ASSERT_OK(orphan.status());
  EXPECT_FALSE(orphan->committed);

  // Dropping invalidates too.
  EXPECT_GT(ics.plan_cache().shape_size(), 0u);
  TXMOD_ASSERT_OK(ics.DropRule("refint"));
  EXPECT_EQ(ics.plan_cache().shape_size(), 0u);
  auto now_fine = ics.ExecuteText(
      "insert(fk_rel, {(4000005, \"nowhere\", 4.0)});");
  TXMOD_ASSERT_OK(now_fine.status());
  EXPECT_TRUE(now_fine->committed);
}

TEST(PlanCacheInvalidationTest, CachedPlanPicksUpNewlyDeclaredIndex) {
  Database db = bench::MakeKeyFkDatabase(500, 10);
  IntegritySubsystem ics(&db);

  // A membership-style check shape whose fast path needs an index on
  // key_rel(key): diff(project[ref](fk_rel), project[key](key_rel)).
  const std::string stmt =
      "viol := diff(project[ref](fk_rel), project[key](key_rel));";
  auto r1 = ics.ExecuteText(stmt);
  TXMOD_ASSERT_OK(r1.status());
  EXPECT_EQ(r1->stats.plan_cache_misses, 1u);
  EXPECT_EQ(r1->stats.index_probes, 0u);  // no index declared yet

  // Declare the index directly (physical-design change, no rule event, so
  // no cache rebuild happens)...
  ASSERT_NE((*db.FindMutable("key_rel"))->IndexOn({0}), nullptr);

  // ...and the *already cached* plan uses it on its next execution: a
  // cache hit (no recompilation), now probing instead of materializing.
  // Index use is resolved at execution time, which is exactly why index
  // declaration needs no invalidation hook.
  auto r2 = ics.ExecuteText(stmt);
  TXMOD_ASSERT_OK(r2.status());
  EXPECT_EQ(r2->stats.plan_cache_hits, 1u);
  EXPECT_EQ(r2->stats.plan_cache_misses, 0u);
  EXPECT_GT(r2->stats.index_probes, 0u);
}

}  // namespace
}  // namespace txmod
