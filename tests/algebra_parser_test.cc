#include "gtest/gtest.h"
#include "src/algebra/parser.h"
#include "src/algebra/schema_infer.h"
#include "tests/test_util.h"

namespace txmod::algebra {
namespace {

using txmod::testing::MakeBeerDatabase;

class AlgebraParserTest : public ::testing::Test {
 protected:
  Database db_ = MakeBeerDatabase();

  Result<RelExprPtr> Parse(const std::string& text) {
    AlgebraParser parser(&db_.schema());
    return parser.ParseExpression(text);
  }
};

TEST_F(AlgebraParserTest, ExpressionPrintingRoundTrips) {
  const std::string texts[] = {
      "beer",
      "old(beer)",
      "dplus(beer)",
      "dminus(brewery)",
      "select[alcohol >= 4 and type != \"water\"](beer)",
      "project[name, alcohol * 2 as dbl, null](beer)",
      "join[l.brewery = r.name](beer, brewery)",
      "semijoin[l.brewery = r.name](beer, brewery)",
      "antijoin[l.name = r.brewery](brewery, beer)",
      "project[brewery](beer) - project[name](brewery)",
      "project[name](brewery) union project[brewery](beer)",
      "project[name](brewery) intersect project[brewery](beer)",
      "product(beer, brewery)",
      "cnt(beer)",
      "sum[alcohol](beer)",
      "avg[alcohol](select[type = \"lager\"](beer))",
      "min[name](brewery)",
      "max[alcohol](beer)",
      "{(1, \"a\"), (2, \"b\")}",
      "{(null, -3, -2.5)}",
  };
  for (const std::string& text : texts) {
    TXMOD_ASSERT_OK_AND_ASSIGN(RelExprPtr e1, Parse(text));
    // print -> parse -> print must be a fixpoint.
    TXMOD_ASSERT_OK_AND_ASSIGN(RelExprPtr e2, Parse(e1->ToString()));
    EXPECT_TRUE(e1->Equals(*e2)) << text << " vs " << e1->ToString();
    EXPECT_EQ(e1->ToString(), e2->ToString());
  }
}

TEST_F(AlgebraParserTest, PositionalReferences) {
  // #i in unary contexts, l.i / r.i in join predicates.
  TXMOD_ASSERT_OK_AND_ASSIGN(RelExprPtr e1, Parse("select[#3 >= 4](beer)"));
  EXPECT_EQ(e1->predicate().children()[0].attr_index(), 3);
  TXMOD_ASSERT_OK_AND_ASSIGN(RelExprPtr e2,
                             Parse("join[l.2 = r.0](beer, brewery)"));
  EXPECT_EQ(e2->predicate().children()[0].attr_index(), 2);
  EXPECT_EQ(e2->predicate().children()[1].side(), 1);
}

TEST_F(AlgebraParserTest, UnambiguousBareNamesResolveAcrossSides) {
  // "brewery" only exists on the left (beer), "city" only on the right.
  TXMOD_ASSERT_OK_AND_ASSIGN(RelExprPtr e,
                             Parse("join[brewery = city](beer, brewery)"));
  EXPECT_EQ(e->predicate().children()[0].side(), 0);
  EXPECT_EQ(e->predicate().children()[1].side(), 1);
}

TEST_F(AlgebraParserTest, ErrorsArePrecise) {
  struct Case {
    const char* text;
    StatusCode code;
  };
  const Case cases[] = {
      {"nonexistent", StatusCode::kNotFound},
      {"select[alcohol >= ](beer)", StatusCode::kInvalidArgument},
      {"select[salinity > 1](beer)", StatusCode::kNotFound},
      {"join[name = name](beer, brewery)", StatusCode::kInvalidArgument},
      {"project[#9](beer)", StatusCode::kInvalidArgument},
      {"beer union brewery", StatusCode::kInvalidArgument},
      {"{(1, 2), (1, 2, 3)}", StatusCode::kInvalidArgument},
      {"old(nowhere)", StatusCode::kNotFound},
      {"sum[name](beer) extra", StatusCode::kInvalidArgument},
  };
  for (const Case& c : cases) {
    Result<RelExprPtr> r = Parse(c.text);
    ASSERT_FALSE(r.ok()) << c.text;
    EXPECT_EQ(r.status().code(), c.code) << c.text << ": "
                                         << r.status().ToString();
  }
}

TEST_F(AlgebraParserTest, ProgramsThreadTempSchemas) {
  AlgebraParser parser(&db_.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Program p,
      parser.ParseProgram("t := project[brewery](beer); "
                          "u := t - project[name](brewery); "
                          "insert(brewery, project[brewery, null, null]("
                          "u));"));
  ASSERT_EQ(p.statements.size(), 3u);
  EXPECT_EQ(p.statements[0].kind, StatementKind::kAssign);
  EXPECT_EQ(p.statements[2].kind, StatementKind::kInsert);
}

TEST_F(AlgebraParserTest, TempNameVisibleOnlyAfterAssignment) {
  AlgebraParser parser(&db_.schema());
  EXPECT_FALSE(
      parser.ParseProgram("insert(brewery, project[c0, null, null](t)); "
                          "t := project[brewery](beer);")
          .ok());
}

TEST_F(AlgebraParserTest, AssignToBaseRelationRejected) {
  AlgebraParser parser(&db_.schema());
  Result<Program> r = parser.ParseProgram("beer := brewery;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("base relation"), std::string::npos);
}

TEST_F(AlgebraParserTest, InsertArityCheckedAtParseTime) {
  AlgebraParser parser(&db_.schema());
  EXPECT_FALSE(
      parser.ParseProgram("insert(brewery, project[name](beer));").ok());
}

TEST_F(AlgebraParserTest, UpdateStatementParsing) {
  AlgebraParser parser(&db_.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Program p,
      parser.ParseProgram("update(beer, name = \"pils\", "
                          "alcohol := alcohol + 1, type := \"bock\");"));
  ASSERT_EQ(p.statements.size(), 1u);
  const Statement& stmt = p.statements[0];
  ASSERT_EQ(stmt.sets.size(), 2u);
  EXPECT_EQ(stmt.sets[0].attr, 3);
  EXPECT_EQ(stmt.sets[1].attr, 1);
  // No assignments is an error.
  EXPECT_FALSE(parser.ParseProgram("update(beer, name = \"x\");").ok());
}

TEST_F(AlgebraParserTest, AlarmAndAbortParsing) {
  AlgebraParser parser(&db_.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Program p,
      parser.ParseProgram("alarm(select[alcohol < 0](beer), \"bad\"); "
                          "abort(\"stop\"); abort;"));
  ASSERT_EQ(p.statements.size(), 3u);
  EXPECT_EQ(p.statements[0].message, "bad");
  EXPECT_EQ(p.statements[1].message, "stop");
  EXPECT_TRUE(p.statements[2].message.empty());
}

TEST_F(AlgebraParserTest, TransactionBracketsOptional) {
  AlgebraParser parser(&db_.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Transaction t1,
      parser.ParseTransaction("begin abort; end"));
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction t2, parser.ParseTransaction("abort;"));
  EXPECT_EQ(t1.program.statements.size(), t2.program.statements.size());
  EXPECT_FALSE(parser.ParseTransaction("begin abort;").ok());  // missing end
  EXPECT_FALSE(parser.ParseTransaction("begin abort; end extra").ok());
}

TEST_F(AlgebraParserTest, StatementPrintingRoundTrips) {
  AlgebraParser parser(&db_.schema());
  const std::string programs[] = {
      "t := project[brewery](beer);\n"
      "insert(brewery, project[brewery, null, null](t));\n",
      "delete(beer, select[alcohol < 0](beer));\n",
      "update(beer, name = \"pils\", alcohol := alcohol + 1);\n",
      "alarm(select[alcohol < 0](beer), \"neg\");\n",
  };
  for (const std::string& text : programs) {
    TXMOD_ASSERT_OK_AND_ASSIGN(Program p1, parser.ParseProgram(text));
    TXMOD_ASSERT_OK_AND_ASSIGN(Program p2,
                               parser.ParseProgram(p1.ToString()));
    EXPECT_EQ(p1.ToString(), p2.ToString()) << text;
  }
}

TEST_F(AlgebraParserTest, SchemaInferenceNamesProjections) {
  AlgebraParser parser(&db_.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      RelExprPtr e,
      parser.ParseExpression("project[name, alcohol * 2 as dbl](beer)"));
  SchemaResolver resolver =
      [this](RelRefKind, const std::string& name) -> Result<RelationSchema> {
    TXMOD_ASSIGN_OR_RETURN(const RelationSchema* s, db_.schema().Find(name));
    return *s;
  };
  TXMOD_ASSERT_OK_AND_ASSIGN(RelationSchema schema,
                             InferSchema(*e, resolver));
  ASSERT_EQ(schema.arity(), 2u);
  EXPECT_EQ(schema.attribute(0).name, "name");
  EXPECT_EQ(schema.attribute(0).type, AttrType::kString);
  EXPECT_EQ(schema.attribute(1).name, "dbl");
  EXPECT_EQ(schema.attribute(1).type, AttrType::kDouble);
}

}  // namespace
}  // namespace txmod::algebra
