// End-to-end scenarios: the example applications' domains, under test.
// (examples/*.cpp print these flows; here their behaviour is asserted.)

#include "gtest/gtest.h"
#include "src/calculus/analyzer.h"
#include "src/calculus/parser.h"
#include "src/core/subsystem.h"
#include "src/rules/trigger_gen.h"
#include "tests/test_util.h"

namespace txmod {
namespace {

namespace core = txmod::core;

// --- bank: state + transition + aggregate constraints -----------------------

class BankTest : public ::testing::Test {
 protected:
  BankTest() {
    TXMOD_EXPECT_OK(db_.CreateRelation(RelationSchema(
        "account", {Attribute{"id", AttrType::kInt},
                    Attribute{"owner", AttrType::kString},
                    Attribute{"balance", AttrType::kDouble}})));
    Relation* rel = *db_.FindMutable("account");
    rel->Insert(Tuple({Value::Int(1), Value::String("ada"),
                       Value::Double(100.0)}));
    rel->Insert(Tuple({Value::Int(2), Value::String("grace"),
                       Value::Double(50.0)}));
    ics_ = std::make_unique<core::IntegritySubsystem>(&db_);
    TXMOD_EXPECT_OK(ics_->DefineConstraint(
        "no_overdraft", "forall a (a in account implies a.balance >= 0)"));
    TXMOD_EXPECT_OK(ics_->DefineRule(
        "conservation",
        "WHEN INS(account), DEL(account) "
        "IF NOT sum(account, balance) = sum(old(account), balance) "
        "THEN abort"));
  }

  Database db_;
  std::unique_ptr<core::IntegritySubsystem> ics_;
};

TEST_F(BankTest, BalancedTransferCommits) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics_->ExecuteText(
          "update(account, id = 1, balance := balance - 40); "
          "update(account, id = 2, balance := balance + 40);"));
  EXPECT_TRUE(r.committed);
  const Relation* account = *db_.Find("account");
  EXPECT_TRUE(account->Contains(
      Tuple({Value::Int(1), Value::String("ada"), Value::Double(60.0)})));
  EXPECT_TRUE(account->Contains(
      Tuple({Value::Int(2), Value::String("grace"), Value::Double(90.0)})));
}

TEST_F(BankTest, OverdraftAbortsBothLegs) {
  Database before = db_.Clone();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics_->ExecuteText(
          "update(account, id = 2, balance := balance - 75); "
          "update(account, id = 1, balance := balance + 75);"));
  EXPECT_FALSE(r.committed);
  EXPECT_NE(r.abort_reason.find("no_overdraft"), std::string::npos);
  EXPECT_TRUE(db_.SameState(before));
}

TEST_F(BankTest, OneSidedCreditViolatesConservation) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics_->ExecuteText(
          "update(account, id = 1, balance := balance + 1000.0);"));
  EXPECT_FALSE(r.committed);
  EXPECT_NE(r.abort_reason.find("conservation"), std::string::npos);
}

TEST_F(BankTest, SwapPreservesTotalAndCommits) {
  // Two updates that swap balances: sum preserved, no overdraft.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics_->ExecuteText("update(account, id = 1, balance := 50.0); "
                        "update(account, id = 2, balance := 100.0);"));
  EXPECT_TRUE(r.committed);
}

// --- inventory: cascading compensation ---------------------------------------

class InventoryTest : public ::testing::Test {
 protected:
  InventoryTest() {
    TXMOD_EXPECT_OK(db_.CreateRelation(RelationSchema(
        "products", {Attribute{"sku", AttrType::kString},
                     Attribute{"label", AttrType::kString},
                     Attribute{"stock", AttrType::kInt}})));
    TXMOD_EXPECT_OK(db_.CreateRelation(RelationSchema(
        "orders", {Attribute{"id", AttrType::kInt},
                   Attribute{"sku", AttrType::kString},
                   Attribute{"qty", AttrType::kInt}})));
    ics_ = std::make_unique<core::IntegritySubsystem>(&db_);
    TXMOD_EXPECT_OK(ics_->DefineRule(
        "order_needs_product",
        "WHEN INS(orders) "
        "IF NOT forall o (o in orders implies exists p (p in products and "
        "o.sku = p.sku)) THEN abort"));
    TXMOD_EXPECT_OK(ics_->DefineRule(
        "cascade_orders",
        "WHEN DEL(products) "
        "IF NOT forall o (o in orders implies exists p (p in products and "
        "o.sku = p.sku)) "
        "THEN NONTRIGGERING "
        "delete(orders, antijoin[l.sku = r.sku](orders, products))"));
    TXMOD_EXPECT_OK(
        ics_->ExecuteText("insert(products, {(\"A1\", \"anvil\", 3), "
                          "(\"B2\", \"bellows\", 5)});")
            .status());
    TXMOD_EXPECT_OK(
        ics_->ExecuteText("insert(orders, {(1, \"A1\", 2), (2, \"B2\", 1), "
                          "(3, \"A1\", 1)});")
            .status());
  }

  Database db_;
  std::unique_ptr<core::IntegritySubsystem> ics_;
};

TEST_F(InventoryTest, DeleteCascadesToOrders) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics_->ExecuteText(
          "delete(products, select[sku = \"A1\"](products));"));
  EXPECT_TRUE(r.committed);
  const Relation* orders = *db_.Find("orders");
  EXPECT_EQ(orders->size(), 1u);  // orders 1 and 3 cascaded away
  EXPECT_TRUE(orders->Contains(
      Tuple({Value::Int(2), Value::String("B2"), Value::Int(1)})));
}

TEST_F(InventoryTest, OrphanOrderAborts) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics_->ExecuteText("insert(orders, {(9, \"Z9\", 1)});"));
  EXPECT_FALSE(r.committed);
}

TEST_F(InventoryTest, CascadeRuleIsAcyclicThanksToNonTriggering) {
  EXPECT_FALSE(ics_->graph().HasCycle());
}

TEST_F(InventoryTest, MixedDeleteAndInsertInOneTransaction) {
  // Discontinue A1 and simultaneously order more B2: cascade handles A1's
  // orders; the new order passes the referential check.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics_->ExecuteText(
          "delete(products, select[sku = \"A1\"](products)); "
          "insert(orders, {(4, \"B2\", 2)});"));
  EXPECT_TRUE(r.committed);
  const Relation* orders = *db_.Find("orders");
  EXPECT_EQ(orders->size(), 2u);  // order 2 + new order 4
}

// --- materialized view maintenance (Section 7 outlook) ----------------------

class ViewMaintenanceTest : public ::testing::Test {
 protected:
  ViewMaintenanceTest() {
    TXMOD_EXPECT_OK(db_.CreateRelation(RelationSchema(
        "sales", {Attribute{"id", AttrType::kInt},
                  Attribute{"region", AttrType::kString},
                  Attribute{"amount", AttrType::kInt}})));
    TXMOD_EXPECT_OK(db_.CreateRelation(RelationSchema(
        "region_totals", {Attribute{"region", AttrType::kString},
                          Attribute{"total", AttrType::kInt}})));
    ics_ = std::make_unique<core::IntegritySubsystem>(&db_);

    auto condition = calculus::ParseFormula(
        "forall s (s in dplus(sales) implies 1 = 0) and "
        "forall t (t in dminus(sales) implies 1 = 0)");
    TXMOD_EXPECT_OK(condition.status());
    auto analyzed = calculus::AnalyzeFormula(*condition, db_.schema());
    TXMOD_EXPECT_OK(analyzed.status());

    algebra::Program refresh;
    refresh.statements.push_back(algebra::Statement::Delete(
        "region_totals", algebra::RelExpr::Base("region_totals")));
    refresh.statements.push_back(algebra::Statement::Insert(
        "region_totals",
        algebra::RelExpr::GroupAggregate({1}, algebra::AggFunc::kSum, 2,
                                         algebra::RelExpr::Base("sales"))));
    refresh.non_triggering = true;

    rules::IntegrityRule rule;
    rule.name = "maintain";
    rule.condition = *std::move(analyzed);
    rule.triggers =
        rules::TriggerSet{rules::Trigger{rules::UpdateType::kIns, "sales"},
                          rules::Trigger{rules::UpdateType::kDel, "sales"}};
    rule.action_kind = rules::ActionKind::kCompensate;
    rule.action = std::move(refresh);
    rule.action_non_triggering = true;
    TXMOD_EXPECT_OK(ics_->DefineRule(std::move(rule)));
  }

  Relation View() { return **db_.Find("region_totals"); }

  Database db_;
  std::unique_ptr<core::IntegritySubsystem> ics_;
};

TEST_F(ViewMaintenanceTest, ViewFollowsInsertsAndDeletes) {
  TXMOD_ASSERT_OK(ics_->ExecuteText(
                          "insert(sales, {(1, \"north\", 10), "
                          "(2, \"north\", 5), (3, \"south\", 7)});")
                      .status());
  Relation v1 = View();
  EXPECT_EQ(v1.size(), 2u);
  EXPECT_TRUE(v1.Contains(Tuple({Value::String("north"), Value::Int(15)})));
  EXPECT_TRUE(v1.Contains(Tuple({Value::String("south"), Value::Int(7)})));

  TXMOD_ASSERT_OK(
      ics_->ExecuteText("delete(sales, select[region = \"north\"](sales));")
          .status());
  Relation v2 = View();
  EXPECT_EQ(v2.size(), 1u);
  EXPECT_TRUE(v2.Contains(Tuple({Value::String("south"), Value::Int(7)})));
}

TEST_F(ViewMaintenanceTest, ReadOnlyTransactionsDoNotRefresh) {
  TXMOD_ASSERT_OK(
      ics_->ExecuteText("insert(sales, {(1, \"north\", 10)});").status());
  // Tamper with the view directly (bypassing the subsystem) to observe
  // whether a refresh runs.
  (*db_.FindMutable("region_totals"))
      ->Insert(Tuple({Value::String("mars"), Value::Int(1)}));
  TXMOD_ASSERT_OK(
      ics_->ExecuteText("t := select[total > 0](region_totals); "
                        "alarm(t - t);")
          .status());
  // No sales update — the maintenance rule was never appended, the tamper
  // marker survives.
  EXPECT_TRUE(View().Contains(
      Tuple({Value::String("mars"), Value::Int(1)})));
}

TEST_F(ViewMaintenanceTest, AbortedTransactionLeavesViewIntact) {
  TXMOD_ASSERT_OK(
      ics_->ExecuteText("insert(sales, {(1, \"north\", 10)});").status());
  Database before = db_.Clone();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      txn::TxnResult r,
      ics_->ExecuteText("insert(sales, {(2, \"south\", 3)}); abort;"));
  EXPECT_FALSE(r.committed);
  EXPECT_TRUE(db_.SameState(before));
}

}  // namespace
}  // namespace txmod
