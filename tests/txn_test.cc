#include "gtest/gtest.h"
#include "src/algebra/parser.h"
#include "src/txn/executor.h"
#include "tests/test_util.h"

namespace txmod::txn {
namespace {

using algebra::AlgebraParser;
using algebra::RelRefKind;
using algebra::Transaction;
using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::MakeBeerDatabase;

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeBeerDatabase();
    AddBeer(&db_, "pils", "lager", "heineken", 5.0);
    AddBrewery(&db_, "heineken", "amsterdam", "nl");
  }

  Result<TxnResult> Run(const std::string& text) {
    AlgebraParser parser(&db_.schema());
    TXMOD_ASSIGN_OR_RETURN(Transaction txn, parser.ParseTransaction(text));
    return ExecuteTransaction(txn, &db_);
  }

  Database db_;
};

TEST_F(TxnTest, CommitAdvancesLogicalTime) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult r,
      Run("begin insert(beer, {(\"new\", \"ale\", \"heineken\", 6.0)}); end"));
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(db_.logical_time(), 1u);
  EXPECT_EQ((*db_.Find("beer"))->size(), 2u);
  EXPECT_EQ(r.tuples_inserted, 1u);
}

TEST_F(TxnTest, InsertCoercesIntsIntoDoubleColumns) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult r,
      Run("insert(beer, {(\"new\", \"ale\", \"heineken\", 6)});"));
  EXPECT_TRUE(r.committed);
  const Relation* beer = *db_.Find("beer");
  EXPECT_TRUE(beer->Contains(
      Tuple({Value::String("new"), Value::String("ale"),
             Value::String("heineken"), Value::Double(6.0)})));
}

TEST_F(TxnTest, DeleteRemovesMatchingTuples) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult r, Run("delete(beer, select[name = \"pils\"](beer));"));
  EXPECT_TRUE(r.committed);
  EXPECT_EQ((*db_.Find("beer"))->size(), 0u);
  EXPECT_EQ(r.tuples_deleted, 1u);
}

TEST_F(TxnTest, UpdateHasDeleteInsertSemantics) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult r,
      Run("update(beer, name = \"pils\", alcohol := alcohol + 1);"));
  EXPECT_TRUE(r.committed);
  const Relation* beer = *db_.Find("beer");
  ASSERT_EQ(beer->size(), 1u);
  EXPECT_DOUBLE_EQ(beer->SortedTuples()[0].at(3).as_double(), 6.0);
  EXPECT_EQ(r.tuples_inserted, 1u);
  EXPECT_EQ(r.tuples_deleted, 1u);
}

TEST_F(TxnTest, AlarmOnNonEmptyAborts) {
  const uint64_t t0 = db_.logical_time();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult r,
      Run("insert(beer, {(\"bad\", \"ale\", \"x\", -1.0)});"
          "alarm(select[alcohol < 0](beer), \"negative alcohol\");"));
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.abort_reason, "negative alcohol");
  EXPECT_EQ(r.aborting_statement, 1);
  // Atomicity: the insert was rolled back, logical time unchanged.
  EXPECT_EQ((*db_.Find("beer"))->size(), 1u);
  EXPECT_EQ(db_.logical_time(), t0);
}

TEST_F(TxnTest, AlarmOnEmptyHasNoEffect) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult r, Run("alarm(select[alcohol < 0](beer));"));
  EXPECT_TRUE(r.committed);
}

TEST_F(TxnTest, AbortStatementRestoresEverything) {
  Database before = db_.Clone();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult r,
      Run("insert(beer, {(\"a\", \"b\", \"c\", 1.0)});"
          "delete(brewery, brewery);"
          "update(beer, alcohol > 0, alcohol := 0.0);"
          "abort(\"never mind\");"));
  EXPECT_FALSE(r.committed);
  EXPECT_TRUE(db_.SameState(before));
}

TEST_F(TxnTest, TemporariesAreTransactionLocal) {
  TXMOD_ASSERT_OK_AND_ASSIGN(
      TxnResult r,
      Run("t := project[name](beer); insert(brewery, "
          "project[name, null, null](t));"));
  EXPECT_TRUE(r.committed);
  EXPECT_EQ((*db_.Find("brewery"))->size(), 2u);
  EXPECT_FALSE(db_.Contains("t"));
}

TEST_F(TxnTest, MalformedProgramErrorsAndRollsBack) {
  Database before = db_.Clone();
  AlgebraParser parser(&db_.schema());
  // Build a program that inserts then references a missing temp (parser
  // would reject it, so build the AST by hand).
  Transaction txn;
  txn.program.statements.push_back(algebra::Statement::Insert(
      "beer", algebra::RelExpr::Literal(
                  {Tuple({Value::String("a"), Value::String("b"),
                          Value::String("c"), Value::Double(1.0)})},
                  4)));
  txn.program.statements.push_back(algebra::Statement::Assign(
      "t", algebra::RelExpr::Temp("missing")));
  Result<TxnResult> r = ExecuteTransaction(txn, &db_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(db_.SameState(before));
}

// --- differential bookkeeping (the paper's auxiliary relations) -----------

class DifferentialTest : public TxnTest {};

TEST_F(DifferentialTest, InsertPopulatesDeltaPlus) {
  TxnContext ctx(&db_);
  TXMOD_ASSERT_OK_AND_ASSIGN(
      bool inserted,
      ctx.InsertTuple("brewery", Tuple({Value::String("new"), Value::Null(),
                                        Value::Null()})));
  EXPECT_TRUE(inserted);
  EXPECT_EQ(ctx.diff("brewery").plus.size(), 1u);
  EXPECT_EQ(ctx.diff("brewery").minus.size(), 0u);
}

TEST_F(DifferentialTest, DeleteThenReinsertNetsOut) {
  TxnContext ctx(&db_);
  const Tuple heineken({Value::String("heineken"), Value::String("amsterdam"),
                        Value::String("nl")});
  TXMOD_ASSERT_OK_AND_ASSIGN(bool deleted,
                             ctx.DeleteTuple("brewery", heineken));
  EXPECT_TRUE(deleted);
  EXPECT_EQ(ctx.diff("brewery").minus.size(), 1u);
  TXMOD_ASSERT_OK_AND_ASSIGN(bool inserted,
                             ctx.InsertTuple("brewery", heineken));
  EXPECT_TRUE(inserted);
  // Net change is zero: R_pre = (R \ plus) ∪ minus must hold.
  EXPECT_EQ(ctx.diff("brewery").plus.size(), 0u);
  EXPECT_EQ(ctx.diff("brewery").minus.size(), 0u);
  EXPECT_TRUE(ctx.TouchedRelations().empty());
}

TEST_F(DifferentialTest, WriteFootprintDedupesRepeatedAttempts) {
  // A batch re-touching the same tuple N times is ONE tuple-granularity
  // read: the footprint stays a single entry (no per-attempt growth or
  // tuple copies), and no-op attempts still land in it.
  TxnContext ctx(&db_);
  ctx.EnableConflictTracking();
  const Tuple t({Value::String("x"), Value::Null(), Value::Null()});
  for (int i = 0; i < 8; ++i) {
    TXMOD_ASSERT_OK(ctx.InsertTuple("brewery", t).status());
    TXMOD_ASSERT_OK(ctx.DeleteTuple("brewery", t).status());
  }
  TXMOD_ASSERT_OK(ctx.InsertTuple("brewery", t).status());
  TXMOD_ASSERT_OK(ctx.InsertTuple("brewery", t).status());  // no-op repeat
  auto it = ctx.WriteFootprint().find("brewery");
  ASSERT_NE(it, ctx.WriteFootprint().end());
  EXPECT_EQ(it->second.size(), 1u);
  EXPECT_TRUE(it->second.Contains(t));
}

TEST_F(DifferentialTest, InsertThenDeleteNetsOut) {
  TxnContext ctx(&db_);
  const Tuple t({Value::String("x"), Value::Null(), Value::Null()});
  TXMOD_ASSERT_OK(ctx.InsertTuple("brewery", t).status());
  TXMOD_ASSERT_OK(ctx.DeleteTuple("brewery", t).status());
  EXPECT_EQ(ctx.diff("brewery").plus.size(), 0u);
  EXPECT_EQ(ctx.diff("brewery").minus.size(), 0u);
}

TEST_F(DifferentialTest, OldViewIsPreTransactionState) {
  TxnContext ctx(&db_);
  const Tuple heineken({Value::String("heineken"), Value::String("amsterdam"),
                        Value::String("nl")});
  const Tuple fresh({Value::String("fresh"), Value::Null(), Value::Null()});
  TXMOD_ASSERT_OK(ctx.InsertTuple("brewery", fresh).status());
  TXMOD_ASSERT_OK(ctx.DeleteTuple("brewery", heineken).status());
  TXMOD_ASSERT_OK_AND_ASSIGN(const Relation* old_view,
                             ctx.Resolve(RelRefKind::kOld, "brewery"));
  EXPECT_EQ(old_view->size(), 1u);
  EXPECT_TRUE(old_view->Contains(heineken));
  EXPECT_FALSE(old_view->Contains(fresh));
  // The current state is the opposite.
  TXMOD_ASSERT_OK_AND_ASSIGN(const Relation* now,
                             ctx.Resolve(RelRefKind::kBase, "brewery"));
  EXPECT_TRUE(now->Contains(fresh));
  EXPECT_FALSE(now->Contains(heineken));
}

TEST_F(DifferentialTest, OldViewComputedEarlyStaysCorrect) {
  TxnContext ctx(&db_);
  // Materialize old(brewery) before any change...
  TXMOD_ASSERT_OK_AND_ASSIGN(const Relation* old_before,
                             ctx.Resolve(RelRefKind::kOld, "brewery"));
  EXPECT_EQ(old_before->size(), 1u);
  // ...then mutate; the old view must still show the pre-state.
  TXMOD_ASSERT_OK(
      ctx.InsertTuple("brewery",
                      Tuple({Value::String("x"), Value::Null(), Value::Null()}))
          .status());
  TXMOD_ASSERT_OK_AND_ASSIGN(const Relation* old_after,
                             ctx.Resolve(RelRefKind::kOld, "brewery"));
  EXPECT_EQ(old_after->size(), 1u);
}

TEST_F(DifferentialTest, DeltaRefsOfUntouchedRelationAreEmpty) {
  TxnContext ctx(&db_);
  TXMOD_ASSERT_OK_AND_ASSIGN(const Relation* plus,
                             ctx.Resolve(RelRefKind::kDeltaPlus, "beer"));
  TXMOD_ASSERT_OK_AND_ASSIGN(const Relation* minus,
                             ctx.Resolve(RelRefKind::kDeltaMinus, "beer"));
  EXPECT_TRUE(plus->empty());
  EXPECT_TRUE(minus->empty());
}

TEST_F(DifferentialTest, RollbackRestoresState) {
  Database before = db_.Clone();
  TxnContext ctx(&db_);
  TXMOD_ASSERT_OK(
      ctx.InsertTuple("brewery",
                      Tuple({Value::String("x"), Value::Null(), Value::Null()}))
          .status());
  TXMOD_ASSERT_OK(
      ctx.DeleteTuple("brewery",
                      Tuple({Value::String("heineken"),
                             Value::String("amsterdam"), Value::String("nl")}))
          .status());
  ctx.Rollback();
  EXPECT_TRUE(db_.SameState(before));
}

}  // namespace
}  // namespace txmod::txn
