#include "gtest/gtest.h"
#include "src/common/str_util.h"
#include "src/algebra/parser.h"
#include "src/core/subsystem.h"
#include "src/parallel/executor.h"
#include "tests/test_util.h"

namespace txmod::parallel {
namespace {

using algebra::Transaction;
using txmod::testing::AddBeer;
using txmod::testing::AddBrewery;
using txmod::testing::MakeBeerDatabase;

/// The paper's PRISMA setup: beer fragmented on its foreign-key attribute,
/// brewery on its key attribute — referential checks become node-local.
std::map<std::string, FragmentationScheme> BeerSchemes() {
  return {
      {"beer", FragmentationScheme{FragmentationKind::kHash, 2}},
      {"brewery", FragmentationScheme{FragmentationKind::kHash, 0}},
  };
}

class ParallelTest : public ::testing::TestWithParam<int> {
 protected:
  ParallelTest() : db_(MakeBeerDatabase()) {
    AddBrewery(&db_, "heineken", "amsterdam", "nl");
    AddBrewery(&db_, "guinness", "dublin", "ie");
    for (int i = 0; i < 20; ++i) {
      AddBeer(&db_, txmod::StrCat("beer", i), "lager",
              i % 2 == 0 ? "heineken" : "guinness", 4.0 + (i % 5));
    }
  }

  Transaction ParseTxn(const std::string& text) {
    algebra::AlgebraParser parser(&db_.schema());
    auto t = parser.ParseTransaction(text);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? *t : Transaction{};
  }

  Database db_;
};

TEST_P(ParallelTest, PartitionPreservesContentAndMergeRestoresIt) {
  const int nodes = GetParam();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      ParallelDatabase pdb,
      ParallelDatabase::Partition(db_, BeerSchemes(), nodes));
  EXPECT_EQ(pdb.num_nodes(), nodes);
  TXMOD_ASSERT_OK_AND_ASSIGN(const FragmentedRelation* beer,
                             pdb.Find("beer"));
  EXPECT_EQ(beer->TotalSize(), 20u);
  EXPECT_EQ(static_cast<int>(beer->fragments.size()), nodes);
  EXPECT_TRUE(pdb.Merge().SameState(db_));
}

TEST_P(ParallelTest, HashFragmentationColocatesEqualKeys) {
  const int nodes = GetParam();
  TXMOD_ASSERT_OK_AND_ASSIGN(
      ParallelDatabase pdb,
      ParallelDatabase::Partition(db_, BeerSchemes(), nodes));
  TXMOD_ASSERT_OK_AND_ASSIGN(const FragmentedRelation* beer,
                             pdb.Find("beer"));
  // All beers of one brewery sit in the same fragment.
  for (int i = 0; i < nodes; ++i) {
    for (const Tuple& t : beer->fragments[i]) {
      EXPECT_EQ(FragmentOfValue(t.at(2), nodes), i);
    }
  }
}

/// Runs the same modified transaction serially and in parallel; both must
/// agree on the outcome and the final state.
void ExpectParallelMatchesSerial(Database db, const Transaction& modified,
                                 int nodes, bool use_threads = false) {
  // Serial execution.
  Database serial_db = db.Clone();
  auto serial = txn::ExecuteTransaction(modified, &serial_db);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  // Parallel execution.
  TXMOD_ASSERT_OK_AND_ASSIGN(
      ParallelDatabase pdb,
      ParallelDatabase::Partition(db, BeerSchemes(), nodes));
  ParallelOptions options;
  options.use_threads = use_threads;
  ParallelExecutor exec(&pdb, options);
  TXMOD_ASSERT_OK_AND_ASSIGN(ParallelTxnResult parallel,
                             exec.Execute(modified));

  EXPECT_EQ(serial->committed, parallel.committed);
  EXPECT_TRUE(pdb.Merge().SameState(serial_db));
}

TEST_P(ParallelTest, ValidInsertCommitsOnAllNodeCounts) {
  core::IntegritySubsystem ics(&db_);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  Transaction txn = ParseTxn(
      "insert(beer, {(\"new\", \"ale\", \"guinness\", 6.0)});");
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));
  ExpectParallelMatchesSerial(db_, modified, GetParam());
}

TEST_P(ParallelTest, OrphanInsertAbortsOnAllNodeCounts) {
  core::IntegritySubsystem ics(&db_);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  Transaction txn = ParseTxn(
      "insert(beer, {(\"bad\", \"ale\", \"nowhere\", 6.0)});");
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));
  ExpectParallelMatchesSerial(db_, modified, GetParam());
}

TEST_P(ParallelTest, ReferencedBreweryDeleteAborts) {
  core::IntegritySubsystem ics(&db_);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  Transaction txn = ParseTxn(
      "delete(brewery, select[name = \"heineken\"](brewery));");
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));
  ExpectParallelMatchesSerial(db_, modified, GetParam());
}

TEST_P(ParallelTest, AggregateConstraintMatchesSerial) {
  core::IntegritySubsystem ics(&db_);
  TXMOD_ASSERT_OK(ics.DefineConstraint("capacity", "cnt(beer) <= 21"));
  Transaction ok_txn = ParseTxn(
      "insert(beer, {(\"one_more\", \"ale\", \"guinness\", 6.0)});");
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction ok_mod, ics.Modify(ok_txn));
  ExpectParallelMatchesSerial(db_, ok_mod, GetParam());
  Transaction bad_txn = ParseTxn(
      "insert(beer, {(\"m1\", \"ale\", \"guinness\", 6.0), "
      "(\"m2\", \"ale\", \"guinness\", 6.0)});");
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction bad_mod, ics.Modify(bad_txn));
  ExpectParallelMatchesSerial(db_, bad_mod, GetParam());
}

TEST_P(ParallelTest, CompensatingRuleMatchesSerial) {
  core::IntegritySubsystem ics(&db_);
  TXMOD_ASSERT_OK(ics.DefineRule(
      "fix_refint",
      "WHEN INS(beer) "
      "IF NOT forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name)) "
      "THEN temp := project[brewery](beer) - project[name](brewery); "
      "     insert(brewery, project[brewery, null, null](temp))"));
  Transaction txn = ParseTxn(
      "insert(beer, {(\"stray\", \"ale\", \"newplace\", 6.0)});");
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));
  ExpectParallelMatchesSerial(db_, modified, GetParam());
}

TEST_P(ParallelTest, ThreadedExecutionMatchesSerial) {
  core::IntegritySubsystem ics(&db_);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  Transaction txn = ParseTxn(
      "insert(beer, {(\"new\", \"ale\", \"heineken\", 6.0)});");
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));
  ExpectParallelMatchesSerial(db_, modified, GetParam(),
                              /*use_threads=*/true);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, ParallelTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelCostTest, ColocatedRefintCheckHasNoTransfers) {
  Database db = MakeBeerDatabase();
  AddBrewery(&db, "heineken", "amsterdam", "nl");
  for (int i = 0; i < 50; ++i) {
    AddBeer(&db, txmod::StrCat("b", i), "lager", "heineken", 5.0);
  }
  core::IntegritySubsystem ics(&db);
  TXMOD_ASSERT_OK(ics.DefineConstraint(
      "refint",
      "forall x (x in beer implies exists y (y in brewery and "
      "x.brewery = y.name))"));
  algebra::AlgebraParser parser(&db.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Transaction txn,
      parser.ParseTransaction(
          "insert(beer, {(\"new\", \"ale\", \"heineken\", 6.0)});"));
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, ics.Modify(txn));

  TXMOD_ASSERT_OK_AND_ASSIGN(
      ParallelDatabase pdb,
      ParallelDatabase::Partition(db, BeerSchemes(), 4));
  ParallelExecutor exec(&pdb, ParallelOptions{});
  TXMOD_ASSERT_OK_AND_ASSIGN(ParallelTxnResult r, exec.Execute(modified));
  EXPECT_TRUE(r.committed);
  // beer is fragmented on the FK attribute and brewery on its key: the
  // π-difference check is node-local. The only possible transfer is the
  // routing of the single inserted tuple.
  EXPECT_LE(r.stats.tuples_transferred(), 1u);
}

TEST(ParallelCostTest, SimulatedMakespanShrinksWithNodes) {
  Database db = MakeBeerDatabase();
  AddBrewery(&db, "heineken", "amsterdam", "nl");
  // Distinct FK values so hash fragmentation spreads the load; with a
  // single brewery every tuple would land on one node and no node count
  // could help (skew is real, but not what this test is about).
  for (int i = 0; i < 256; ++i) {
    AddBeer(&db, txmod::StrCat("b", i), "lager", txmod::StrCat("brew", i),
            5.0);
  }
  core::IntegritySubsystem ics(&db);
  // Full-relation domain check, forced by OptimizationLevel::kNone, so
  // the work scales with the relation size.
  core::SubsystemOptions so;
  so.optimization = core::OptimizationLevel::kNone;
  core::IntegritySubsystem full(&db, so);
  TXMOD_ASSERT_OK(full.DefineConstraint(
      "domain", "forall x (x in beer implies x.alcohol >= 0)"));
  algebra::AlgebraParser parser(&db.schema());
  TXMOD_ASSERT_OK_AND_ASSIGN(
      Transaction txn,
      parser.ParseTransaction(
          "insert(beer, {(\"new\", \"ale\", \"heineken\", 6.0)});"));
  TXMOD_ASSERT_OK_AND_ASSIGN(Transaction modified, full.Modify(txn));

  double previous = 1e300;
  for (int nodes : {1, 2, 4, 8}) {
    TXMOD_ASSERT_OK_AND_ASSIGN(
        ParallelDatabase pdb,
        ParallelDatabase::Partition(db, BeerSchemes(), nodes));
    ParallelExecutor exec(&pdb, ParallelOptions{});
    TXMOD_ASSERT_OK_AND_ASSIGN(ParallelTxnResult r, exec.Execute(modified));
    EXPECT_TRUE(r.committed);
    EXPECT_LT(r.stats.simulated_us(), previous)
        << nodes << " nodes not faster";
    previous = r.stats.simulated_us();
  }
}

}  // namespace
}  // namespace txmod::parallel
